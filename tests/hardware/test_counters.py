"""Performance counters."""

import pytest

from repro.errors import SimulationError
from repro.hardware.counters import PerfCounters


def make(**kwargs):
    counters = PerfCounters()
    for key, value in kwargs.items():
        setattr(counters, key, value)
    return counters


class TestAccumulation:
    def test_add_in_place(self):
        a = make(lookups=10, remote_accesses=5)
        b = make(lookups=2, remote_accesses=1)
        a.add(b)
        assert a.lookups == 12
        assert a.remote_accesses == 6

    def test_add_returns_self(self):
        a = PerfCounters()
        assert a.add(PerfCounters()) is a

    def test_operator_add_is_pure(self):
        a = make(lookups=1)
        b = make(lookups=2)
        c = a + b
        assert c.lookups == 3
        assert a.lookups == 1 and b.lookups == 2

    def test_scaled(self):
        scaled = make(lookups=4, remote_bytes=100).scaled(2.5)
        assert scaled.lookups == 10
        assert scaled.remote_bytes == 250

    def test_scaled_rejects_negative(self):
        with pytest.raises(SimulationError):
            PerfCounters().scaled(-1)

    def test_as_dict_covers_all_fields(self):
        counters = make(lookups=1, tlb_misses=2)
        data = counters.as_dict()
        assert data["lookups"] == 1
        assert data["tlb_misses"] == 2
        assert "translation_requests" in data


class TestDerivedMetrics:
    def test_requests_per_lookup(self):
        counters = make(lookups=10, translation_requests=105)
        assert counters.translation_requests_per_lookup == pytest.approx(10.5)

    def test_requests_per_lookup_empty(self):
        assert PerfCounters().translation_requests_per_lookup == 0.0

    def test_l2_hit_rate(self):
        counters = make(memory_accesses=10, l1_hits=2, l2_hits=4)
        assert counters.l2_hit_rate == pytest.approx(0.5)

    def test_l1_hit_rate(self):
        counters = make(memory_accesses=10, l1_hits=2)
        assert counters.l1_hit_rate == pytest.approx(0.2)

    def test_hit_rates_empty(self):
        assert PerfCounters().l2_hit_rate == 0.0
        assert PerfCounters().l1_hit_rate == 0.0


class TestValidation:
    def test_consistent_passes(self):
        make(
            memory_accesses=10, l1_hits=3, l2_hits=3, remote_accesses=4,
            tlb_misses=2,
        ).validate()

    def test_negative_counter_fails(self):
        with pytest.raises(SimulationError):
            make(lookups=-1).validate()

    def test_hits_exceeding_accesses_fails(self):
        with pytest.raises(SimulationError):
            make(memory_accesses=5, l1_hits=4, l2_hits=4).validate()

    def test_misses_exceeding_remote_fails(self):
        with pytest.raises(SimulationError):
            make(
                memory_accesses=10, remote_accesses=2, tlb_misses=5
            ).validate()
