"""Interconnect transfer-time model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.spec import NVLINK2, PCIE4
from repro.units import GB


@pytest.fixture
def nvlink():
    return InterconnectModel(NVLINK2)


@pytest.fixture
def pcie():
    return InterconnectModel(PCIE4)


class TestBandwidths:
    def test_sequential_is_peak(self, nvlink):
        assert nvlink.sequential_bandwidth == NVLINK2.bandwidth_bytes

    def test_random_is_derated(self, nvlink):
        assert nvlink.random_bandwidth == pytest.approx(
            NVLINK2.bandwidth_bytes * NVLINK2.random_efficiency
        )

    def test_nvlink_random_beats_pcie(self, nvlink, pcie):
        # The motivation for out-of-core index lookups (Section 5.2.3).
        assert nvlink.random_bandwidth > 2 * pcie.random_bandwidth


class TestSequentialTime:
    def test_zero_bytes(self, nvlink):
        assert nvlink.sequential_time(0) == 0.0

    def test_proportional(self, nvlink):
        one = nvlink.sequential_time(75 * GB)
        two = nvlink.sequential_time(150 * GB)
        assert two > one
        assert (two - one) == pytest.approx(1.0, rel=1e-6)

    def test_includes_latency(self, nvlink):
        assert nvlink.sequential_time(1) >= NVLINK2.latency_seconds

    def test_rejects_negative(self, nvlink):
        with pytest.raises(ConfigurationError):
            nvlink.sequential_time(-1)


class TestRandomTime:
    def test_zero_accesses(self, nvlink):
        assert nvlink.random_time(0) == 0.0

    def test_accounts_cacheline_granularity(self, nvlink):
        # One million random fetches move 128 MB regardless of useful bytes.
        accesses = 1_000_000
        expected = accesses * 128 / nvlink.random_bandwidth
        assert nvlink.random_time(accesses) == pytest.approx(
            expected + NVLINK2.latency_seconds
        )

    def test_random_slower_than_sequential_per_byte(self, nvlink):
        bytes_moved = 10 * GB
        accesses = bytes_moved / 128
        assert nvlink.random_time(accesses) > nvlink.sequential_time(bytes_moved)

    def test_random_bytes(self, nvlink):
        assert nvlink.random_bytes(10) == 1280

    def test_rejects_negative(self, nvlink):
        with pytest.raises(ConfigurationError):
            nvlink.random_time(-1)
        with pytest.raises(ConfigurationError):
            nvlink.random_bytes(-1)


class TestTranslationTime:
    def test_three_microseconds_each(self, nvlink):
        # One request with no overlap costs the full round trip.
        assert nvlink.translation_time(1, concurrency=1) == pytest.approx(3e-6)

    def test_overlap_divides(self, nvlink):
        assert nvlink.translation_time(600, concurrency=600) == pytest.approx(
            3e-6
        )

    def test_zero_requests(self, nvlink):
        assert nvlink.translation_time(0, concurrency=10) == 0.0

    def test_rejects_bad_concurrency(self, nvlink):
        with pytest.raises(ConfigurationError):
            nvlink.translation_time(1, concurrency=0)

    def test_rejects_negative_requests(self, nvlink):
        with pytest.raises(ConfigurationError):
            nvlink.translation_time(-1, concurrency=1)


def test_rejects_bad_cacheline():
    with pytest.raises(ConfigurationError):
        InterconnectModel(NVLINK2, cacheline_bytes=0)
