"""GPU cache simulators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hardware.cache import LruCache, SetAssociativeCache, lines_for


class TestLruCache:
    def test_hit_after_insert(self):
        cache = LruCache(capacity_bytes=4 * 128, line_bytes=128)
        assert cache.access(7) is False
        assert cache.access(7) is True

    def test_eviction(self):
        cache = LruCache(capacity_bytes=2 * 128, line_bytes=128)
        cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 1
        assert cache.access(1) is False

    def test_lru_refresh(self):
        cache = LruCache(capacity_bytes=2 * 128, line_bytes=128)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 2 is now LRU
        cache.access(3)  # evicts 2
        assert cache.contains(1)
        assert not cache.contains(2)

    def test_contains_does_not_touch(self):
        cache = LruCache(capacity_bytes=2 * 128, line_bytes=128)
        cache.access(1)
        cache.access(2)
        cache.contains(1)  # must NOT refresh line 1
        cache.access(3)  # evicts 1 (still LRU)
        assert not cache.contains(1)

    def test_occupancy_and_hit_rate(self):
        cache = LruCache(capacity_bytes=8 * 128, line_bytes=128)
        cache.access(1)
        cache.access(1)
        assert cache.occupancy == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_reset(self):
        cache = LruCache(capacity_bytes=2 * 128, line_bytes=128)
        cache.access(1)
        cache.reset()
        assert cache.occupancy == 0 and cache.hits == 0

    def test_rejects_capacity_below_line(self):
        with pytest.raises(ConfigurationError):
            LruCache(capacity_bytes=64, line_bytes=128)

    def test_rejects_zero_sizes(self):
        with pytest.raises(ConfigurationError):
            LruCache(capacity_bytes=0, line_bytes=128)
        with pytest.raises(ConfigurationError):
            LruCache(capacity_bytes=128, line_bytes=0)


class TestSetAssociativeCache:
    def test_geometry(self):
        cache = SetAssociativeCache(
            capacity_bytes=64 * 128, line_bytes=128, ways=4
        )
        assert cache.num_sets == 16

    def test_conflict_misses_within_one_set(self):
        # Lines mapping to the same set thrash once they exceed the ways.
        cache = SetAssociativeCache(
            capacity_bytes=8 * 128, line_bytes=128, ways=2
        )
        same_set = [0, cache.num_sets, 2 * cache.num_sets]
        for line in same_set:
            cache.access(line)
        assert cache.access(same_set[0]) is False  # evicted by the third

    def test_different_sets_do_not_conflict(self):
        cache = SetAssociativeCache(
            capacity_bytes=8 * 128, line_bytes=128, ways=2
        )
        cache.access(0)
        cache.access(1)
        cache.access(2)
        assert cache.access(0) is True

    def test_sequence_and_occupancy(self):
        cache = SetAssociativeCache(
            capacity_bytes=16 * 128, line_bytes=128, ways=4
        )
        misses = cache.access_sequence([1, 2, 3, 1, 2, 3])
        assert misses == 3
        assert cache.occupancy == 3

    def test_contains(self):
        cache = SetAssociativeCache(
            capacity_bytes=16 * 128, line_bytes=128, ways=4
        )
        cache.access(5)
        assert cache.contains(5)
        assert not cache.contains(6)

    def test_reset(self):
        cache = SetAssociativeCache(
            capacity_bytes=16 * 128, line_bytes=128, ways=4
        )
        cache.access(1)
        cache.reset()
        assert cache.occupancy == 0

    def test_rejects_capacity_below_ways(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=128, line_bytes=128, ways=4)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=1024, line_bytes=128, ways=0)


class TestLinesFor:
    def test_single_line(self):
        assert list(lines_for(0, 8, 128)) == [0]

    def test_spanning_access(self):
        # A 4 KiB B+tree node starting at a line boundary covers 32 lines.
        assert len(lines_for(4096, 4096, 128)) == 32

    def test_straddling_boundary(self):
        assert list(lines_for(120, 16, 128)) == [0, 1]

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            lines_for(0, 0, 128)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            lines_for(0, 8, 100)


@settings(max_examples=25, deadline=None)
@given(
    ways=st.integers(min_value=1, max_value=8),
    sets_pow=st.integers(min_value=0, max_value=4),
    length=st.integers(min_value=1, max_value=400),
    universe=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_set_associative_invariants(ways, sets_pow, length, universe, seed):
    """Hits + misses == accesses; occupancy bounded by capacity."""
    num_sets = 2**sets_pow
    cache = SetAssociativeCache(
        capacity_bytes=ways * num_sets * 128, line_bytes=128, ways=ways
    )
    rng = np.random.default_rng(seed)
    cache.access_sequence(rng.integers(0, universe, length).tolist())
    assert cache.hits + cache.misses == length
    assert cache.occupancy <= ways * cache.num_sets
    assert cache.occupancy <= universe
