"""GPU TLB simulators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hardware.tlb import AnalyticTlb, LruTlb, make_tlb, pages_for


class TestLruTlb:
    def test_cold_miss_then_hit(self):
        tlb = LruTlb(entries=4)
        assert tlb.access(1) is False
        assert tlb.access(1) is True
        assert tlb.misses == 1 and tlb.hits == 1

    def test_cold_misses_tracked(self):
        tlb = LruTlb(entries=2)
        tlb.access_sequence([1, 2, 3, 1, 2, 3])
        # Three distinct pages -> 3 cold; capacity 2 -> the revisits also
        # miss (cyclic eviction), but they are not cold.
        assert tlb.cold_misses == 3
        assert tlb.misses == 6

    def test_lru_eviction_order(self):
        tlb = LruTlb(entries=2)
        tlb.access(1)
        tlb.access(2)
        tlb.access(1)  # refresh 1; 2 becomes LRU
        tlb.access(3)  # evicts 2
        assert tlb.access(1) is True
        assert tlb.access(2) is False

    def test_working_set_within_capacity_never_thrashes(self):
        tlb = LruTlb(entries=8)
        sequence = [i % 8 for i in range(1000)]
        misses = tlb.access_sequence(sequence)
        assert misses == 8  # cold only

    def test_cyclic_thrash(self):
        # The classic LRU worst case: cycling over capacity + 1 pages.
        tlb = LruTlb(entries=4)
        sequence = [i % 5 for i in range(500)]
        tlb.access_sequence(sequence)
        assert tlb.miss_rate == 1.0

    def test_reset(self):
        tlb = LruTlb(entries=2)
        tlb.access_sequence([1, 2, 3])
        tlb.reset()
        assert tlb.hits == 0 and tlb.misses == 0 and tlb.cold_misses == 0
        assert tlb.access(1) is False

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            LruTlb(entries=0)

    def test_miss_rate_empty(self):
        assert LruTlb(entries=1).miss_rate == 0.0


class TestAnalyticTlb:
    def test_fitting_pages_cold_only(self):
        tlb = AnalyticTlb(entries=100)
        misses = tlb.access_uniform(num_accesses=10_000, num_pages=50)
        assert misses == 50

    def test_steady_state_rate(self):
        tlb = AnalyticTlb(entries=100)
        tlb.access_uniform(num_accesses=100_000, num_pages=400)
        assert tlb.miss_rate == pytest.approx(0.75, rel=0.01)

    def test_agrees_with_exact_lru_for_uniform_access(self, rng):
        """The closed form must track the event simulator (DESIGN.md S5)."""
        pages, entries, accesses = 300, 64, 60_000
        exact = LruTlb(entries=entries)
        exact.access_sequence(rng.integers(0, pages, accesses).tolist())
        analytic = AnalyticTlb(entries=entries)
        analytic.access_uniform(accesses, pages)
        assert exact.miss_rate == pytest.approx(analytic.miss_rate, rel=0.05)

    def test_rejects_bad_inputs(self):
        tlb = AnalyticTlb(entries=4)
        with pytest.raises(ConfigurationError):
            tlb.access_uniform(-1, 10)
        with pytest.raises(ConfigurationError):
            tlb.access_uniform(10, 0)

    def test_reset(self):
        tlb = AnalyticTlb(entries=4)
        tlb.access_uniform(100, 10)
        tlb.reset()
        assert tlb.hits == 0 and tlb.misses == 0


class TestMakeTlb:
    def test_exact(self):
        assert isinstance(make_tlb(4, exact=True), LruTlb)

    def test_analytic(self):
        assert isinstance(make_tlb(4, exact=False), AnalyticTlb)


class TestPagesFor:
    def test_shift(self):
        addresses = np.array([0, 4095, 4096, 8191], dtype=np.int64)
        assert pages_for(addresses, 4096).tolist() == [0, 0, 1, 1]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            pages_for(np.array([0]), 3000)

    def test_large_addresses_exact(self):
        address = np.array([2**60 + 4096], dtype=np.int64)
        assert pages_for(address, 4096)[0] == 2**48 + 1


@settings(max_examples=25, deadline=None)
@given(
    entries=st.integers(min_value=1, max_value=64),
    pages=st.integers(min_value=1, max_value=128),
    length=st.integers(min_value=1, max_value=500),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_lru_invariants(entries, pages, length, seed):
    """Misses bounded by accesses; cold misses bounded by distinct pages."""
    rng = np.random.default_rng(seed)
    sequence = rng.integers(0, pages, length).tolist()
    tlb = LruTlb(entries=entries)
    tlb.access_sequence(sequence)
    assert tlb.hits + tlb.misses == length
    assert tlb.cold_misses == len(set(sequence))
    assert tlb.misses >= tlb.cold_misses
    if pages <= entries:
        assert tlb.misses == tlb.cold_misses
