"""Simulated memory spaces and allocator."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.memory import (
    DEVICE_BASE,
    HOST_BASE,
    MemorySpace,
    SystemMemory,
)
from repro.hardware.spec import V100_NVLINK2
from repro.units import GIB


@pytest.fixture
def memory():
    return SystemMemory(V100_NVLINK2)


class TestAllocation:
    def test_host_base(self, memory):
        allocation = memory.allocate(100, MemorySpace.HOST, "x")
        assert allocation.base == HOST_BASE

    def test_device_base(self, memory):
        allocation = memory.allocate(100, MemorySpace.DEVICE, "y")
        assert allocation.base == DEVICE_BASE

    def test_spaces_are_disjoint(self, memory):
        host = memory.allocate(GIB, MemorySpace.HOST, "h")
        device = memory.allocate(GIB, MemorySpace.DEVICE, "d")
        assert host.end <= device.base or device.end <= host.base

    def test_host_alignment_is_huge_page(self, memory):
        memory.allocate(1, MemorySpace.HOST, "a")
        second = memory.allocate(1, MemorySpace.HOST, "b")
        assert second.base == HOST_BASE + V100_NVLINK2.huge_page_bytes

    def test_host_capacity_accounts_aligned_size(self, memory):
        memory.allocate(1, MemorySpace.HOST, "tiny")
        # A 1-byte allocation pins a whole 1 GiB huge page.
        assert memory.used(MemorySpace.HOST) == V100_NVLINK2.huge_page_bytes

    def test_capacity_error_host(self, memory):
        with pytest.raises(CapacityError):
            memory.allocate(
                V100_NVLINK2.cpu.memory_capacity_bytes + 1,
                MemorySpace.HOST,
                "too big",
            )

    def test_capacity_error_device(self, memory):
        with pytest.raises(CapacityError):
            memory.allocate(
                V100_NVLINK2.gpu.memory_capacity_bytes + 1,
                MemorySpace.DEVICE,
                "too big",
            )

    def test_capacity_error_cumulative(self, memory):
        half = V100_NVLINK2.gpu.memory_capacity_bytes // 2
        memory.allocate(half, MemorySpace.DEVICE, "a")
        memory.allocate(half, MemorySpace.DEVICE, "b")
        with pytest.raises(CapacityError):
            memory.allocate(1, MemorySpace.DEVICE, "c")

    def test_rejects_zero_size(self, memory):
        with pytest.raises(ConfigurationError):
            memory.allocate(0, MemorySpace.HOST, "zero")

    def test_available(self, memory):
        before = memory.available(MemorySpace.DEVICE)
        memory.allocate(GIB, MemorySpace.DEVICE, "g")
        assert memory.available(MemorySpace.DEVICE) < before


class TestFree:
    def test_free_returns_capacity(self, memory):
        allocation = memory.allocate(GIB, MemorySpace.DEVICE, "g")
        used = memory.used(MemorySpace.DEVICE)
        memory.free(allocation)
        assert memory.used(MemorySpace.DEVICE) == used - GIB

    def test_double_free_rejected(self, memory):
        allocation = memory.allocate(GIB, MemorySpace.DEVICE, "g")
        memory.free(allocation)
        with pytest.raises(ConfigurationError):
            memory.free(allocation)


class TestAddressing:
    def test_address_of(self, memory):
        allocation = memory.allocate(100, MemorySpace.HOST, "x")
        assert allocation.address_of(10) == allocation.base + 10

    def test_address_of_bounds(self, memory):
        allocation = memory.allocate(100, MemorySpace.HOST, "x")
        with pytest.raises(ConfigurationError):
            allocation.address_of(100)

    def test_contains(self, memory):
        allocation = memory.allocate(100, MemorySpace.HOST, "x")
        assert allocation.contains(allocation.base)
        assert allocation.contains(allocation.end - 1)
        assert not allocation.contains(allocation.end)

    def test_find(self, memory):
        allocation = memory.allocate(100, MemorySpace.HOST, "x")
        assert memory.find(allocation.base + 5) is allocation

    def test_find_unmapped(self, memory):
        with pytest.raises(ConfigurationError):
            memory.find(0xDEAD)
