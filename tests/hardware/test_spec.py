"""Hardware specifications and machine presets."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.spec import (
    A100_PCIE4,
    CpuSpec,
    GH200_C2C,
    GpuSpec,
    InterconnectSpec,
    MI250X_IF3,
    NVLINK2,
    NVLINK_C2C,
    PCIE4,
    PCIE5,
    INFINITY_FABRIC3,
    SystemSpec,
    TABLE1_INTERCONNECTS,
    V100_NVLINK2,
)
from repro.units import GB, GIB, MIB


class TestTable1Values:
    """The paper's Table 1 bandwidths, verbatim."""

    @pytest.mark.parametrize(
        "spec,gbps",
        [
            (PCIE4, 32),
            (PCIE5, 64),
            (INFINITY_FABRIC3, 72),
            (NVLINK2, 75),
            (NVLINK_C2C, 450),
        ],
    )
    def test_bandwidth(self, spec, gbps):
        assert spec.bandwidth_bytes == gbps * GB

    def test_table_has_five_rows(self):
        assert len(TABLE1_INTERCONNECTS) == 5

    def test_table_order_matches_paper(self):
        names = [link.name for __, link in TABLE1_INTERCONNECTS]
        assert names == [
            "PCI-e 4.0",
            "PCI-e 5.0",
            "Infinity Fabric 3",
            "NVLink 2.0",
            "NVLink C2C",
        ]


class TestV100Preset:
    """The paper's primary testbed (Section 3.2)."""

    def test_tlb_range_is_32_gib(self):
        # Lutz et al. [30]: the V100 TLB maps a 32 GiB range.
        assert V100_NVLINK2.gpu.tlb_range_bytes == 32 * GIB

    def test_huge_pages(self):
        assert V100_NVLINK2.huge_page_bytes == 1 * GIB

    def test_cpu_memory_capacity(self):
        assert V100_NVLINK2.cpu.memory_capacity_bytes == 256 * GIB

    def test_tlb_entries(self):
        expected = 32 * GIB // V100_NVLINK2.gpu.tlb_entry_bytes
        assert V100_NVLINK2.tlb_entries == expected

    def test_resident_threads(self):
        assert V100_NVLINK2.gpu.max_resident_threads == 80 * 2048

    def test_resident_warps(self):
        assert V100_NVLINK2.gpu.max_resident_warps == 80 * 64

    def test_nvlink_random_bandwidth_exceeds_pcie(self):
        nvlink_random = (
            NVLINK2.bandwidth_bytes * NVLINK2.random_efficiency
        )
        pcie_random = PCIE4.bandwidth_bytes * PCIE4.random_efficiency
        assert nvlink_random > 2 * pcie_random


class TestA100Preset:
    def test_interconnect_is_pcie4(self):
        assert A100_PCIE4.interconnect is PCIE4

    def test_faster_gpu_memory_than_v100(self):
        assert (
            A100_PCIE4.gpu.memory_bandwidth_bytes
            > V100_NVLINK2.gpu.memory_bandwidth_bytes
        )

    def test_larger_l2_than_v100(self):
        assert A100_PCIE4.gpu.l2_bytes > V100_NVLINK2.gpu.l2_bytes


class TestOtherPresets:
    def test_gh200_uses_c2c(self):
        assert GH200_C2C.interconnect is NVLINK_C2C

    def test_mi250x_uses_infinity_fabric(self):
        assert MI250X_IF3.interconnect is INFINITY_FABRIC3


class TestValidation:
    def test_interconnect_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(
                name="x", bandwidth_bytes=0, latency_seconds=1e-6,
                random_efficiency=0.5,
            )

    def test_interconnect_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(
                name="x", bandwidth_bytes=1, latency_seconds=1e-6,
                random_efficiency=1.5,
            )

    def test_interconnect_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(
                name="x", bandwidth_bytes=1, latency_seconds=0,
                random_efficiency=0.5,
            )

    def test_gpu_rejects_negative_field(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(
                name="bad", sm_count=0, threads_per_sm=2048, warp_size=32,
                clock_hz=1e9, memory_bandwidth_bytes=1, memory_capacity_bytes=1,
                memory_random_efficiency=0.5, l2_bytes=1, l1_bytes=1,
                cacheline_bytes=128, tlb_range_bytes=GIB,
                tlb_entry_bytes=2 * MIB, tlb_replay_factor=3.0,
            )

    def test_gpu_rejects_misaligned_tlb_granule(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(
                name="bad", sm_count=1, threads_per_sm=2048, warp_size=32,
                clock_hz=1e9, memory_bandwidth_bytes=1, memory_capacity_bytes=1,
                memory_random_efficiency=0.5, l2_bytes=1, l1_bytes=1,
                cacheline_bytes=128, tlb_range_bytes=GIB,
                tlb_entry_bytes=3 * MIB, tlb_replay_factor=3.0,
            )

    def test_cpu_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            CpuSpec(
                name="bad", core_count=0, clock_hz=1e9,
                memory_bandwidth_bytes=1, memory_capacity_bytes=1,
            )

    def test_system_rejects_non_power_of_two_pages(self):
        with pytest.raises(ConfigurationError):
            SystemSpec(
                name="bad",
                cpu=V100_NVLINK2.cpu,
                gpu=V100_NVLINK2.gpu,
                interconnect=NVLINK2,
                huge_page_bytes=3 * MIB,
            )

    def test_with_huge_pages(self):
        derived = V100_NVLINK2.with_huge_pages(2 * MIB)
        assert derived.huge_page_bytes == 2 * MIB
        assert derived.gpu is V100_NVLINK2.gpu
