"""Equivalence suite: vectorized models vs. the OrderedDict references.

The fast replay engine's correctness contract is *exact* equality with the
reference models -- per-access hit/miss outcomes, hit/miss/cold counters,
and eviction (LRU) order -- on identical streams.  These tests drive both
implementations with the same randomized streams and assert all of it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.cache import LruCache, SetAssociativeCache
from repro.hardware.fastlru import (
    VectorLruCache,
    VectorLruTlb,
    VectorSetAssociativeCache,
)
from repro.hardware.tlb import LruTlb


def reference_lru_hits(cache, keys):
    return np.array([cache.access(int(k)) for k in keys], dtype=bool)


def lru_stream_cases():
    rng = np.random.default_rng(0xFA57)
    # (capacity_lines, stream) pairs spanning tiny capacities, capacities
    # near/below/above the universe, skew, and multi-chunk streams.
    cases = []
    for capacity, universe, length in [
        (1, 4, 64),
        (4, 4, 256),          # universe fits: no capacity misses
        (8, 64, 512),
        (64, 48, 1024),       # capacity exceeds universe
        (128, 1024, 4096),
        (512, 700, 20000),    # thrash band: universe slightly over capacity
    ]:
        cases.append((capacity, rng.integers(0, universe, length)))
    # Zipf-ish skew: stresses the ambiguous depth band and the fallback.
    skew = np.minimum((rng.pareto(0.6, 8000) * 20).astype(np.int64), 1999)
    cases.append((512, skew))
    # Sequential sweep with wraparound: classic LRU worst case.
    cases.append((16, np.arange(400) % 20))
    return cases


@pytest.mark.parametrize(
    "capacity,stream",
    lru_stream_cases(),
    ids=lambda value: str(value)[:24],
)
def test_vector_lru_matches_reference(capacity, stream):
    line_bytes = 32
    reference = LruCache(capacity * line_bytes, line_bytes)
    vector = VectorLruCache(capacity * line_bytes, line_bytes)
    expected = reference_lru_hits(reference, stream)
    actual = vector.access_batch(np.asarray(stream, dtype=np.int64))
    np.testing.assert_array_equal(actual, expected)
    assert vector.hits == reference.hits
    assert vector.misses == reference.misses
    assert vector.occupancy == reference.occupancy
    # Eviction order: identical residency in identical LRU->MRU order.
    np.testing.assert_array_equal(
        vector.resident_lines(), np.fromiter(reference._lines, dtype=np.int64)
    )


def test_vector_lru_matches_reference_across_batches():
    rng = np.random.default_rng(7)
    stream = rng.integers(0, 300, 3000).astype(np.int64)
    reference = LruCache(128 * 32, 32)
    vector = VectorLruCache(128 * 32, 32)
    expected = reference_lru_hits(reference, stream)
    pieces = [vector.access_batch(part) for part in np.array_split(stream, 7)]
    np.testing.assert_array_equal(np.concatenate(pieces), expected)
    np.testing.assert_array_equal(
        vector.resident_lines(), np.fromiter(reference._lines, dtype=np.int64)
    )


def test_vector_lru_scalar_api_and_contains():
    reference = LruCache(4 * 64, 64)
    vector = VectorLruCache(4 * 64, 64)
    for line in [3, 1, 3, 9, 11, 1, 12, 3]:
        assert vector.access(line) == reference.access(line)
        assert vector.contains(line) and reference.contains(line)
    assert not vector.contains(9)  # evicted
    assert vector.hit_rate == reference.hit_rate


def set_assoc_cases():
    rng = np.random.default_rng(0x5E7)
    cases = []
    for sets, ways, universe, length in [
        (1, 2, 8, 200),       # degenerate: one set, tiny ways
        (3, 4, 64, 2000),     # set count coprime with power-of-two lines
        (16, 16, 400, 8000),
        (96, 16, 4096, 40000),
    ]:
        cases.append((sets, ways, rng.integers(0, universe, length)))
    # Hot lines mixed with cold sweeps (index upper levels + data lines).
    hot = rng.integers(0, 24, 3000)
    cold = rng.integers(0, 100000, 6000)
    mixed = np.concatenate([hot, cold])
    rng.shuffle(mixed)
    cases.append((96, 16, mixed))
    # Long single-set segments: exercise the lag-window replay, including
    # its backward-walk remnant (a low-diversity stretch inside long
    # reuse windows defeats both the exact and certain-miss lag tiers).
    calm = np.repeat(rng.integers(0, 3, 700), 3)
    wild = rng.integers(0, 4000, 2000)
    cases.append((1, 4, np.concatenate([wild[:1000], calm, wild[1000:]])))
    cases.append((4, 8, rng.integers(0, 5000, 12000)))
    return cases


@pytest.mark.parametrize(
    "sets,ways,stream", set_assoc_cases(), ids=lambda value: str(value)[:24]
)
def test_vector_set_associative_matches_reference(sets, ways, stream):
    line_bytes = 32
    capacity = sets * ways * line_bytes
    reference = SetAssociativeCache(capacity, line_bytes, ways=ways)
    vector = VectorSetAssociativeCache(capacity, line_bytes, ways=ways)
    assert vector.num_sets == reference.num_sets
    expected = reference_lru_hits(reference, stream)
    actual = vector.access_batch(np.asarray(stream, dtype=np.int64))
    np.testing.assert_array_equal(actual, expected)
    assert vector.hits == reference.hits
    assert vector.misses == reference.misses
    assert vector.occupancy == reference.occupancy
    for set_index in range(reference.num_sets):
        np.testing.assert_array_equal(
            vector.resident_lines(set_index),
            np.fromiter(reference._sets[set_index], dtype=np.int64),
        )


def test_vector_set_associative_across_batches():
    rng = np.random.default_rng(21)
    stream = rng.integers(0, 3000, 20000).astype(np.int64)
    reference = SetAssociativeCache(96 * 16 * 32, 32, ways=16)
    vector = VectorSetAssociativeCache(96 * 16 * 32, 32, ways=16)
    expected = reference_lru_hits(reference, stream)
    pieces = [vector.access_batch(part) for part in np.array_split(stream, 5)]
    np.testing.assert_array_equal(np.concatenate(pieces), expected)
    assert vector.hits == reference.hits


def test_vector_set_associative_scalar_api():
    reference = SetAssociativeCache(2 * 2 * 64, 64, ways=2)
    vector = VectorSetAssociativeCache(2 * 2 * 64, 64, ways=2)
    for line in [0, 2, 4, 0, 6, 2, 8, 0, 3, 1, 5]:
        assert vector.access(line) == reference.access(line)
        assert vector.contains(line) == reference.contains(line)
    assert vector.access_sequence([1, 3, 5, 7]) == reference.access_sequence(
        [1, 3, 5, 7]
    )
    assert vector.hit_rate == reference.hit_rate


def tlb_cases():
    rng = np.random.default_rng(0x7B)
    return [
        (8, rng.integers(0, 6, 300)),            # fits: cold misses only
        (16, rng.integers(0, 64, 4000)),         # thrash
        (256, rng.integers(0, 300, 20000)),      # thrash band
        (64, np.arange(3000) % 80),              # cyclic sweep
    ]


@pytest.mark.parametrize(
    "entries,pages", tlb_cases(), ids=lambda value: str(value)[:24]
)
def test_vector_tlb_matches_reference(entries, pages):
    reference = LruTlb(entries)
    vector = VectorLruTlb(entries)
    expected = np.array([reference.access(int(p)) for p in pages], dtype=bool)
    actual = vector.access_batch(np.asarray(pages, dtype=np.int64))
    np.testing.assert_array_equal(actual, expected)
    assert vector.hits == reference.hits
    assert vector.misses == reference.misses
    assert vector.cold_misses == reference.cold_misses
    assert vector.miss_rate == reference.miss_rate
    np.testing.assert_array_equal(
        vector.resident_pages(), np.fromiter(reference._cached, dtype=np.int64)
    )


def test_vector_tlb_cold_misses_across_batches():
    rng = np.random.default_rng(3)
    stream = rng.integers(0, 500, 6000).astype(np.int64)
    reference = LruTlb(128)
    vector = VectorLruTlb(128)
    for page in stream:
        reference.access(int(page))
    for part in np.array_split(stream, 4):
        vector.access_batch(part)
    assert vector.cold_misses == reference.cold_misses
    assert vector.misses == reference.misses


def test_vector_models_reject_bad_shapes():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        VectorLruCache(0, 32)
    with pytest.raises(ConfigurationError):
        VectorLruCache(16, 32)
    with pytest.raises(ConfigurationError):
        VectorSetAssociativeCache(64, 32, ways=0)
    with pytest.raises(ConfigurationError):
        VectorLruTlb(0)
