"""Manifests: build/write/load/diff, and the ``repro obs report`` CLI."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro import obs
from repro.obs import build_manifest
from repro.obs.manifest import (
    SCHEMA,
    diff_manifests,
    load_manifest,
    write_manifest,
)
from repro.obs.report import format_report, run_report


def record_run(ops=10.0):
    """One synthetic two-phase traced run in the global registry/tracer."""
    obs.reset()
    with obs.phase("fig5"):
        with obs.span("replay.simulate"):
            pass
        obs.add("replay.ops", ops)
        obs.observe("batch.tuples", 4096.0)
    with obs.phase("fig7"):
        obs.add("partition.tuples", 512.0)
    return build_manifest(run_info={"experiments": ["fig5", "fig7"]})


class TestBuildManifest:
    def test_sections_present(self):
        obs.enable()
        manifest = record_run()
        assert manifest["schema"] == SCHEMA
        assert manifest["run"] == {"experiments": ["fig5", "fig7"]}
        assert manifest["counters"]["replay.ops"] == 10.0
        assert list(manifest["phases"]) == ["fig5", "fig7"]
        fig5 = manifest["phases"]["fig5"]
        assert fig5["counters"] == {"replay.ops": 10.0}
        assert fig5["wall_seconds"] >= 0.0
        assert fig5["entered"] == 1
        assert manifest["spans"]["replay.simulate"]["count"] == 1
        assert manifest["dropped_spans"] == 0

    def test_phase_narrowing(self):
        obs.enable()
        record_run()
        narrowed = build_manifest(
            run_info={"experiment": "fig5"}, phase="fig5"
        )
        # The phase's counters become the top-level counters; the other
        # phase, run-wide histograms, and gauges disappear.
        assert narrowed["counters"] == {"replay.ops": 10.0}
        assert list(narrowed["phases"]) == ["fig5"]
        assert narrowed["histograms"] == {}
        assert list(narrowed["spans"]) == ["replay.simulate"]


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        obs.enable()
        record_run()
        path = os.path.join(str(tmp_path), "nested", "metrics.json")
        assert obs.write_manifest(path) == path
        loaded = load_manifest(path)
        assert loaded["counters"]["replay.ops"] == 10.0

    def test_output_is_stable_json(self, tmp_path):
        obs.enable()
        record_run()
        path = str(tmp_path / "metrics.json")
        write_manifest(path, obs.registry(), obs.tracer())
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema"] == SCHEMA

    def test_load_rejects_non_manifest(self, tmp_path):
        path = str(tmp_path / "not_manifest.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"hello": 1}, handle)
        with pytest.raises(ValueError):
            load_manifest(path)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = str(tmp_path / "alien.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": "other-tool/3"}, handle)
        with pytest.raises(ValueError):
            load_manifest(path)


class TestDiffManifests:
    def test_identical_runs_no_drift(self):
        obs.enable()
        base = record_run()
        current = record_run()
        assert diff_manifests(base, current) == []

    def test_timing_and_run_metadata_ignored(self):
        obs.enable()
        base = record_run()
        current = record_run()
        current["phases"]["fig5"]["wall_seconds"] = 9999.0
        current["spans"]["replay.simulate"]["total_seconds"] = 9999.0
        current["run"] = {"experiments": ["something", "else"]}
        assert diff_manifests(base, current) == []

    def test_counter_drift_caught(self):
        obs.enable()
        base = record_run(ops=10.0)
        current = record_run(ops=11.0)
        drifts = diff_manifests(base, current)
        assert drifts
        assert any("replay.ops" in drift.key for drift in drifts)


class ManifestFiles:
    """Two manifest files on disk, identical or drifted."""

    @pytest.fixture
    def paths(self, tmp_path):
        obs.enable()
        record_run(ops=10.0)
        base = str(tmp_path / "base.json")
        write_manifest(base, obs.registry(), obs.tracer())
        record_run(ops=self.current_ops)
        current = str(tmp_path / "current.json")
        write_manifest(current, obs.registry(), obs.tracer())
        return base, current


class TestReportRender(ManifestFiles):
    current_ops = 10.0

    def test_render_single_manifest(self, paths):
        stream = io.StringIO()
        assert run_report([paths[0]], stream=stream) == 0
        text = stream.getvalue()
        assert "replay.ops" in text
        assert "fig5" in text

    def test_format_report_empty_manifest(self):
        assert "empty manifest" in format_report({})

    def test_usage_errors_exit_2(self, paths):
        stream = io.StringIO()
        assert run_report(list(paths), stream=stream) == 2  # two, no --diff
        assert run_report([paths[0]], diff=True, stream=stream) == 2


class TestReportDiffClean(ManifestFiles):
    current_ops = 10.0

    def test_clean_diff_exits_0(self, paths):
        stream = io.StringIO()
        code = run_report(
            list(paths), diff=True, fail_on_drift=True, stream=stream
        )
        assert code == 0
        assert "no drift" in stream.getvalue()


class TestReportDiffDrift(ManifestFiles):
    current_ops = 11.0

    def test_drift_reported_but_tolerated_without_flag(self, paths):
        stream = io.StringIO()
        assert run_report(list(paths), diff=True, stream=stream) == 0
        assert "DRIFT" in stream.getvalue()

    def test_fail_on_drift_exits_1(self, paths):
        stream = io.StringIO()
        code = run_report(
            list(paths), diff=True, fail_on_drift=True, stream=stream
        )
        assert code == 1
        assert "replay.ops" in stream.getvalue()


class TestCli:
    def test_repro_obs_report_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        obs.enable()
        record_run()
        path = str(tmp_path / "metrics.json")
        write_manifest(path, obs.registry(), obs.tracer())
        assert main(["obs", "report", path]) == 0
        assert "replay.ops" in capsys.readouterr().out

    def test_missing_manifest_is_a_usage_error(self, tmp_path, capsys):
        from repro.__main__ import main

        missing = str(tmp_path / "nope.json")
        assert main(["obs", "report", missing]) == 2
