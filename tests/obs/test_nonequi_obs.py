"""Non-equi join observability: metric names, labels, and span counts.

The ``join.band.*`` / ``join.knn.*`` counters and the range primitive's
``index.range_*`` counters follow the repo metric contract (OBS001:
literal lowercase dotted names, consistent label keys); this suite pins
the values they report for a known workload so a renamed or mislabelled
metric fails here, not just in the lint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.data.column import MaterializedColumn
from repro.data.relation import Relation
from repro.indexes import RadixSplineIndex
from repro.join.nonequi import BandJoin, KNNJoin, WindowedBandJoin
from repro.partition.bits import PartitionBits
from repro.partition.radix import RadixPartitioner


@pytest.fixture
def index():
    keys = np.arange(0, 640, 5, dtype=np.uint64)
    return RadixSplineIndex(Relation(name="R", column=MaterializedColumn(keys)))


def test_band_join_metrics(traced, index):
    probes = np.asarray([100, 101, 615], dtype=np.uint64)
    result = BandJoin(index, 5).join(probes)
    labels = {"index": index.name, "variant": "naive"}
    assert obs.counter("join.band.probes", **labels) == 3.0
    assert obs.counter("join.band.pairs", **labels) == float(len(result))
    # The fused range probe rides the index-level range counters.
    assert obs.counter("index.range_lookups", index=index.name) == 3.0
    assert obs.counter("index.range_kernels", index=index.name) == 1.0


def test_windowed_band_join_metrics(traced, index):
    probes = np.asarray([100, 101, 615, 20], dtype=np.uint64)
    partitioner = RadixPartitioner(PartitionBits(shift=2, bits=4))
    join = WindowedBandJoin(index, partitioner, 5, window_bytes=16)
    result = join.join(probes)
    labels = {"index": index.name, "variant": "windowed"}
    assert obs.counter("join.band.probes", **labels) == 4.0
    assert obs.counter("join.band.pairs", **labels) == float(len(result))
    # 16-byte windows hold two probes: two range kernel launches.
    assert obs.counter("index.range_kernels", index=index.name) == 2.0


def test_knn_join_metrics(traced, index):
    probes = np.asarray([7, 300], dtype=np.uint64)
    KNNJoin(index, 3).join(probes)
    labels = {"index": index.name, "variant": "naive"}
    assert obs.counter("join.knn.probes", **labels) == 2.0
    assert obs.counter("join.knn.pairs", **labels) == 6.0


def test_metrics_silent_when_disabled(clean_obs, index):
    BandJoin(index, 5).join(np.asarray([100], dtype=np.uint64))
    assert obs.counter("join.band.probes") == 0.0
    assert obs.snapshot()["counters"] == {}
