"""Runner integration: manifests, the RUN SUMMARY, and figure identity."""

from __future__ import annotations

import hashlib
import io
import json
import os
import re

import pytest

from repro import obs
from repro.experiments.runner import run_report
from repro.obs.manifest import load_manifest
from repro.resilience import faults
from repro.resilience.faults import FaultPlan

#: Wall-clock lines vary run to run; everything else must not.
_TIMING_LINE = re.compile(r"^\s*\[.* took .*s\]$|^ {2}\S.*\d+\.\ds\s+(ok|FAILED)$")


def stable_output(text: str) -> str:
    lines = [
        line
        for line in text.splitlines()
        if not _TIMING_LINE.match(line)
        and not line.startswith("[trace manifest written")
        and not line.startswith("  total ")
    ]
    return "\n".join(lines)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


class TestTracedRun:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        out_dir = str(tmp_path_factory.mktemp("traced"))
        stream = io.StringIO()
        was_enabled = obs.enabled()
        report = run_report(
            ["table1", "fig7"],
            quick=True,
            stream=stream,
            output_dir=out_dir,
            trace=True,
        )
        obs.enable(was_enabled)
        return report, stream.getvalue(), out_dir

    def test_run_summary_rendered(self, traced_run):
        report, output, _ = traced_run
        assert "RUN SUMMARY:" in output
        assert list(report.timings) == ["table1", "fig7"]
        assert all(seconds >= 0.0 for seconds in report.timings.values())

    def test_run_manifest_written(self, traced_run):
        _, output, out_dir = traced_run
        path = os.path.join(out_dir, "metrics.json")
        assert "[trace manifest written to" in output
        manifest = load_manifest(path)
        assert manifest["run"]["experiments"] == ["fig7", "table1"]
        assert manifest["counters"]  # replay/index/model ops landed
        assert "replay.lookups" in manifest["counters"]
        assert set(manifest["phases"]) == {"table1", "fig7"}

    def test_per_experiment_manifest_matches_run_phase(self, traced_run):
        _, _, out_dir = traced_run
        run_manifest = load_manifest(os.path.join(out_dir, "metrics.json"))
        fig7 = load_manifest(os.path.join(out_dir, "fig7.metrics.json"))
        # The narrowed manifest's counters are exactly the run manifest's
        # fig7 phase section.
        assert fig7["counters"] == run_manifest["phases"]["fig7"]["counters"]
        assert list(fig7["phases"]) == ["fig7"]
        assert fig7["run"] == {"experiment": "fig7"}


class TestUntracedRun:
    def test_no_manifest_and_obs_stays_disabled(self, tmp_path):
        stream = io.StringIO()
        report = run_report(
            ["table1"],
            quick=True,
            stream=stream,
            output_dir=str(tmp_path),
            trace=False,
        )
        assert not obs.enabled()
        assert not os.path.exists(str(tmp_path / "metrics.json"))
        # Phase timing is always on: the exit summary renders regardless.
        assert "RUN SUMMARY:" in stream.getvalue()
        assert list(report.timings) == ["table1"]

    def test_figure_output_identical_traced_and_untraced(self, tmp_path):
        """Tracing must be observation only: same figures, byte for byte."""
        untraced_stream = io.StringIO()
        untraced = run_report(
            ["fig7"], quick=True, stream=untraced_stream, trace=False
        )
        traced_stream = io.StringIO()
        traced = run_report(
            ["fig7"],
            quick=True,
            stream=traced_stream,
            trace=True,
            trace_file=str(tmp_path / "metrics.json"),
        )
        obs.disable()
        assert untraced.results["fig7"].to_text() == traced.results[
            "fig7"
        ].to_text()
        untraced_hash = hashlib.sha256(
            stable_output(untraced_stream.getvalue()).encode()
        ).hexdigest()
        traced_hash = hashlib.sha256(
            stable_output(traced_stream.getvalue()).encode()
        ).hexdigest()
        assert untraced_hash == traced_hash


class TestFailureTiming:
    def test_failure_elapsed_sourced_from_phase_and_summarized(self):
        faults.install(
            FaultPlan(kind="raise", site="experiment", at=0, match="fig7")
        )
        stream = io.StringIO()
        report = run_report(
            ["table1", "fig7"], quick=True, stream=stream, trace=False
        )
        output = stream.getvalue()
        (failure,) = report.failures
        # The failed experiment still gets a phase timing, and the
        # failure's elapsed time is that same measurement.
        assert "fig7" in report.timings
        assert failure.elapsed_seconds == report.timings["fig7"]
        assert "RUN SUMMARY:" in output
        assert re.search(r"fig7\s+\d+\.\ds\s+FAILED", output)
        assert re.search(r"table1\s+\d+\.\ds\s+ok", output)
        assert "FAILURE SUMMARY" in output


class TestTraceFileEnv:
    def test_trace_file_env_sets_manifest_target(self, tmp_path, monkeypatch):
        target = str(tmp_path / "env_metrics.json")
        monkeypatch.setenv(obs.TRACE_FILE_ENV, target)
        stream = io.StringIO()
        run_report(["table1"], quick=True, stream=stream, trace=True)
        obs.disable()
        assert os.path.exists(target)
        with open(target, encoding="utf-8") as handle:
            assert json.load(handle)["schema"].startswith("repro-obs-manifest/")
