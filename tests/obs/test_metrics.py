"""MetricsRegistry: counters, gauges, histograms, snapshot/diff/merge."""

from __future__ import annotations

import json
import math

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    bucket_label,
    metric_key,
)


class TestMetricKey:
    def test_plain_name(self):
        assert metric_key("replay.lookups") == "replay.lookups"
        assert metric_key("replay.lookups", {}) == "replay.lookups"

    def test_labels_sorted(self):
        key = metric_key("index.lookups", {"index": "B+tree", "a": 1})
        assert key == "index.lookups{a=1,index=B+tree}"

    def test_label_order_irrelevant(self):
        assert metric_key("x", {"b": 2, "a": 1}) == metric_key(
            "x", {"a": 1, "b": 2}
        )


class TestBucketLabel:
    def test_non_positive(self):
        assert bucket_label(0.0) == "<=0"
        assert bucket_label(-3.5) == "<=0"

    def test_power_of_two_boundaries_exact(self):
        # The boundary value belongs to its own bucket, never the next.
        assert bucket_label(1.0) == "<=2^0"
        assert bucket_label(2.0) == "<=2^1"
        assert bucket_label(2.5) == "<=2^2"
        assert bucket_label(1024.0) == "<=2^10"
        assert bucket_label(1025.0) == "<=2^11"

    def test_non_finite(self):
        assert bucket_label(math.inf) == "inf"
        assert bucket_label(math.nan) == "inf"


class TestHistogram:
    def test_summary_exact(self):
        histogram = Histogram()
        for value in (1.0, 3.0, 3.0, 1024.0):
            histogram.observe(value)
        summary = histogram.to_dict()
        assert summary["count"] == 4
        assert summary["sum"] == 1031.0
        assert summary["min"] == 1.0
        assert summary["max"] == 1024.0
        assert summary["buckets"] == {"<=2^0": 1, "<=2^10": 1, "<=2^2": 2}

    def test_merge_dict(self):
        left, right = Histogram(), Histogram()
        left.observe(2.0)
        right.observe(100.0)
        right.observe(0.5)
        left.merge_dict(right.to_dict())
        summary = left.to_dict()
        assert summary["count"] == 3
        assert summary["sum"] == 102.5
        assert summary["min"] == 0.5
        assert summary["max"] == 100.0


class TestRegistry:
    def test_add_and_read(self):
        registry = MetricsRegistry()
        registry.add("hits", 2.0)
        registry.add("hits", 3.0)
        registry.add("hits", 1.0, labels={"index": "btree"})
        assert registry.counter("hits") == 5.0
        assert registry.counter("hits", {"index": "btree"}) == 1.0
        assert registry.counter("never") == 0.0

    def test_phase_attribution(self):
        registry = MetricsRegistry()
        registry.add("ops", 1.0, phase="fig5")
        registry.add("ops", 4.0, phase="fig7")
        registry.add("ops", 2.0)  # no phase: run total only
        assert registry.counter("ops") == 7.0
        assert registry.phase_counter("fig5", "ops") == 1.0
        assert registry.phase_counter("fig7", "ops") == 4.0
        assert registry.phases() == ("fig5", "fig7")

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("occupancy", 10)
        registry.set_gauge("occupancy", 3)
        assert registry.snapshot()["gauges"] == {"occupancy": 3.0}

    def test_snapshot_is_deterministic_across_insertion_order(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        entries = [("a", 1.0), ("z", 2.0), ("m", 3.0)]
        for name, value in entries:
            forward.add(name, value, phase="p")
            forward.observe("h", value)
        for name, value in reversed(entries):
            backward.add(name, value, phase="p")
        for _, value in reversed(entries):
            backward.observe("h", value)
        assert json.dumps(forward.snapshot(), sort_keys=False) == json.dumps(
            backward.snapshot(), sort_keys=False
        )

    def test_clear(self):
        registry = MetricsRegistry()
        registry.add("x")
        registry.observe("h", 1.0)
        registry.set_gauge("g", 1.0)
        registry.clear()
        snapshot = registry.snapshot()
        assert snapshot == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "phases": {},
        }


class TestMergeSnapshot:
    def test_counters_sum_and_phases_fold(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.add("ops", 5.0, phase="fig5")
        worker.add("ops", 7.0, phase="fig5")
        worker.add("only.worker", 1.0)
        worker.observe("batch", 8.0)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("ops") == 12.0
        assert parent.phase_counter("fig5", "ops") == 12.0
        assert parent.counter("only.worker") == 1.0
        assert parent.snapshot()["histograms"]["batch"]["count"] == 1


class TestDiff:
    def make(self, ops=10.0, with_histogram=True):
        registry = MetricsRegistry()
        registry.add("replay.ops", ops, phase="fig5")
        registry.set_gauge("wall", 123.456)  # must never participate
        if with_histogram:
            registry.observe("batch", 100.0)
        return registry.snapshot()

    def test_identical_snapshots_clean(self):
        assert MetricsRegistry.diff(self.make(), self.make()) == []

    def test_counter_drift_detected(self):
        drifts = MetricsRegistry.diff(self.make(10.0), self.make(11.0))
        sections = {drift.section for drift in drifts}
        # The drift shows up both in the run total and in its phase.
        assert "counter" in sections
        assert "phase:fig5" in sections
        assert all("replay.ops" in drift.key for drift in drifts)

    def test_missing_key_drifts(self):
        base = self.make()
        current = self.make(with_histogram=False)
        drifts = MetricsRegistry.diff(base, current)
        assert any(drift.section == "histogram" for drift in drifts)

    def test_gauges_never_diff(self):
        base, current = self.make(), self.make()
        current["gauges"]["wall"] = 999.0
        assert MetricsRegistry.diff(base, current) == []

    def test_rel_tol_absorbs_libm_noise(self):
        base, current = self.make(), self.make()
        noisy = base["counters"]["replay.ops"] * (1 + 1e-12)
        current["counters"]["replay.ops"] = noisy
        current["phases"]["fig5"]["replay.ops"] = noisy
        assert MetricsRegistry.diff(base, current, rel_tol=1e-9) == []
        assert MetricsRegistry.diff(base, current, rel_tol=0.0) != []

    def test_drift_renders(self):
        drifts = MetricsRegistry.diff(self.make(10.0), self.make(11.0))
        text = drifts[0].to_text()
        assert "replay.ops" in text
        assert "baseline=" in text and "current=" in text
