"""Tracer: spans, phases, aggregates, JSONL export, overflow bounding."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs.tracing import NULL_SPAN, NullSpan, Tracer


class TestDisabledPath:
    def test_span_returns_shared_null_span(self):
        assert obs.span("anything", attr=1) is NULL_SPAN
        assert obs.span("other") is NULL_SPAN

    def test_null_span_is_reusable_and_silent(self):
        with NULL_SPAN as span:
            span.set("key", "value")  # dropped, no error
        with NULL_SPAN:
            pass
        assert isinstance(NULL_SPAN, NullSpan)
        assert obs.tracer().finished_spans() == ()

    def test_recording_calls_are_noops(self):
        obs.add("counter", 5.0)
        obs.gauge("gauge", 1.0)
        obs.observe("histogram", 2.0)
        snapshot = obs.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_phase_wall_time_measured_even_while_disabled(self):
        # The runner's exit summary needs phase timings unconditionally.
        with obs.phase("fig5"):
            pass
        assert obs.tracer().phase_wall_seconds("fig5") is not None
        assert obs.phase_wall_seconds()["fig5"] >= 0.0


class TestSpans:
    def test_span_records_with_phase_and_attrs(self, traced):
        with obs.phase("fig5"):
            with obs.span("replay.simulate", lookups=64) as span:
                span.set("steps", 3)
        (record,) = obs.tracer().finished_spans()
        assert record["name"] == "replay.simulate"
        assert record["phase"] == "fig5"
        assert record["depth"] == 0
        assert record["wall_seconds"] >= 0.0
        assert record["attrs"] == {"lookups": 64, "steps": 3}

    def test_nesting_depth_and_seq(self, traced):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = obs.tracer().finished_spans()
        assert (inner["name"], inner["depth"]) == ("inner", 1)
        assert (outer["name"], outer["depth"]) == ("outer", 0)
        assert inner["seq"] < outer["seq"]  # completion order

    def test_counter_attribution_follows_current_phase(self, traced):
        with obs.phase("fig5"):
            obs.add("ops", 2.0)
        obs.add("ops", 1.0)
        assert obs.counter("ops") == 3.0
        assert obs.registry().phase_counter("fig5", "ops") == 2.0


class TestPhaseTable:
    def test_first_entered_order_and_reentry(self, traced):
        with obs.phase("b"):
            pass
        with obs.phase("a"):
            pass
        with obs.phase("b"):
            pass
        tracer = obs.tracer()
        assert tracer.phase_order() == ("b", "a")
        table = tracer.phase_table()
        assert list(table) == ["b", "a"]
        assert table["b"]["entered"] == 2
        assert table["a"]["entered"] == 1


class TestAggregateAndExport:
    def fill(self):
        with obs.phase("fig5"):
            with obs.span("replay.simulate"):
                pass
            with obs.span("replay.simulate"):
                pass
        with obs.phase("fig7"):
            with obs.span("partition.fanout"):
                pass

    def test_span_aggregate(self, traced):
        self.fill()
        aggregate = obs.tracer().span_aggregate()
        assert list(aggregate) == ["partition.fanout", "replay.simulate"]
        assert aggregate["replay.simulate"]["count"] == 2

    def test_span_aggregate_phase_filter(self, traced):
        self.fill()
        only_fig7 = obs.tracer().span_aggregate(phase="fig7")
        assert list(only_fig7) == ["partition.fanout"]

    def test_export_jsonl_round_trips(self, traced):
        self.fill()
        buffer = io.StringIO()
        count = obs.tracer().export_jsonl(buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert [record["seq"] for record in records] == [0, 1, 2]
        assert {record["name"] for record in records} == {
            "replay.simulate",
            "partition.fanout",
        }


class TestOverflow:
    def test_dropped_spans_counted_not_stored(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.finished_spans()) == 2
        assert tracer.dropped_spans == 3

    def test_clear_resets_everything(self, traced):
        with obs.phase("p"):
            with obs.span("s"):
                pass
        obs.reset()
        tracer = obs.tracer()
        assert tracer.finished_spans() == ()
        assert tracer.phase_order() == ()
        assert tracer.phase_wall_seconds("p") is None
