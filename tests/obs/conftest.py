"""Shared obs fixtures: every test starts from a clean, disabled layer."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the global registry/tracer and restore the enabled flag.

    The obs layer is process-global state; tests must not leak counters
    or a stray enable() into each other (or into the rest of the suite).
    """
    was_enabled = obs.enabled()
    obs.disable()
    obs.reset()
    yield
    obs.enable(was_enabled)
    obs.reset()


@pytest.fixture
def traced(clean_obs):
    """Tracing on for the duration of one test."""
    obs.enable()
    yield
    obs.disable()
