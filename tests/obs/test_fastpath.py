"""The disabled-tracing fast path, and traced-counter exactness.

Three contracts:

* tracing off leaves every simulated result bit-identical (it must --
  the CI baselines and EXPERIMENTS.md were recorded untraced);
* tracing off costs almost nothing on the replay hot path (one module
  global read per batch entry point);
* tracing on emits op counters that *exactly* match an OrderedDict
  reference replay of the same stream -- counters are sourced from the
  models' own hit/miss accounting, never re-derived.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import obs
from repro.config import SimulationConfig
from repro.gpu.executor import LookupTrace, MachineModel
from repro.hardware.cache import LruCache, SetAssociativeCache
from repro.hardware.fastlru import (
    VectorLruCache,
    VectorLruTlb,
    VectorSetAssociativeCache,
)
from repro.hardware.spec import V100_NVLINK2
from repro.hardware.tlb import LruTlb


def random_trace(steps=4, lookups=2048, seed=7, span_bytes=1 << 26):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, span_bytes, size=(steps, lookups), dtype=np.int64)
    return LookupTrace(
        step_addresses=matrix,
        steps_per_lookup=np.full(lookups, steps, dtype=np.int64),
    )


def machine(fast=True):
    sim = SimulationConfig(probe_sample=2**10, fast_replay=fast)
    return MachineModel(V100_NVLINK2, sim)


class TestEnvironmentSwitch:
    def test_repro_trace_env_controls_enablement(self, monkeypatch):
        monkeypatch.setenv(obs.TRACE_ENV, "1")
        assert obs.configure_from_env() is True
        for falsy in ("", "0", "false", "off", "no"):
            monkeypatch.setenv(obs.TRACE_ENV, falsy)
            assert obs.configure_from_env() is False
        monkeypatch.delenv(obs.TRACE_ENV)
        assert obs.configure_from_env() is False


class TestTracingDoesNotPerturbResults:
    def test_replay_counters_identical_traced_or_not(self):
        trace = random_trace()
        untraced_machine = machine()
        untraced = untraced_machine.simulate_lookups(trace)
        obs.enable()
        traced_machine = machine()
        traced = traced_machine.simulate_lookups(trace)
        obs.disable()
        assert traced.as_dict() == untraced.as_dict()

    def test_model_hit_masks_identical_traced_or_not(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 600, 20000)
        plain = VectorLruCache(512 * 32, 32)
        named = VectorLruCache(512 * 32, 32)
        named.obs_name = "probe"
        baseline = plain.access_batch(stream)
        obs.enable()
        traced = named.access_batch(stream)
        obs.disable()
        np.testing.assert_array_equal(traced, baseline)


class TestDisabledOverhead:
    def test_instrumented_entry_point_overhead_under_5_percent(self):
        """simulate_lookups vs its private body, tracing off.

        The public wrapper pays exactly one ``obs.enabled()`` check
        before delegating; on a realistic batch that must disappear into
        the noise.  Min-of-N timing on both sides; retried to keep CI
        scheduling jitter from failing a healthy fast path.
        """
        assert not obs.enabled()
        trace = random_trace(steps=4, lookups=4096)
        sim = machine()

        def timed(func, repeats=5, calls=3):
            best = float("inf")
            for _ in range(repeats):
                sim.reset_hierarchy()
                started = time.perf_counter()
                for _ in range(calls):
                    func()
                best = min(best, time.perf_counter() - started)
            return best

        for _ in range(3):
            raw = timed(lambda: sim._replay(trace, True, None, False))
            wrapped = timed(lambda: sim.simulate_lookups(trace))
            if wrapped <= raw * 1.05:
                break
        else:
            pytest.fail(
                f"disabled-tracing overhead above 5%: raw={raw:.6f}s "
                f"wrapped={wrapped:.6f}s"
            )


def reference_hits(model, keys):
    return sum(1 for key in keys if model.access(int(key)))


class TestTracedCountersMatchOracle:
    """model.* counters vs an OrderedDict reference replaying the stream."""

    line_bytes = 32

    def test_lru_cache_counters_exact(self, traced):
        rng = np.random.default_rng(11)
        stream = rng.integers(0, 700, 20000)
        vector = VectorLruCache(512 * self.line_bytes, self.line_bytes)
        vector.obs_name = "probe"
        vector.access_batch(stream)
        oracle = LruCache(512 * self.line_bytes, self.line_bytes)
        hits = reference_hits(oracle, stream)
        assert obs.counter("model.probe.accesses") == len(stream)
        assert obs.counter("model.probe.hits") == hits
        assert obs.counter("model.probe.misses") == len(stream) - hits

    def test_set_associative_counters_exact(self, traced):
        rng = np.random.default_rng(12)
        stream = rng.integers(0, 3000, 30000)
        capacity = 64 * 16 * self.line_bytes  # 64 sets x 16 ways
        vector = VectorSetAssociativeCache(capacity, self.line_bytes, ways=16)
        vector.obs_name = "probe"
        vector.access_batch(stream)
        oracle = SetAssociativeCache(capacity, self.line_bytes, ways=16)
        hits = reference_hits(oracle, stream)
        assert obs.counter("model.probe.accesses") == len(stream)
        assert obs.counter("model.probe.hits") == hits
        assert obs.counter("model.probe.misses") == len(stream) - hits

    def test_tlb_counters_exact_including_cold(self, traced):
        rng = np.random.default_rng(13)
        pages = rng.integers(0, 96, 8000)
        vector = VectorLruTlb(64)
        vector.obs_name = "probe"
        vector.access_batch(pages)
        oracle = LruTlb(64)
        hits = reference_hits(oracle, pages)
        assert obs.counter("model.probe.accesses") == len(pages)
        assert obs.counter("model.probe.hits") == hits
        assert obs.counter("model.probe.misses") == len(pages) - hits
        assert obs.counter("model.probe.cold_misses") == oracle.cold_misses

    def test_batched_accesses_accumulate(self, traced):
        rng = np.random.default_rng(14)
        stream = rng.integers(0, 700, 6000)
        vector = VectorLruCache(512 * self.line_bytes, self.line_bytes)
        vector.obs_name = "probe"
        for lo in range(0, len(stream), 1000):
            vector.access_batch(stream[lo : lo + 1000])
        assert obs.counter("model.probe.accesses") == len(stream)
        assert obs.counter("model.probe.hits") == vector.hits
        assert obs.counter("model.probe.misses") == vector.misses


class TestReplayCountersAcrossEngines:
    def test_fast_and_reference_replay_emit_identical_counters(self, traced):
        """The replay.* counters gate CI; they must not depend on which
        replay engine ran.  Sourced from the returned PerfCounters, they
        are identical by the engines' exactness contract."""
        trace = random_trace(steps=3, lookups=1024, span_bytes=1 << 24)
        fast = machine(fast=True).simulate_lookups(trace)
        fast_snapshot = obs.snapshot()["counters"]
        obs.reset()
        reference = machine(fast=False).simulate_lookups(trace)
        reference_snapshot = obs.snapshot()["counters"]
        assert fast.as_dict() == reference.as_dict()
        fast_replay = {
            key: value
            for key, value in fast_snapshot.items()
            if key.startswith("replay.")
        }
        reference_replay = {
            key: value
            for key, value in reference_snapshot.items()
            if key.startswith("replay.")
        }
        assert fast_replay == reference_replay
        assert fast_replay["replay.lookups"] == trace.num_lookups
