"""``repro bench2``: payload shape, baseline logic, kernel equivalence."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.experiments.bench2 import (
    TARGET_SPEEDUP,
    _baseline_block,
    _read_bench1_total,
    run_bench2,
    run_kernel_bench,
    write_bench2,
)

#: Tiny-but-complete configuration: one sweep size, micro kernel bench,
#: no serve phase (covered by tests/serve), serial pool.
TINY = dict(
    r_sizes_gib=(1.0,),
    workers=1,
    baseline_path=None,
    kernel_r_tuples=2**10,
    kernel_s_tuples=2**12,
    serve=False,
)


@pytest.fixture(scope="module")
def payload():
    return run_bench2(**TINY)


class TestBench2Payload:
    def test_top_level_shape(self, payload):
        assert payload["benchmark"] == "repro-bench2"
        assert payload["workers"] == 1
        assert payload["serve"] is None
        assert set(payload["jit"]) == {"requested", "numba_available", "backend"}
        assert payload["jit"]["backend"] in ("numpy", "numba")

    def test_kernel_block_covers_all_indexes(self, payload):
        per_index = payload["kernel"]["per_index"]
        assert set(per_index) == {
            "B+tree",
            "binary search",
            "Harmonia",
            "RadixSpline",
        }
        for row in per_index.values():
            assert row["fused_seconds"] > 0
            assert row["legacy_seconds"] > 0
            assert row["speedup"] > 0

    def test_attribution_has_phases_and_counters(self, payload):
        attribution = payload["attribution"]
        assert "bench2_kernel" in attribution["phase_wall_seconds"]
        assert "bench2_sweeps" in attribution["phase_wall_seconds"]
        # The micro-bench drove the fused kernels under obs, so every
        # index accumulated batch-kernel launches and lookups.
        assert all(v > 0 for v in attribution["batch_kernels"].values())
        assert all(v > 0 for v in attribution["batch_lookups"].values())

    def test_obs_state_restored(self, payload):
        # run_bench2 enables obs internally; the caller's state and
        # registry must come back untouched.
        assert obs.enabled() is False
        assert obs.counter("index.batch_kernels", index="B+tree") == 0.0

    def test_payload_is_json_serializable(self, payload, tmp_path):
        target = tmp_path / "BENCH_2.json"
        write_bench2(payload, str(target))
        assert json.loads(target.read_text())["benchmark"] == "repro-bench2"


class TestBaselineBlock:
    def test_missing_baseline_documented(self, payload):
        assert payload["baseline"]["speedup"] is None
        assert payload["baseline"]["met"] is False
        assert "no BENCH_1 baseline" in payload["baseline"]["note"]

    def test_read_bench1_total(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps({"fast": {"total_seconds": 7.5}}))
        assert _read_bench1_total(str(path)) == 7.5
        assert _read_bench1_total(str(tmp_path / "missing.json")) is None
        assert _read_bench1_total(None) is None

    def test_single_core_ceiling_is_documented(self):
        block = _baseline_block(10.0, 9.0, cpu_count=1)
        assert block["met"] is False
        assert "single-core" in block["note"]
        assert "attribution.phase_wall_seconds" in block["note"]

    def test_multi_core_target_met(self):
        block = _baseline_block(10.0, 1.5, cpu_count=8)
        assert block["speedup"] == round(10.0 / 1.5, 3)
        assert block["met"] is (block["speedup"] >= TARGET_SPEEDUP)
        assert block["met"] is True


def test_kernel_bench_asserts_equivalence():
    # run_kernel_bench diff-checks fused vs. legacy before timing; a
    # passing run is itself an end-to-end equivalence assertion.
    block = run_kernel_bench(r_tuples=2**9, s_tuples=2**11, repeats=1)
    assert set(block["per_index"]) == {
        "B+tree",
        "binary search",
        "Harmonia",
        "RadixSpline",
    }
