"""Experiment harness: tiny-configuration runs of every module.

These tests run each experiment with reduced sweeps to verify plumbing
(series populated, notes attached, derived quantities sane); the full
paper-shape assertions live in tests/test_paper_shapes.py.
"""

import io

import pytest

from repro.config import SimulationConfig
from repro.experiments import (
    common,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    nonequi,
    table1,
)
from repro.experiments.runner import run_all
from repro.hardware.spec import A100_PCIE4, V100_NVLINK2
from repro.indexes import HarmoniaIndex, RadixSplineIndex
from repro.perf.report import Series

TINY_SIM = SimulationConfig(probe_sample=2**10)
TINY_SIZES = (0.5, 2.0)
TINY_INDEXES = (RadixSplineIndex, HarmoniaIndex)


class TestCommon:
    def test_gib_to_tuples(self):
        assert common.gib_to_tuples(0.5) == 2**26

    def test_make_environment(self):
        env = common.make_environment(
            V100_NVLINK2, 2**20, index_cls=RadixSplineIndex, sim=TINY_SIM
        )
        assert env.index is not None

    def test_default_partitioner_is_2048_way(self):
        env = common.make_environment(V100_NVLINK2, 2**24, sim=TINY_SIM)
        partitioner = common.default_partitioner(env.column)
        assert partitioner.bits.num_partitions == 2048

    def test_experiment_result_text(self):
        result = common.ExperimentResult(
            name="figX", title="demo", x_label="R"
        )
        series = Series("a")
        series.append(1, 2)
        result.series.append(series)
        result.notes.append("hello")
        text = result.to_text()
        assert "figX" in text and "hello" in text


class TestTable1:
    def test_five_rows(self):
        assert len(table1.rows()) == 5

    def test_render_contains_bandwidths(self):
        text = table1.run()
        for value in ("32 GB/s", "64 GB/s", "72 GB/s", "75 GB/s", "450 GB/s"):
            assert value in text


class TestFig3And4:
    def test_returns_both_results(self):
        throughput, requests = fig3.run(
            r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES
        )
        assert throughput.name == "fig3"
        assert requests.name == "fig4"
        labels = {series.label for series in throughput.series}
        assert "hash join" in labels
        assert "RadixSpline" in labels

    def test_series_cover_all_sizes(self):
        throughput, __ = fig3.run(
            r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES
        )
        for series in throughput.series:
            assert len(series) == len(TINY_SIZES)

    def test_fig4_wrapper(self):
        requests = fig4.run(
            r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES
        )
        assert requests.name == "fig4"
        assert all(y >= 0 for series in requests.series for y in series.y)


class TestFig5And6:
    def test_partitioned_series(self):
        throughput, requests = fig5.run(
            r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES
        )
        assert any("x over the hash join" in note for note in throughput.notes)
        assert len(requests.series) == len(TINY_INDEXES)

    def test_fig6_percentages(self):
        result = fig6.run(
            r_sizes_gib=TINY_SIZES,
            naive_sim=TINY_SIM,
            ordered_sim=TINY_SIM,
            index_types=TINY_INDEXES,
        )
        for series in result.series:
            assert all(0.0 <= y <= 100.0 for y in series.y)

    def test_fig6_accepts_precomputed_inputs(self):
        __, naive = fig3.run(
            r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES
        )
        __, partitioned = fig5.run(
            r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES,
            include_hash_join=False,
        )
        result = fig6.run(
            index_types=TINY_INDEXES,
            naive_requests=naive,
            partitioned_requests=partitioned,
        )
        assert len(result.series) == len(TINY_INDEXES)


class TestFig7:
    def test_window_sweep(self):
        result = fig7.run(
            r_gib=2.0,
            window_tuples=(2**16, 2**18),
            sim=TINY_SIM,
            index_types=TINY_INDEXES,
        )
        assert all(len(series) == 2 for series in result.series)
        assert any("best at" in note for note in result.notes)


class TestFig8:
    def test_skew_sweep(self):
        result = fig8.run(
            r_gib=2.0,
            thetas=(0.0, 1.5),
            sim=TINY_SIM,
            index_types=TINY_INDEXES,
        )
        labels = {series.label for series in result.series}
        assert "hash join" in labels
        assert any("69%" in note or "hot-set" in note for note in result.notes)

    def test_hash_join_dnf_recorded_at_high_skew(self):
        result = fig8.run(
            r_gib=8.0,
            thetas=(1.75,),
            sim=TINY_SIM,
            index_types=(RadixSplineIndex,),
        )
        assert any("DNF" in note for note in result.notes)


class TestFig9:
    def test_both_machines_reported(self):
        result = fig9.run(
            specs=(V100_NVLINK2, A100_PCIE4),
            r_sizes_gib=(2.0, 8.0),
            sim=TINY_SIM,
            index_types=(RadixSplineIndex,),
        )
        labels = {series.label for series in result.series}
        assert any("NVLink" in label for label in labels)
        assert any("PCI-e" in label for label in labels)
        assert len(result.notes) >= 2

    def test_find_crossover_interpolates(self):
        # Tie at x=2, win at x=3: the sign change sits exactly at the tie.
        inlj = Series("inlj")
        hash_join = Series("hash")
        for x, (a, b) in {1: (1.0, 3.0), 2: (2.0, 2.0), 3: (3.0, 1.0)}.items():
            inlj.append(x, a)
            hash_join.append(x, b)
        crossover = fig9.find_crossover(inlj, hash_join)
        assert crossover == pytest.approx(2.0)

    def test_find_crossover_midpoint(self):
        inlj = Series("inlj")
        hash_join = Series("hash")
        for x, (a, b) in {1: (1.0, 3.0), 3: (3.0, 1.0)}.items():
            inlj.append(x, a)
            hash_join.append(x, b)
        crossover = fig9.find_crossover(inlj, hash_join)
        assert crossover == pytest.approx(2.0)

    def test_find_crossover_none(self):
        inlj = Series("inlj")
        hash_join = Series("hash")
        inlj.append(1, 1.0)
        hash_join.append(1, 2.0)
        assert fig9.find_crossover(inlj, hash_join) is None


class TestNonEqui:
    def test_band_sweep_series_and_notes(self):
        result = nonequi.run(
            matches=(1.0, 4.0), window_tuples=(2**20,), thetas=(0.0,)
        )
        by_label = result.series_by_label()
        assert set(by_label) == {"naive z=0", "windowed 8 MiB z=0"}
        assert by_label["naive z=0"].x == [1.0, 4.0]
        # The windowed variant wins at every selectivity of this point.
        for naive_qps, windowed_qps in zip(
            by_label["naive z=0"].y, by_label["windowed 8 MiB z=0"].y
        ):
            assert windowed_qps > naive_qps
        # Replay-counter attribution rides along as notes.
        attribution = [n for n in result.notes if "divergence replays" in n]
        assert len(attribution) == 2
        assert any("cold faults" in n for n in attribution)
        assert any(n.startswith("z=0: best windowed") for n in result.notes)

    def test_epsilon_grows_with_matches(self):
        result = nonequi.run(
            matches=(1.0, 16.0), window_tuples=(2**20,), thetas=(0.0,)
        )
        assert result.series_by_label()["naive z=0"].y[0] > 0

    def test_task_labels_are_unique(self):
        tasks = [
            ("naive", V100_NVLINK2, 2**20, 4.0, 0, 0.0),
            ("windowed", V100_NVLINK2, 2**20, 4.0, 2**18, 1.0),
        ]
        labels = [nonequi.nonequi_task_label(t) for t in tasks]
        assert len(set(labels)) == len(labels)
        assert labels[0] == "nonequi:naive:1048576:m4:w0:z0"


class TestCpuGpu:
    def test_three_regimes_reported(self):
        from repro.experiments import cpu_gpu

        result = cpu_gpu.run(r_sizes_gib=(2.0, 16.0), sim=TINY_SIM)
        assert len(result.series) == 3
        assert all(len(series) == 2 for series in result.series)
        assert any("faster than the CPU" in note for note in result.notes)

    def test_gpu_inlj_advantage_grows(self):
        from repro.experiments import cpu_gpu

        result = cpu_gpu.run(r_sizes_gib=(2.0, 32.0), sim=TINY_SIM)
        by_label = result.series_by_label()
        cpu = by_label["CPU hash join"].as_dict()
        inlj = by_label["GPU windowed INLJ (RadixSpline)"].as_dict()
        assert inlj[32.0] / cpu[32.0] > inlj[2.0] / cpu[2.0]


class TestRunner:
    def test_subset_run(self):
        stream = io.StringIO()
        results = run_all(["table1"], quick=True, stream=stream)
        assert "table1" in results
        assert "NVLink" in stream.getvalue()
