"""Parallel sweep runner and session cache.

The contracts under test:

* serial and parallel sweeps produce bit-identical figures (same series,
  same notes) -- determinism is by construction, every point runs through
  :func:`repro.experiments.common.run_standard_point`;
* the session cache returns identical results with and without caching,
  shares one build across Zipf variants, and replays capacity failures;
* caching is off by default, so unrelated tests build independent
  environments.
"""

import pytest

from repro.config import SimulationConfig
from repro.errors import CapacityError
from repro.experiments import cache, common, fig3, fig5, nonequi
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import BPlusTreeIndex, RadixSplineIndex

TINY_SIM = SimulationConfig(probe_sample=2**10)
TINY_SIZES = (0.5, 1.0)
TINY_INDEXES = (RadixSplineIndex,)


def series_dump(result):
    return [(s.label, list(s.x), list(s.y)) for s in result.series]


@pytest.fixture(autouse=True)
def _clean_cache():
    cache.clear()
    yield
    cache.enable(False)
    cache.clear()


class TestParallelRunner:
    def test_parallel_matches_serial_fig3(self):
        serial = fig3.run(
            r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES
        )
        parallel = fig3.run(
            r_sizes_gib=TINY_SIZES,
            sim=TINY_SIM,
            index_types=TINY_INDEXES,
            workers=2,
        )
        for left, right in zip(serial, parallel):
            assert series_dump(left) == series_dump(right)
            assert left.notes == right.notes

    def test_parallel_matches_serial_fig5(self):
        serial = fig5.run(
            r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES
        )
        parallel = fig5.run(
            r_sizes_gib=TINY_SIZES,
            sim=TINY_SIM,
            index_types=TINY_INDEXES,
            workers=2,
        )
        for left, right in zip(serial, parallel):
            assert series_dump(left) == series_dump(right)
            assert left.notes == right.notes

    def test_parallel_matches_serial_nonequi(self):
        """The non-equi sweep is bit-identical serial vs pooled -- the
        acceptance contract its CI bench-smoke diff relies on."""
        kwargs = dict(
            matches=(1.0, 4.0), window_tuples=(2**20,), thetas=(0.0,)
        )
        serial = nonequi.run(**kwargs)
        parallel = nonequi.run(workers=2, **kwargs)
        assert series_dump(serial) == series_dump(parallel)
        assert serial.notes == parallel.notes

    def test_skips_recorded_in_task_order(self):
        """Capacity skips surface as notes exactly as in the serial path."""
        result, _ = fig3.run(
            r_sizes_gib=(160.0,),
            sim=TINY_SIM,
            index_types=(BPlusTreeIndex,),
            workers=2,
        )
        assert any("skipped" in note for note in result.notes)

    def test_unknown_kind_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            common.run_standard_point(
                ("bogus", V100_NVLINK2, 2**20, None, TINY_SIM)
            )


class TestSessionCache:
    def test_disabled_by_default(self):
        assert not cache.is_enabled()
        env_a = common.make_environment(
            V100_NVLINK2, 2**20, index_cls=RadixSplineIndex, sim=TINY_SIM
        )
        env_b = common.make_environment(
            V100_NVLINK2, 2**20, index_cls=RadixSplineIndex, sim=TINY_SIM
        )
        assert env_a is not env_b

    def test_environment_shared_when_enabled(self):
        cache.enable()
        env_a = common.make_environment(
            V100_NVLINK2, 2**20, index_cls=RadixSplineIndex, sim=TINY_SIM
        )
        env_b = common.make_environment(
            V100_NVLINK2, 2**20, index_cls=RadixSplineIndex, sim=TINY_SIM
        )
        assert env_a is env_b
        assert cache.stats()["environment_hits"] == 1

    def test_zipf_variants_share_build(self):
        cache.enable()
        base = common.make_environment(
            V100_NVLINK2, 2**20, index_cls=RadixSplineIndex, sim=TINY_SIM
        )
        skewed = common.make_environment(
            V100_NVLINK2,
            2**20,
            index_cls=RadixSplineIndex,
            sim=TINY_SIM,
            zipf_theta=1.5,
        )
        assert skewed is not base
        assert skewed.index is base.index
        assert skewed.workload.zipf_theta == 1.5
        assert base.workload.zipf_theta == 0.0

    def test_capacity_error_replayed(self):
        cache.enable()
        r_tuples = common.gib_to_tuples(160.0)
        with pytest.raises(CapacityError):
            common.make_environment(
                V100_NVLINK2, r_tuples, index_cls=BPlusTreeIndex, sim=TINY_SIM
            )
        with pytest.raises(CapacityError):
            common.make_environment(
                V100_NVLINK2, r_tuples, index_cls=BPlusTreeIndex, sim=TINY_SIM
            )

    def test_point_results_isolated(self):
        """Cached point values are deep-copied, so callers may mutate."""
        cache.enable()
        value = cache.point("key", lambda: {"x": [1, 2]})
        value["x"].append(3)
        again = cache.point("key", lambda: {"x": [1, 2]})
        assert again == {"x": [1, 2]}
        assert cache.stats()["point_hits"] == 1

    def test_cached_sweep_identical(self):
        plain = fig3.run(
            r_sizes_gib=(0.5,), sim=TINY_SIM, index_types=TINY_INDEXES
        )
        with cache.session():
            first = fig3.run(
                r_sizes_gib=(0.5,), sim=TINY_SIM, index_types=TINY_INDEXES
            )
            second = fig3.run(
                r_sizes_gib=(0.5,), sim=TINY_SIM, index_types=TINY_INDEXES
            )
        assert (
            series_dump(plain[0])
            == series_dump(first[0])
            == series_dump(second[0])
        )
        assert not cache.is_enabled()
