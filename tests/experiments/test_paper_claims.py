"""Paper-claims regression pins (Sections 4-5 of the paper).

Two families of claims, both asserted at a tiny deterministic
configuration so a model regression fails loudly instead of drifting:

* **Crossover** (Section 5.2.3 / Figure 9): the windowed INLJ overtakes
  the hash join once R is large enough that rebuilding the hash table
  dominates.  Beyond the directional checks in test_paper_shapes.py,
  this pins the *interpolated* crossover point of the tiny sweep, so a
  cost-model change that silently shifts the balance trips the test.
* **TLB replay counters** (Section 4.3 / Figure 6): windowed
  partitioning turns the index probe into per-window sweeps whose
  translation traffic is analytic and fully deterministic.  The
  per-lookup counters below were pinned from a seeded run of this exact
  configuration; the committed tolerances are deliberately tight.

All numbers were produced by the code under test at the configuration
constants below and committed after inspection -- rerun any test body
by hand to regenerate them after an *intentional* model change.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.experiments.common import (
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from repro.experiments.fig9 import find_crossover
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import RadixSplineIndex
from repro.join.hash_join import HashJoin
from repro.join.inlj import IndexNestedLoopJoin
from repro.join.nonequi import BandJoin, WindowedBandJoin
from repro.join.window import WindowedINLJ
from repro.perf.report import Series
from repro.units import MIB

#: Tiny but fully deterministic simulation: every pinned number below
#: is specific to this sample size.
CLAIMS_SIM = SimulationConfig(probe_sample=2**12)
WINDOW_BYTES = 32 * MIB  # the paper's window size (Section 5.1)

#: Interpolated INLJ-vs-hash crossover of the tiny sweep on V100/NVLink
#: (the paper's full-scale figure puts it at 6.2 GiB; the tiny sample
#: shifts it, which is fine -- the pin guards the *model*, not the
#: paper's absolute number).
PINNED_CROSSOVER_GIB = 12.836480407097373

#: Windowed-partitioning TLB replay counters per lookup at 8 GiB R,
#: RadixSpline, 32 MiB windows (analytic sweep-page model).
PINNED_TLB_MISSES_PER_LOOKUP = 9.78469850451802e-04
PINNED_TRANSLATION_REQUESTS_PER_LOOKUP = 5.870819102710811e-03

#: Non-equi transfer claim (committed sweep point): band join at 8 GiB
#: R, RadixSpline, 32 MiB windows, epsilon = 64, V100/NVLink.  The
#: windowed variant's throughput advantage over the naive stream-order
#: band join, produced by the code under test and committed after
#: inspection.
NONEQUI_EPSILON = 64
PINNED_NONEQUI_SPEEDUP = 2.148891040864357
#: Per-*bound* divergence replays (the replay counter computed
#: identically in both regimes): partition-ordered windows keep warps
#: more coherent than the shuffled stream.
PINNED_NONEQUI_NAIVE_REPLAYS_PER_LOOKUP = 0.01915740966796875
PINNED_NONEQUI_WINDOWED_REPLAYS_PER_LOOKUP = 0.0153961181640625


def windowed_cost(gib: float, spec=V100_NVLINK2):
    env = make_environment(
        spec, gib_to_tuples(gib), index_cls=RadixSplineIndex, sim=CLAIMS_SIM
    )
    join = WindowedINLJ(
        env.index, default_partitioner(env.column), window_bytes=WINDOW_BYTES
    )
    return join.estimate(env)


def hash_cost(gib: float, spec=V100_NVLINK2):
    env = make_environment(spec, gib_to_tuples(gib), sim=CLAIMS_SIM)
    return HashJoin(env.relation).estimate(env)


class TestCrossoverClaim:
    """Partitioned INLJ overtakes the hash join past the crossover."""

    def test_hash_wins_well_below_crossover(self):
        assert (
            hash_cost(2.0).queries_per_second
            > 2 * windowed_cost(2.0).queries_per_second
        )

    def test_inlj_wins_past_crossover(self):
        assert (
            windowed_cost(16.0).queries_per_second
            > hash_cost(16.0).queries_per_second
        )

    def test_interpolated_crossover_is_pinned(self):
        inlj, hashed = Series("inlj"), Series("hash")
        for gib in (2.0, 4.0, 8.0, 16.0, 24.0):
            inlj.append(gib, windowed_cost(gib).queries_per_second)
            hashed.append(gib, hash_cost(gib).queries_per_second)
        crossover = find_crossover(inlj, hashed)
        assert crossover == pytest.approx(PINNED_CROSSOVER_GIB, rel=0.05)

    def test_windowing_restores_naive_inlj_throughput(self):
        """Section 5.1: the tumbling window recovers the pipelined
        throughput the unpartitioned random-order INLJ loses."""
        env = make_environment(
            V100_NVLINK2,
            gib_to_tuples(8.0),
            index_cls=RadixSplineIndex,
            sim=CLAIMS_SIM,
        )
        windowed = WindowedINLJ(
            env.index,
            default_partitioner(env.column),
            window_bytes=WINDOW_BYTES,
        ).estimate(env)
        naive = IndexNestedLoopJoin(env.index).estimate(env)
        assert (
            windowed.queries_per_second > 1.5 * naive.queries_per_second
        )


class TestWindowedTlbReplayCounters:
    """Pinned per-lookup TLB traffic of the windowed partitioning path."""

    def test_counters_match_pinned_values(self):
        counters = windowed_cost(8.0).counters
        per_lookup_misses = counters.tlb_misses / counters.lookups
        per_lookup_requests = (
            counters.translation_requests / counters.lookups
        )
        assert per_lookup_misses == pytest.approx(
            PINNED_TLB_MISSES_PER_LOOKUP, rel=1e-3
        )
        assert per_lookup_requests == pytest.approx(
            PINNED_TRANSLATION_REQUESTS_PER_LOOKUP, rel=1e-3
        )
        # Ordered windows never revisit a cold page mid-window.
        assert counters.tlb_cold_misses == 0.0

    def test_replay_factor_relationship(self):
        """Every TLB miss replays ``tlb_replay_factor`` translation
        requests (Section 4.3's far-fault replay measurement)."""
        counters = windowed_cost(8.0).counters
        assert counters.translation_requests == pytest.approx(
            counters.tlb_misses * RadixSplineIndex.tlb_replay_factor,
            rel=1e-9,
        )

    def test_tlb_misses_scale_linearly_with_r(self):
        """Sweep pages per window grow with the index span, so doubling
        R doubles the per-lookup miss rate (Figure 6's linear regime)."""
        small = windowed_cost(4.0).counters
        large = windowed_cost(8.0).counters
        ratio = (large.tlb_misses / large.lookups) / (
            small.tlb_misses / small.lookups
        )
        assert ratio == pytest.approx(2.0, rel=0.05)


def naive_band_cost(gib: float, spec=V100_NVLINK2):
    env = make_environment(
        spec, gib_to_tuples(gib), index_cls=RadixSplineIndex, sim=CLAIMS_SIM
    )
    return BandJoin(env.index, NONEQUI_EPSILON).estimate(env)


def windowed_band_cost(gib: float, spec=V100_NVLINK2):
    env = make_environment(
        spec, gib_to_tuples(gib), index_cls=RadixSplineIndex, sim=CLAIMS_SIM
    )
    join = WindowedBandJoin(
        env.index,
        default_partitioner(env.column),
        NONEQUI_EPSILON,
        window_bytes=WINDOW_BYTES,
    )
    return join.estimate(env)


class TestNonEquiWindowingClaims:
    """Windowed partitioning transfers to the band join.

    The regression the non-equi subsystem pins: at the committed sweep
    point, the windowed band join beats the naive stream-order band join
    on throughput by the pinned factor, and the replay counters explain
    why.  One modelling caveat is pinned deliberately: the *naive*
    event-sim TLB misses at this scale are cold-dominated (8 GiB of
    2 MiB pages fit the simulated TLB, so the steady-state miss rate is
    ~0 and the per-lookup number is not comparable to the windowed
    path's analytic sweep).  The honest cross-regime counters are the
    cold faults (windowed has none, naive pays them every run) and the
    divergence replays (computed identically in both regimes).
    """

    def test_windowed_beats_naive_by_pinned_factor(self):
        naive = naive_band_cost(8.0)
        windowed = windowed_band_cost(8.0)
        ratio = windowed.queries_per_second / naive.queries_per_second
        assert ratio > 1.5
        assert ratio == pytest.approx(PINNED_NONEQUI_SPEEDUP, rel=0.05)

    def test_windowed_band_rides_the_equi_page_sweeps(self):
        """Both band bounds of a partitioned probe sweep the same pages,
        so per *bound* the windowed band join shows exactly half the
        windowed INLJ's pinned per-lookup miss rate -- the second bound
        is free, which is the whole point of the transfer claim."""
        counters = windowed_band_cost(8.0).counters
        per_bound_misses = counters.tlb_misses / counters.lookups
        assert per_bound_misses == pytest.approx(
            PINNED_TLB_MISSES_PER_LOOKUP / 2.0, rel=1e-9
        )

    def test_windowed_has_no_cold_faults_naive_does(self):
        naive = naive_band_cost(8.0).counters
        windowed = windowed_band_cost(8.0).counters
        assert windowed.tlb_cold_misses == 0.0
        assert naive.tlb_cold_misses > 0.0

    def test_divergence_replays_favor_windowed(self):
        naive = naive_band_cost(8.0).counters
        windowed = windowed_band_cost(8.0).counters
        naive_rate = naive.divergence_replays / naive.lookups
        windowed_rate = windowed.divergence_replays / windowed.lookups
        assert windowed_rate < naive_rate
        assert naive_rate == pytest.approx(
            PINNED_NONEQUI_NAIVE_REPLAYS_PER_LOOKUP, rel=1e-3
        )
        assert windowed_rate == pytest.approx(
            PINNED_NONEQUI_WINDOWED_REPLAYS_PER_LOOKUP, rel=1e-3
        )
