"""Command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main


class _Capture:
    """Adapter over pytest's capsys with the getvalue() interface."""

    def __init__(self, capsys):
        self._capsys = capsys
        self._seen = ""

    def getvalue(self):
        self._seen += self._capsys.readouterr().out
        return self._seen


@pytest.fixture
def capture(capsys):
    return _Capture(capsys)


class TestInfo:
    def test_lists_machines_and_indexes(self, capture):
        assert main(["info"]) == 0
        text = capture.getvalue()
        assert "v100" in text and "gh200" in text
        assert "RadixSpline" in text and "FAST tree" in text

    def test_marks_extensions(self, capture):
        main(["info"])
        assert "[extension]" in capture.getvalue()


class TestPlan:
    def test_selective_workload_picks_index_join(self, capture):
        assert main(["plan", "--r-gib", "48"]) == 0
        text = capture.getvalue()
        assert "chosen: windowed INLJ" in text
        assert "selectivity" in text

    def test_unselective_workload_picks_hash_join(self, capture):
        main(["plan", "--r-gib", "0.5"])
        assert "chosen: hash join" in capture.getvalue()

    def test_machine_selection(self, capture):
        main(["plan", "--r-gib", "8", "--machine", "gh200"])
        assert "GH200" in capture.getvalue()

    def test_require_updates(self, capture):
        main(["plan", "--r-gib", "48", "--require-updates"])
        text = capture.getvalue()
        assert "excluded" in text
        assert "RadixSpline" not in text.split("chosen:")[1].split("\n")[0]


class TestExperiments:
    def test_table1_subset(self, capture):
        assert main(["experiments", "table1"]) == 0
        assert "NVLink" in capture.getvalue()


class TestDefault:
    def test_no_command_prints_help(self, capture):
        assert main([]) == 1
        assert "experiments" in capture.getvalue()
