"""Atomic write helpers: all-or-nothing semantics and byte stability."""

import json
import os

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text


def test_write_text_creates_parents_and_content(tmp_path):
    target = tmp_path / "deep" / "nested" / "out.txt"
    returned = atomic_write_text(str(target), "payload")
    assert returned == str(target)
    assert target.read_text(encoding="utf-8") == "payload"


def test_write_text_replaces_existing(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(str(target), "old")
    atomic_write_text(str(target), "new")
    assert target.read_text(encoding="utf-8") == "new"


def test_no_temp_debris_after_success(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(str(target), "payload")
    assert sorted(p.name for p in tmp_path.iterdir()) == ["out.txt"]


def test_failed_replace_leaves_old_content_and_no_debris(tmp_path, monkeypatch):
    target = tmp_path / "out.txt"
    atomic_write_text(str(target), "old")

    def explode(src, dst):
        raise OSError("disk gone")

    monkeypatch.setattr(os, "replace", explode)
    with pytest.raises(OSError, match="disk gone"):
        atomic_write_text(str(target), "new")
    # Readers still see the previous version; no *.tmp files remain.
    assert target.read_text(encoding="utf-8") == "old"
    assert sorted(p.name for p in tmp_path.iterdir()) == ["out.txt"]


def test_write_json_round_trip_sorted_with_trailing_newline(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write_json(str(target), {"b": 2, "a": 1})
    text = target.read_text(encoding="utf-8")
    assert text.endswith("\n")
    # sort_keys default keeps committed artifacts byte-stable.
    assert text.index('"a"') < text.index('"b"')
    assert json.loads(text) == {"a": 1, "b": 2}


def test_write_json_unserializable_payload_leaves_target_untouched(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write_json(str(target), {"n": 1})
    with pytest.raises(TypeError):
        atomic_write_json(str(target), {"bad": object()})
    assert json.loads(target.read_text(encoding="utf-8")) == {"n": 1}
