"""SIMT execution accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.gpu.simt import divergent_cost, subwarp_lookup_cost, warps_needed


class TestWarpsNeeded:
    def test_exact_multiple(self):
        assert warps_needed(64, 32) == 2

    def test_rounds_up(self):
        assert warps_needed(33, 32) == 2

    def test_zero_threads(self):
        assert warps_needed(0, 32) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            warps_needed(-1, 32)

    def test_rejects_zero_warp(self):
        with pytest.raises(ConfigurationError):
            warps_needed(10, 0)


class TestDivergentCost:
    def test_uniform_steps_no_divergence(self):
        cost = divergent_cost(np.full(64, 10.0), warp_size=32)
        assert cost.warp_instructions == 20
        assert cost.divergence_replays == 0
        assert cost.active_lane_fraction == 1.0

    def test_single_slow_lane_stalls_warp(self):
        steps = np.full(32, 1.0)
        steps[0] = 100.0
        cost = divergent_cost(steps, warp_size=32)
        assert cost.warp_instructions == 100
        assert cost.active_lane_fraction < 0.05

    def test_partial_warp(self):
        cost = divergent_cost(np.full(10, 5.0), warp_size=32)
        assert cost.warp_instructions == 5

    def test_empty(self):
        cost = divergent_cost(np.empty(0), warp_size=32)
        assert cost.warp_instructions == 0

    def test_rejects_negative_steps(self):
        with pytest.raises(ConfigurationError):
            divergent_cost(np.array([-1.0]), warp_size=32)

    def test_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            divergent_cost(np.zeros((2, 2)), warp_size=32)


class TestSubwarpCost:
    def test_uniform_steps(self):
        # 32 lookups of 8 steps, sub-warps of 8 lanes: each of the 4
        # sub-warps serially processes its 8 lookups -> 64 instructions,
        # warp max = 64.
        cost = subwarp_lookup_cost(np.full(32, 8.0), 32, subwarp_size=8)
        assert cost.warp_instructions == 64
        assert cost.divergence_replays == 0

    def test_sums_concentrate_vs_divergent(self):
        """Harmonia's rationale: sub-warp sums diverge less than lanes."""
        rng = np.random.default_rng(3)
        steps = rng.integers(1, 20, size=320).astype(float)
        divergent = divergent_cost(steps, 32)
        cooperative = subwarp_lookup_cost(steps, 32, subwarp_size=8)
        # Relative overhead above the ideal is smaller for sub-warps.
        divergent_overhead = divergent.divergence_replays / max(
            1.0, divergent.warp_instructions
        )
        cooperative_overhead = cooperative.divergence_replays / max(
            1.0, cooperative.warp_instructions
        )
        assert cooperative_overhead < divergent_overhead

    def test_rejects_bad_subwarp(self):
        with pytest.raises(ConfigurationError):
            subwarp_lookup_cost(np.ones(4), 32, subwarp_size=5)

    def test_empty(self):
        cost = subwarp_lookup_cost(np.empty(0), 32, subwarp_size=8)
        assert cost.warp_instructions == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            subwarp_lookup_cost(np.array([-1.0]), 32, subwarp_size=8)


@settings(max_examples=30, deadline=None)
@given(
    steps=st.lists(
        st.floats(min_value=0, max_value=100), min_size=1, max_size=200
    )
)
def test_divergent_bounds(steps):
    """Warp instructions bounded between ideal and per-lookup serial."""
    array = np.asarray(steps)
    cost = divergent_cost(array, warp_size=32)
    ideal = array.sum() / 32
    assert cost.warp_instructions >= ideal - 1e-9
    assert cost.warp_instructions <= array.sum() + 1e-9
    assert 0 <= cost.active_lane_fraction <= 1.0 + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    steps=st.lists(
        st.floats(min_value=0, max_value=100), min_size=1, max_size=200
    ),
    subwarp=st.sampled_from([1, 2, 4, 8, 16, 32]),
)
def test_subwarp_bounds(steps, subwarp):
    array = np.asarray(steps)
    cost = subwarp_lookup_cost(array, 32, subwarp_size=subwarp)
    ideal = array.sum() / (32 // subwarp)
    assert cost.warp_instructions >= ideal - 1e-9
    assert cost.warp_instructions <= array.sum() + 1e-9
