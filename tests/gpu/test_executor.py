"""Machine model: trace replay, coalescing, scaling."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.gpu.executor import LookupTrace, MachineModel
from repro.hardware.spec import V100_NVLINK2


@pytest.fixture
def machine():
    return MachineModel(V100_NVLINK2, SimulationConfig(probe_sample=2**10))


def trace_from(matrix):
    matrix = np.asarray(matrix, dtype=np.int64)
    steps = (matrix >= 0).sum(axis=0).astype(np.int64)
    return LookupTrace(step_addresses=matrix, steps_per_lookup=steps)


class TestLookupTrace:
    def test_shape_validation(self):
        with pytest.raises(SimulationError):
            LookupTrace(
                step_addresses=np.zeros(4, dtype=np.int64),
                steps_per_lookup=np.zeros(4, dtype=np.int64),
            )

    def test_mismatched_steps(self):
        with pytest.raises(SimulationError):
            LookupTrace(
                step_addresses=np.zeros((2, 4), dtype=np.int64),
                steps_per_lookup=np.zeros(3, dtype=np.int64),
            )

    def test_counts(self):
        trace = trace_from([[0, 128, -1, 256]])
        assert trace.num_lookups == 4
        assert trace.num_steps == 1
        assert trace.total_accesses == 3


class TestCoalescing:
    def test_same_line_within_warp_coalesces(self, machine):
        # 32 lanes all reading the same cacheline -> one transaction.
        matrix = np.zeros((1, 32), dtype=np.int64)
        lines, issued = machine.coalesced_lines(trace_from(matrix))
        assert issued == 32
        assert len(lines) == 1

    def test_distinct_lines_do_not_coalesce(self, machine):
        matrix = (np.arange(32, dtype=np.int64) * 128).reshape(1, 32)
        lines, issued = machine.coalesced_lines(trace_from(matrix))
        assert issued == 32
        assert len(lines) == 32

    def test_coalescing_is_per_warp(self, machine):
        # Two warps reading the same line still cost two transactions.
        matrix = np.zeros((1, 64), dtype=np.int64)
        lines, issued = machine.coalesced_lines(trace_from(matrix))
        assert issued == 64
        assert len(lines) == 2

    def test_inactive_lanes_dropped(self, machine):
        matrix = np.full((1, 32), -1, dtype=np.int64)
        matrix[0, 0] = 128
        lines, issued = machine.coalesced_lines(trace_from(matrix))
        assert issued == 1
        assert len(lines) == 1

    def test_sub_line_offsets_share_a_transaction(self, machine):
        # Addresses 0..31*8 fall in two 128-byte lines.
        matrix = (np.arange(32, dtype=np.int64) * 8).reshape(1, 32)
        lines, issued = machine.coalesced_lines(trace_from(matrix))
        assert len(lines) == 2


class TestSimulateLookups:
    def test_counters_conserve_accesses(self, machine):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 2**30, size=(4, 64)).astype(np.int64)
        counters = machine.simulate_lookups(trace_from(matrix))
        counters.validate()
        assert counters.memory_accesses == 4 * 64
        assert counters.lookups == 64

    def test_repeat_access_hits_l2(self, machine):
        matrix = np.array([[0], [0]], dtype=np.int64)
        counters = machine.simulate_lookups(trace_from(matrix))
        assert counters.l2_hits == 1
        assert counters.remote_accesses == 1

    def test_remote_bytes_are_cachelines(self, machine):
        matrix = (np.arange(64, dtype=np.int64) * 4096).reshape(1, 64)
        counters = machine.simulate_lookups(trace_from(matrix))
        assert counters.remote_bytes == counters.remote_accesses * 128

    def test_tlb_disabled(self, machine):
        matrix = (np.arange(64, dtype=np.int64) * 2**21).reshape(1, 64)
        counters = machine.simulate_lookups(
            trace_from(matrix), simulate_tlb=False
        )
        assert counters.tlb_misses == 0
        assert counters.remote_accesses > 0

    def test_tlb_cold_misses_recorded(self, machine):
        matrix = (np.arange(64, dtype=np.int64) * 2**21).reshape(1, 64)
        counters = machine.simulate_lookups(trace_from(matrix))
        assert counters.tlb_cold_misses == 64
        assert counters.tlb_misses == 64

    def test_shuffle_reproducible(self, machine):
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, 2**34, size=(8, 512)).astype(np.int64)
        first = machine.simulate_lookups(trace_from(matrix), shuffle=True)
        machine.reset_hierarchy()
        second = machine.simulate_lookups(trace_from(matrix), shuffle=True)
        assert first.as_dict() == second.as_dict()

    def test_empty_trace(self, machine):
        matrix = np.full((2, 32), -1, dtype=np.int64)
        counters = machine.simulate_lookups(trace_from(matrix))
        assert counters.memory_accesses == 0


class TestScaling:
    def test_linear_counters_scale(self, machine):
        rng = np.random.default_rng(2)
        matrix = rng.integers(0, 2**34, size=(4, 64)).astype(np.int64)
        raw = machine.simulate_lookups(trace_from(matrix))
        scaled = machine.scale_lookup_counters(raw, 6400.0)
        assert scaled.lookups == 6400
        assert scaled.remote_accesses == pytest.approx(
            raw.remote_accesses * 100
        )

    def test_cold_tlb_misses_do_not_scale(self, machine):
        # All misses cold -> scaled misses stay at the cold count.
        matrix = (np.arange(64, dtype=np.int64) * 2**21).reshape(1, 64)
        raw = machine.simulate_lookups(trace_from(matrix))
        assert raw.tlb_misses == raw.tlb_cold_misses
        scaled = machine.scale_lookup_counters(raw, 64000.0)
        assert scaled.tlb_misses == raw.tlb_cold_misses

    def test_replay_factor_override(self, machine):
        matrix = (np.arange(64, dtype=np.int64) * 2**21).reshape(1, 64)
        raw = machine.simulate_lookups(trace_from(matrix))
        scaled = machine.scale_lookup_counters(raw, 64.0, replay_factor=10.0)
        assert scaled.translation_requests == pytest.approx(
            scaled.tlb_misses * 10.0
        )

    def test_rejects_zero_lookups(self, machine):
        from repro.hardware.counters import PerfCounters

        with pytest.raises(SimulationError):
            machine.scale_lookup_counters(PerfCounters(), 100.0)

    def test_rejects_shrinking(self, machine):
        matrix = np.zeros((1, 64), dtype=np.int64)
        raw = machine.simulate_lookups(trace_from(matrix))
        with pytest.raises(SimulationError):
            machine.scale_lookup_counters(raw, 32.0)


class TestCounterBuilders:
    def test_scan(self, machine):
        counters = machine.scan_counters(1000)
        assert counters.scan_bytes == 1000
        assert counters.remote_bytes == 1000

    def test_gpu_random(self, machine):
        counters = machine.gpu_random_counters(10, bytes_per_access=32)
        assert counters.gpu_memory_accesses == 10
        assert counters.gpu_memory_bytes == 320

    def test_result(self, machine):
        counters = machine.result_counters(512)
        assert counters.result_bytes == 512

    def test_analytic_tlb(self, machine):
        counters = machine.analytic_tlb_counters(100, replay_factor=8.0)
        assert counters.translation_requests == 800

    def test_negative_rejected(self, machine):
        with pytest.raises(SimulationError):
            machine.scan_counters(-1)
        with pytest.raises(SimulationError):
            machine.gpu_random_counters(-1)
        with pytest.raises(SimulationError):
            machine.result_counters(-1)
        with pytest.raises(SimulationError):
            machine.analytic_tlb_counters(-1)
