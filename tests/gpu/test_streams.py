"""CUDA-stream overlap scheduling."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.streams import (
    StageTiming,
    overlapped_pipeline_time,
    serial_pipeline_time,
    uniform_windows,
)


class TestSerial:
    def test_empty(self):
        assert serial_pipeline_time([]) == 0.0

    def test_sums_everything(self):
        windows = uniform_windows(3, 1.0, 2.0, launch_overhead=0.5)
        assert serial_pipeline_time(windows) == pytest.approx(3 * (1 + 2 + 1))


class TestOverlapped:
    def test_empty(self):
        assert overlapped_pipeline_time([]) == 0.0

    def test_single_window_cannot_overlap(self):
        windows = uniform_windows(1, 1.0, 2.0)
        assert overlapped_pipeline_time(windows) == pytest.approx(3.0)

    def test_steady_state_hides_faster_stage(self):
        # Probe dominates: makespan = first partition + N probes.
        windows = uniform_windows(10, 1.0, 5.0)
        assert overlapped_pipeline_time(windows) == pytest.approx(1 + 10 * 5)

    def test_partition_bound_pipeline(self):
        # Partition dominates: makespan = N partitions + last probe.
        windows = uniform_windows(10, 5.0, 1.0)
        assert overlapped_pipeline_time(windows) == pytest.approx(10 * 5 + 1)

    def test_never_slower_than_serial(self):
        windows = [
            StageTiming(partition=p, probe=q, launch_overhead=0.1)
            for p, q in ((1, 3), (4, 1), (2, 2), (0.5, 5))
        ]
        assert overlapped_pipeline_time(windows) <= serial_pipeline_time(
            windows
        ) + 1e-12

    def test_never_faster_than_critical_path(self):
        windows = [
            StageTiming(partition=p, probe=q)
            for p, q in ((1, 3), (4, 1), (2, 2))
        ]
        total_probe = sum(w.probe for w in windows)
        total_partition = sum(w.partition for w in windows)
        makespan = overlapped_pipeline_time(windows)
        assert makespan >= max(total_probe, total_partition)

    def test_heterogeneous_hand_computed(self):
        # partition: [2, 1], probe: [1, 4]
        # partition done: 2, 3; probe done: max(2,0)+1=3, max(3,3)+4=7.
        windows = [StageTiming(2, 1), StageTiming(1, 4)]
        assert overlapped_pipeline_time(windows) == pytest.approx(7.0)


class TestValidation:
    def test_negative_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            StageTiming(partition=-1.0, probe=1.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            StageTiming(partition=1.0, probe=1.0, launch_overhead=-0.1)

    def test_uniform_windows_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            uniform_windows(-1, 1.0, 1.0)

    def test_uniform_windows_zero(self):
        assert uniform_windows(0, 1.0, 1.0) == []
