"""Flow rules: TP/FP golden pairs per lane, call paths, sanitizers.

Each lane gets at least one true-positive/false-positive pair: the TP
asserts the leak is caught *and* that the finding message carries the
source->...->sink call path; the FP asserts the sanitized twin stays
clean.  Interprocedural pairs span multiple functions (and files) on
purpose -- a per-file rule could not catch them.
"""

import textwrap

import pytest

from repro.analysis.engine import lint_paths


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` files and lint the tree with one rule."""

    def run(files, select):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
        if select is None:
            selected = None
        elif isinstance(select, str):
            selected = [select]
        else:
            selected = list(select)
        return lint_paths([str(tmp_path)], select=selected)

    return run


class TestFlow001Value:
    def test_unseeded_rng_reaching_payload_writer(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/leak.py": """
                import numpy as np
                from repro.ioutil import atomic_write_json

                def make_noise(count):
                    return np.random.rand(count)

                def build_payload(count):
                    return {"noise": list(make_noise(count))}

                def emit(path, count):
                    atomic_write_json(path, build_payload(count))
                """
            },
            select="FLOW001",
        )
        assert [f.rule_id for f in run.findings] == ["FLOW001"]
        message = run.findings[0].message
        assert "unseeded np.random.rand" in message
        # The full interprocedural chain rides in the message.
        assert (
            "repro.leak.make_noise -> repro.leak.build_payload -> "
            "repro.leak.emit" in message
        )

    def test_seeded_rng_is_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/clean.py": """
                import numpy as np
                from repro.ioutil import atomic_write_json

                def make_noise(count, seed):
                    rng = np.random.default_rng(seed)
                    return rng.random(count)

                def emit(path, count):
                    atomic_write_json(path, list(make_noise(count, 7)))
                """
            },
            select="FLOW001",
        )
        assert run.findings == []

    def test_wall_clock_into_json_payload(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/stamp.py": """
                import json
                import time

                def stamp():
                    return time.time()

                def render():
                    return json.dumps({"at": stamp()})
                """
            },
            select="FLOW001",
        )
        assert [f.rule_id for f in run.findings] == ["FLOW001"]
        assert "wall clock time.time" in run.findings[0].message
        assert "repro.stamp.stamp -> repro.stamp.render" in (
            run.findings[0].message
        )

    def test_wall_clock_in_sanctioned_module_is_clean(self, lint_tree):
        # Same code, but inside the tracing module whose clock reads are
        # the sanctioned timing surface (DET002's allowlist).
        run = lint_tree(
            {
                "src/repro/obs/tracing.py": """
                import json
                import time

                def stamp():
                    return time.time()

                def render():
                    return json.dumps({"at": stamp()})
                """
            },
            select="FLOW001",
        )
        assert run.findings == []

    def test_environ_read_into_payload(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/env_leak.py": """
                import os
                from repro.ioutil import atomic_write_text

                def emit(path):
                    atomic_write_text(path, os.environ["HOSTNAME"])
                """
            },
            select="FLOW001",
        )
        assert [f.rule_id for f in run.findings] == ["FLOW001"]
        assert "os.environ" in run.findings[0].message

    def test_environ_read_in_config_module_is_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/config.py": """
                import os
                from repro.ioutil import atomic_write_text

                def emit(path):
                    atomic_write_text(path, os.environ["HOSTNAME"])
                """
            },
            select="FLOW001",
        )
        assert run.findings == []

    def test_flow_across_two_files(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/producer.py": """
                import numpy as np

                def sample(count):
                    return np.random.rand(count)
                """,
                "src/repro/consumer.py": """
                from repro.producer import sample
                from repro.ioutil import atomic_write_json

                def emit(path, count):
                    atomic_write_json(path, list(sample(count)))
                """,
            },
            select="FLOW001",
        )
        assert [f.rule_id for f in run.findings] == ["FLOW001"]
        finding = run.findings[0]
        # Anchored at the sink: the write site in the consumer.
        assert finding.path.endswith("consumer.py")
        assert "repro.producer.sample -> repro.consumer.emit" in (
            finding.message
        )

    def test_noqa_on_the_sink_line_suppresses(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/leak.py": """
                import numpy as np
                from repro.ioutil import atomic_write_json

                def emit(path, count):
                    noise = np.random.rand(count)
                    atomic_write_json(path, noise)  # repro: noqa[FLOW001]
                """
            },
            select="FLOW001",
        )
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["FLOW001"]


class TestFlow002Order:
    def test_set_iteration_order_reaching_writer(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/order_leak.py": """
                from repro.ioutil import atomic_write_json

                def collect(extra):
                    acc = []
                    for name in {"b", "a"} | extra:
                        acc.append(name)
                    return acc

                def emit(path, extra):
                    atomic_write_json(path, collect(extra))
                """
            },
            select="FLOW002",
        )
        assert [f.rule_id for f in run.findings] == ["FLOW002"]
        message = run.findings[0].message
        assert "set iteration order" in message
        assert "repro.order_leak.collect -> repro.order_leak.emit" in message

    def test_sorted_iteration_is_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/order_ok.py": """
                from repro.ioutil import atomic_write_json

                def collect(extra):
                    acc = []
                    for name in sorted({"b", "a"} | extra):
                        acc.append(name)
                    return acc

                def emit(path, extra):
                    atomic_write_json(path, collect(extra))
                """
            },
            select="FLOW002",
        )
        assert run.findings == []

    def test_sorting_after_collection_sanitizes(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/order_ok2.py": """
                from repro.ioutil import atomic_write_json

                def collect(extra):
                    acc = []
                    for name in {"b", "a"} | extra:
                        acc.append(name)
                    return sorted(acc)

                def emit(path, extra):
                    atomic_write_json(path, collect(extra))
                """
            },
            select="FLOW002",
        )
        assert run.findings == []

    def test_index_keyed_placement_is_deterministic(self, lint_tree):
        # results[i] = x places each element at a slot chosen by data,
        # not by iteration order -- the submission-order pool pattern.
        run = lint_tree(
            {
                "src/repro/order_ok3.py": """
                from repro.ioutil import atomic_write_json

                def collect(pairs):
                    out = [None] * len(pairs)
                    for index in {2, 0, 1}:
                        out[index] = index * 2
                    return out

                def emit(path, pairs):
                    atomic_write_json(path, collect(pairs))
                """
            },
            select="FLOW002",
        )
        assert run.findings == []


class TestNp002Dtype:
    def test_unclamped_division_cast_across_functions(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/cast_leak.py": """
                import numpy as np

                def predict(keys, span):
                    return keys / span

                def to_slots(values):
                    return values.astype(np.int64)

                def probe(keys, span):
                    return to_slots(predict(keys, span))
                """
            },
            select="NP002",
        )
        assert [f.rule_id for f in run.findings] == ["NP002"]
        message = run.findings[0].message
        assert "true division" in message
        assert "repro.cast_leak.predict -> repro.cast_leak.to_slots" in (
            message
        )

    def test_clip_before_cast_is_clean(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/cast_ok.py": """
                import numpy as np

                def predict(keys, span):
                    return keys / span

                def to_slots(values, n):
                    return np.clip(values, 0.0, float(n - 1)).astype(np.int64)

                def probe(keys, span, n):
                    return to_slots(predict(keys, span), n)
                """
            },
            select="NP002",
        )
        assert run.findings == []

    def test_clamped_int64_helper_is_a_sanitizer(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/cast_ok2.py": """
                from repro.indexes.domain import clamped_int64

                def predict(keys, span):
                    return keys / span

                def probe(keys, span, n):
                    return clamped_int64(predict(keys, span), 0.0, float(n))
                """
            },
            select="NP002",
        )
        assert run.findings == []

    def test_transcendental_source_is_tracked(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/log_leak.py": """
                import numpy as np

                def shifts(blocks):
                    return np.log2(blocks)

                def as_ints(values):
                    return values.astype(np.int64)

                def probe(blocks):
                    return as_ints(shifts(blocks))
                """
            },
            select="NP002",
        )
        assert [f.rule_id for f in run.findings] == ["NP002"]
        assert "log2() float result" in run.findings[0].message

    def test_integer_producers_kill_the_taint(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/int_ok.py": """
                import numpy as np

                def predict(keys, span):
                    return keys / span

                def probe(table, keys, span):
                    slots = np.searchsorted(table, predict(keys, span))
                    return slots.astype(np.int64)
                """
            },
            select="NP002",
        )
        assert run.findings == []


class TestFlowFindingsIntegration:
    def test_findings_anchor_at_the_sink_line(self, lint_tree):
        run = lint_tree(
            {
                "src/repro/leak.py": """
                import numpy as np
                from repro.ioutil import atomic_write_json

                def emit(path, count):
                    noise = np.random.rand(count)
                    atomic_write_json(path, noise)
                """
            },
            select="FLOW001",
        )
        finding = run.findings[0]
        assert finding.line == 7
        assert finding.source_line == "atomic_write_json(path, noise)"

    def test_flow_rules_skipped_without_opt_in(self, lint_tree):
        # The same leaking tree under a default (no --flow) run: the
        # per-file rules still fire, the flow rules stay quiet.
        run = lint_tree(
            {
                "src/repro/leak.py": """
                import numpy as np
                from repro.ioutil import atomic_write_json

                def emit(path, count):
                    atomic_write_json(path, np.random.rand(count))
                """
            },
            select=None,
        )
        assert "FLOW001" not in {f.rule_id for f in run.findings}
        assert "DET001" in {f.rule_id for f in run.findings}
