"""Golden tests: one true positive and one false positive per rule."""

import textwrap

from repro.analysis.engine import lint_paths


def _ids(run):
    return [finding.rule_id for finding in run.findings]


# ----------------------------------------------------------------------
# DET001: unseeded RNG.
# ----------------------------------------------------------------------


class TestDet001:
    def test_flags_numpy_global_rng(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                import numpy as np

                def sample(n):
                    return np.random.rand(n)
                """
            ),
            select="DET001",
        )
        assert _ids(run) == ["DET001"]
        assert "default_rng" in run.findings[0].message

    def test_flags_stdlib_global_rng(self, lint_snippet):
        run = lint_snippet(
            "import random\nrandom.shuffle([1, 2, 3])\n",
            select="DET001",
        )
        assert _ids(run) == ["DET001"]

    def test_flags_renamed_submodule_import(self, lint_snippet):
        run = lint_snippet(
            "import numpy.random as nr\nx = nr.randint(0, 10)\n",
            select="DET001",
        )
        assert _ids(run) == ["DET001"]

    def test_allows_seeded_generators(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                import random

                import numpy as np

                rng = np.random.default_rng(42)
                values = rng.random(8)
                local = random.Random(42)
                local.shuffle([1, 2, 3])
                """
            ),
            select="DET001",
        )
        assert run.findings == []

    def test_unrelated_module_named_random_not_flagged(self, lint_snippet):
        # No numpy/random import: `workload.random.choice` is someone
        # else's API, not the stdlib global RNG.
        run = lint_snippet(
            "def pick(workload):\n    return workload.random.choice()\n",
            select="DET001",
        )
        assert run.findings == []


# ----------------------------------------------------------------------
# DET002: wall-clock reads.
# ----------------------------------------------------------------------


class TestDet002:
    def test_flags_perf_counter(self, lint_snippet):
        run = lint_snippet(
            "import time\nstart = time.perf_counter()\n",
            select="DET002",
        )
        assert _ids(run) == ["DET002"]

    def test_flags_datetime_now(self, lint_snippet):
        run = lint_snippet(
            "from datetime import datetime\nstamp = datetime.now()\n",
            select="DET002",
        )
        assert _ids(run) == ["DET002"]

    def test_allows_clock_in_sanctioned_module(self, lint_snippet):
        run = lint_snippet(
            "import time\nstart = time.perf_counter()\n",
            select="DET002",
            name="repro/experiments/runner.py",
        )
        assert run.findings == []

    def test_sleep_is_not_a_clock_read(self, lint_snippet):
        run = lint_snippet(
            "import time\ntime.sleep(0.1)\n",
            select="DET002",
        )
        assert run.findings == []


# ----------------------------------------------------------------------
# DET003: unordered set iteration.
# ----------------------------------------------------------------------


class TestDet003:
    def test_flags_set_literal_loop(self, lint_snippet):
        run = lint_snippet(
            "for item in {3, 1, 2}:\n    print(item)\n",
            select="DET003",
        )
        assert _ids(run) == ["DET003"]

    def test_flags_set_operation_in_comprehension(self, lint_snippet):
        run = lint_snippet(
            "def overlap(a, b):\n    return [x for x in set(a) & set(b)]\n",
            select="DET003",
        )
        assert _ids(run) == ["DET003"]

    def test_sorted_set_is_fine(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                for item in sorted({3, 1, 2}):
                    print(item)
                names = [x for x in sorted(set("abc"))]
                """
            ),
            select="DET003",
        )
        assert run.findings == []


# ----------------------------------------------------------------------
# UNIT001: raw byte arithmetic.
# ----------------------------------------------------------------------


class TestUnit001:
    def test_flags_multiply_and_shift_and_power(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                window = 32 * 1024
                cap = 1 << 30
                gib = 2 ** 30
                """
            ),
            select="UNIT001",
        )
        assert _ids(run) == ["UNIT001", "UNIT001", "UNIT001"]
        assert "KIB" in run.findings[0].message
        assert "GIB" in run.findings[1].message

    def test_element_counts_and_variable_shifts_pass(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                interleave_width = 2 ** 20
                probe_sample = 2 ** 14
                def mask(bits):
                    return 1 << bits
                """
            ),
            select="UNIT001",
        )
        assert run.findings == []

    def test_units_module_is_exempt(self, lint_snippet):
        run = lint_snippet(
            "KIB = 1024\nMIB = 1024 * 1024\n",
            select="UNIT001",
            name="repro/units.py",
        )
        assert run.findings == []


# ----------------------------------------------------------------------
# OBS001: metric naming and label consistency.
# ----------------------------------------------------------------------


class TestObs001:
    def test_flags_off_scheme_name(self, lint_snippet):
        run = lint_snippet(
            'obs.add("BatchCount", 1.0)\n',
            select="OBS001",
        )
        assert _ids(run) == ["OBS001"]

    def test_flags_bad_fstring_fragment(self, lint_snippet):
        run = lint_snippet(
            'obs.add(f"Index-{kind}.lookups", 1.0)\n',
            select="OBS001",
        )
        assert _ids(run) == ["OBS001"]

    def test_dotted_lowercase_name_passes(self, lint_snippet):
        run = lint_snippet(
            'obs.add("index.lookups", 1.0, index="rs")\n'
            'obs.phase("probe")\n',
            select="OBS001",
        )
        assert run.findings == []

    def test_conflicting_label_keys_across_files(self, tmp_path):
        (tmp_path / "a.py").write_text(
            'obs.add("index.lookups", 1.0, index="rs")\n', encoding="utf-8"
        )
        (tmp_path / "b.py").write_text(
            'obs.add("index.lookups", 1.0)\n', encoding="utf-8"
        )
        run = lint_paths([str(tmp_path)], select=["OBS001"])
        # Every call site of the inconsistent counter is reported.
        assert _ids(run) == ["OBS001", "OBS001"]
        assert {f.path.rsplit("/", 1)[-1] for f in run.findings} == {
            "a.py",
            "b.py",
        }

    def test_consistent_labels_across_files(self, tmp_path):
        (tmp_path / "a.py").write_text(
            'obs.add("index.lookups", 1.0, index="rs")\n', encoding="utf-8"
        )
        (tmp_path / "b.py").write_text(
            'obs.add("index.lookups", 2.0, index="btree")\n', encoding="utf-8"
        )
        run = lint_paths([str(tmp_path)], select=["OBS001"])
        assert run.findings == []


# ----------------------------------------------------------------------
# OBS002: hot-path guards.
# ----------------------------------------------------------------------


class TestObs002:
    def test_flags_unguarded_loop_recording(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                def drain(batches):
                    for batch in batches:
                        obs.add("pipeline.batches", 1.0)
                """
            ),
            select="OBS002",
        )
        assert _ids(run) == ["OBS002"]

    def test_enabled_guard_inside_loop_passes(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                def drain(batches):
                    for batch in batches:
                        if obs.enabled():
                            obs.add("pipeline.batches", 1.0)
                """
            ),
            select="OBS002",
        )
        assert run.findings == []

    def test_early_return_guard_passes(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                def record_all(batches):
                    if not obs.enabled():
                        return
                    for batch in batches:
                        obs.add("pipeline.batches", 1.0)
                """
            ),
            select="OBS002",
        )
        assert run.findings == []

    def test_call_outside_loop_passes(self, lint_snippet):
        run = lint_snippet(
            "def once():\n    obs.add('run.count', 1.0)\n",
            select="OBS002",
        )
        assert run.findings == []

    def test_obs_package_itself_is_exempt(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                def flush(pending):
                    for name in pending:
                        obs.add("obs.flushes", 1.0)
                """
            ),
            select="OBS002",
            name="repro/obs/metrics.py",
        )
        assert run.findings == []


# ----------------------------------------------------------------------
# NP001: dtype-dropping division.
# ----------------------------------------------------------------------


class TestNp001:
    def test_flags_int_of_true_division(self, lint_snippet):
        run = lint_snippet(
            "def bucket(key, width):\n    return int(key / width)\n",
            select="NP001",
        )
        assert _ids(run) == ["NP001"]

    def test_flags_astype_int_of_true_division(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                import numpy as np

                def buckets(keys, width):
                    return (keys / width).astype(np.int64)
                """
            ),
            select="NP001",
        )
        assert _ids(run) == ["NP001"]

    def test_floor_division_passes(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                import numpy as np

                def bucket(key, width):
                    return key // width

                def scale(keys, width):
                    return (keys / width).astype(np.float64)
                """
            ),
            select="NP001",
        )
        assert run.findings == []


# ----------------------------------------------------------------------
# RES001: non-atomic durable writes.
# ----------------------------------------------------------------------


class TestRes001:
    def test_flags_truncating_open(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                def export(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                """
            ),
            select="RES001",
        )
        assert _ids(run) == ["RES001"]

    def test_flags_path_write_text(self, lint_snippet):
        run = lint_snippet(
            "def export(target, text):\n    target.write_text(text)\n",
            select="RES001",
        )
        assert _ids(run) == ["RES001"]

    def test_reads_and_appends_pass(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                def load(path):
                    with open(path, "r", encoding="utf-8") as handle:
                        return handle.read()

                def append_record(path, line):
                    with open(path, "a", encoding="utf-8") as handle:
                        handle.write(line)
                """
            ),
            select="RES001",
        )
        assert run.findings == []

    def test_ioutil_is_exempt(self, lint_snippet):
        run = lint_snippet(
            "def helper(tmp, text):\n    with open(tmp, 'w') as h:\n        h.write(text)\n",
            select="RES001",
            name="repro/ioutil.py",
        )
        assert run.findings == []


# ----------------------------------------------------------------------
# PERF001: interpreted loops in the probe hot paths.
# ----------------------------------------------------------------------


class TestPerf001:
    def test_flags_loop_in_index_package(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                def lookup_all(index, keys):
                    out = []
                    for key in keys:
                        out.append(index.lookup_one(key))
                    return out
                """
            ),
            select="PERF001",
            name="repro/indexes/slow.py",
        )
        assert _ids(run) == ["PERF001"]
        assert "fused kernel" in run.findings[0].message

    def test_flags_loop_in_join_package(self, lint_snippet):
        run = lint_snippet(
            "def drive(keys):\n    for key in keys:\n        pass\n",
            select="PERF001",
            name="repro/join/driver.py",
        )
        assert _ids(run) == ["PERF001"]

    def test_noqa_justification_suppresses(self, lint_snippet):
        run = lint_snippet(
            textwrap.dedent(
                """
                def build(levels):
                    total = 0
                    for size in levels:  # repro: noqa[PERF001] -- build-time geometry
                        total += size
                    return total
                """
            ),
            select="PERF001",
            name="repro/indexes/geometry.py",
        )
        assert run.findings == []
        assert len(run.suppressed) == 1

    def test_other_packages_pass(self, lint_snippet):
        run = lint_snippet(
            "def sweep(points):\n    for point in points:\n        point.run()\n",
            select="PERF001",
            name="repro/experiments/driver.py",
        )
        assert run.findings == []
