"""The repository must pass its own linter.

This is the gate CI runs (`repro lint src --fail-on-findings`), run
in-process so a violation shows up in the tier-1 suite before it ever
reaches CI.  The committed baseline is held to the zero-entry policy:
any entry that does exist must carry a `todo` justification.
"""

import os

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.engine import lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE_PATH = os.path.join(REPO_ROOT, "lint_baseline.json")
SRC_PATH = os.path.join(REPO_ROOT, "src")


@pytest.fixture(scope="module")
def self_run():
    baseline = Baseline.load(BASELINE_PATH)
    return lint_paths([SRC_PATH], baseline=baseline)


@pytest.fixture(scope="module")
def self_flow_run():
    baseline = Baseline.load(BASELINE_PATH)
    return lint_paths([SRC_PATH], baseline=baseline, include_flow=True)


def test_src_tree_is_lint_clean(self_run):
    messages = [f.format_text() for f in self_run.findings]
    assert self_run.findings == [], "\n".join(messages)
    assert self_run.errors == []
    # Sanity: the run actually saw the tree.
    assert self_run.files_checked > 50


def test_src_tree_is_flow_clean(self_flow_run):
    # The interprocedural gate CI runs (`repro lint src --flow
    # --fail-on-findings`): no nondeterministic source reaches a payload
    # writer, and no unclamped float reaches an int cast.
    messages = [f.format_text() for f in self_flow_run.findings]
    assert self_flow_run.findings == [], "\n".join(messages)
    assert self_flow_run.errors == []


def test_flow_analysis_sees_a_connected_graph():
    # Guard against the vacuous-pass failure mode: if sink matching ever
    # breaks, the flow gate would stay green while checking nothing.
    # The src tree must present a rich sink surface to both lanes.
    import ast

    from repro.analysis.engine import (
        FileContext,
        display_path,
        iter_python_files,
    )
    from repro.analysis.flow import FlowAnalysis, Lane

    contexts = []
    for path in iter_python_files([SRC_PATH]):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        contexts.append(
            FileContext(path, display_path(path), source, ast.parse(source))
        )
    analysis = FlowAnalysis(contexts).run()
    for lane in (Lane.VALUE, Lane.ORDER):
        assert len(analysis.sinks[lane]) > 50, lane
        edge_count = sum(
            len(targets) for targets in analysis.edges[lane].values()
        )
        assert edge_count > 1000, lane
    # The dtype lane sees the index math: float sources exist and are
    # all clamped before their casts.
    assert len(analysis.sources[Lane.DTYPE]) > 50
    assert analysis.findings(Lane.DTYPE) == []


def test_every_baseline_entry_is_justified():
    baseline = Baseline.load(BASELINE_PATH)
    unjustified = baseline.unjustified()
    assert unjustified == [], (
        "baseline entries without a 'todo' justification: "
        f"{[entry.get('path') for entry in unjustified]}"
    )


def test_suppressions_stay_rare(self_run):
    # Inline noqa markers are the escape hatch, not the norm.  If these
    # numbers creep up, the rule (or the code) needs fixing instead.
    # PERF001 is counted separately: sanctioning build-time and
    # per-level loops via justified noqa markers is that rule's design
    # (see repro/analysis/rules/perf.py), so its markers are bounded
    # but expected.  The budget grew with the range-kernel twins: each
    # index type now carries a second scalar kernel source (the
    # two-sided range walk), and the non-equi drivers add the KNN
    # walk-out and two O(|S|/W) window loops.
    perf = [f for f in self_run.suppressed if f.rule_id == "PERF001"]
    other = [f for f in self_run.suppressed if f.rule_id != "PERF001"]
    assert len(other) <= 10
    assert len(perf) <= 45


def test_perf_suppressions_carry_justifications(self_run):
    # A bare "# repro: noqa[PERF001]" defeats the rule's review intent:
    # every sanctioned loop must say why it is not a per-key hot loop.
    bare = [
        f.format_text()
        for f in self_run.suppressed
        if f.rule_id == "PERF001" and "noqa[PERF001] --" not in f.source_line
    ]
    assert bare == [], "\n".join(bare)
