"""Engine behavior: registry, suppressions, error handling."""

import textwrap

import pytest

from repro.analysis.engine import (
    all_rules,
    lint_paths,
    parse_suppressions,
    rule_table,
)

EXPECTED_RULES = [
    "DET001",
    "DET002",
    "DET003",
    "NP001",
    "OBS001",
    "OBS002",
    "PERF001",
    "RES001",
    "UNIT001",
]

#: Opt-in interprocedural rules: listed in the table, excluded from
#: default runs, enabled by --flow or an explicit --select.
EXPECTED_FLOW_RULES = ["FLOW001", "FLOW002", "NP002"]


def test_registry_ships_the_documented_rules():
    assert [rule.rule_id for rule in all_rules()] == EXPECTED_RULES
    assert [row[0] for row in rule_table()] == sorted(
        EXPECTED_RULES + EXPECTED_FLOW_RULES
    )


def test_flow_rules_are_opt_in():
    assert [rule.rule_id for rule in all_rules(include_flow=True)] == sorted(
        EXPECTED_RULES + EXPECTED_FLOW_RULES
    )
    # An explicit selection is its own opt-in.
    assert [rule.rule_id for rule in all_rules(["FLOW001"])] == ["FLOW001"]


def test_select_unknown_rule_raises():
    with pytest.raises(ValueError, match="NOPE999"):
        all_rules(["NOPE999"])


def test_rule_instances_are_fresh_per_run():
    # Keep both lists alive while comparing ids: releasing the first
    # before the second allocates lets CPython reuse the address.
    first = all_rules(["OBS001"])
    second = all_rules(["OBS001"])
    assert {id(rule) for rule in first}.isdisjoint(
        {id(rule) for rule in second}
    )


class TestSuppressions:
    def test_bare_noqa_suppresses_any_rule(self, lint_snippet):
        run = lint_snippet(
            "import time\nstart = time.perf_counter()  # repro: noqa\n",
            select="DET002",
        )
        assert run.findings == []
        assert [f.rule_id for f in run.suppressed] == ["DET002"]

    def test_rule_scoped_noqa(self, lint_snippet):
        run = lint_snippet(
            "import time\nstart = time.perf_counter()  # repro: noqa[DET002]\n",
            select="DET002",
        )
        assert run.findings == []
        assert len(run.suppressed) == 1

    def test_wrong_rule_id_does_not_suppress(self, lint_snippet):
        run = lint_snippet(
            "import time\nstart = time.perf_counter()  # repro: noqa[UNIT001]\n",
            select="DET002",
        )
        assert [f.rule_id for f in run.findings] == ["DET002"]
        assert run.suppressed == []

    def test_marker_inside_string_literal_is_inert(self, lint_snippet):
        # The engine reads comments from tokenize, so the marker inside
        # a string must not silence the finding on that line.
        run = lint_snippet(
            textwrap.dedent(
                """
                import time

                start = time.perf_counter(); note = "# repro: noqa"
                """
            ),
            select="DET002",
        )
        assert [f.rule_id for f in run.findings] == ["DET002"]

    def test_multi_rule_noqa(self):
        suppressions = parse_suppressions(
            "x = 1  # repro: noqa[DET001, OBS002]\n"
        )
        assert suppressions == {1: {"DET001", "OBS002"}}

    def test_suppression_applies_to_cross_file_findings(self, tmp_path):
        (tmp_path / "a.py").write_text(
            'obs.add("index.lookups", 1.0, index="rs")\n', encoding="utf-8"
        )
        (tmp_path / "b.py").write_text(
            'obs.add("index.lookups", 1.0)  # repro: noqa[OBS001]\n',
            encoding="utf-8",
        )
        run = lint_paths([str(tmp_path)], select=["OBS001"])
        # a.py still reports the conflict; b.py's site is suppressed.
        assert [f.path.rsplit("/", 1)[-1] for f in run.findings] == ["a.py"]
        assert [f.path.rsplit("/", 1)[-1] for f in run.suppressed] == ["b.py"]


class TestErrors:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def nope(:\n", encoding="utf-8")
        run = lint_paths([str(bad)])
        assert run.files_checked == 0
        assert len(run.errors) == 1
        assert "syntax error" in run.errors[0][1]
        assert not run.clean

    def test_non_python_files_are_skipped(self, tmp_path):
        (tmp_path / "notes.txt").write_text("* 1024\n", encoding="utf-8")
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        run = lint_paths([str(tmp_path)])
        assert run.files_checked == 1
        assert run.clean

    def test_pycache_and_dotdirs_are_pruned(self, tmp_path):
        hidden = tmp_path / ".venv"
        hidden.mkdir()
        (hidden / "bad.py").write_text("import time\ntime.time()\n", encoding="utf-8")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "bad.py").write_text("import time\ntime.time()\n", encoding="utf-8")
        run = lint_paths([str(tmp_path)], select=["DET002"])
        assert run.files_checked == 0
        assert run.clean
