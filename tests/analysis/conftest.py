"""Shared helpers for the ``repro lint`` test suite."""

import pytest

from repro.analysis.engine import lint_paths


@pytest.fixture
def lint_snippet(tmp_path):
    """Lint a source snippet under one rule; returns the LintRun.

    ``name`` controls the path the engine sees, so tests can place a
    snippet "inside" an allowlisted module (e.g. ``repro/units.py``).
    """

    def run(source, select=None, name="snippet.py", baseline=None):
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        selected = [select] if isinstance(select, str) else select
        return lint_paths([str(target)], select=selected, baseline=baseline)

    return run
