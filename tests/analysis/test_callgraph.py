"""Call-graph builder: naming, resolution, callbacks, JSON dump."""

import ast
import json

from repro.analysis.callgraph import (
    CALLGRAPH_SCHEMA,
    MODULE_BODY,
    Project,
    project_from_paths,
)


def build(*files):
    """Project from ``(display_path, source)`` pairs."""
    return Project.build(
        [(path, ast.parse(source)) for path, source in files]
    )


def resolve(project, caller_qualname, dotted):
    return project.resolve_call(project.functions[caller_qualname], dotted)


class TestModuleNaming:
    def test_src_relative_names(self):
        project = build(
            ("src/repro/serve/bench.py", "x = 1\n"),
            ("src/repro/ioutil.py", "y = 2\n"),
        )
        assert set(project.modules) == {"repro.serve.bench", "repro.ioutil"}

    def test_package_init_names_the_package(self):
        project = build(("src/repro/serve/__init__.py", "x = 1\n"))
        table = project.modules["repro.serve"]
        assert table.is_package

    def test_no_src_segment_falls_back_to_common_root(self):
        project = build(
            ("/tmp/scratch/pkg/a.py", "x = 1\n"),
            ("/tmp/scratch/pkg/sub/b.py", "y = 2\n"),
        )
        assert set(project.modules) == {"a", "sub.b"}

    def test_module_body_registered_as_pseudo_function(self):
        project = build(("src/repro/a.py", "x = 1\n"))
        info = project.functions[f"repro.a.{MODULE_BODY}"]
        assert info.is_module_body


class TestResolution:
    def test_bare_call_to_module_function(self):
        project = build(
            (
                "src/repro/a.py",
                "def helper(x):\n    return x\n"
                "def caller(y):\n    return helper(y)\n",
            )
        )
        target, offset = resolve(project, "repro.a.caller", "helper")
        assert target.qualname == "repro.a.helper"
        assert offset == 0

    def test_nested_function_resolves_before_module_scope(self):
        project = build(
            (
                "src/repro/a.py",
                "def helper():\n    return 1\n"
                "def outer():\n"
                "    def helper():\n        return 2\n"
                "    return helper()\n",
            )
        )
        target, _ = resolve(project, "repro.a.outer", "helper")
        assert target.qualname == "repro.a.outer.helper"

    def test_aliased_from_import(self):
        project = build(
            ("src/repro/util.py", "def merge(a, b):\n    return a\n"),
            (
                "src/repro/b.py",
                "from repro.util import merge as m\n"
                "def caller(x):\n    return m(x, x)\n",
            ),
        )
        target, offset = resolve(project, "repro.b.caller", "m")
        assert target.qualname == "repro.util.merge"
        assert offset == 0

    def test_aliased_module_import(self):
        project = build(
            ("src/repro/util.py", "def merge(a, b):\n    return a\n"),
            (
                "src/repro/b.py",
                "import repro.util as u\n"
                "def caller(x):\n    return u.merge(x, x)\n",
            ),
        )
        target, _ = resolve(project, "repro.b.caller", "u.merge")
        assert target.qualname == "repro.util.merge"

    def test_relative_import_resolution(self):
        project = build(
            ("src/repro/serve/__init__.py", ""),
            ("src/repro/ioutil.py", "def atomic_write_json(p, d):\n    pass\n"),
            (
                "src/repro/serve/bench.py",
                "from ..ioutil import atomic_write_json\n"
                "def emit(payload):\n"
                "    atomic_write_json('x.json', payload)\n",
            ),
        )
        target, _ = resolve(
            project, "repro.serve.bench.emit", "atomic_write_json"
        )
        assert target.qualname == "repro.ioutil.atomic_write_json"

    def test_self_method_call_offsets_past_self(self):
        project = build(
            (
                "src/repro/a.py",
                "class Shard:\n"
                "    def probe(self, keys):\n        return keys\n"
                "    def run(self, keys):\n        return self.probe(keys)\n",
            )
        )
        target, offset = resolve(project, "repro.a.Shard.run", "self.probe")
        assert target.qualname == "repro.a.Shard.probe"
        assert offset == 1

    def test_method_lookup_through_base_class(self):
        project = build(
            (
                "src/repro/base.py",
                "class Index:\n"
                "    def lookup(self, keys):\n        return keys\n",
            ),
            (
                "src/repro/b.py",
                "from repro.base import Index\n"
                "class BTree(Index):\n"
                "    def run(self, keys):\n        return self.lookup(keys)\n",
            ),
        )
        target, offset = resolve(project, "repro.b.BTree.run", "self.lookup")
        assert target.qualname == "repro.base.Index.lookup"
        assert offset == 1

    def test_unbound_class_method_call_has_no_offset(self):
        project = build(
            (
                "src/repro/a.py",
                "class Shard:\n"
                "    def probe(self, keys):\n        return keys\n"
                "def caller(shard, keys):\n"
                "    return Shard.probe(shard, keys)\n",
            )
        )
        target, offset = resolve(project, "repro.a.caller", "Shard.probe")
        assert target.qualname == "repro.a.Shard.probe"
        assert offset == 0

    def test_constructor_resolves_to_init(self):
        project = build(
            (
                "src/repro/a.py",
                "class Shard:\n"
                "    def __init__(self, keys):\n        self.keys = keys\n"
                "def caller(keys):\n    return Shard(keys)\n",
            )
        )
        target, offset = resolve(project, "repro.a.caller", "Shard")
        assert target.qualname == "repro.a.Shard.__init__"
        assert offset == 1

    def test_unique_method_heuristic(self):
        # Only one project class defines .reconcile, so obj.reconcile()
        # resolves even though obj's type is unknown.
        project = build(
            (
                "src/repro/a.py",
                "class Delta:\n"
                "    def reconcile(self, base):\n        return base\n",
            ),
            (
                "src/repro/b.py",
                "def caller(obj, base):\n    return obj.reconcile(base)\n",
            ),
        )
        target, offset = resolve(project, "repro.b.caller", "obj.reconcile")
        assert target.qualname == "repro.a.Delta.reconcile"
        assert offset == 1

    def test_ambiguous_method_does_not_resolve(self):
        project = build(
            (
                "src/repro/a.py",
                "class A:\n    def get(self):\n        return 1\n"
                "class B:\n    def get(self):\n        return 2\n",
            ),
            ("src/repro/b.py", "def caller(obj):\n    return obj.get()\n"),
        )
        assert resolve(project, "repro.b.caller", "obj.get") is None

    def test_recursive_cycle_resolves_both_directions(self):
        project = build(
            (
                "src/repro/a.py",
                "def ping(n):\n    return pong(n - 1) if n else 0\n"
                "def pong(n):\n    return ping(n - 1) if n else 1\n",
            )
        )
        assert resolve(project, "repro.a.ping", "pong")[0].qualname == (
            "repro.a.pong"
        )
        assert resolve(project, "repro.a.pong", "ping")[0].qualname == (
            "repro.a.ping"
        )


class TestCallbacks:
    def test_map_tasks_style_callback_is_recorded(self):
        project = build(
            (
                "src/repro/a.py",
                "def run_task(task):\n    return task\n"
                "def map_tasks(fn, tasks):\n"
                "    return [fn(t) for t in tasks]\n"
                "def sweep(tasks):\n"
                "    return map_tasks(run_task, tasks)\n",
            )
        )
        callbacks = [
            site
            for site in project.call_sites()
            if site.kind == "callback"
        ]
        assert [(s.caller, s.callee) for s in callbacks] == [
            ("repro.a.sweep", "repro.a.run_task")
        ]


class TestJsonDump:
    def test_document_shape(self):
        project = build(
            (
                "src/repro/a.py",
                "def helper(x):\n    return x\n"
                "def caller(y):\n    return helper(unknown(y))\n",
            )
        )
        document = project.to_json()
        assert document["schema"] == CALLGRAPH_SCHEMA
        assert [m["name"] for m in document["modules"]] == ["repro.a"]
        qualnames = [f["qualname"] for f in document["functions"]]
        assert qualnames == ["repro.a.caller", "repro.a.helper"]
        # helper(...) resolves, unknown(...) does not.
        assert document["resolved_edges"] == 1
        assert document["unresolved_edges"] == 1
        edges = {
            (e["caller"], e["dotted"]): e["callee"]
            for e in document["edges"]
        }
        assert edges[("repro.a.caller", "helper")] == "repro.a.helper"
        assert edges[("repro.a.caller", "unknown")] is None
        json.dumps(document)  # must be serializable as-is

    def test_project_from_paths(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text(
            "def f(x):\n    return x\n", encoding="utf-8"
        )
        (pkg / "broken.py").write_text("def nope(:\n", encoding="utf-8")
        project, errors = project_from_paths([str(tmp_path)])
        assert any(name.endswith("a") for name in project.modules)
        assert len(errors) == 1
        assert "syntax error" in errors[0][1]
