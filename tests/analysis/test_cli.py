"""CLI contract: exit codes, JSON schema, baseline workflow."""

import json
import textwrap

import pytest

from repro.analysis.cli import OUTPUT_SCHEMA, main

#: One seeded violation per rule class; each must fail the gate.
VIOLATIONS = {
    "DET001": "import numpy as np\nx = np.random.rand(4)\n",
    "DET002": "import time\nstart = time.perf_counter()\n",
    "DET003": "for item in {3, 1, 2}:\n    print(item)\n",
    "NP001": "def bucket(key, width):\n    return int(key / width)\n",
    "OBS001": 'obs.add("BadName", 1.0)\n',
    "OBS002": textwrap.dedent(
        """
        def drain(batches):
            for batch in batches:
                obs.add("pipeline.batches", 1.0)
        """
    ),
    "RES001": textwrap.dedent(
        """
        def export(path, text):
            with open(path, "w") as handle:
                handle.write(text)
        """
    ),
    "UNIT001": "window = 32 * 1024\n",
}


@pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
def test_each_rule_class_fails_the_gate(tmp_path, capsys, rule_id):
    target = tmp_path / "violation.py"
    target.write_text(VIOLATIONS[rule_id], encoding="utf-8")
    code = main([str(target), "--fail-on-findings", "--no-baseline"])
    assert code == 1
    assert rule_id in capsys.readouterr().out


def test_findings_exit_zero_without_the_gate_flag(tmp_path, capsys):
    target = tmp_path / "violation.py"
    target.write_text(VIOLATIONS["UNIT001"], encoding="utf-8")
    assert main([str(target), "--no-baseline"]) == 0
    assert "UNIT001" in capsys.readouterr().out


def test_clean_tree_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n", encoding="utf-8")
    code = main([str(target), "--fail-on-findings", "--no-baseline"])
    assert code == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_unparsable_file_always_exits_two(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def nope(:\n", encoding="utf-8")
    # Even without --fail-on-findings: a lint run that could not see the
    # code must never read as green.
    assert main([str(target), "--no-baseline"]) == 2
    assert "syntax error" in capsys.readouterr().out


def test_json_output_schema(tmp_path, capsys):
    target = tmp_path / "violation.py"
    target.write_text(VIOLATIONS["DET002"], encoding="utf-8")
    code = main([str(target), "--format", "json", "--no-baseline"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == OUTPUT_SCHEMA
    assert document["files_checked"] == 1
    assert [f["rule"] for f in document["findings"]] == ["DET002"]
    finding = document["findings"][0]
    assert finding["severity"] == "error"
    assert finding["line"] == 2
    assert finding["source_line"] == "start = time.perf_counter()"
    # The artifact is self-describing: the rule table rides along.
    assert {row["rule"] for row in document["rules"]} >= {"DET001", "RES001"}


def test_select_limits_the_run(tmp_path, capsys):
    target = tmp_path / "violation.py"
    target.write_text(
        VIOLATIONS["DET002"] + VIOLATIONS["UNIT001"], encoding="utf-8"
    )
    code = main(
        [str(target), "--select", "UNIT001", "--format", "json", "--no-baseline"]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in document["findings"]] == ["UNIT001"]


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in VIOLATIONS:
        assert rule_id in out


def test_write_then_apply_baseline(tmp_path, capsys):
    target = tmp_path / "legacy.py"
    target.write_text(VIOLATIONS["UNIT001"], encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"

    assert main([str(target), "--write-baseline", str(baseline_path)]) == 0
    document = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert document["schema"] == "repro-lint-baseline/1"
    assert len(document["findings"]) == 1

    # With the baseline applied, the same tree passes the hard gate...
    code = main(
        [
            str(target),
            "--baseline",
            str(baseline_path),
            "--fail-on-findings",
        ]
    )
    assert code == 0
    assert "1 baselined" in capsys.readouterr().out

    # ...but a *new* violation still fails it.
    target.write_text(
        VIOLATIONS["UNIT001"] + "cap = 1 << 30\n", encoding="utf-8"
    )
    code = main(
        [
            str(target),
            "--baseline",
            str(baseline_path),
            "--fail-on-findings",
        ]
    )
    assert code == 1


def test_default_baseline_is_picked_up_from_cwd(tmp_path, capsys, monkeypatch):
    target = tmp_path / "legacy.py"
    target.write_text(VIOLATIONS["UNIT001"], encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert main(["legacy.py", "--write-baseline", "lint_baseline.json"]) == 0
    capsys.readouterr()
    assert main(["legacy.py", "--fail-on-findings"]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # --no-baseline overrides the automatic pickup.
    assert main(["legacy.py", "--fail-on-findings", "--no-baseline"]) == 1


def test_repro_cli_dispatches_lint(tmp_path, capsys):
    from repro.__main__ import main as repro_main

    target = tmp_path / "violation.py"
    target.write_text(VIOLATIONS["DET001"], encoding="utf-8")
    code = repro_main(
        ["lint", str(target), "--fail-on-findings", "--no-baseline"]
    )
    assert code == 1
    assert "DET001" in capsys.readouterr().out
