"""CLI contract: exit codes, JSON schema, baseline workflow."""

import json
import textwrap

import pytest

from repro.analysis.cli import OUTPUT_SCHEMA, main

#: One seeded violation per rule class; each must fail the gate.
VIOLATIONS = {
    "DET001": "import numpy as np\nx = np.random.rand(4)\n",
    "DET002": "import time\nstart = time.perf_counter()\n",
    "DET003": "for item in {3, 1, 2}:\n    print(item)\n",
    "NP001": "def bucket(key, width):\n    return int(key / width)\n",
    "OBS001": 'obs.add("BadName", 1.0)\n',
    "OBS002": textwrap.dedent(
        """
        def drain(batches):
            for batch in batches:
                obs.add("pipeline.batches", 1.0)
        """
    ),
    "RES001": textwrap.dedent(
        """
        def export(path, text):
            with open(path, "w") as handle:
                handle.write(text)
        """
    ),
    "UNIT001": "window = 32 * 1024\n",
}


@pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
def test_each_rule_class_fails_the_gate(tmp_path, capsys, rule_id):
    target = tmp_path / "violation.py"
    target.write_text(VIOLATIONS[rule_id], encoding="utf-8")
    code = main([str(target), "--fail-on-findings", "--no-baseline"])
    assert code == 1
    assert rule_id in capsys.readouterr().out


def test_findings_exit_zero_without_the_gate_flag(tmp_path, capsys):
    target = tmp_path / "violation.py"
    target.write_text(VIOLATIONS["UNIT001"], encoding="utf-8")
    assert main([str(target), "--no-baseline"]) == 0
    assert "UNIT001" in capsys.readouterr().out


def test_clean_tree_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n", encoding="utf-8")
    code = main([str(target), "--fail-on-findings", "--no-baseline"])
    assert code == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_unparsable_file_always_exits_two(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def nope(:\n", encoding="utf-8")
    # Even without --fail-on-findings: a lint run that could not see the
    # code must never read as green.
    assert main([str(target), "--no-baseline"]) == 2
    assert "syntax error" in capsys.readouterr().out


def test_json_output_schema(tmp_path, capsys):
    target = tmp_path / "violation.py"
    target.write_text(VIOLATIONS["DET002"], encoding="utf-8")
    code = main([str(target), "--format", "json", "--no-baseline"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == OUTPUT_SCHEMA
    assert document["files_checked"] == 1
    assert [f["rule"] for f in document["findings"]] == ["DET002"]
    finding = document["findings"][0]
    assert finding["severity"] == "error"
    assert finding["line"] == 2
    assert finding["source_line"] == "start = time.perf_counter()"
    # The artifact is self-describing: the rule table rides along.
    assert {row["rule"] for row in document["rules"]} >= {"DET001", "RES001"}


def test_select_limits_the_run(tmp_path, capsys):
    target = tmp_path / "violation.py"
    target.write_text(
        VIOLATIONS["DET002"] + VIOLATIONS["UNIT001"], encoding="utf-8"
    )
    code = main(
        [str(target), "--select", "UNIT001", "--format", "json", "--no-baseline"]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in document["findings"]] == ["UNIT001"]


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in VIOLATIONS:
        assert rule_id in out


def test_write_then_apply_baseline(tmp_path, capsys):
    target = tmp_path / "legacy.py"
    target.write_text(VIOLATIONS["UNIT001"], encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"

    assert main([str(target), "--write-baseline", str(baseline_path)]) == 0
    document = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert document["schema"] == "repro-lint-baseline/1"
    assert len(document["findings"]) == 1

    # With the baseline applied, the same tree passes the hard gate...
    code = main(
        [
            str(target),
            "--baseline",
            str(baseline_path),
            "--fail-on-findings",
        ]
    )
    assert code == 0
    assert "1 baselined" in capsys.readouterr().out

    # ...but a *new* violation still fails it.
    target.write_text(
        VIOLATIONS["UNIT001"] + "cap = 1 << 30\n", encoding="utf-8"
    )
    code = main(
        [
            str(target),
            "--baseline",
            str(baseline_path),
            "--fail-on-findings",
        ]
    )
    assert code == 1


def test_default_baseline_is_picked_up_from_cwd(tmp_path, capsys, monkeypatch):
    target = tmp_path / "legacy.py"
    target.write_text(VIOLATIONS["UNIT001"], encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert main(["legacy.py", "--write-baseline", "lint_baseline.json"]) == 0
    capsys.readouterr()
    assert main(["legacy.py", "--fail-on-findings"]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # --no-baseline overrides the automatic pickup.
    assert main(["legacy.py", "--fail-on-findings", "--no-baseline"]) == 1


def test_repro_cli_dispatches_lint(tmp_path, capsys):
    from repro.__main__ import main as repro_main

    target = tmp_path / "violation.py"
    target.write_text(VIOLATIONS["DET001"], encoding="utf-8")
    code = repro_main(
        ["lint", str(target), "--fail-on-findings", "--no-baseline"]
    )
    assert code == 1
    assert "DET001" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Flow rules and the call-graph dump.
# ----------------------------------------------------------------------

#: One seeded interprocedural violation per flow lane.  CI runs
#: ``repro lint src --flow --fail-on-findings``; each of these must
#: fail that gate with the full call path in the message.
FLOW_VIOLATIONS = {
    "FLOW001": textwrap.dedent(
        """
        import numpy as np
        from repro.ioutil import atomic_write_json

        def sample(count):
            return np.random.rand(count)

        def emit(path, count):
            atomic_write_json(path, list(sample(count)))
        """
    ),
    "FLOW002": textwrap.dedent(
        """
        from repro.ioutil import atomic_write_json

        def collect(extra):
            acc = []
            for name in {"b", "a"} | extra:
                acc.append(name)
            return acc

        def emit(path, extra):
            atomic_write_json(path, collect(extra))
        """
    ),
    "NP002": textwrap.dedent(
        """
        import numpy as np

        def predict(keys, span):
            return keys / span

        def to_slots(values):
            return values.astype(np.int64)

        def probe(keys, span):
            return to_slots(predict(keys, span))
        """
    ),
}


@pytest.mark.parametrize("rule_id", sorted(FLOW_VIOLATIONS))
def test_each_flow_lane_fails_the_gate_with_a_call_path(
    tmp_path, capsys, rule_id
):
    target = tmp_path / "src" / "repro" / "flow_violation.py"
    target.parent.mkdir(parents=True)
    target.write_text(FLOW_VIOLATIONS[rule_id], encoding="utf-8")
    code = main(
        [str(target), "--flow", "--fail-on-findings", "--no-baseline"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert rule_id in out
    assert "call path:" in out
    assert "repro.flow_violation" in out


def test_dtype_leak_is_invisible_without_the_flow_pass(tmp_path, capsys):
    # The FLOW001/FLOW002 seeds are also caught per-file (DET001 flags
    # the raw np.random call, DET003 the set loop), but the cross-
    # function float->int cast has no single-expression shape NP001
    # could match: only the interprocedural pass sees it.
    target = tmp_path / "src" / "repro" / "flow_violation.py"
    target.parent.mkdir(parents=True)
    target.write_text(FLOW_VIOLATIONS["NP002"], encoding="utf-8")
    assert main([str(target), "--fail-on-findings", "--no-baseline"]) == 0
    capsys.readouterr()
    code = main(
        [str(target), "--flow", "--fail-on-findings", "--no-baseline"]
    )
    assert code == 1
    assert "NP002" in capsys.readouterr().out


def test_select_opts_into_a_flow_rule_without_the_flag(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "flow_violation.py"
    target.parent.mkdir(parents=True)
    target.write_text(FLOW_VIOLATIONS["NP002"], encoding="utf-8")
    code = main(
        [
            str(target),
            "--select",
            "NP002",
            "--fail-on-findings",
            "--no-baseline",
        ]
    )
    assert code == 1
    assert "NP002" in capsys.readouterr().out


def test_call_graph_dump(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "graph_demo.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "def helper(x):\n    return x\n"
        "def caller(y):\n    return helper(y)\n",
        encoding="utf-8",
    )
    graph_path = tmp_path / "callgraph.json"
    code = main(
        [str(target), "--call-graph", str(graph_path), "--no-baseline"]
    )
    assert code == 0
    assert "wrote call graph" in capsys.readouterr().out
    document = json.loads(graph_path.read_text(encoding="utf-8"))
    assert document["schema"] == "repro-callgraph/1"
    assert [m["name"] for m in document["modules"]] == ["repro.graph_demo"]
    assert document["resolved_edges"] == 1


def test_call_graph_with_unparsable_file_exits_two(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def nope(:\n", encoding="utf-8")
    graph_path = tmp_path / "callgraph.json"
    code = main(
        [str(target), "--call-graph", str(graph_path), "--no-baseline"]
    )
    assert code == 2
    assert "syntax error" in capsys.readouterr().out
