"""Baseline round trips: document -> load -> absorb, multiset semantics."""

import json

import pytest

from repro.analysis.baseline import SCHEMA, Baseline
from repro.analysis.engine import display_path, lint_paths
from repro.analysis.findings import Finding, Severity


def _finding(rule="DET002", path="src/mod.py", code="t = time.time()", line=3):
    return Finding(
        rule_id=rule,
        severity=Severity.ERROR,
        path=path,
        line=line,
        col=4,
        message="msg",
        source_line=code,
    )


def test_document_load_absorb_round_trip(tmp_path):
    findings = [_finding(), _finding(rule="UNIT001", code="x = 2 ** 30")]
    document = Baseline.document(findings)
    assert document["schema"] == SCHEMA
    # Entries start with an empty todo the committer must fill in.
    assert all(entry["todo"] == "" for entry in document["findings"])

    target = tmp_path / "baseline.json"
    target.write_text(json.dumps(document), encoding="utf-8")
    baseline = Baseline.load(str(target))
    assert len(baseline) == 2
    for finding in findings:
        assert baseline.absorb(finding)


def test_absorb_matches_by_code_not_line_number():
    baseline = Baseline(
        [{"rule": "DET002", "path": "src/mod.py", "code": "t = time.time()"}]
    )
    # Same rule/path/code on a different line still matches: edits above
    # a grandfathered line must not invalidate the baseline.
    assert baseline.absorb(_finding(line=99))


def test_absorb_is_a_multiset():
    baseline = Baseline(
        [{"rule": "DET002", "path": "src/mod.py", "code": "t = time.time()"}]
    )
    assert baseline.absorb(_finding())
    # The single budget slot is spent: a second identical finding is new.
    assert not baseline.absorb(_finding())


def test_absorb_rejects_mismatches():
    baseline = Baseline(
        [{"rule": "DET002", "path": "src/mod.py", "code": "t = time.time()"}]
    )
    assert not baseline.absorb(_finding(rule="DET001"))
    assert not baseline.absorb(_finding(path="src/other.py"))
    assert not baseline.absorb(_finding(code="other = time.time()"))


def test_unjustified_lists_entries_without_todo():
    baseline = Baseline(
        [
            {"rule": "A", "path": "p", "code": "c", "todo": "issue #7"},
            {"rule": "B", "path": "p", "code": "c", "todo": "   "},
            {"rule": "C", "path": "p", "code": "c"},
        ]
    )
    assert [entry["rule"] for entry in baseline.unjustified()] == ["B", "C"]


def test_load_rejects_foreign_json(tmp_path):
    target = tmp_path / "other.json"
    target.write_text(json.dumps({"schema": "metrics/1"}), encoding="utf-8")
    with pytest.raises(ValueError, match="not a"):
        Baseline.load(str(target))


def test_baselined_findings_leave_the_gate(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(
        "import time\nstart = time.perf_counter()\n", encoding="utf-8"
    )
    baseline = Baseline(
        [
            {
                "rule": "DET002",
                "path": display_path(str(target)),
                "code": "start = time.perf_counter()",
            }
        ]
    )
    run = lint_paths([str(target)], select=["DET002"], baseline=baseline)
    assert run.findings == []
    assert [f.rule_id for f in run.baselined] == ["DET002"]
