"""Seeded non-equi probe streams: determinism, jitter bounds, inversion."""

import numpy as np
import pytest

from repro.data.column import MaterializedColumn
from repro.data.generator import WorkloadConfig
from repro.errors import WorkloadError
from repro.indexes.domain import saturating_band
from repro.workloads.nonequi import (
    NonEquiProbeSet,
    band_epsilon_for_matches,
    make_band_probe_keys,
    make_knn_probe_keys,
)


@pytest.fixture
def column():
    return MaterializedColumn(np.arange(1, 2**12, 4, dtype=np.uint64))


@pytest.fixture
def config():
    return WorkloadConfig(r_tuples=2**12, s_tuples=2**10, seed=9)


class TestBandStream:
    def test_deterministic(self, column, config):
        a = make_band_probe_keys(column, config, epsilon=16)
        b = make_band_probe_keys(column, config, epsilon=16)
        np.testing.assert_array_equal(a.keys, b.keys)
        assert a.kind == "band"
        assert a.param == 16
        assert len(a) == config.s_tuples

    def test_probes_stay_within_epsilon_of_a_member(self, column, config):
        epsilon = 16
        probes = make_band_probe_keys(column, config, epsilon=epsilon)
        lo, hi = saturating_band(probes.keys, epsilon)
        keys = column.keys
        starts = np.searchsorted(keys, lo, side="left")
        ends = np.searchsorted(keys, hi, side="right")
        # Every probe's band contains the member it was jittered from.
        assert (ends > starts).all()

    def test_independent_of_equi_stream(self, column, config):
        from repro.data.generator import make_probe_keys

        band = make_band_probe_keys(column, config, epsilon=4)
        equi = make_probe_keys(column, config)
        assert not np.array_equal(band.keys[: len(equi.keys)], equi.keys)

    def test_zipf_changes_the_draw(self, column):
        uniform = make_band_probe_keys(
            column, WorkloadConfig(r_tuples=2**12, s_tuples=256, seed=9), 8
        )
        skewed = make_band_probe_keys(
            column,
            WorkloadConfig(
                r_tuples=2**12, s_tuples=256, seed=9, zipf_theta=1.0
            ),
            8,
        )
        assert not np.array_equal(uniform.keys, skewed.keys)
        # Skewed streams concentrate on fewer distinct keys.
        assert len(np.unique(skewed.keys)) < len(np.unique(uniform.keys))

    def test_invalid_arguments(self, column, config):
        with pytest.raises(WorkloadError):
            make_band_probe_keys(column, config, epsilon=-1)
        with pytest.raises(WorkloadError):
            make_band_probe_keys(column, config, epsilon=4, count=0)


class TestKnnStream:
    def test_deterministic_and_distinct_from_band(self, column, config):
        a = make_knn_probe_keys(column, config, k=4)
        b = make_knn_probe_keys(column, config, k=4)
        np.testing.assert_array_equal(a.keys, b.keys)
        assert a.kind == "knn"
        assert a.param == 4
        band = make_band_probe_keys(column, config, epsilon=4)
        assert not np.array_equal(a.keys, band.keys)

    def test_jitter_stays_within_one_stride(self, column, config):
        probes = make_knn_probe_keys(column, config, k=2)
        keys = column.keys
        positions = np.searchsorted(keys, probes.keys)
        clamped = np.minimum(positions, len(keys) - 1)
        below = keys[np.maximum(clamped - 1, 0)]
        at = keys[clamped]
        stride = np.uint64(max(1, config.stride))

        def distance(a, b):
            return np.where(a >= b, a - b, b - a)

        near = np.minimum(
            distance(at, probes.keys), distance(probes.keys, below)
        )
        assert (near <= stride).all()

    def test_invalid_arguments(self, column, config):
        with pytest.raises(WorkloadError):
            make_knn_probe_keys(column, config, k=0)
        with pytest.raises(WorkloadError):
            make_knn_probe_keys(column, config, k=2, count=-4)


class TestProbeSetValidation:
    def test_kind_validated(self):
        with pytest.raises(WorkloadError):
            NonEquiProbeSet(
                keys=np.zeros(1, dtype=np.uint64), kind="range", param=1
            )

    def test_param_validated(self):
        with pytest.raises(WorkloadError):
            NonEquiProbeSet(
                keys=np.zeros(1, dtype=np.uint64), kind="band", param=-1
            )


class TestEpsilonInversion:
    def test_round_trips_through_expected_matches(self, column):
        from repro.join.nonequi import expected_band_matches

        for matches in (1.0, 4.0, 16.0):
            epsilon = band_epsilon_for_matches(column, matches)
            recovered = expected_band_matches(column, epsilon)
            assert recovered == pytest.approx(matches, rel=0.01)

    def test_degenerate_cases(self, column):
        assert band_epsilon_for_matches(column, 1.0) == 0
        singleton = MaterializedColumn(np.asarray([7], dtype=np.uint64))
        assert band_epsilon_for_matches(singleton, 4.0) == 0
        with pytest.raises(WorkloadError):
            band_epsilon_for_matches(column, 0.0)
