"""Index maintenance workloads."""

import pytest

from repro.data.column import VirtualSortedColumn
from repro.data.relation import Relation
from repro.errors import ConfigurationError, WorkloadError
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import (
    BinarySearchIndex,
    BPlusTreeIndex,
    FastTreeIndex,
    HarmoniaIndex,
    RadixSplineIndex,
)
from repro.workloads.updates import (
    functional_insert_throughput,
    maintenance_cost,
)

CPU = V100_NVLINK2.cpu


def index_over(index_cls, n=2**28):
    return index_cls(Relation("R", VirtualSortedColumn(n)))


class TestMaintenanceCost:
    def test_tree_indexes_update_in_place(self):
        for index_cls in (BPlusTreeIndex, HarmoniaIndex):
            cost = maintenance_cost(index_over(index_cls), 10_000, CPU)
            assert cost.strategy == "in-place"

    def test_static_indexes_rebuild(self):
        for index_cls in (RadixSplineIndex, BinarySearchIndex, FastTreeIndex):
            cost = maintenance_cost(index_over(index_cls), 10_000, CPU)
            assert cost.strategy == "rebuild"

    def test_section6_guidance_quantified(self):
        """Harmonia absorbs a batch orders of magnitude cheaper than a
        RadixSpline refit at paper scale (Section 6)."""
        harmonia = maintenance_cost(index_over(HarmoniaIndex), 10_000, CPU)
        spline = maintenance_cost(index_over(RadixSplineIndex), 10_000, CPU)
        assert (
            spline.seconds_per_batch > 50 * harmonia.seconds_per_batch
        )

    def test_in_place_scales_with_batch(self):
        small = maintenance_cost(index_over(BPlusTreeIndex), 1_000, CPU)
        large = maintenance_cost(index_over(BPlusTreeIndex), 100_000, CPU)
        assert large.seconds_per_batch == pytest.approx(
            100 * small.seconds_per_batch, rel=0.01
        )

    def test_rebuild_independent_of_batch(self):
        small = maintenance_cost(index_over(RadixSplineIndex), 1_000, CPU)
        large = maintenance_cost(index_over(RadixSplineIndex), 100_000, CPU)
        assert large.seconds_per_batch == pytest.approx(
            small.seconds_per_batch
        )

    def test_amortized_cost(self):
        cost = maintenance_cost(index_over(HarmoniaIndex), 1_000, CPU)
        assert cost.amortized_seconds_per_insert(1_000) == pytest.approx(
            cost.seconds_per_batch / 1_000
        )

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            maintenance_cost(index_over(HarmoniaIndex), 0, CPU)
        cost = maintenance_cost(index_over(HarmoniaIndex), 10, CPU)
        with pytest.raises(ConfigurationError):
            cost.amortized_seconds_per_insert(0)


class TestFunctionalInserts:
    @pytest.mark.parametrize("index_cls", [BPlusTreeIndex, HarmoniaIndex])
    def test_inserts_complete_and_queryable(self, index_cls):
        rate = functional_insert_throughput(
            index_cls, base_tuples=2**12, batch_size=256, batches=2
        )
        assert rate > 0

    def test_static_index_rejected(self):
        with pytest.raises(WorkloadError):
            functional_insert_throughput(
                RadixSplineIndex, base_tuples=1024, batch_size=16
            )

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            functional_insert_throughput(
                BPlusTreeIndex, base_tuples=0, batch_size=16
            )
