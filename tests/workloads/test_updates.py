"""Index maintenance workloads."""

import numpy as np
import pytest

from repro.data.column import VirtualSortedColumn
from repro.data.relation import Relation
from repro.errors import ConfigurationError, WorkloadError
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import (
    BinarySearchIndex,
    BPlusTreeIndex,
    FastTreeIndex,
    HarmoniaIndex,
    RadixSplineIndex,
)
from repro.workloads.updates import (
    SortedArrayOracle,
    functional_insert_throughput,
    maintenance_cost,
    make_update_stream,
)

CPU = V100_NVLINK2.cpu


def index_over(index_cls, n=2**28):
    return index_cls(Relation("R", VirtualSortedColumn(n)))


class TestMaintenanceCost:
    def test_tree_indexes_update_in_place(self):
        for index_cls in (BPlusTreeIndex, HarmoniaIndex):
            cost = maintenance_cost(index_over(index_cls), 10_000, CPU)
            assert cost.strategy == "in-place"

    def test_static_indexes_rebuild(self):
        for index_cls in (RadixSplineIndex, BinarySearchIndex, FastTreeIndex):
            cost = maintenance_cost(index_over(index_cls), 10_000, CPU)
            assert cost.strategy == "rebuild"

    def test_section6_guidance_quantified(self):
        """Harmonia absorbs a batch orders of magnitude cheaper than a
        RadixSpline refit at paper scale (Section 6)."""
        harmonia = maintenance_cost(index_over(HarmoniaIndex), 10_000, CPU)
        spline = maintenance_cost(index_over(RadixSplineIndex), 10_000, CPU)
        assert (
            spline.seconds_per_batch > 50 * harmonia.seconds_per_batch
        )

    def test_in_place_scales_with_batch(self):
        small = maintenance_cost(index_over(BPlusTreeIndex), 1_000, CPU)
        large = maintenance_cost(index_over(BPlusTreeIndex), 100_000, CPU)
        assert large.seconds_per_batch == pytest.approx(
            100 * small.seconds_per_batch, rel=0.01
        )

    def test_rebuild_independent_of_batch(self):
        small = maintenance_cost(index_over(RadixSplineIndex), 1_000, CPU)
        large = maintenance_cost(index_over(RadixSplineIndex), 100_000, CPU)
        assert large.seconds_per_batch == pytest.approx(
            small.seconds_per_batch
        )

    def test_amortized_cost(self):
        cost = maintenance_cost(index_over(HarmoniaIndex), 1_000, CPU)
        assert cost.amortized_seconds_per_insert(1_000) == pytest.approx(
            cost.seconds_per_batch / 1_000
        )

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            maintenance_cost(index_over(HarmoniaIndex), 0, CPU)
        cost = maintenance_cost(index_over(HarmoniaIndex), 10, CPU)
        with pytest.raises(ConfigurationError):
            cost.amortized_seconds_per_insert(0)


class TestFunctionalInserts:
    @pytest.mark.parametrize("index_cls", [BPlusTreeIndex, HarmoniaIndex])
    def test_inserts_complete_and_queryable(self, index_cls):
        rate = functional_insert_throughput(
            index_cls, base_tuples=2**12, batch_size=256, batches=2
        )
        assert rate > 0

    def test_static_index_rejected(self):
        with pytest.raises(WorkloadError):
            functional_insert_throughput(
                RadixSplineIndex, base_tuples=1024, batch_size=16
            )

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            functional_insert_throughput(
                BPlusTreeIndex, base_tuples=0, batch_size=16
            )


class TestMakeUpdateStream:
    def setup_method(self):
        self.base_keys = np.arange(0, 4096 * 4, 4, dtype=np.uint64)
        self.probe_keys = np.tile(self.base_keys, 2)[: 16 * 64]

    def make(self, update_fraction=0.5, seed=42, num_requests=16,
             request_tuples=64):
        return make_update_stream(
            self.base_keys,
            self.probe_keys,
            num_requests,
            request_tuples,
            update_fraction,
            seed,
        )

    def test_deterministic_in_seed(self):
        first, second = self.make(), self.make()
        assert first.kinds == second.kinds
        for a, b in zip(first.keys, second.keys):
            np.testing.assert_array_equal(a, b)

    def test_seed_changes_the_stream(self):
        assert self.make(seed=1).kinds != self.make(seed=2).kinds

    def test_zero_fraction_is_pure_probe_slices(self):
        stream = self.make(update_fraction=0.0)
        assert stream.update_requests == 0
        for i, keys in enumerate(stream.keys):
            np.testing.assert_array_equal(
                keys, self.probe_keys[i * 64 : (i + 1) * 64]
            )

    def test_values_are_the_dense_global_row_id_sequence(self):
        stream = self.make()
        expected_next = len(self.base_keys)
        for kind, values in zip(stream.kinds, stream.values):
            if kind == "update":
                assert values is not None
                assert values[0] == expected_next
                np.testing.assert_array_equal(
                    values,
                    np.arange(
                        expected_next,
                        expected_next + len(values),
                        dtype=np.int64,
                    ),
                )
                expected_next += len(values)
            else:
                assert values is None
        assert stream.update_tuples == expected_next - len(self.base_keys)

    def test_inserts_are_non_members(self):
        stream = self.make(update_fraction=1.0)
        members = set(self.base_keys.tolist())
        inserted = [
            key
            for keys in stream.keys
            for key in keys.tolist()
            if key not in members
        ]
        # The +1 stride-4 construction guarantees true inserts exist
        # and every one of them misses the base relation.
        assert inserted
        assert all((key - 1) % 4 == 0 for key in inserted)

    def test_probes_read_back_written_keys(self):
        stream = self.make(seed=42)
        written: set = set()
        readback_seen = False
        for kind, keys in zip(stream.kinds, stream.keys):
            if kind == "update":
                written.update(keys.tolist())
            elif written and set(keys.tolist()) & written:
                readback_seen = True
        assert readback_seen

    def test_rejects_bad_fraction_and_short_probe_stream(self):
        with pytest.raises(ConfigurationError):
            self.make(update_fraction=1.5)
        with pytest.raises(ConfigurationError):
            make_update_stream(
                self.base_keys, self.probe_keys[:8], 16, 64, 0.5, 42
            )


class TestSortedArrayOracle:
    def test_base_positions_then_updates_win(self):
        keys = np.asarray([2, 5, 9], dtype=np.uint64)
        oracle = SortedArrayOracle(keys)
        np.testing.assert_array_equal(
            oracle.lookup(np.asarray([2, 9, 7], dtype=np.uint64)),
            np.asarray([0, 2, -1], dtype=np.int64),
        )
        oracle.apply(
            np.asarray([5, 7], dtype=np.uint64),
            np.asarray([3, 4], dtype=np.int64),
        )
        np.testing.assert_array_equal(
            oracle.lookup(np.asarray([5, 7, 2], dtype=np.uint64)),
            np.asarray([3, 4, 0], dtype=np.int64),
        )

    def test_later_entries_win_within_a_batch(self):
        oracle = SortedArrayOracle(np.asarray([1], dtype=np.uint64))
        oracle.apply(
            np.asarray([1, 1], dtype=np.uint64),
            np.asarray([10, 11], dtype=np.int64),
        )
        assert oracle.lookup(np.asarray([1], dtype=np.uint64))[0] == 11

    def test_rejects_unsorted_base_and_ragged_batch(self):
        with pytest.raises(ConfigurationError):
            SortedArrayOracle(np.asarray([3, 2], dtype=np.uint64))
        oracle = SortedArrayOracle(np.asarray([1, 2], dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            oracle.apply(
                np.asarray([1], dtype=np.uint64),
                np.asarray([1, 2], dtype=np.int64),
            )
