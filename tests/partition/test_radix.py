"""Radix partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.column import VirtualSortedColumn
from repro.errors import ConfigurationError
from repro.partition.bits import PartitionBits, choose_partition_bits
from repro.partition.radix import RadixPartitioner, partition_and_verify


@pytest.fixture
def partitioner():
    return RadixPartitioner(PartitionBits(shift=4, bits=4))


def random_keys(rng, count=1000):
    return rng.integers(0, 2**16, size=count).astype(np.uint64)


class TestPartition:
    def test_preserves_multiset(self, partitioner, rng):
        keys = random_keys(rng)
        output = partitioner.partition(keys)
        assert np.array_equal(np.sort(output.keys), np.sort(keys))

    def test_partitions_contiguous(self, partitioner, rng):
        keys = random_keys(rng)
        output, ok = partition_and_verify(partitioner, keys)
        assert ok

    def test_offsets_consistent(self, partitioner, rng):
        keys = random_keys(rng)
        output = partitioner.partition(keys)
        assert output.offsets[0] == 0
        assert output.offsets[-1] == len(keys)
        assert np.all(np.diff(output.offsets) >= 0)

    def test_partition_slice_contents(self, partitioner, rng):
        keys = random_keys(rng)
        output = partitioner.partition(keys)
        for partition in range(output.num_partitions):
            chunk = output.keys[output.partition_slice(partition)]
            if len(chunk):
                ids = partitioner.bits.partition_of(chunk)
                assert np.all(ids == partition)

    def test_stability_within_partition(self, partitioner):
        """The linear allocator hands out slots in arrival order."""
        keys = np.array([16, 18, 17, 16], dtype=np.uint64)  # all partition 1
        source = np.arange(4, dtype=np.int64)
        output = partitioner.partition(keys, source_indices=source)
        assert output.keys.tolist() == [16, 18, 17, 16]
        assert output.source_indices.tolist() == [0, 1, 2, 3]

    def test_source_indices_track_keys(self, partitioner, rng):
        keys = random_keys(rng)
        output = partitioner.partition(keys)
        assert np.array_equal(keys[output.source_indices], output.keys)

    def test_custom_source_indices(self, partitioner, rng):
        keys = random_keys(rng, 100)
        source = np.arange(1000, 1100, dtype=np.int64)
        output = partitioner.partition(keys, source_indices=source)
        assert set(output.source_indices.tolist()) == set(source.tolist())

    def test_length_mismatch_rejected(self, partitioner):
        with pytest.raises(ConfigurationError):
            partitioner.partition(
                np.zeros(3, dtype=np.uint64),
                source_indices=np.zeros(2, dtype=np.int64),
            )

    def test_empty_input(self, partitioner):
        output = partitioner.partition(np.empty(0, dtype=np.uint64))
        assert len(output.keys) == 0
        assert output.offsets[-1] == 0


class TestCostModel:
    def test_two_pass_traffic(self, partitioner):
        counters = partitioner.partition_counters(1000, tuple_bytes=16)
        assert counters.gpu_memory_bytes == 1000 * 16 * 2

    def test_rejects_negative(self, partitioner):
        with pytest.raises(ConfigurationError):
            partitioner.partition_counters(-1)


class TestLocality:
    def test_partitioned_keys_improve_position_locality(self, rng):
        """After partitioning, neighbouring keys index nearby positions --
        the property that restores TLB hits (Section 4.2)."""
        column = VirtualSortedColumn(2**18, stride=4)
        bits = choose_partition_bits(column, 256, ignored_lsb=4)
        partitioner = RadixPartitioner(bits)
        positions = rng.integers(0, 2**18, size=4096)
        keys = column.key_at(positions)
        output = partitioner.partition(keys)
        shuffled_jumps = np.abs(np.diff(column.rank_of(keys))).mean()
        partitioned_jumps = np.abs(np.diff(column.rank_of(output.keys))).mean()
        assert partitioned_jumps < shuffled_jumps / 10


@settings(max_examples=25, deadline=None)
@given(
    shift=st.integers(min_value=0, max_value=12),
    bits=st.integers(min_value=1, max_value=10),
    count=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_stable_order_matches_argsort(shift, bits, count, seed):
    """The packed-sort scatter equals the stable argsort it replaced."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**40, size=count).astype(np.uint64)
    partitioner = RadixPartitioner(PartitionBits(shift=shift, bits=bits))
    partitions = partitioner.bits.partition_of(keys)
    order = partitioner._stable_order(partitions, len(keys))
    assert np.array_equal(order, np.argsort(partitions, kind="stable"))


def test_stable_order_wide_id_fallback(rng):
    """When id + position bits exceed an int64, the argsort path is used
    and still yields a stable order."""
    import types

    partitioner = RadixPartitioner(
        types.SimpleNamespace(num_partitions=2**60)
    )
    partitions = rng.integers(0, 2**31, size=200).astype(np.uint64)
    order = partitioner._stable_order(partitions, len(partitions))
    assert np.array_equal(order, np.argsort(partitions, kind="stable"))


@settings(max_examples=25, deadline=None)
@given(
    shift=st.integers(min_value=0, max_value=12),
    bits=st.integers(min_value=1, max_value=10),
    count=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_partition_properties(shift, bits, count, seed):
    """Multiset preserved, ids sorted, offsets == histogram -- always."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**40, size=count).astype(np.uint64)
    partitioner = RadixPartitioner(PartitionBits(shift=shift, bits=bits))
    output = partitioner.partition(keys)
    assert np.array_equal(np.sort(output.keys), np.sort(keys))
    ids = partitioner.bits.partition_of(output.keys)
    assert np.all(np.diff(ids) >= 0) if len(ids) > 1 else True
    histogram = np.bincount(
        partitioner.bits.partition_of(keys),
        minlength=partitioner.bits.num_partitions,
    )
    assert np.array_equal(np.diff(output.offsets), histogram)
