"""Partition-bit selection (paper Section 4.2)."""

import numpy as np
import pytest

from repro.data.column import MaterializedColumn, VirtualSortedColumn
from repro.errors import ConfigurationError
from repro.partition.bits import PartitionBits, choose_partition_bits


class TestPartitionBits:
    def test_partition_of(self):
        bits = PartitionBits(shift=4, bits=3)
        keys = np.array([0, 16, 32, 128], dtype=np.uint64)
        assert bits.partition_of(keys).tolist() == [0, 1, 2, 0]

    def test_num_partitions(self):
        assert PartitionBits(shift=0, bits=11).num_partitions == 2048

    def test_offset_applied(self):
        bits = PartitionBits(shift=0, bits=2, offset=100)
        assert bits.partition_of(np.array([101], dtype=np.uint64))[0] == 1

    def test_range_bounded(self):
        bits = PartitionBits(shift=2, bits=4)
        keys = np.arange(0, 10_000, 7, dtype=np.uint64)
        partitions = bits.partition_of(keys)
        assert partitions.min() >= 0
        assert partitions.max() < 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionBits(shift=-1, bits=4)
        with pytest.raises(ConfigurationError):
            PartitionBits(shift=0, bits=0)
        with pytest.raises(ConfigurationError):
            PartitionBits(shift=0, bits=40)
        with pytest.raises(ConfigurationError):
            PartitionBits(shift=0, bits=4, offset=-1)


class TestChoosePartitionBits:
    def test_paper_configuration(self):
        """2048 partitions over a paper-scale domain, 4 LSBs ignored."""
        column = VirtualSortedColumn(2**28, stride=4)
        bits = choose_partition_bits(column, 2048, ignored_lsb=4)
        assert bits.num_partitions == 2048
        # The top used bit splits the key domain.
        span_bits = (column.max_key - column.min_key).bit_length()
        assert bits.shift + bits.bits == span_bits

    def test_ignored_lsb_floor(self):
        # A tiny domain cannot give 2048 partitions above the ignored bits.
        column = MaterializedColumn(
            np.arange(0, 256, 4, dtype=np.uint64)
        )
        bits = choose_partition_bits(column, 2048, ignored_lsb=4)
        assert bits.shift >= 4
        assert bits.num_partitions <= 2048

    def test_partitions_split_domain_evenly(self):
        column = VirtualSortedColumn(2**20, stride=4)
        bits = choose_partition_bits(column, 64)
        keys = column.key_at(np.arange(0, 2**20, 97))
        partitions = bits.partition_of(keys)
        counts = np.bincount(partitions, minlength=64)
        assert counts.min() > 0
        assert counts.max() / counts.mean() < 1.5

    def test_partition_ids_monotone_in_key(self):
        """Partitions must cover contiguous key ranges (the property the
        windowed INLJ's locality rests on)."""
        column = VirtualSortedColumn(2**16, stride=4)
        bits = choose_partition_bits(column, 256)
        keys = column.key_at(np.arange(2**16))
        partitions = bits.partition_of(keys)
        assert np.all(np.diff(partitions) >= 0)

    def test_offset_is_min_key(self):
        column = VirtualSortedColumn(2**12, stride=4, offset=10_000)
        bits = choose_partition_bits(column, 16)
        assert bits.offset == column.min_key

    def test_rejects_non_power_of_two(self):
        column = VirtualSortedColumn(2**12)
        with pytest.raises(ConfigurationError):
            choose_partition_bits(column, 1000)

    def test_rejects_one_partition(self):
        column = VirtualSortedColumn(2**12)
        with pytest.raises(ConfigurationError):
            choose_partition_bits(column, 1)

    def test_rejects_negative_lsb(self):
        column = VirtualSortedColumn(2**12)
        with pytest.raises(ConfigurationError):
            choose_partition_bits(column, 16, ignored_lsb=-1)

    def test_rejects_zero_span(self):
        column = MaterializedColumn(np.array([5], dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            choose_partition_bits(column, 16)
