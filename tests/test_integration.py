"""Cross-layer integration tests: determinism, consistency, composition.

These tests exercise paths that span multiple subsystems -- the kind of
seams unit tests miss: seed-to-result determinism across the whole stack,
agreement between the planner's choice and direct estimates, and the
pipeline layer driving the same operators the experiments use.
"""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.data.generator import WorkloadConfig, make_workload
from repro.engine.pipeline import windowed_inlj_pipeline
from repro.engine.planner import QueryPlanner
from repro.experiments.common import (
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import ALL_INDEX_TYPES, RadixSplineIndex
from repro.join.base import QueryEnvironment, reference_join
from repro.join.inlj import IndexNestedLoopJoin
from repro.join.window import WindowedINLJ
from repro.units import GIB, MIB

SIM = SimulationConfig(probe_sample=2**11)


class TestDeterminism:
    """Same seed => bit-identical outcomes, across every layer."""

    def test_workload_generation(self):
        config = WorkloadConfig(r_tuples=2**14, s_tuples=2**10, seed=99)
        first_rel, first_probes = make_workload(config)
        second_rel, second_probes = make_workload(config)
        assert np.array_equal(first_probes.keys, second_probes.keys)
        positions = np.arange(2**14)
        assert np.array_equal(
            first_rel.column.key_at(positions),
            second_rel.column.key_at(positions),
        )

    def test_seed_changes_workload(self):
        base = WorkloadConfig(r_tuples=2**14, s_tuples=2**10, seed=1)
        other = WorkloadConfig(r_tuples=2**14, s_tuples=2**10, seed=2)
        __, first = make_workload(base)
        __, second = make_workload(other)
        assert not np.array_equal(first.keys, second.keys)

    @pytest.mark.parametrize(
        "operator", ["naive", "windowed"], ids=["naive", "windowed"]
    )
    def test_estimates_reproducible(self, operator):
        def run_once():
            env = make_environment(
                V100_NVLINK2,
                gib_to_tuples(4.0),
                index_cls=RadixSplineIndex,
                sim=SIM,
            )
            if operator == "naive":
                return IndexNestedLoopJoin(env.index).estimate(env).seconds
            join = WindowedINLJ(
                env.index, default_partitioner(env.column),
                window_bytes=8 * MIB,
            )
            return join.estimate(env).seconds

        assert run_once() == run_once()

    def test_planner_reproducible(self):
        workload = WorkloadConfig(r_tuples=int(8 * GIB) // 8)
        first = QueryPlanner(V100_NVLINK2, sim=SIM).plan(
            workload, index_types=(RadixSplineIndex,)
        )
        second = QueryPlanner(V100_NVLINK2, sim=SIM).plan(
            workload, index_types=(RadixSplineIndex,)
        )
        assert first.chosen.name == second.chosen.name
        assert first.chosen.cost.seconds == second.chosen.cost.seconds


class TestPlannerConsistency:
    def test_planner_choice_matches_direct_estimates(self):
        """The planner must pick exactly what direct estimation ranks
        first -- no hidden state between the two paths."""
        workload = WorkloadConfig(r_tuples=int(32 * GIB) // 8)
        choice = QueryPlanner(V100_NVLINK2, sim=SIM).plan(
            workload, index_types=(RadixSplineIndex,)
        )
        env = QueryEnvironment(
            V100_NVLINK2, workload, index_cls=RadixSplineIndex, sim=SIM
        )
        direct = WindowedINLJ(
            env.index, default_partitioner(env.column)
        ).estimate(env)
        by_name = {c.name: c for c in choice.candidates}
        planner_cost = by_name["windowed INLJ over RadixSpline"].cost
        assert planner_cost.seconds == pytest.approx(
            direct.seconds, rel=1e-9
        )


class TestPipelineVsOperators:
    @pytest.mark.parametrize(
        "index_cls", ALL_INDEX_TYPES, ids=[c.__name__ for c in ALL_INDEX_TYPES]
    )
    def test_pipeline_equals_windowed_operator(self, index_cls):
        """The explicit operator pipeline and the WindowedINLJ operator
        are two implementations of the same Section 5 dataflow."""
        config = WorkloadConfig(r_tuples=2**13, s_tuples=2**10, seed=5)
        relation, probes = make_workload(config)
        partitioner = default_partitioner(relation.column)
        index = index_cls(relation)
        via_operator = WindowedINLJ(
            index, partitioner, window_bytes=2048
        ).join(probes.keys)
        via_pipeline = windowed_inlj_pipeline(
            probes.keys, index, partitioner, window_bytes=2048,
            batch_tuples=100,
        ).run()
        assert via_operator.equals(via_pipeline)
        assert via_operator.equals(
            reference_join(relation.column, probes.keys)
        )


class TestCountersAreCoherent:
    def test_every_estimate_validates(self):
        """Counters of every operator estimate satisfy the conservation
        checks (hits <= accesses, misses <= remote, non-negative)."""
        from repro.join.hash_join import HashJoin
        from repro.join.partitioned import PartitionedINLJ

        workload = WorkloadConfig(r_tuples=int(2 * GIB) // 8)
        env = make_environment(
            V100_NVLINK2, workload.r_tuples, index_cls=RadixSplineIndex,
            sim=SIM,
        )
        estimates = [
            IndexNestedLoopJoin(env.index).estimate(env),
        ]
        env2 = make_environment(
            V100_NVLINK2, workload.r_tuples, index_cls=RadixSplineIndex,
            sim=SIM,
        )
        estimates.append(
            PartitionedINLJ(
                env2.index, default_partitioner(env2.column)
            ).estimate(env2)
        )
        env3 = make_environment(V100_NVLINK2, workload.r_tuples, sim=SIM)
        estimates.append(HashJoin(env3.relation).estimate(env3))
        for cost in estimates:
            cost.counters.validate()
            assert cost.seconds > 0

    def test_result_volume_follows_match_rate(self):
        full = make_environment(
            V100_NVLINK2, gib_to_tuples(2.0), index_cls=RadixSplineIndex,
            sim=SIM,
        )
        full_cost = IndexNestedLoopJoin(full.index).estimate(full)
        partial_workload = WorkloadConfig(
            r_tuples=gib_to_tuples(2.0), match_rate=0.5
        )
        partial = QueryEnvironment(
            V100_NVLINK2, partial_workload, index_cls=RadixSplineIndex,
            sim=SIM,
        )
        partial_cost = IndexNestedLoopJoin(partial.index).estimate(partial)
        assert partial_cost.counters.result_bytes == pytest.approx(
            full_cost.counters.result_bytes / 2
        )
