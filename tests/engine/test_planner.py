"""Cost-based access-path planner."""

import pytest

from repro.config import SimulationConfig
from repro.data.generator import WorkloadConfig
from repro.engine.planner import QueryPlanner
from repro.errors import ConfigurationError
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import (
    BPlusTreeIndex,
    HarmoniaIndex,
    RadixSplineIndex,
)
from repro.units import GIB

SIM = SimulationConfig(probe_sample=2**10)


@pytest.fixture
def planner():
    return QueryPlanner(V100_NVLINK2, sim=SIM)


def workload_at(gib, **kwargs):
    return WorkloadConfig(r_tuples=int(gib * GIB) // 8, **kwargs)


class TestPlanChoice:
    def test_hash_join_always_candidate(self, planner):
        choice = planner.plan(workload_at(2.0), index_types=())
        assert choice.chosen.name.startswith("hash join")
        assert len(choice.candidates) == 1

    def test_index_join_wins_at_low_selectivity(self, planner):
        """Section 6: below ~8% selectivity, the INLJ should win."""
        choice = planner.plan(
            workload_at(48.0), index_types=(RadixSplineIndex,)
        )
        assert "windowed INLJ" in choice.chosen.name

    def test_hash_join_wins_at_high_selectivity(self, planner):
        choice = planner.plan(
            workload_at(1.0), index_types=(RadixSplineIndex,)
        )
        assert choice.chosen.name.startswith("hash join")

    def test_radix_spline_preferred_among_indexes(self, planner):
        """Section 6 recommends the RadixSpline."""
        choice = planner.plan(
            workload_at(48.0),
            index_types=(RadixSplineIndex, HarmoniaIndex, BPlusTreeIndex),
        )
        assert choice.chosen.index_name == "RadixSpline"

    def test_update_requirement_excludes_static_indexes(self, planner):
        """Section 6: "Harmonia is a good alternative if the index must
        support inserts and updates"."""
        choice = planner.plan(
            workload_at(48.0),
            index_types=(RadixSplineIndex, HarmoniaIndex),
            require_updates=True,
        )
        assert choice.chosen.index_name == "Harmonia"
        assert any("excluded" in note for note in choice.notes)

    def test_candidates_ranked(self, planner):
        choice = planner.plan(
            workload_at(16.0), index_types=(RadixSplineIndex, HarmoniaIndex)
        )
        throughputs = [c.queries_per_second for c in choice.candidates]
        assert throughputs == sorted(throughputs, reverse=True)
        assert choice.chosen is choice.candidates[0]

    def test_include_variants(self, planner):
        choice = planner.plan(
            workload_at(8.0),
            index_types=(RadixSplineIndex,),
            include_variants=True,
        )
        names = [c.name for c in choice.candidates]
        assert any("naive INLJ" in name for name in names)
        assert any("materializing" in name for name in names)

    def test_capacity_limited_index_skipped(self, planner):
        """An index that does not fit is skipped with a note, like the
        paper's reduced B+tree/Harmonia limits."""
        choice = planner.plan(
            WorkloadConfig(r_tuples=int(120 * GIB) // 8),
            index_types=(HarmoniaIndex,),
        )
        # Harmonia at 120 GiB fits (|R| + ~1.03|R| < 256 GiB), so expect a
        # real candidate; push past the wall with the payload B+tree.
        assert any("Harmonia" in (c.index_name or "") for c in choice.candidates)

    def test_selectivity_note_present(self, planner):
        choice = planner.plan(workload_at(8.0), index_types=())
        assert any("selectivity" in note for note in choice.notes)

    def test_explain_output(self, planner):
        choice = planner.plan(
            workload_at(16.0), index_types=(RadixSplineIndex,)
        )
        text = choice.explain()
        assert "chosen:" in text
        assert "Q/s" in text
        assert "*" in text


class TestPlannerValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            QueryPlanner(V100_NVLINK2, window_bytes=0)
