"""Streaming operator pipeline."""

import numpy as np
import pytest

from repro.data.generator import WorkloadConfig, make_workload
from repro.engine.pipeline import (
    FilterOperator,
    IndexProbeOperator,
    MaterializeOperator,
    Pipeline,
    ScanOperator,
    TupleBatch,
    WindowOperator,
    windowed_inlj_pipeline,
)
from repro.errors import ConfigurationError, WorkloadError
from repro.indexes import ALL_INDEX_TYPES, RadixSplineIndex
from repro.join.base import reference_join
from repro.partition.bits import choose_partition_bits
from repro.partition.radix import RadixPartitioner


def drain(operator, upstream):
    return list(operator.process(iter(upstream)))


def batch_of(keys, start=0):
    keys = np.asarray(keys, dtype=np.uint64)
    return TupleBatch(
        keys=keys, indices=np.arange(start, start + len(keys), dtype=np.int64)
    )


class TestTupleBatch:
    def test_length_checked(self):
        with pytest.raises(WorkloadError):
            TupleBatch(
                keys=np.zeros(2, dtype=np.uint64),
                indices=np.zeros(3, dtype=np.int64),
            )

    def test_positions_checked(self):
        with pytest.raises(WorkloadError):
            TupleBatch(
                keys=np.zeros(2, dtype=np.uint64),
                indices=np.zeros(2, dtype=np.int64),
                positions=np.zeros(1, dtype=np.int64),
            )


class TestScanOperator:
    def test_batches_cover_stream(self):
        keys = np.arange(100, dtype=np.uint64)
        batches = drain(ScanOperator(keys, batch_tuples=32), [])
        assert [len(b) for b in batches] == [32, 32, 32, 4]
        assert np.concatenate([b.keys for b in batches]).tolist() == list(
            range(100)
        )

    def test_indices_are_stream_positions(self):
        keys = np.arange(10, dtype=np.uint64) * 5
        batches = drain(ScanOperator(keys, batch_tuples=4), [])
        assert batches[1].indices.tolist() == [4, 5, 6, 7]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            ScanOperator(np.zeros(1, dtype=np.uint64), batch_tuples=0)


class TestFilterOperator:
    def test_filters_rows(self):
        operator = FilterOperator(lambda keys: keys % 2 == 0)
        batches = drain(operator, [batch_of([1, 2, 3, 4])])
        assert batches[0].keys.tolist() == [2, 4]
        assert batches[0].indices.tolist() == [1, 3]

    def test_drops_empty_batches(self):
        operator = FilterOperator(lambda keys: keys > 100)
        assert drain(operator, [batch_of([1, 2])]) == []

    def test_bad_predicate_shape(self):
        operator = FilterOperator(lambda keys: np.array([True]))
        with pytest.raises(WorkloadError):
            drain(operator, [batch_of([1, 2])])


class TestWindowOperator:
    def test_regroups_to_window_size(self):
        operator = WindowOperator(window_bytes=4 * 8)
        batches = drain(
            operator, [batch_of([1, 2, 3]), batch_of([4, 5, 6, 7], start=3)]
        )
        assert [len(b) for b in batches] == [4, 3]
        assert batches[0].keys.tolist() == [1, 2, 3, 4]

    def test_exact_fit_no_empty_tail(self):
        operator = WindowOperator(window_bytes=2 * 8)
        batches = drain(operator, [batch_of([1, 2, 3, 4])])
        assert [len(b) for b in batches] == [2, 2]

    def test_large_input_batch_split(self):
        operator = WindowOperator(window_bytes=3 * 8)
        batches = drain(operator, [batch_of(list(range(10)))])
        assert [len(b) for b in batches] == [3, 3, 3, 1]

    def test_indices_preserved(self):
        operator = WindowOperator(window_bytes=2 * 8)
        batches = drain(operator, [batch_of([9, 8, 7], start=5)])
        assert batches[0].indices.tolist() == [5, 6]
        assert batches[1].indices.tolist() == [7]

    def test_window_equal_to_batch_size_passes_through(self):
        # Upstream batches already have exactly the window size: each
        # must come out unchanged (and uncopied), with no empty tail.
        operator = WindowOperator(window_bytes=4 * 8)
        upstream = [batch_of([1, 2, 3, 4]), batch_of([5, 6, 7, 8], start=4)]
        batches = drain(operator, upstream)
        assert [len(b) for b in batches] == [4, 4]
        assert batches[0].keys.tolist() == [1, 2, 3, 4]
        assert batches[1].keys.tolist() == [5, 6, 7, 8]
        assert batches[1].indices.tolist() == [4, 5, 6, 7]
        # The contiguous fast path slices, never concatenates.
        assert batches[0].keys.base is upstream[0].keys

    def test_final_partial_window_of_one_tuple(self):
        operator = WindowOperator(window_bytes=4 * 8)
        batches = drain(operator, [batch_of(list(range(9)))])
        assert [len(b) for b in batches] == [4, 4, 1]
        assert batches[-1].keys.tolist() == [8]
        assert batches[-1].indices.tolist() == [8]

    def test_partial_tail_spanning_input_batches(self):
        # The 1-tuple tail accumulates across two upstream batches.
        operator = WindowOperator(window_bytes=4 * 8)
        batches = drain(operator, [batch_of([1, 2, 3]), batch_of([4, 5], start=3)])
        assert [len(b) for b in batches] == [4, 1]
        assert batches[-1].keys.tolist() == [5]

    def test_zero_batch_upstream_yields_nothing(self):
        operator = WindowOperator(window_bytes=4 * 8)
        assert drain(operator, []) == []


class TestProbeAndMaterialize:
    def test_probe_sets_positions(self, small_relation, small_probes):
        index = RadixSplineIndex(small_relation)
        operator = IndexProbeOperator(index)
        batches = drain(operator, [batch_of(small_probes.keys[:16])])
        assert batches[0].positions is not None

    def test_materialize_requires_probed_batches(self):
        sink = MaterializeOperator()
        with pytest.raises(WorkloadError):
            drain(sink, [batch_of([1])])


class TestPipeline:
    @pytest.mark.parametrize(
        "index_cls", ALL_INDEX_TYPES, ids=[c.__name__ for c in ALL_INDEX_TYPES]
    )
    def test_full_pipeline_matches_reference(self, index_cls):
        config = WorkloadConfig(
            r_tuples=2**14, s_tuples=2**11, match_rate=0.8, seed=2
        )
        relation, probes = make_workload(config)
        partitioner = RadixPartitioner(
            choose_partition_bits(relation.column, 64, ignored_lsb=4)
        )
        pipeline = windowed_inlj_pipeline(
            probes.keys,
            index_cls(relation),
            partitioner,
            window_bytes=4096,
            batch_tuples=300,
        )
        result = pipeline.run()
        assert result.equals(reference_join(relation.column, probes.keys))

    def test_pipeline_with_filter(self, small_relation, small_probes):
        partitioner = RadixPartitioner(
            choose_partition_bits(small_relation.column, 64, ignored_lsb=4)
        )
        threshold = small_relation.column.key_at(
            np.array([small_relation.num_tuples // 2])
        )[0]
        pipeline = windowed_inlj_pipeline(
            small_probes.keys,
            RadixSplineIndex(small_relation),
            partitioner,
            window_bytes=2048,
            predicate=lambda keys: keys < threshold,
        )
        result = pipeline.run()
        kept = small_probes.keys < threshold
        reference = reference_join(
            small_relation.column,
            np.where(kept, small_probes.keys, np.uint64(2**63)),
        )
        assert result.equals(reference)

    def test_explain(self, small_relation, small_probes):
        partitioner = RadixPartitioner(
            choose_partition_bits(small_relation.column, 64, ignored_lsb=4)
        )
        pipeline = windowed_inlj_pipeline(
            small_probes.keys,
            RadixSplineIndex(small_relation),
            partitioner,
            window_bytes=2048,
        )
        text = pipeline.explain()
        assert "ScanOperator" in text and "MaterializeOperator" in text

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            Pipeline([])

    def test_sink_must_be_materialize(self, small_probes):
        pipeline = Pipeline([ScanOperator(small_probes.keys)])
        with pytest.raises(ConfigurationError):
            pipeline.run()

    def test_sink_validated_before_pulling_the_stream(self, small_probes):
        # A misconfigured pipeline must fail fast: no batch may be
        # pulled (and no work done) before the sink check raises.
        pulled = []

        def spy(keys):
            pulled.append(len(keys))
            return np.ones(len(keys), dtype=bool)

        pipeline = Pipeline(
            [ScanOperator(small_probes.keys), FilterOperator(spy)]
        )
        with pytest.raises(ConfigurationError):
            pipeline.run()
        assert pulled == []

    def test_empty_stream(self, small_relation):
        partitioner = RadixPartitioner(
            choose_partition_bits(small_relation.column, 64, ignored_lsb=4)
        )
        pipeline = windowed_inlj_pipeline(
            np.empty(0, dtype=np.uint64),
            RadixSplineIndex(small_relation),
            partitioner,
            window_bytes=2048,
        )
        assert len(pipeline.run()) == 0
