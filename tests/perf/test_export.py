"""CSV/JSON export of experiment results."""

import csv
import io

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.perf.export import (
    load_result_json,
    result_to_csv,
    result_to_json,
    result_to_rows,
    write_result,
)
from repro.perf.report import Series


@pytest.fixture
def result():
    result = ExperimentResult(
        name="fig0",
        title="demo",
        x_label="R (GiB)",
        paper_expectation="something",
    )
    a = Series("alpha")
    a.append(1.0, 2.0)
    a.append(4.0, 8.0)
    b = Series("beta")
    b.append(1.0, 3.0)
    result.series = [a, b]
    result.notes.append("a note")
    return result


class TestRows:
    def test_one_row_per_point(self, result):
        rows = result_to_rows(result)
        assert len(rows) == 3
        assert rows[0] == {
            "experiment": "fig0", "series": "alpha", "x": 1.0, "y": 2.0
        }


class TestCsv:
    def test_round_trips_through_csv_reader(self, result):
        text = result_to_csv(result)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 3
        assert parsed[2]["series"] == "beta"
        assert float(parsed[1]["y"]) == 8.0


class TestJson:
    def test_document_structure(self, result):
        document = result_to_json(result)
        import json

        data = json.loads(document)
        assert data["name"] == "fig0"
        assert data["paper_expectation"] == "something"
        assert data["notes"] == ["a note"]
        assert data["series"][0]["x"] == [1.0, 4.0]


class TestWrite:
    def test_writes_both_files(self, result, tmp_path):
        paths = write_result(result, tmp_path)
        assert {p.suffix for p in paths} == {".csv", ".json"}
        assert all(p.exists() for p in paths)

    def test_load_back(self, result, tmp_path):
        write_result(result, tmp_path)
        data = load_result_json(tmp_path / "fig0.json")
        assert data["title"] == "demo"

    def test_creates_directory(self, result, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_result(result, target)
        assert (target / "fig0.csv").exists()

    def test_rejects_file_target(self, result, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        with pytest.raises(ConfigurationError):
            write_result(result, blocker)
