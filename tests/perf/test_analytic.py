"""Closed-form locality formulas."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hardware.tlb import LruTlb
from repro.perf.analytic import (
    expected_distinct,
    level_sweep_pages,
    midtree_sweep_pages,
    uniform_lru_misses,
)


class TestExpectedDistinct:
    def test_zero_samples(self):
        assert expected_distinct(0, 100) == 0.0

    def test_one_sample(self):
        assert expected_distinct(1, 100) == pytest.approx(1.0)

    def test_saturates_at_universe(self):
        assert expected_distinct(10**9, 50) == pytest.approx(50.0)

    def test_single_page_universe(self):
        assert expected_distinct(10, 1) == 1.0

    def test_matches_simulation(self, rng):
        universe, samples = 200, 500
        draws = rng.integers(0, universe, size=(64, samples))
        empirical = np.mean([len(np.unique(row)) for row in draws])
        analytic = expected_distinct(samples, universe)
        assert analytic == pytest.approx(empirical, rel=0.03)

    def test_numerically_stable_at_paper_scale(self):
        # 2^26 lookups over ~57k pages: must not overflow or lose mass.
        value = expected_distinct(2**26, 56832)
        assert value == pytest.approx(56832, rel=1e-6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            expected_distinct(-1, 10)
        with pytest.raises(ConfigurationError):
            expected_distinct(1, 0)


class TestUniformLruMisses:
    def test_fitting_working_set(self):
        assert uniform_lru_misses(10_000, pages=50, capacity=100) == 50

    def test_steady_state(self):
        misses = uniform_lru_misses(100_000, pages=400, capacity=100)
        assert misses == pytest.approx(75_000, rel=0.01)

    def test_agrees_with_event_simulator(self, rng):
        """The model's central cross-check: closed form vs exact LRU."""
        pages, capacity, accesses = 500, 128, 80_000
        tlb = LruTlb(entries=capacity)
        tlb.access_sequence(rng.integers(0, pages, accesses).tolist())
        analytic = uniform_lru_misses(accesses, pages, capacity)
        assert tlb.misses == pytest.approx(analytic, rel=0.05)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            uniform_lru_misses(-1, 10, 10)
        with pytest.raises(ConfigurationError):
            uniform_lru_misses(1, 0, 10)


class TestLevelSweepPages:
    def test_empty_cases(self):
        assert level_sweep_pages(0, 1000, 100) == 0.0
        assert level_sweep_pages(100, 0, 100) == 0.0

    def test_bounded_by_span(self):
        pages = level_sweep_pages(10**9, span_bytes=2**30, page_bytes=2**21)
        assert pages <= 2**30 / 2**21

    def test_bounded_by_lookups(self):
        pages = level_sweep_pages(10, span_bytes=2**40, page_bytes=2**21)
        assert pages <= 10 + 1e-9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            level_sweep_pages(-1, 100, 10)
        with pytest.raises(ConfigurationError):
            level_sweep_pages(1, 100, 0)


class TestMidtreeSweepPages:
    KWARGS = dict(page_bytes=2**21, l2_bytes=6 * 2**20, cacheline_bytes=128)

    def test_zero_cases(self):
        assert midtree_sweep_pages(0, 2**30, **self.KWARGS) == 0.0
        assert midtree_sweep_pages(100, 0, **self.KWARGS) == 0.0

    def test_includes_dense_sweep(self):
        span = 100 * 2**30
        pages = midtree_sweep_pages(2**22, span, **self.KWARGS)
        assert pages >= span / 2**21  # at least the data sweep

    def test_exceeds_plain_level_sweep(self):
        """Binary search touches more pages than a single-array sweep --
        its upper steps jump across the whole span (paper Fig. 6)."""
        span = 100 * 2**30
        flat = level_sweep_pages(2**22, span, 2**21)
        mid = midtree_sweep_pages(2**22, span, **self.KWARGS)
        assert mid > flat

    def test_grows_with_span(self):
        small = midtree_sweep_pages(2**22, 2**33, **self.KWARGS)
        large = midtree_sweep_pages(2**22, 2**37, **self.KWARGS)
        assert large > small

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            midtree_sweep_pages(1, 100, page_bytes=0, l2_bytes=1,
                                cacheline_bytes=128)


@settings(max_examples=40, deadline=None)
@given(
    samples=st.floats(min_value=0, max_value=1e9),
    universe=st.floats(min_value=1, max_value=1e9),
)
def test_expected_distinct_bounds(samples, universe):
    value = expected_distinct(samples, universe)
    assert 0 <= value <= min(samples, universe) + 1e-6
