"""Report formatting."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.report import Series, format_series_table, format_table


class TestSeries:
    def test_append(self):
        series = Series("x")
        series.append(1.0, 2.0)
        series.append(3.0, 4.0)
        assert len(series) == 2
        assert series.as_dict() == {1.0: 2.0, 3.0: 4.0}


class TestFormatTable:
    def test_basic(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.split("\n")
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_title(self):
        text = format_table(("a",), [("1",)], title="Table 1")
        assert text.startswith("Table 1")

    def test_column_alignment(self):
        text = format_table(("col",), [("x",), ("longer",)])
        lines = text.split("\n")
        assert len(lines[2]) == len(lines[3])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(("a", "b"), [("1",)])

    def test_rejects_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_table((), [])


class TestFormatSeriesTable:
    def test_shared_axis(self):
        a = Series("A")
        a.append(1, 10)
        a.append(2, 20)
        b = Series("B")
        b.append(2, 200)
        text = format_series_table([a, b], x_label="R")
        assert "A" in text and "B" in text
        # Missing point renders as '-'.
        first_data_row = text.split("\n")[2]
        assert "-" in first_data_row

    def test_sorted_x(self):
        a = Series("A")
        a.append(5, 1)
        a.append(1, 2)
        text = format_series_table([a], x_label="x")
        rows = text.split("\n")[2:]
        assert rows[0].startswith("1")
        assert rows[1].startswith("5")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            format_series_table([], x_label="x")
