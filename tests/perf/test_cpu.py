"""CPU baseline cost model."""

import pytest

from repro.data.generator import WorkloadConfig
from repro.errors import ConfigurationError
from repro.hardware.spec import V100_NVLINK2
from repro.perf.cpu import CpuCostModel
from repro.units import GIB


@pytest.fixture
def model():
    return CpuCostModel(V100_NVLINK2.cpu)


def workload_at(gib, **kwargs):
    return WorkloadConfig(r_tuples=int(gib * GIB) // 8, **kwargs)


class TestResourceTimes:
    def test_scan_is_bandwidth_bound(self, model):
        bandwidth = V100_NVLINK2.cpu.memory_bandwidth_bytes
        assert model.scan_time(bandwidth) == pytest.approx(1.0)

    def test_random_slower_than_sequential_per_byte(self, model):
        num_bytes = GIB
        accesses = num_bytes / 64
        assert model.random_time(accesses) > model.scan_time(num_bytes)

    def test_rejects_negative(self, model):
        with pytest.raises(ConfigurationError):
            model.scan_time(-1)
        with pytest.raises(ConfigurationError):
            model.random_time(-1)


class TestHashJoin:
    def test_scan_bound_at_large_r(self, model):
        cost = model.hash_join(workload_at(100.0))
        # Reading 100 GiB must dominate probing 2^26-entry structures.
        assert cost.breakdown["stream"] > 0
        assert cost.seconds >= cost.breakdown["stream"]

    def test_declines_with_r(self, model):
        small = model.hash_join(workload_at(8.0))
        large = model.hash_join(workload_at(64.0))
        assert large.seconds > small.seconds

    def test_skew_degenerates(self, model):
        flat = model.hash_join(workload_at(32.0))
        skewed = model.hash_join(workload_at(32.0, zipf_theta=1.75))
        assert skewed.seconds > 50 * flat.seconds


class TestIndexJoin:
    def test_independent_of_r_size(self, model):
        """The CPU INLJ cost is driven by |S| lookups, not |R| bytes --
        the transfer-volume argument of the paper's Fig. 1."""
        small = model.index_join(workload_at(8.0))
        large = model.index_join(workload_at(100.0))
        assert large.seconds == pytest.approx(small.seconds, rel=0.01)

    def test_beats_cpu_hash_join_at_low_selectivity(self, model):
        workload = workload_at(100.0)
        assert (
            model.index_join(workload).seconds
            < model.hash_join(workload).seconds
        )

    def test_hash_join_random_bound_at_scale(self, model):
        """On a CPU the large-R hash join is bound by its random probes,
        not by streaming the inputs."""
        cost = model.hash_join(workload_at(64.0))
        assert cost.breakdown["random"] > 10 * cost.breakdown["stream"]

    def test_rejects_bad_lookup_cost(self, model):
        with pytest.raises(ConfigurationError):
            model.index_join(workload_at(1.0), accesses_per_lookup=0)


class TestPaperNarrative:
    def test_gpu_scans_on_level_playing_field(self):
        """Section 2.1: the GPU "scans tables on a level playing field
        with CPUs" -- streaming the same bytes takes comparable time on
        either side, because CPU memory feeds both."""
        from repro.perf.model import CostModel

        num_bytes = 64 * GIB
        cpu_seconds = CpuCostModel(V100_NVLINK2.cpu).scan_time(num_bytes)
        gpu_seconds = CostModel(V100_NVLINK2).scan_time(num_bytes)
        ratio = gpu_seconds / cpu_seconds
        assert 0.5 < ratio < 2.0  # no order-of-magnitude gap either way

    def test_gpu_index_join_beats_cpu_at_low_selectivity(self):
        """The paper's point: selectivity + fast interconnects is where
        the GPU wins big."""
        from repro.config import SimulationConfig
        from repro.experiments.common import default_partitioner
        from repro.join.base import QueryEnvironment
        from repro.join.window import WindowedINLJ
        from repro.indexes import RadixSplineIndex
        from repro.units import MIB

        workload = workload_at(100.0)
        cpu = CpuCostModel(V100_NVLINK2.cpu).hash_join(workload)
        env = QueryEnvironment(
            V100_NVLINK2,
            workload,
            index_cls=RadixSplineIndex,
            sim=SimulationConfig(probe_sample=2**12),
        )
        join = WindowedINLJ(
            env.index, default_partitioner(env.column), window_bytes=32 * MIB
        )
        gpu = join.estimate(env)
        assert gpu.seconds < cpu.seconds / 1.5
