"""Cost model pricing."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.counters import PerfCounters
from repro.hardware.spec import A100_PCIE4, V100_NVLINK2
from repro.perf.model import CalibrationConstants, CostModel, QueryCost
from repro.units import GB, GIB


@pytest.fixture
def model():
    return CostModel(V100_NVLINK2)


def counters_with(**kwargs):
    counters = PerfCounters()
    for key, value in kwargs.items():
        setattr(counters, key, value)
    return counters


class TestResourceTimes:
    def test_scan_capped_by_cpu_bandwidth(self, model):
        # POWER9 memory (110 GB/s) beats NVLink 2.0 (75 GB/s), so the
        # link is the scan bottleneck here.
        seconds = model.scan_time(75 * GB)
        assert seconds == pytest.approx(1.0, rel=0.01)

    def test_scan_cpu_bound_on_fast_links(self):
        from repro.hardware.spec import GH200_C2C

        model = CostModel(GH200_C2C)
        # NVLink C2C (450 GB/s) exceeds Grace memory bandwidth (384 GB/s):
        # the CPU side caps the scan (paper Section 2.1).
        seconds = model.scan_time(384 * GB)
        assert seconds == pytest.approx(1.0, rel=0.01)

    def test_zero_inputs(self, model):
        assert model.scan_time(0) == 0.0
        assert model.remote_random_time(0) == 0.0
        assert model.gpu_memory_time(0) == 0.0
        assert model.compute_time(0) == 0.0
        assert model.translation_stall_time(0) == 0.0

    def test_gpu_random_slower_than_bulk(self, model):
        assert model.gpu_memory_time(GIB, random=True) > model.gpu_memory_time(
            GIB, random=False
        )

    def test_translation_stall_is_three_us_over_concurrency(self, model):
        requests = 1_000_000
        expected = requests * 3e-6 / model.constants.translation_concurrency
        assert model.translation_stall_time(requests) == pytest.approx(expected)


class TestStagePricing:
    def test_roofline_takes_max(self, model):
        interconnect_heavy = counters_with(remote_accesses=1e9)
        combined = counters_with(
            remote_accesses=1e9, gpu_memory_bytes=1.0, simt_instructions=1.0
        )
        assert model.probe_stage_time(combined) == pytest.approx(
            model.probe_stage_time(interconnect_heavy), rel=0.01
        )

    def test_stall_adds_on_top(self, model):
        base = counters_with(remote_accesses=1e9)
        stalled = counters_with(
            remote_accesses=1e9, translation_requests=1e8
        )
        assert model.probe_stage_time(stalled) > model.probe_stage_time(base)

    def test_price_stages_sums(self, model):
        a = counters_with(remote_accesses=1e8)
        b = counters_with(scan_bytes=GIB)
        cost = model.price_stages([("first", a), ("second", b)])
        assert cost.seconds == pytest.approx(
            cost.breakdown["first"] + cost.breakdown["second"]
        )
        assert cost.counters.remote_accesses == 1e8
        assert cost.counters.scan_bytes == GIB

    def test_launch_overhead_per_stage(self, model):
        empty = PerfCounters()
        one = model.price_stages([("a", empty)]).seconds
        two = model.price_stages([("a", empty), ("b", empty)]).seconds
        assert two == pytest.approx(
            one + model.constants.kernel_launch_seconds, rel=0.01
        )

    def test_breakdown_keys(self, model):
        breakdown = model.breakdown(counters_with(remote_accesses=10))
        assert set(breakdown) == {
            "interconnect_random",
            "interconnect_scan",
            "gpu_memory",
            "compute",
            "translation_stall",
        }


class TestQueryCost:
    def test_throughput(self):
        assert QueryCost(seconds=0.5).queries_per_second == 2.0

    def test_zero_seconds(self):
        assert QueryCost(seconds=0.0).queries_per_second == float("inf")


class TestCrossMachine:
    def test_pcie_random_fetches_cost_more(self):
        v100 = CostModel(V100_NVLINK2)
        a100 = CostModel(A100_PCIE4)
        counters = counters_with(remote_accesses=1e8)
        assert a100.probe_stage_time(counters) > v100.probe_stage_time(counters)

    def test_a100_gpu_memory_faster(self):
        v100 = CostModel(V100_NVLINK2)
        a100 = CostModel(A100_PCIE4)
        counters = counters_with(
            gpu_memory_accesses=1e9, gpu_memory_bytes=32e9
        )
        assert a100.probe_stage_time(counters) < v100.probe_stage_time(counters)


class TestCalibrationConstants:
    def test_defaults_positive(self):
        constants = CalibrationConstants()
        assert constants.translation_concurrency > 0

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            CalibrationConstants(translation_concurrency=0)
        with pytest.raises(ConfigurationError):
            CalibrationConstants(hash_probe_accesses=-1)
