"""Terminal chart rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.perf.charts import ascii_chart, chart_experiment, sparkline
from repro.perf.report import Series


def make_series(label, points):
    series = Series(label)
    for x, y in points:
        series.append(x, y)
    return series


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_zero(self):
        assert sparkline([0, 0]) == "▁▁"

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            sparkline([-1, 2])


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        a = make_series("alpha", [(1, 1), (10, 2)])
        b = make_series("beta", [(1, 3), (10, 1)])
        text = ascii_chart([a, b], width=20, height=6)
        assert "o alpha" in text and "x beta" in text
        assert "o" in text.split("\n")[0] or any(
            "o" in line for line in text.split("\n")
        )

    def test_axis_annotations(self):
        a = make_series("a", [(2, 5), (64, 50)])
        text = ascii_chart([a], width=20, height=6)
        assert "50" in text  # y max
        assert "2" in text and "64" in text  # x range

    def test_log_axes(self):
        a = make_series("a", [(1, 1), (10, 10), (100, 100)])
        text = ascii_chart([a], width=21, height=7, log_x=True, log_y=True)
        # On log-log a power law is a straight diagonal: the marker rows
        # step uniformly.
        rows = [
            i for i, line in enumerate(text.split("\n")) if "o" in line
        ]
        steps = [b - a for a, b in zip(rows, rows[1:])]
        assert len(set(steps)) == 1

    def test_log_rejects_non_positive(self):
        a = make_series("a", [(0, 1), (10, 10)])
        with pytest.raises(ConfigurationError):
            ascii_chart([a], log_x=True)

    def test_title(self):
        a = make_series("a", [(1, 1)])
        text = ascii_chart([a], title="fig0")
        assert text.startswith("fig0")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([])
        with pytest.raises(ConfigurationError):
            ascii_chart([Series("empty")])

    def test_rejects_tiny_grid(self):
        a = make_series("a", [(1, 1)])
        with pytest.raises(ConfigurationError):
            ascii_chart([a], width=4, height=2)


class TestChartExperiment:
    def test_renders_result(self):
        result = ExperimentResult(name="figX", title="demo", x_label="R")
        result.series.append(make_series("a", [(1, 2), (4, 8)]))
        result.series.append(Series("skipped"))  # empty -> dropped
        text = chart_experiment(result)
        assert "figX" in text
        assert "skipped" not in text

    def test_falls_back_from_log_on_zero(self):
        result = ExperimentResult(name="figY", title="demo", x_label="R")
        result.series.append(make_series("a", [(1, 0.0), (4, 8)]))
        text = chart_experiment(result)  # must not raise
        assert "figY" in text

    def test_all_empty_rejected(self):
        result = ExperimentResult(name="figZ", title="demo", x_label="R")
        result.series.append(Series("nothing"))
        with pytest.raises(ConfigurationError):
            chart_experiment(result)
