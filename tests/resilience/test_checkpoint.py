"""Sweep checkpoints: fingerprints, round trips, corruption tolerance."""

import json


from repro.config import SimulationConfig
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import RadixSplineIndex
from repro.resilience import checkpoint as cp
from repro.resilience import faults
from repro.resilience.faults import FaultPlan

TASK = ("inlj", V100_NVLINK2, 2**20, RadixSplineIndex, SimulationConfig())


class TestFingerprint:
    def test_stable_across_calls(self):
        assert cp.fingerprint(TASK) == cp.fingerprint(TASK)

    def test_sensitive_to_every_field(self):
        base = cp.fingerprint(TASK)
        assert cp.fingerprint(("hash",) + TASK[1:]) != base
        assert cp.fingerprint(TASK[:2] + (2**21,) + TASK[3:]) != base
        assert cp.fingerprint(TASK[:3] + (None,) + TASK[4:]) != base

    def test_classes_key_by_qualified_name(self):
        # repr() of a class embeds nothing run-dependent in the
        # canonical form -- two processes must agree on the hash.
        text = cp._canonical(RadixSplineIndex)
        assert "RadixSplineIndex" in text
        assert "0x" not in text

    def test_sweep_path_keyed_by_config_hash(self, tmp_path):
        path_a = cp.sweep_path(str(tmp_path), [TASK])
        path_b = cp.sweep_path(str(tmp_path), [TASK, TASK])
        assert path_a != path_b
        assert path_a.endswith(".jsonl")


class TestSweepCheckpoint:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        store = cp.SweepCheckpoint(path)
        outcome = ("ok", {"seconds": 1.25, "exact": 0.1 + 0.2})
        store.record("fp-1", outcome)

        reloaded = cp.SweepCheckpoint(path, resume=True)
        assert reloaded.get("fp-1") == outcome
        # pickle round-trips float bits exactly
        assert reloaded.get("fp-1")[1]["exact"] == 0.1 + 0.2
        assert reloaded.get("fp-2") is None
        assert reloaded.stats["loaded"] == 1

    def test_fresh_run_truncates(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        cp.SweepCheckpoint(path).record("fp-1", ("ok", 1))
        fresh = cp.SweepCheckpoint(path, resume=False)
        assert fresh.get("fp-1") is None
        assert cp.SweepCheckpoint(path, resume=True).stats["loaded"] == 0

    def test_corrupted_line_discarded(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        store = cp.SweepCheckpoint(path)
        store.record("fp-1", ("ok", 1))
        store.record("fp-2", ("ok", 2))
        lines = open(path).read().splitlines()
        record = json.loads(lines[0])
        record["data"] = record["data"][:-4] + "AAAA"  # flip payload bytes
        with open(path, "w") as handle:
            handle.write(json.dumps(record) + "\n" + lines[1] + "\n")

        reloaded = cp.SweepCheckpoint(path, resume=True)
        assert reloaded.get("fp-1") is None  # checksum mismatch: recompute
        assert reloaded.get("fp-2") == ("ok", 2)
        assert reloaded.stats["discarded"] == 1

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        store = cp.SweepCheckpoint(path)
        store.record("fp-1", ("ok", 1))
        with open(path, "a") as handle:
            handle.write('{"task": "fp-2", "sha": "dead')  # SIGKILL mid-write
        reloaded = cp.SweepCheckpoint(path, resume=True)
        assert reloaded.get("fp-1") == ("ok", 1)
        assert reloaded.stats["discarded"] == 1

    def test_truncated_final_line_keeps_prior_points(self, tmp_path):
        # A crash mid-append cuts the last record anywhere -- here in
        # the middle of the base64 payload, leaving broken JSON.  Every
        # fully-written point must survive untouched.
        path = str(tmp_path / "sweep.jsonl")
        store = cp.SweepCheckpoint(path)
        store.record("fp-1", ("ok", 1))
        store.record("fp-2", ("ok", 2))
        lines = open(path).read().splitlines(keepends=True)
        with open(path, "w") as handle:
            handle.write(lines[0] + lines[1][: len(lines[1]) // 2])
        reloaded = cp.SweepCheckpoint(path, resume=True)
        assert reloaded.get("fp-1") == ("ok", 1)
        assert reloaded.get("fp-2") is None  # recomputed, not corrupted
        assert reloaded.stats["discarded"] == 1

    def test_duplicated_point_entries_last_write_wins(self, tmp_path):
        # A requeued point can legitimately append the same task twice
        # (e.g. a timed-out worker whose result arrived after all).
        # Resume must collapse duplicates to the latest record and
        # serve outcomes bit-identical to a store that only ever saw
        # the final write.
        path = str(tmp_path / "sweep.jsonl")
        store = cp.SweepCheckpoint(path)
        store.record("fp-1", ("ok", {"seconds": 1.0}))
        store.record("fp-2", ("ok", 2))
        store.record("fp-1", ("ok", {"seconds": 0.1 + 0.2}))
        reloaded = cp.SweepCheckpoint(path, resume=True)
        assert reloaded.stats["loaded"] == 2
        assert reloaded.stats["discarded"] == 0
        assert reloaded.get("fp-2") == ("ok", 2)
        clean_path = str(tmp_path / "clean.jsonl")
        clean = cp.SweepCheckpoint(clean_path)
        clean.record("fp-1", ("ok", {"seconds": 0.1 + 0.2}))
        assert reloaded.get("fp-1") == cp.SweepCheckpoint(
            clean_path, resume=True
        ).get("fp-1")
        assert reloaded.get("fp-1")[1]["seconds"] == 0.1 + 0.2

    def test_injected_corruption_caught_on_reload(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        store = cp.SweepCheckpoint(path)
        faults.install(
            FaultPlan(kind="corrupt", site="checkpoint", at=0, seed=5)
        )
        store.record("fp-1", ("ok", 1))
        faults.clear()
        reloaded = cp.SweepCheckpoint(path, resume=True)
        assert reloaded.get("fp-1") is None
        assert reloaded.stats["discarded"] == 1


class TestActivation:
    def test_disabled_by_default(self):
        assert cp.for_tasks([TASK]) is None

    def test_configured_scope_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cp.CHECKPOINT_DIR_ENV, str(tmp_path / "env"))
        scoped = tmp_path / "scoped"
        with cp.configured(str(scoped)):
            store = cp.for_tasks([TASK])
            assert store is not None
            assert store.path.startswith(str(scoped))
        env_store = cp.for_tasks([TASK])
        assert env_store.path.startswith(str(tmp_path / "env"))

    def test_env_resume_opt_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cp.CHECKPOINT_DIR_ENV, str(tmp_path))
        path = cp.sweep_path(str(tmp_path), [TASK])
        cp.SweepCheckpoint(path).record(cp.fingerprint(TASK), ("ok", 1))
        monkeypatch.setenv(cp.RESUME_ENV, "0")
        assert cp.for_tasks([TASK]).stats["loaded"] == 0
