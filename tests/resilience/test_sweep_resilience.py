"""End-to-end sweep resilience: the figures survive injected faults.

The invariant under test everywhere: recovery never changes figures.
A sweep that hit retries, worker crashes, wedged workers, degradation
to serial, or a checkpoint resume produces output bit-identical to a
clean serial run.
"""

import pytest

from repro.config import SimulationConfig
from repro.errors import SweepExecutionError
from repro.experiments import common, fig3
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import RadixSplineIndex
from repro.resilience import checkpoint as cp
from repro.resilience import faults, retry
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy

TINY_SIM = SimulationConfig(probe_sample=2**10)
TINY_SIZES = (0.5, 1.0)
TINY_INDEXES = (RadixSplineIndex,)

#: Fast-failure policy for tests: small backoff, short timeouts, one
#: pool rebuild before degrading to serial.
FAST_POLICY = RetryPolicy(
    max_attempts=3,
    base_delay=0.01,
    max_delay=0.05,
    point_timeout=0.5,
    max_pool_restarts=0,
)


def series_dump(result):
    return [(s.label, list(s.x), list(s.y)) for s in result.series]


def tiny_tasks():
    """Four standard points: 2 INLJ + 2 hash-join tasks."""
    tasks = []
    for gib in TINY_SIZES:
        r_tuples = common.gib_to_tuples(gib)
        tasks.append(("inlj", V100_NVLINK2, r_tuples, RadixSplineIndex, TINY_SIM))
        tasks.append(("hash", V100_NVLINK2, r_tuples, None, TINY_SIM))
    return tasks


@pytest.fixture(scope="module")
def clean_baseline():
    """A fault-free serial fig3 run; every resilient run must match it."""
    faults.clear()
    throughput, requests = fig3.run(
        r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES
    )
    return series_dump(throughput), series_dump(requests)


def assert_matches_baseline(run_result, clean_baseline):
    throughput, requests = run_result
    assert series_dump(throughput) == clean_baseline[0]
    assert series_dump(requests) == clean_baseline[1]


class TestInjectedExceptions:
    def test_serial_retry_recovers(self, clean_baseline):
        faults.install(FaultPlan(kind="raise", site="point", at=0))
        with retry.configured(FAST_POLICY):
            result = fig3.run(
                r_sizes_gib=TINY_SIZES, sim=TINY_SIM, index_types=TINY_INDEXES
            )
        assert_matches_baseline(result, clean_baseline)

    def test_parallel_requeue_recovers(self, clean_baseline):
        # Each pool worker raises on its second point; the coordinator
        # requeues and the rerun succeeds (the plan's budget is spent).
        faults.install(FaultPlan(kind="raise", site="point", at=1))
        with retry.configured(FAST_POLICY):
            result = fig3.run(
                r_sizes_gib=TINY_SIZES,
                sim=TINY_SIM,
                index_types=TINY_INDEXES,
                workers=2,
            )
        assert_matches_baseline(result, clean_baseline)

    def test_exhausted_budget_raises_sweep_error(self):
        # count is effectively unlimited: every attempt fails.
        faults.install(
            FaultPlan(kind="raise", site="point", at=0, count=10**6)
        )
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(SweepExecutionError) as excinfo:
            common.map_standard_points(tiny_tasks(), policy=policy)
        assert "2 attempts" in str(excinfo.value)


class TestWorkerCrash:
    def test_crashed_workers_recovered(self, clean_baseline):
        # Every pool worker dies (os._exit) on its first point: all
        # points are lost, the pool is rebuilt, dies again, and the
        # sweep degrades to serial -- where crash faults are inert by
        # design.  The figures must not change.
        faults.install(
            FaultPlan(kind="crash", site="point", at=0, count=10**6)
        )
        with retry.configured(FAST_POLICY):
            result = fig3.run(
                r_sizes_gib=TINY_SIZES,
                sim=TINY_SIM,
                index_types=TINY_INDEXES,
                workers=2,
            )
        assert_matches_baseline(result, clean_baseline)
        assert common.LAST_SWEEP["degraded"] is True
        assert common.LAST_SWEEP["pool_restarts"] >= 1
        assert common.LAST_SWEEP["requeued"] >= 1


class TestWorkerHang:
    def test_wedged_workers_recovered(self, clean_baseline):
        # Workers wedge (bounded sleep) past the point timeout: lost
        # points are requeued, the wedged pool is terminated, and the
        # sweep eventually degrades to serial and completes.
        faults.install(
            FaultPlan(
                kind="hang", site="point", at=0, count=10**6,
                hang_seconds=2.0,
            )
        )
        with retry.configured(FAST_POLICY):
            result = fig3.run(
                r_sizes_gib=TINY_SIZES,
                sim=TINY_SIM,
                index_types=TINY_INDEXES,
                workers=2,
            )
        assert_matches_baseline(result, clean_baseline)
        assert common.LAST_SWEEP["degraded"] is True


class TestCheckpointResume:
    def test_resume_recomputes_only_missing_points(self, tmp_path):
        tasks = tiny_tasks()
        clean = common.map_standard_points(tasks)

        # First run: the third point keeps failing with no retry budget,
        # killing the sweep after two completed points -- the moral
        # equivalent of a SIGKILL halfway through.
        faults.install(
            FaultPlan(kind="raise", site="point", at=2, count=10**6)
        )
        policy = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)
        with cp.configured(str(tmp_path)):
            with pytest.raises(SweepExecutionError):
                common.map_standard_points(tasks, policy=policy)
        assert common.LAST_SWEEP["computed"] == 2

        store = cp.SweepCheckpoint(
            cp.sweep_path(str(tmp_path), tasks), resume=True
        )
        assert store.stats["loaded"] == 2

        # Resumed run: only the two missing points are recomputed, and
        # the outcomes are bit-identical to a clean run.
        faults.clear()
        with cp.configured(str(tmp_path), resume=True):
            resumed = common.map_standard_points(tasks)
        assert resumed == clean
        assert common.LAST_SWEEP["resumed"] == 2
        assert common.LAST_SWEEP["computed"] == 2

    def test_resume_off_recomputes_everything(self, tmp_path):
        tasks = tiny_tasks()
        with cp.configured(str(tmp_path)):
            first = common.map_standard_points(tasks)
        with cp.configured(str(tmp_path), resume=False):
            second = common.map_standard_points(tasks)
        assert first == second
        assert common.LAST_SWEEP["resumed"] == 0
        assert common.LAST_SWEEP["computed"] == len(tasks)

    def test_corrupted_checkpoint_degrades_to_recompute(self, tmp_path):
        tasks = tiny_tasks()
        # Checkpoint a full run, with the second record's bytes mangled
        # in flight (a torn write / bit rot).
        faults.install(
            FaultPlan(kind="corrupt", site="checkpoint", at=1, seed=11)
        )
        with cp.configured(str(tmp_path)):
            clean = common.map_standard_points(tasks)
        faults.clear()

        with cp.configured(str(tmp_path), resume=True):
            resumed = common.map_standard_points(tasks)
        assert resumed == clean  # corruption cost a recompute, not figures
        assert common.LAST_SWEEP["resumed"] == len(tasks) - 1
        assert common.LAST_SWEEP["computed"] == 1

    def test_parallel_run_checkpoints_and_resumes(self, tmp_path):
        tasks = tiny_tasks()
        clean = common.map_standard_points(tasks)
        with cp.configured(str(tmp_path)):
            parallel = common.map_standard_points(tasks, workers=2)
        assert parallel == clean
        # Everything is checkpointed: a resume computes nothing.
        with cp.configured(str(tmp_path), resume=True):
            resumed = common.map_standard_points(tasks)
        assert resumed == clean
        assert common.LAST_SWEEP["resumed"] == len(tasks)
        assert common.LAST_SWEEP["computed"] == 0


class TestEnvDriven:
    def test_env_fault_and_retry_knobs(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "raise@point:0")
        monkeypatch.setenv(retry.RETRIES_ENV, "3")
        monkeypatch.setenv(retry.BASE_DELAY_ENV, "0.01")
        faults.clear()  # reload plans from the patched environment
        outcomes = common.map_standard_points(tiny_tasks())
        assert all(outcome[0] == "ok" for outcome in outcomes)
