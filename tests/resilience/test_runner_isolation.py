"""Failure isolation in the experiment runner and the CLI exit codes."""

import io

import pytest

from repro.__main__ import main as cli_main
from repro.experiments.runner import main as runner_main
from repro.experiments.runner import run_report
from repro.resilience import faults
from repro.resilience.faults import FaultPlan


class TestRunReportIsolation:
    def test_failing_experiment_does_not_stop_the_run(self):
        faults.install(
            FaultPlan(kind="raise", site="experiment", at=0, match="fig7")
        )
        stream = io.StringIO()
        report = run_report(["table1", "fig7"], quick=True, stream=stream)

        # The healthy experiment still ran and emitted its output.
        assert "table1" in report.results
        assert "NVLink" in stream.getvalue()
        # The failure is structured: name, type, traceback, elapsed.
        assert "fig7" not in report.results
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.name == "fig7"
        assert failure.stage == "experiment"
        assert failure.error_type == "InjectedFault"
        assert "InjectedFault" in failure.traceback_text
        assert failure.elapsed_seconds >= 0
        assert failure.fatal
        # The run reports the failure and a nonzero exit code.
        assert not report.ok()
        assert report.exit_code() == 1
        assert "FAILURE SUMMARY" in stream.getvalue()
        assert "fig7" in report.summary_text()

    def test_clean_run_reports_success(self):
        stream = io.StringIO()
        report = run_report(["table1"], quick=True, stream=stream)
        assert report.ok()
        assert report.exit_code() == 0
        assert report.summary_text() == ""
        assert "FAILURE SUMMARY" not in stream.getvalue()

    def test_points_completed_attributed_to_sweep_failures(self):
        # Fail the sweep itself (not the experiment guard) so the
        # failure report can see how far the sweep got.
        faults.install(
            FaultPlan(kind="raise", site="point", at=1, count=10**6)
        )
        import os

        os.environ["REPRO_RETRIES"] = "1"
        try:
            stream = io.StringIO()
            report = run_report(
                ["fig3"], quick=True, stream=stream
            )
        finally:
            del os.environ["REPRO_RETRIES"]
        assert not report.ok()
        failure = report.failures[0]
        assert failure.name == "fig3+fig4"
        assert failure.points_completed == 1

    def test_chart_failure_is_recorded_not_fatal(self, monkeypatch):
        from repro.experiments.common import ExperimentResult
        from repro.perf.report import Series

        dummy = ExperimentResult(name="fig9", title="demo", x_label="x")
        series = Series("a")
        series.append(1.0, 2.0)
        dummy.series.append(series)
        monkeypatch.setattr(
            "repro.experiments.fig9.run", lambda: dummy
        )

        def boom(_result):
            raise RuntimeError("no terminal")

        monkeypatch.setattr("repro.perf.charts.chart_experiment", boom)
        stream = io.StringIO()
        report = run_report(["fig9"], charts=True, stream=stream)
        assert "fig9" in report.results  # the figure itself succeeded
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.stage == "chart"
        assert not failure.fatal
        assert "RuntimeError" in failure.traceback_text
        # Chart failures are reported but do not fail the run.
        assert report.ok()
        assert report.exit_code() == 0
        assert "FAILURE SUMMARY" in stream.getvalue()

    def test_workers_validated(self):
        with pytest.raises(Exception) as excinfo:
            run_report(["table1"], workers=0, stream=io.StringIO())
        assert "workers" in str(excinfo.value)


class TestCliExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert cli_main(["experiments", "table1"]) == 0
        capsys.readouterr()

    def test_failed_experiment_exits_nonzero(self, capsys, monkeypatch):
        monkeypatch.setenv(
            faults.FAULTS_ENV, "raise@experiment:0,match=table1"
        )
        faults.clear()  # pick the plan up from the environment
        assert cli_main(["experiments", "table1"]) == 1
        out = capsys.readouterr().out
        assert "FAILURE SUMMARY" in out
        assert "InjectedFault" in out

    def test_bad_workers_is_a_usage_error(self, capsys):
        assert cli_main(["experiments", "table1", "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_runner_module_main_matches(self, capsys, monkeypatch):
        monkeypatch.setenv(
            faults.FAULTS_ENV, "raise@experiment:0,match=table1"
        )
        faults.clear()
        assert runner_main(["table1"]) == 1
        capsys.readouterr()

    def test_resume_flags_accepted(self, tmp_path, capsys):
        args = [
            "experiments", "table1",
            "--checkpoint-dir", str(tmp_path),
            "--resume", "--retries", "2", "--point-timeout", "30",
        ]
        assert cli_main(args) == 0
        capsys.readouterr()
