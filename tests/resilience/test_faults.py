"""Fault-injection harness: spec parsing, firing semantics, safety."""

import pytest

from repro.errors import ConfigurationError, InjectedFault
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, parse_plan, parse_plans


class TestParsing:
    def test_minimal_spec(self):
        plan = parse_plan("raise@point")
        assert plan.kind == "raise"
        assert plan.site == "point"
        assert plan.at == 0
        assert plan.count == 1

    def test_full_spec(self):
        plan = parse_plan("hang@batch:3,count=2,match=fig7,hang=1.5,seed=9")
        assert plan == FaultPlan(
            kind="hang",
            site="batch",
            at=3,
            count=2,
            match="fig7",
            hang_seconds=1.5,
            seed=9,
        )

    def test_multiple_specs(self):
        plans = parse_plans("raise@point:1; crash@point:0,count=3")
        assert [plan.kind for plan in plans] == ["raise", "crash"]

    def test_empty_text_yields_nothing(self):
        assert parse_plans("") == ()
        assert parse_plans(" ; ") == ()

    @pytest.mark.parametrize(
        "spec",
        [
            "explode@point",          # unknown kind
            "raisepoint",             # missing @
            "raise@",                 # missing site
            "raise@point:0,bogus=1",  # unknown option
            "raise@point:0,count",    # malformed option
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises((ConfigurationError, ValueError)):
            parse_plan(spec)

    def test_plan_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(kind="raise", site="point", at=-1)
        with pytest.raises(ConfigurationError):
            FaultPlan(kind="raise", site="point", count=0)
        with pytest.raises(ConfigurationError):
            FaultPlan(kind="hang", site="point", hang_seconds=0)


class TestFiring:
    def test_fires_at_nth_matching_check(self):
        faults.install(FaultPlan(kind="raise", site="point", at=2))
        faults.check("point")  # 0
        faults.check("point")  # 1
        with pytest.raises(InjectedFault):
            faults.check("point")  # 2 -> fires

    def test_count_bounds_fires(self):
        faults.install(FaultPlan(kind="raise", site="point", at=0, count=2))
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.check("point")
        faults.check("point")  # budget spent: silent

    def test_other_sites_do_not_count(self):
        faults.install(FaultPlan(kind="raise", site="point", at=1))
        faults.check("batch")
        faults.check("experiment")
        faults.check("point")  # first matching check: index 0, no fire
        with pytest.raises(InjectedFault):
            faults.check("point")

    def test_match_filters_labels(self):
        faults.install(
            FaultPlan(kind="raise", site="experiment", at=0, match="fig7")
        )
        faults.check("experiment", "table1")
        faults.check("experiment", "fig3+fig4")
        with pytest.raises(InjectedFault):
            faults.check("experiment", "fig7")

    def test_no_plans_is_a_noop(self):
        faults.clear()
        faults.check("point", "anything")  # must not raise

    def test_crash_is_inert_in_parent_process(self):
        # An injected crash may only kill pool workers, never the
        # process coordinating the sweep (or the test harness).
        faults.install(FaultPlan(kind="crash", site="point", at=0))
        faults.check("point")  # still alive

    def test_hang_sleeps_bounded(self):
        import time

        faults.install(
            FaultPlan(kind="hang", site="point", at=0, hang_seconds=0.05)
        )
        started = time.perf_counter()
        faults.check("point")
        assert time.perf_counter() - started >= 0.05

    def test_reset_for_worker_restarts_counters(self):
        faults.install(FaultPlan(kind="raise", site="point", at=0))
        with pytest.raises(InjectedFault):
            faults.check("point")
        faults.reset_for_worker()  # fired/seen cleared, plans kept
        with pytest.raises(InjectedFault):
            faults.check("point")


class TestPipelineBatchSite:
    def test_batch_fault_fires_mid_stream(self):

        from repro.engine.pipeline import (
            IndexProbeOperator,
            MaterializeOperator,
            Pipeline,
            ScanOperator,
        )
        from repro.data.generator import WorkloadConfig, make_workload
        from repro.indexes import RadixSplineIndex

        config = WorkloadConfig(
            r_tuples=2**12, s_tuples=2**8, match_rate=0.9, seed=3
        )
        relation, probes = make_workload(config, probe_count=2**8)
        pipeline = Pipeline(
            [
                ScanOperator(probes.keys, batch_tuples=64),
                IndexProbeOperator(RadixSplineIndex(relation)),
                MaterializeOperator(),
            ]
        )
        faults.install(FaultPlan(kind="raise", site="batch", at=2))
        with pytest.raises(InjectedFault):
            pipeline.run()
        faults.clear()
        assert len(pipeline_rerun(relation, probes)) > 0

    def test_no_fault_pipeline_unaffected(self):
        from repro.data.generator import WorkloadConfig, make_workload

        config = WorkloadConfig(
            r_tuples=2**12, s_tuples=2**8, match_rate=0.9, seed=3
        )
        relation, probes = make_workload(config, probe_count=2**8)
        assert len(pipeline_rerun(relation, probes)) > 0


def pipeline_rerun(relation, probes):
    from repro.engine.pipeline import (
        IndexProbeOperator,
        MaterializeOperator,
        Pipeline,
        ScanOperator,
    )
    from repro.indexes import RadixSplineIndex

    return Pipeline(
        [
            ScanOperator(probes.keys, batch_tuples=64),
            IndexProbeOperator(RadixSplineIndex(relation)),
            MaterializeOperator(),
        ]
    ).run()


class TestEnvironment:
    def test_env_plans_loaded_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "raise@point:0")
        faults.clear()
        assert [plan.kind for plan in faults.active()] == ["raise"]
        with pytest.raises(InjectedFault):
            faults.check("point")

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "raise@point:0")
        faults.clear()
        faults.install()  # explicit empty install: no faults
        faults.check("point")


class TestCorruption:
    def test_corrupt_text_mangles_once(self):
        faults.install(
            FaultPlan(kind="corrupt", site="checkpoint", at=0, seed=3)
        )
        mangled = faults.corrupt_text("checkpoint", "rec", "hello world")
        assert mangled != "hello world"
        assert "CORRUPT" in mangled
        # budget spent: passthrough afterwards
        assert faults.corrupt_text("checkpoint", "rec", "second") == "second"

    def test_corrupt_does_not_fire_for_check(self):
        faults.install(FaultPlan(kind="corrupt", site="point", at=0))
        faults.check("point")  # corrupt plans never raise/hang/crash
