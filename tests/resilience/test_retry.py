"""Retry policy: deterministic backoff, budgets, error classification."""

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    SweepExecutionError,
)
from repro.resilience import retry
from repro.resilience.retry import RetryPolicy, with_retry


class TestBackoff:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.5, jitter=0.0)
        assert policy.backoff(10) == pytest.approx(2.5)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        assert policy.backoff(2, "fig3") == policy.backoff(2, "fig3")

    def test_jitter_decorrelates_labels(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        assert policy.backoff(2, "fig3") != policy.backoff(2, "fig5")

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.5)
        for attempt in range(1, 6):
            delay = policy.backoff(attempt, "x")
            pure = min(0.1 * 2 ** (attempt - 1), 10.0)
            assert pure * 0.5 <= delay <= pure

    def test_regression_backoff_overflows_at_large_attempt_counts(self):
        """Pins a real bug: ``2 ** (attempt - 1)`` at huge attempt
        counts built a multi-hundred-megabit integer before the
        ``min()`` discarded it, stalling (or overflowing ``float``) on
        retry loops driven by external counters.  The exponent is now
        capped before exponentiating; the capped result is exactly the
        uncapped one, because any positive base_delay times 2.0**1023
        clears max_delay.
        """
        policy = RetryPolicy(base_delay=0.05, max_delay=2.0, jitter=0.0)
        assert policy.backoff(10**9) == policy.backoff(12) == 2.0
        # Even a subnormal-scale base delay saturates at the cap.
        tiny = RetryPolicy(base_delay=1e-300, max_delay=2.0, jitter=0.0)
        assert tiny.backoff(10**9) == 2.0
        # Jittered delays at huge attempts stay deterministic too.
        jittered = RetryPolicy(jitter=0.5, seed=7)
        assert jittered.backoff(10**9, "x") == jittered.backoff(10**9, "x")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(point_timeout=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_pool_restarts=-1)


class TestWithRetry:
    def test_transient_failures_retried(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        result = with_retry(flaky, policy, label="p", sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3
        assert slept == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_budget_exhaustion_wraps_cause(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

        def always():
            raise RuntimeError("boom")

        with pytest.raises(SweepExecutionError) as excinfo:
            with_retry(always, policy, label="p", sleep=lambda _s: None)
        assert "2 attempts" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_non_retryable_passthrough(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        calls = []

        def capacity():
            calls.append(1)
            raise CapacityError("too big")

        with pytest.raises(CapacityError):
            with_retry(capacity, policy, sleep=lambda _s: None)
        assert len(calls) == 1  # no pointless retries


class TestConfiguration:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(retry.RETRIES_ENV, "5")
        monkeypatch.setenv(retry.POINT_TIMEOUT_ENV, "12.5")
        monkeypatch.setenv(retry.POOL_RESTARTS_ENV, "4")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 5
        assert policy.point_timeout == 12.5
        assert policy.max_pool_restarts == 4

    def test_zero_timeout_disables(self, monkeypatch):
        monkeypatch.setenv(retry.POINT_TIMEOUT_ENV, "0")
        assert RetryPolicy.from_env().point_timeout is None

    def test_configured_scope(self):
        policy = RetryPolicy(max_attempts=9)
        assert retry.active_policy().max_attempts != 9
        with retry.configured(policy):
            assert retry.active_policy() is policy
        assert retry.active_policy().max_attempts != 9
