"""Shared hygiene for resilience tests: no fault/cache/env leakage."""

from __future__ import annotations

import pytest

from repro.experiments import cache
from repro.resilience import faults
from repro.resilience.checkpoint import CHECKPOINT_DIR_ENV, RESUME_ENV
from repro.resilience.faults import FAULTS_ENV
from repro.resilience.retry import (
    BASE_DELAY_ENV,
    POINT_TIMEOUT_ENV,
    POOL_RESTARTS_ENV,
    RETRIES_ENV,
)

_ENV_VARS = (
    FAULTS_ENV,
    CHECKPOINT_DIR_ENV,
    RESUME_ENV,
    RETRIES_ENV,
    POINT_TIMEOUT_ENV,
    POOL_RESTARTS_ENV,
    BASE_DELAY_ENV,
)


@pytest.fixture(autouse=True)
def _clean_resilience(monkeypatch):
    """Each test starts with no plans, no cache, and no ``REPRO_*`` env."""
    for name in _ENV_VARS:
        monkeypatch.delenv(name, raising=False)
    faults.clear()
    cache.clear()
    yield
    faults.clear()
    cache.enable(False)
    cache.clear()
