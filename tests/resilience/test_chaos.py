"""Scripted chaos: schedules, the controller, and result invariance.

The committed-schedule tests gate the same three JSON files CI replays
(`benchmarks/chaos/`); the hypothesis property generalizes them to
arbitrary generated schedules that leave at least one surviving replica
per range shard.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError, InjectedFault
from repro.resilience import chaos
from repro.resilience.chaos import (
    ChaosController,
    ChaosEvent,
    ChaosSchedule,
    build_event_log,
    check_invariance,
    check_replay,
    run_serve_under_chaos,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - property tests skip themselves
    HAVE_HYPOTHESIS = False

SCHEDULE_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "chaos"
)

#: Small harness workload shared by the property tests: fast enough for
#: a hypothesis example budget, big enough for several windows/shard.
SMALL = dict(
    shards=2,
    replicas=2,
    r_tuples=2**10,
    requests=6,
    request_tuples=64,
    window_kib=4,
)


class TestChaosEvent:
    def test_kill_requires_target(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(kind="kill", at=0.0, shard=0)
        with pytest.raises(ConfigurationError):
            ChaosEvent(kind="kill", at=0.0, replica=0)

    def test_wedge_requires_positive_duration(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(kind="wedge", at=0.0, shard=0, duration=0.0)

    def test_corrupt_requires_batch(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(kind="corrupt")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(kind="explode", at=0.0)

    def test_negative_arm_time_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(kind="kill", at=-1.0, shard=0, replica=0)

    def test_dict_round_trip(self):
        event = ChaosEvent(
            kind="wedge", at=1.5, shard=1, replica=-1, duration=0.5
        )
        assert ChaosEvent.from_dict(event.as_dict()) == event
        # Unset -1 fields stay out of the JSON form.
        assert "replica" not in event.as_dict()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent.from_dict({"kind": "kill", "sharrd": 0, "replica": 0})
        with pytest.raises(ConfigurationError):
            ChaosEvent.from_dict({"at": 1.0})


class TestChaosSchedule:
    def schedule(self) -> ChaosSchedule:
        return ChaosSchedule(
            events=(
                ChaosEvent(kind="kill", at=0.0, shard=0, replica=0),
                ChaosEvent(kind="corrupt", batch=3),
            )
        )

    def test_dict_round_trip(self):
        schedule = self.schedule()
        assert ChaosSchedule.from_dict(schedule.as_dict()) == schedule

    def test_schema_tag_enforced(self):
        payload = self.schedule().as_dict()
        payload["schema"] = "repro-chaos/99"
        with pytest.raises(ConfigurationError):
            ChaosSchedule.from_dict(payload)

    def test_file_round_trip(self, tmp_path):
        schedule = self.schedule()
        path = str(tmp_path / "schedule.json")
        schedule.dump(path)
        assert ChaosSchedule.load(path) == schedule

    def test_unreadable_file_rejected(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        with pytest.raises(ConfigurationError):
            ChaosSchedule.load(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ConfigurationError):
            ChaosSchedule.load(str(bad))
        array = tmp_path / "array.json"
        array.write_text("[]")
        with pytest.raises(ConfigurationError):
            ChaosSchedule.load(str(array))


class TestChaosController:
    def test_kill_fires_from_arm_time_until_restart(self):
        controller = ChaosController(
            ChaosSchedule(
                events=(
                    ChaosEvent(kind="kill", at=1.0, shard=0, replica=0),
                )
            )
        )
        # Before the arm time: nothing.
        controller.check_probe(0, 0, now=0.5, window_seq=0)
        # Wrong replica: nothing.
        controller.check_probe(0, 1, now=2.0, window_seq=1)
        with pytest.raises(InjectedFault):
            controller.check_probe(0, 0, now=2.0, window_seq=2)
        with pytest.raises(InjectedFault):
            controller.check_probe(0, 0, now=3.0, window_seq=3)
        # The rebuilt replica rejoined: the kill is spent.
        controller.on_restart(0, 0, now=4.0)
        controller.check_probe(0, 0, now=5.0, window_seq=4)
        assert len(controller.injections) == 2

    def test_restart_before_arm_time_does_not_clear(self):
        controller = ChaosController(
            ChaosSchedule(
                events=(
                    ChaosEvent(kind="kill", at=5.0, shard=0, replica=0),
                )
            )
        )
        controller.on_restart(0, 0, now=1.0)
        with pytest.raises(InjectedFault):
            controller.check_probe(0, 0, now=6.0, window_seq=0)

    def test_wedge_fires_within_its_interval(self):
        controller = ChaosController(
            ChaosSchedule(
                events=(
                    ChaosEvent(
                        kind="wedge", at=1.0, shard=0, duration=2.0
                    ),
                )
            )
        )
        controller.check_probe(0, 0, now=0.9, window_seq=0)
        with pytest.raises(InjectedFault):
            controller.check_probe(0, 0, now=1.0, window_seq=1)
        with pytest.raises(InjectedFault):
            controller.check_probe(0, 1, now=2.9, window_seq=2)  # all replicas
        controller.check_probe(0, 0, now=3.0, window_seq=3)  # half-open end
        controller.check_probe(1, 0, now=2.0, window_seq=4)  # other shard

    def test_wedge_can_target_one_replica(self):
        controller = ChaosController(
            ChaosSchedule(
                events=(
                    ChaosEvent(
                        kind="wedge",
                        at=0.0,
                        shard=0,
                        replica=1,
                        duration=1.0,
                    ),
                )
            )
        )
        controller.check_probe(0, 0, now=0.5, window_seq=0)
        with pytest.raises(InjectedFault):
            controller.check_probe(0, 1, now=0.5, window_seq=1)

    def test_corrupt_fires_exactly_once(self):
        controller = ChaosController(
            ChaosSchedule(events=(ChaosEvent(kind="corrupt", batch=2),))
        )
        controller.check_probe(0, 0, now=0.0, window_seq=1)
        with pytest.raises(InjectedFault):
            controller.check_probe(0, 0, now=0.0, window_seq=2)
        # The retry of the same window sequence sails through.
        controller.check_probe(0, 0, now=0.0, window_seq=2)
        assert [desc for _, desc in controller.injections] == [
            "corrupt[0] window2 shard0r0"
        ]


class TestCommittedSchedules:
    """The exact gates the CI chaos job replays."""

    @pytest.mark.parametrize(
        "name", ["kill-one", "kill-then-recover", "rolling-wedge"]
    )
    def test_invariant_and_replayable(self, name, tmp_path):
        path = os.path.join(SCHEDULE_DIR, f"{name}.json")
        log_path = str(tmp_path / "events.json")
        status = chaos.main(schedule_path=path, event_log_path=log_path)
        assert status == 0
        log = json.loads(open(log_path).read())
        assert log["schema"] == chaos.LOG_SCHEMA
        assert log["invariant"] is True
        assert log["schedule"] == ChaosSchedule.load(path).as_dict()

    def test_kill_one_full_event_sequence(self):
        """kill -> failover -> priced rebuild -> probation -> rejoin."""
        schedule = ChaosSchedule.load(
            os.path.join(SCHEDULE_DIR, "kill-one.json")
        )
        result = run_serve_under_chaos(schedule=schedule)
        kinds = [event["kind"] for event in result.timeline]
        for expected in (
            "failure",
            "dead",
            "rebuild_scheduled",
            "failover",
            "rebuild_complete",
            "recovered",
        ):
            assert expected in kinds, f"missing {expected} in {kinds}"
        # The ordering of the cycle's stages is fixed.
        assert kinds.index("dead") < kinds.index("rebuild_scheduled")
        assert kinds.index("rebuild_scheduled") < kinds.index(
            "rebuild_complete"
        )
        assert kinds.index("rebuild_complete") < kinds.index("recovered")
        # The rebuild event carries its priced cost.
        scheduled = next(
            event
            for event in result.timeline
            if event["kind"] == "rebuild_scheduled"
        )
        assert scheduled["detail"].startswith("slice_copy:")
        assert result.failovers >= 1
        assert result.recoveries >= 1
        assert result.injections

    def test_kill_one_emits_obs_metrics(self):
        schedule = ChaosSchedule.load(
            os.path.join(SCHEDULE_DIR, "kill-one.json")
        )
        obs.enable()
        obs.reset()
        try:
            run_serve_under_chaos(schedule=schedule)
            assert obs.counter("serve.failovers", shard=0, replica=0) >= 1
            assert obs.counter("serve.rebuilds", shard=0, replica=0) >= 1
            assert obs.counter("serve.recoveries", shard=0, replica=0) >= 1
        finally:
            obs.reset()
            obs.disable()

    def test_event_log_shape(self):
        schedule = ChaosSchedule.load(
            os.path.join(SCHEDULE_DIR, "kill-one.json")
        )
        result = run_serve_under_chaos(schedule=schedule)
        log = build_event_log(schedule, result, True, source="x.json")
        assert log["source"] == "x.json"
        assert log["summary"]["injections"] == len(result.injections)
        assert all(
            set(entry) == {"t", "fault"} for entry in log["injections"]
        )


class TestHarness:
    def test_total_shard_death_still_invariant(self):
        # Both replicas of shard 0 die: traffic degrades to the
        # fallback, which still answers in global positions.
        schedule = ChaosSchedule(
            events=(
                ChaosEvent(kind="kill", at=0.0, shard=0, replica=0),
                ChaosEvent(kind="kill", at=0.0, shard=0, replica=1),
            )
        )
        ok, clean, chaotic = check_invariance(schedule, **SMALL)
        assert ok
        assert chaotic.fallback_windows > 0
        assert len(chaotic.positions) == len(clean.positions)

    def test_replay_is_bit_identical(self):
        schedule = ChaosSchedule(
            events=(ChaosEvent(kind="kill", at=0.0, shard=0, replica=0),)
        )
        ok, first, second = check_replay(schedule, **SMALL)
        assert ok
        assert first.timeline == second.timeline
        assert first.injections == second.injections

    def test_unknown_replica_index_rejected(self):
        with pytest.raises(ConfigurationError):
            run_serve_under_chaos(
                replica_indexes=["btree", "fractal-tree"], **SMALL
            )

    def test_replica_index_count_must_match(self):
        with pytest.raises(ConfigurationError):
            run_serve_under_chaos(
                replica_indexes=["btree"],
                shards=2,
                replicas=2,
                r_tuples=2**10,
                requests=4,
                request_tuples=64,
            )


# ----------------------------------------------------------------------
# The pinned invariance property (hypothesis).
# ----------------------------------------------------------------------

if HAVE_HYPOTHESIS:

    @st.composite
    def survivable_schedules(draw):
        """Schedules that never touch replica 1: it always survives.

        Kills and wedges only ever target replica 0 of either shard, so
        every range keeps at least one healthy replica -- the
        precondition of the invariance property.  Corrupt events are
        transient by construction (one retry absorbs them).
        """
        events = []
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            kind = draw(st.sampled_from(["kill", "wedge", "corrupt"]))
            at = draw(
                st.floats(
                    min_value=0.0,
                    max_value=2.0e-4,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            shard = draw(st.integers(min_value=0, max_value=1))
            if kind == "kill":
                events.append(
                    ChaosEvent(kind="kill", at=at, shard=shard, replica=0)
                )
            elif kind == "wedge":
                duration = draw(
                    st.floats(
                        min_value=1.0e-6,
                        max_value=1.0e-4,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                )
                events.append(
                    ChaosEvent(
                        kind="wedge",
                        at=at,
                        shard=shard,
                        replica=0,
                        duration=duration,
                    )
                )
            else:
                events.append(
                    ChaosEvent(
                        kind="corrupt",
                        batch=draw(st.integers(min_value=0, max_value=24)),
                    )
                )
        return ChaosSchedule(events=tuple(events))

    #: One fault-free reference run per module: the clean side of the
    #: property is schedule-independent, so recomputing it per example
    #: would only burn the example budget.
    _CLEAN = None

    def clean_run():
        global _CLEAN
        if _CLEAN is None:
            _CLEAN = run_serve_under_chaos(schedule=None, **SMALL)
        return _CLEAN

    class TestInvarianceProperty:
        @given(schedule=survivable_schedules())
        @settings(deadline=None)
        def test_surviving_replica_implies_identical_results(
            self, schedule
        ):
            clean = clean_run()
            chaotic = run_serve_under_chaos(schedule=schedule, **SMALL)
            assert np.array_equal(clean.positions, chaotic.positions), (
                f"positions diverge under {schedule.as_dict()}"
            )
            replayed = run_serve_under_chaos(schedule=schedule, **SMALL)
            assert np.array_equal(
                chaotic.positions, replayed.positions
            )
            assert chaotic.makespan_seconds == replayed.makespan_seconds
            assert chaotic.timeline == replayed.timeline
            assert chaotic.injections == replayed.injections
