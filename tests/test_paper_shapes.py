"""Integration tests: the paper's headline shapes, end-to-end.

Each test reproduces one qualitative finding on a moderate configuration
(smaller samples than the benchmarks, same machinery).  These are the
assertions that make the reproduction a reproduction; if one fails, a
model change broke a paper result.
"""

import pytest

from repro.config import SimulationConfig
from repro.experiments.common import (
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from repro.hardware.spec import A100_PCIE4, V100_NVLINK2
from repro.indexes import (
    ALL_INDEX_TYPES,
    BinarySearchIndex,
    HarmoniaIndex,
    RadixSplineIndex,
)
from repro.join.hash_join import HashJoin
from repro.join.inlj import IndexNestedLoopJoin
from repro.join.partitioned import PartitionedINLJ
from repro.join.window import WindowedINLJ
from repro.units import MIB

NAIVE_SIM = SimulationConfig(probe_sample=2**15)
ORDERED_SIM = SimulationConfig(probe_sample=2**13)


def naive_estimate(index_cls, r_gib, sim=NAIVE_SIM, spec=V100_NVLINK2):
    env = make_environment(
        spec, gib_to_tuples(r_gib), index_cls=index_cls, sim=sim
    )
    return IndexNestedLoopJoin(env.index).estimate(env)


def partitioned_estimate(index_cls, r_gib, spec=V100_NVLINK2):
    env = make_environment(
        spec, gib_to_tuples(r_gib), index_cls=index_cls, sim=ORDERED_SIM
    )
    return PartitionedINLJ(env.index, default_partitioner(env.column)).estimate(
        env
    )


def windowed_estimate(index_cls, r_gib, spec=V100_NVLINK2, theta=0.0):
    env = make_environment(
        spec, gib_to_tuples(r_gib), index_cls=index_cls, sim=ORDERED_SIM,
        zipf_theta=theta,
    )
    join = WindowedINLJ(
        env.index, default_partitioner(env.column), window_bytes=32 * MIB
    )
    return join.estimate(env)


def hash_estimate(r_gib, spec=V100_NVLINK2, theta=0.0):
    env = make_environment(
        spec, gib_to_tuples(r_gib), sim=ORDERED_SIM, zipf_theta=theta
    )
    return HashJoin(env.relation).estimate(env)


class TestFig3Shapes:
    """Naive INLJ: the 32 GiB cliff; hash join always wins."""

    def test_tlb_cliff_at_32_gib(self):
        """Throughput drops suddenly when R crosses the TLB range, driven
        by the translation-request spike (Figs. 3-4 together)."""
        inside = naive_estimate(BinarySearchIndex, 24.0)
        outside = naive_estimate(BinarySearchIndex, 48.0)
        assert inside.queries_per_second > 2 * outside.queries_per_second
        assert inside.counters.translation_requests_per_lookup < 1.0
        assert outside.counters.translation_requests_per_lookup > 10.0

    def test_no_cliff_for_hash_join(self):
        """The hash join declines smoothly (~1/R), with no TLB cliff."""
        inside = hash_estimate(24.0)
        outside = hash_estimate(48.0)
        ratio = inside.queries_per_second / outside.queries_per_second
        assert ratio < 2.5  # roughly the 2x data growth, no extra cliff

    @pytest.mark.parametrize(
        "index_cls", ALL_INDEX_TYPES, ids=[c.__name__ for c in ALL_INDEX_TYPES]
    )
    def test_naive_inlj_never_beats_hash_join(self, index_cls):
        """Section 3.3.1: "The INLJ does not outperform the hash join"."""
        for r_gib in (8.0, 48.0, 111.0):
            inlj = naive_estimate(index_cls, r_gib)
            hash_join = hash_estimate(r_gib)
            assert (
                inlj.queries_per_second <= hash_join.queries_per_second * 1.05
            ), f"{index_cls.name} beat the hash join at {r_gib} GiB"


class TestFig4Shapes:
    """Translation requests: near zero below 32 GiB, spike after."""

    def test_near_zero_below_tlb_range(self):
        cost = naive_estimate(BinarySearchIndex, 16.0)
        assert cost.counters.translation_requests_per_lookup < 1.0

    def test_spike_beyond_tlb_range(self):
        cost = naive_estimate(BinarySearchIndex, 64.0)
        assert cost.counters.translation_requests_per_lookup > 20.0

    def test_binary_search_worst_harmonia_best(self):
        """Paper: ~105 requests/key (binary) vs ~11.3 (Harmonia)."""
        binary = naive_estimate(BinarySearchIndex, 111.0)
        harmonia = naive_estimate(HarmoniaIndex, 111.0)
        binary_rq = binary.counters.translation_requests_per_lookup
        harmonia_rq = harmonia.counters.translation_requests_per_lookup
        assert binary_rq > 4 * harmonia_rq
        assert 60 < binary_rq < 160  # paper: ~105
        assert 4 < harmonia_rq < 25  # paper: ~11.3


class TestFig5Shapes:
    """Partitioned lookups: cliff removed, INLJ beats hash join 3-10x."""

    def test_cliff_removed(self):
        inside = partitioned_estimate(BinarySearchIndex, 24.0)
        outside = partitioned_estimate(BinarySearchIndex, 48.0)
        ratio = inside.queries_per_second / outside.queries_per_second
        assert ratio < 2.5  # gentle logarithmic decline, no cliff

    def test_partitioning_recovers_throughput(self):
        for index_cls in (BinarySearchIndex, RadixSplineIndex):
            naive = naive_estimate(index_cls, 111.0)
            partitioned = partitioned_estimate(index_cls, 111.0)
            assert (
                partitioned.queries_per_second
                > 2 * naive.queries_per_second
            )

    def test_speedup_over_hash_join_in_paper_band(self):
        """Up to 3-10x over the hash join at 111 GiB (Section 6)."""
        hash_join = hash_estimate(111.0)
        speedups = []
        for index_cls in ALL_INDEX_TYPES:
            partitioned = partitioned_estimate(index_cls, 111.0)
            speedups.append(
                partitioned.queries_per_second
                / hash_join.queries_per_second
            )
        assert min(speedups) > 2.0
        assert 6.0 < max(speedups) < 15.0

    def test_radix_spline_fastest(self):
        """Section 6 recommends the RadixSpline (1.1-1.8x over Harmonia)."""
        radix_spline = partitioned_estimate(RadixSplineIndex, 111.0)
        harmonia = partitioned_estimate(HarmoniaIndex, 111.0)
        ratio = (
            radix_spline.queries_per_second / harmonia.queries_per_second
        )
        assert 1.05 < ratio < 2.2

    def test_translation_requests_nearly_eliminated(self):
        """Fig. 6: nearly 100% of requests eliminated."""
        for index_cls in (BinarySearchIndex, HarmoniaIndex):
            naive = naive_estimate(index_cls, 111.0)
            partitioned = partitioned_estimate(index_cls, 111.0)
            before = naive.counters.translation_requests_per_lookup
            after = partitioned.counters.translation_requests_per_lookup
            assert after < 0.05 * before


class TestFig7Shapes:
    """Window size: no TLB collapse at any size."""

    def test_windowed_close_to_fully_partitioned(self):
        """A 32 MiB window retains most of full partitioning's benefit
        without materializing the input."""
        windowed = windowed_estimate(RadixSplineIndex, 100.0)
        partitioned = partitioned_estimate(RadixSplineIndex, 100.0)
        assert windowed.queries_per_second > 0.5 * partitioned.queries_per_second

    def test_windowed_beats_naive(self):
        windowed = windowed_estimate(RadixSplineIndex, 100.0)
        naive = naive_estimate(RadixSplineIndex, 100.0)
        assert windowed.queries_per_second > 3 * naive.queries_per_second


class TestFig8Shapes:
    """Skew: INLJ throughput rises past exponent 1.0; hash join dies."""

    def test_throughput_rises_with_heavy_skew(self):
        uniform = windowed_estimate(RadixSplineIndex, 100.0, theta=0.0)
        skewed = windowed_estimate(RadixSplineIndex, 100.0, theta=1.5)
        assert skewed.queries_per_second > 2 * uniform.queries_per_second

    def test_mild_skew_roughly_flat(self):
        uniform = windowed_estimate(RadixSplineIndex, 100.0, theta=0.0)
        mild = windowed_estimate(RadixSplineIndex, 100.0, theta=0.5)
        ratio = mild.queries_per_second / uniform.queries_per_second
        assert 0.5 < ratio < 2.0

    def test_hash_join_exceeds_ten_hours_at_high_skew(self):
        """The paper terminated the Zipf hash join after 10 hours."""
        cost = hash_estimate(100.0, theta=1.75)
        assert cost.seconds > 10 * 3600


class TestFig9Shapes:
    """Hardware comparison: crossovers and the A100 hash join."""

    def test_crossover_exists_on_v100(self):
        """INLJ overtakes the hash join at low selectivity on NVLink."""
        small = 4.0
        large = 24.0
        assert (
            windowed_estimate(RadixSplineIndex, small).queries_per_second
            < hash_estimate(small).queries_per_second
        )
        assert (
            windowed_estimate(RadixSplineIndex, large).queries_per_second
            > hash_estimate(large).queries_per_second
        )

    def test_crossover_later_on_pcie(self):
        """The A100/PCIe crossover needs lower selectivity (13.9 vs
        6.2 GiB in the paper)."""
        r_gib = 12.0
        v100_wins = windowed_estimate(
            RadixSplineIndex, r_gib
        ).queries_per_second > hash_estimate(r_gib).queries_per_second
        a100_wins = windowed_estimate(
            RadixSplineIndex, r_gib, spec=A100_PCIE4
        ).queries_per_second > hash_estimate(
            r_gib, spec=A100_PCIE4
        ).queries_per_second
        assert v100_wins and not a100_wins

    def test_a100_hash_join_faster(self):
        """Paper: the hash join is ~1.7x faster on the A100."""
        v100 = hash_estimate(64.0)
        a100 = hash_estimate(64.0, spec=A100_PCIE4)
        ratio = a100.queries_per_second / v100.queries_per_second
        assert 1.1 < ratio < 2.5

    def test_inlj_slower_over_pcie(self):
        """Random lookups pay for PCIe's poor fine-grained access."""
        v100 = windowed_estimate(RadixSplineIndex, 64.0)
        a100 = windowed_estimate(RadixSplineIndex, 64.0, spec=A100_PCIE4)
        assert v100.queries_per_second > 1.5 * a100.queries_per_second


class TestDiscussionClaims:
    """Section 6 headliners not covered above."""

    def test_transfer_volume_reduced(self):
        """The index reduces transfer volume vs a table scan (up to 12x
        in the paper; largest at the largest R, where the scan moves the
        most)."""
        inlj = windowed_estimate(RadixSplineIndex, 111.0)
        hash_join = hash_estimate(111.0)
        reduction = (
            hash_join.counters.remote_bytes / inlj.counters.remote_bytes
        )
        assert reduction > 4.0

    def test_updateable_index_guidance(self):
        """Harmonia supports updates; the RadixSpline does not."""
        assert HarmoniaIndex.supports_updates
        assert not RadixSplineIndex.supports_updates
