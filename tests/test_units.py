"""Units and formatting helpers."""

import pytest

from repro.units import (
    CACHELINE_BYTES,
    GIB,
    KEY_BYTES,
    KIB,
    MIB,
    TIB,
    bytes_to_tuples,
    format_bytes,
    format_seconds,
    format_throughput,
    tuples_to_bytes,
)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2 * KIB) == "2.0 KiB"

    def test_mib(self):
        assert format_bytes(int(1.5 * MIB)) == "1.5 MiB"

    def test_gib(self):
        assert format_bytes(32 * GIB) == "32.0 GiB"

    def test_tib(self):
        assert format_bytes(2 * TIB) == "2.0 TiB"

    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(2.5) == "2.50 s"

    def test_milliseconds(self):
        assert format_seconds(0.0042) == "4.20 ms"

    def test_microseconds(self):
        assert format_seconds(3e-6) == "3.00 us"

    def test_nanoseconds(self):
        assert format_seconds(5e-9) == "5.0 ns"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-0.1)


class TestFormatThroughput:
    def test_basic(self):
        assert format_throughput(1.9) == "1.90 Q/s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_throughput(-1.0)


class TestTupleConversions:
    def test_round_trip(self):
        assert bytes_to_tuples(tuples_to_bytes(1000)) == 1000

    def test_paper_s_relation(self):
        # S is 2^26 tuples of 8-byte keys = 512 MiB (Section 3.2).
        assert tuples_to_bytes(2**26) == 512 * MIB

    def test_floor_division(self):
        assert bytes_to_tuples(KEY_BYTES + 1) == 1

    def test_custom_width(self):
        assert tuples_to_bytes(4, tuple_bytes=16) == 64

    def test_negative_tuples_rejected(self):
        with pytest.raises(ValueError):
            tuples_to_bytes(-1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_tuples(-1)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            tuples_to_bytes(1, tuple_bytes=0)
        with pytest.raises(ValueError):
            bytes_to_tuples(8, tuple_bytes=0)


def test_cacheline_is_gpu_sized():
    # Fast interconnects fetch remote memory at GPU cacheline granularity.
    assert CACHELINE_BYTES == 128
