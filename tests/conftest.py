"""Shared fixtures: small, fast workloads exercising every layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.data.column import VirtualSortedColumn
from repro.data.generator import WorkloadConfig, make_workload
from repro.data.relation import Relation
from repro.hardware.spec import V100_NVLINK2


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_workload():
    """A small materialized workload: 2^14 build keys, 2^10 probes."""
    config = WorkloadConfig(
        r_tuples=2**14, s_tuples=2**10, match_rate=0.9, seed=11
    )
    relation, probes = make_workload(config, probe_count=2**10)
    return config, relation, probes


@pytest.fixture
def small_relation(small_workload):
    return small_workload[1]


@pytest.fixture
def small_probes(small_workload):
    return small_workload[2]


@pytest.fixture
def virtual_relation():
    """A paper-scale (16 GiB) virtual relation; nothing is materialized."""
    column = VirtualSortedColumn(num_keys=2**31, stride=4, seed=5)
    return Relation(name="R", column=column)


@pytest.fixture
def tiny_sim():
    """Simulation config small enough for per-test event simulation."""
    return SimulationConfig(probe_sample=2**10)


@pytest.fixture
def v100():
    return V100_NVLINK2
