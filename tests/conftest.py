"""Shared fixtures: small, fast workloads exercising every layer.

Also registers the hypothesis profiles used by the property-based
suites (see TESTING.md):

* ``repro`` (default) -- derandomized: examples are derived from each
  test's source, so every run and every machine explores the same
  inputs; failures are reproducible without sharing ``.hypothesis``
  state.
* ``ci`` -- derandomized like ``repro`` but with a larger example
  budget; the dedicated property-test CI job selects it via
  ``HYPOTHESIS_PROFILE=ci``.

Select a profile with ``HYPOTHESIS_PROFILE=<name> pytest ...``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.data.column import VirtualSortedColumn
from repro.data.generator import WorkloadConfig, make_workload
from repro.data.relation import Relation
from repro.hardware.spec import V100_NVLINK2

try:
    from hypothesis import settings

    settings.register_profile(
        "repro", derandomize=True, max_examples=25, deadline=None
    )
    settings.register_profile(
        "ci", derandomize=True, max_examples=100, deadline=None
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))
except ImportError:  # pragma: no cover - property suites skip themselves
    pass


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_workload():
    """A small materialized workload: 2^14 build keys, 2^10 probes."""
    config = WorkloadConfig(
        r_tuples=2**14, s_tuples=2**10, match_rate=0.9, seed=11
    )
    relation, probes = make_workload(config, probe_count=2**10)
    return config, relation, probes


@pytest.fixture
def small_relation(small_workload):
    return small_workload[1]


@pytest.fixture
def small_probes(small_workload):
    return small_workload[2]


@pytest.fixture
def virtual_relation():
    """A paper-scale (16 GiB) virtual relation; nothing is materialized."""
    column = VirtualSortedColumn(num_keys=2**31, stride=4, seed=5)
    return Relation(name="R", column=column)


@pytest.fixture
def tiny_sim():
    """Simulation config small enough for per-test event simulation."""
    return SimulationConfig(probe_sample=2**10)


@pytest.fixture
def v100():
    return V100_NVLINK2
