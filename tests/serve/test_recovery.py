"""Rebuild pricing and the failover-vs-wait decision."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.indexes import (
    BinarySearchIndex,
    BPlusTreeIndex,
    HarmoniaIndex,
    RadixSplineIndex,
)
from repro.serve.batcher import Window
from repro.serve.executor import (
    MAX_WINDOW_DEFERRALS,
    ReplicatedShardExecutor,
    WindowDeferred,
    WindowResult,
)
from repro.serve.recovery import price_rebuild
from repro.serve.replica import replicate
from repro.serve.shard import fallback_shard, range_shard


def shard_for(relation, index_cls):
    return range_shard(relation, 1, index_cls).shards[0]


class TestPriceRebuild:
    @pytest.mark.parametrize(
        "index_cls, kind",
        [
            (BinarySearchIndex, "slice_copy"),
            (BPlusTreeIndex, "bulk_load"),
            (HarmoniaIndex, "bulk_load"),
            (RadixSplineIndex, "retrain"),
        ],
    )
    def test_kind_per_index_type(self, small_relation, index_cls, kind):
        cost = price_rebuild(shard_for(small_relation, index_cls))
        assert cost.kind == kind
        assert cost.seconds > 0

    def test_unknown_index_prices_as_hash_rebuild(self):
        # price_rebuild only touches num_tuples and the index's
        # name/footprint, so a stub exercises the default path.
        stub = SimpleNamespace(
            num_tuples=2**12,
            index=SimpleNamespace(name="cuckoo", footprint_bytes=2**16),
        )
        cost = price_rebuild(stub)
        assert cost.kind == "hash_rebuild"
        assert "scatter" in cost.breakdown

    def test_breakdown_sums_to_total(self, small_relation):
        cost = price_rebuild(shard_for(small_relation, BPlusTreeIndex))
        assert sum(cost.breakdown.values()) == pytest.approx(
            cost.seconds, rel=0, abs=0
        )
        assert "launches" in cost.breakdown

    def test_prices_are_distinct_and_ordered(self, small_relation):
        prices = {
            cls.__name__: price_rebuild(shard_for(small_relation, cls))
            for cls in (
                BinarySearchIndex,
                BPlusTreeIndex,
                RadixSplineIndex,
            )
        }
        seconds = {
            name: cost.seconds for name, cost in prices.items()
        }
        assert len(set(seconds.values())) == 3
        # A slice copy is one scan; bulk load and retrain add structure
        # writes and compute passes on top, so the ordering is fixed.
        assert (
            seconds["BinarySearchIndex"]
            < seconds["BPlusTreeIndex"]
        )
        assert (
            seconds["BinarySearchIndex"]
            < seconds["RadixSplineIndex"]
        )

    def test_pure_and_deterministic(self, small_relation):
        shard = shard_for(small_relation, RadixSplineIndex)
        first = price_rebuild(shard)
        second = price_rebuild(shard)
        assert first == second

    def test_describe_carries_kind_and_seconds(self, small_relation):
        cost = price_rebuild(shard_for(small_relation, BinarySearchIndex))
        assert cost.describe().startswith("slice_copy:")
        assert cost.describe().endswith("s")


class TestFailoverVersusWait:
    """The router defers only when waiting is priced cheaper."""

    @pytest.fixture
    def dead_shard_setup(self, small_relation, small_probes):
        plan = replicate(small_relation, 2, [BinarySearchIndex])
        executor = ReplicatedShardExecutor(
            plan, fallback_shard(small_relation, BinarySearchIndex)
        )
        keys = small_probes.keys[:256]
        shard_id, shard_keys, indices = plan.split(
            keys, np.arange(len(keys))
        )[0]
        window = Window(
            shard_id=shard_id, keys=shard_keys, indices=indices, full=True
        )
        executor.health.force_dead(shard_id, 0, 0.0)
        executor._on_dead(shard_id, 0, 0.0)
        return executor, window, shard_id

    def test_waiting_near_ready_defers(self, dead_shard_setup):
        executor, window, shard_id = dead_shard_setup
        ready_at, _ = executor.health.next_rebuild_ready(shard_id)
        # Just shy of the rebuild completing: the residual wait plus the
        # rebuilt replica's price undercuts the whole-R fallback probe.
        outcome = executor.execute(window, now=ready_at - 1e-9)
        assert isinstance(outcome, WindowDeferred)
        assert outcome.ready_at == ready_at
        assert window.deferrals == 1
        assert executor.deferrals == 1
        assert executor.health.count("deferred") == 1

    def test_waiting_from_scratch_degrades(self, dead_shard_setup):
        # At t=0 the full rebuild still lies ahead; wait + rebuilt price
        # exceeds the fallback, so the window degrades immediately.
        executor, window, _ = dead_shard_setup
        outcome = executor.execute(window, now=0.0)
        assert isinstance(outcome, WindowResult)
        assert outcome.degraded
        assert window.deferrals == 0
        assert executor.fallback_windows == 1

    def test_deferral_cap_forces_fallback(self, dead_shard_setup):
        executor, window, shard_id = dead_shard_setup
        ready_at, _ = executor.health.next_rebuild_ready(shard_id)
        window.deferrals = MAX_WINDOW_DEFERRALS
        outcome = executor.execute(window, now=ready_at - 1e-9)
        assert isinstance(outcome, WindowResult)
        assert outcome.degraded

    def test_no_pending_rebuild_degrades(
        self, small_relation, small_probes
    ):
        plan = replicate(small_relation, 2, [BinarySearchIndex])
        executor = ReplicatedShardExecutor(
            plan, fallback_shard(small_relation, BinarySearchIndex)
        )
        keys = small_probes.keys[:256]
        shard_id, shard_keys, indices = plan.split(
            keys, np.arange(len(keys))
        )[0]
        window = Window(
            shard_id=shard_id, keys=shard_keys, indices=indices, full=True
        )
        # Dead without a scheduled rebuild: nothing to wait for.
        executor.health.force_dead(shard_id, 0, 0.0)
        outcome = executor.execute(window, now=0.0)
        assert isinstance(outcome, WindowResult)
        assert outcome.degraded

    def test_fallback_answers_match_the_replica(self, dead_shard_setup):
        executor, window, shard_id = dead_shard_setup
        degraded = executor.execute(window, now=0.0)
        truth = executor.plan.replica(shard_id, 0).shard.probe(window.keys)
        assert np.array_equal(degraded.positions, truth)

    def test_rebuild_completion_restores_routing(self, dead_shard_setup):
        executor, window, shard_id = dead_shard_setup
        scheduled = executor.take_scheduled()
        assert len(scheduled) == 1
        ready_at, key = scheduled[0]
        assert key == (shard_id, 0)
        assert executor.handle_recovery(key, ready_at)
        assert executor.recoveries == 1
        # Probation replica leads the route; a served window heals it.
        assert executor.route(shard_id, len(window)) == [0]
        result = executor.execute(window, now=ready_at)
        assert isinstance(result, WindowResult)
        assert not result.degraded
        assert result.replica == 0
        assert executor.health.state(shard_id, 0) == "healthy"
