"""Replica sets: aligned range cuts, divergent index types, routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.indexes import (
    BinarySearchIndex,
    BPlusTreeIndex,
    RadixSplineIndex,
)
from repro.serve.replica import (
    Replica,
    ReplicaSet,
    ReplicatedPlan,
    replicate,
)
from repro.serve.shard import range_shard


@pytest.fixture
def divergent_plan(small_relation):
    return replicate(
        small_relation, 2, [BinarySearchIndex, BPlusTreeIndex]
    )


class TestReplicate:
    def test_shape_and_index_types(self, divergent_plan):
        assert divergent_plan.num_shards == 2
        assert divergent_plan.replicas_per_shard == 2
        for shard_id in range(2):
            replica_set = divergent_plan.replicas(shard_id)
            assert [replica.replica_id for replica in replica_set] == [0, 1]
            assert replica_set[0].index_name == "binary search"
            assert replica_set[1].index_name == "B+tree"

    def test_replicas_cover_identical_key_slices(self, divergent_plan):
        # Range cuts depend only on (tuple count, shard count), so every
        # replica level slices R identically -- the alignment failover
        # relies on.
        for shard_id in range(divergent_plan.num_shards):
            slices = {
                (
                    replica.shard.base_position,
                    replica.shard.lower_key,
                    replica.shard.upper_key,
                    replica.shard.num_tuples,
                )
                for replica in divergent_plan.replicas(shard_id)
            }
            assert len(slices) == 1

    def test_divergent_replicas_answer_identically(
        self, divergent_plan, small_probes
    ):
        keys = small_probes.keys[:512]
        for shard_id, shard_keys, _ in divergent_plan.split(
            keys, np.arange(len(keys))
        ):
            answers = [
                replica.shard.probe(shard_keys)
                for replica in divergent_plan.replicas(shard_id)
            ]
            assert np.array_equal(answers[0], answers[1])

    def test_homogeneous_fleet(self, small_relation):
        plan = replicate(small_relation, 2, [RadixSplineIndex] * 3)
        assert plan.replicas_per_shard == 3
        names = {
            replica.index_name for replica in plan.replicas(0)
        }
        assert names == {"RadixSpline"}

    def test_empty_index_classes_rejected(self, small_relation):
        with pytest.raises(ConfigurationError):
            replicate(small_relation, 2, [])


class TestReplicaSet:
    def shard(self, relation):
        return range_shard(relation, 1, BinarySearchIndex).shards[0]

    def test_replica_ids_must_be_dense(self, small_relation):
        shard = self.shard(small_relation)
        with pytest.raises(ConfigurationError):
            ReplicaSet(0, [Replica(replica_id=1, shard=shard)])

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicaSet(0, [])

    def test_iteration_in_replica_order(self, small_relation):
        shard = self.shard(small_relation)
        replica_set = ReplicaSet(
            0,
            [Replica(replica_id=i, shard=shard) for i in range(3)],
        )
        assert len(replica_set) == 3
        assert [replica.replica_id for replica in replica_set] == [0, 1, 2]
        assert replica_set[2].replica_id == 2


class TestReplicatedPlan:
    def test_set_count_must_match_shards(self, small_relation):
        base = range_shard(small_relation, 2, BinarySearchIndex)
        sets = [
            ReplicaSet(0, [Replica(replica_id=0, shard=base.shards[0])])
        ]
        with pytest.raises(ConfigurationError):
            ReplicatedPlan(base, sets)

    def test_replica_sets_must_share_width(self, small_relation):
        base = range_shard(small_relation, 2, BinarySearchIndex)
        sets = [
            ReplicaSet(
                0,
                [
                    Replica(replica_id=i, shard=base.shards[0])
                    for i in range(2)
                ],
            ),
            ReplicaSet(1, [Replica(replica_id=0, shard=base.shards[1])]),
        ]
        with pytest.raises(ConfigurationError):
            ReplicatedPlan(base, sets)

    def test_routing_delegates_to_base_plan(
        self, divergent_plan, small_probes
    ):
        base = divergent_plan.base
        keys = small_probes.keys[:256]
        assert np.array_equal(
            divergent_plan.route(keys), base.route(keys)
        )
        ours = divergent_plan.split(keys, np.arange(len(keys)))
        theirs = base.split(keys, np.arange(len(keys)))
        assert [shard_id for shard_id, _, _ in ours] == [
            shard_id for shard_id, _, _ in theirs
        ]
        assert divergent_plan.num_shards == base.num_shards
        assert divergent_plan.shards is base.shards
