"""Property-based differential suite: the delta tier vs the update oracle.

The serving layer answers mixed read/write streams through a per-shard
sorted delta buffer reconciled into every probe, with policy-triggered
compactions folding the buffer back into the base index.  The reference
semantics are deliberately trivial: :class:`SortedArrayOracle` is a
plain key -> row-id mapping applied in arrival order.  Hypothesis
drives interleaved insert/probe/compact streams through both and
asserts element equality, across the same adversarial key regimes as
the PR-5 index suite (dense runs, huge gaps, the float64 precision
cliff at 2^53, and keys at/above 2^63 where int64 casts wrap).

The suite runs under the derandomized ``repro``/``ci`` profiles (see
tests/conftest.py and TESTING.md), so a counterexample reproduces from
the printed falsifying example alone; CI replays with
``HYPOTHESIS_PROFILE=ci``.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.data.column import MaterializedColumn  # noqa: E402
from repro.data.relation import Relation  # noqa: E402
from repro.indexes import BinarySearchIndex, BPlusTreeIndex  # noqa: E402
from repro.serve.delta import DeltaBuffer, merge_newest_wins  # noqa: E402
from repro.serve.shard import range_shard  # noqa: E402
from repro.workloads.updates import SortedArrayOracle  # noqa: E402

MAX_KEY = 2**64 - 1

#: (base, max_gap) key regimes, matching tests/indexes/test_differential:
#: the last three sit in the float/int conversion danger zones.
KEY_REGIMES = (
    (0, 3),
    (0, 2**16),
    (2**32, 2**20),
    (2**53 - 2**10, 3),
    (2**62, 3),
    (2**63 + 17, 2**10),
)


@st.composite
def base_keys_arrays(draw) -> np.ndarray:
    """Strictly increasing uint64 key arrays across the regimes."""
    size = draw(st.integers(min_value=2, max_value=128))
    base, max_gap = draw(st.sampled_from(KEY_REGIMES))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    gaps = rng.integers(1, max_gap + 1, size=size).astype(np.object_)
    keys = np.cumsum(gaps) + base
    if int(keys[-1]) > MAX_KEY:
        keys = keys - (int(keys[-1]) - MAX_KEY)
        if int(keys[0]) < 0:
            keys = keys - int(keys[0])
    return np.asarray([int(k) for k in keys], dtype=np.uint64)


@st.composite
def update_streams(draw):
    """(base_keys, steps): interleaved update/probe/compact streams.

    Update keys mix upserts of members with inserts of ``member + 1``
    (clamped away from the uint64 wrap; colliding with another member
    just makes it an upsert, which both sides treat identically).
    Probe keys mix members, previously written keys, near-misses, and
    out-of-domain extremes.  Values are the dense global row-id
    sequence the serving layer uses: base positions ``[0, n)``, update
    tuple ``j`` writing ``n + j``.
    """
    base_keys = draw(base_keys_arrays())
    n = len(base_keys)
    num_steps = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    steps = []
    written: list = []
    next_row_id = n
    for _ in range(num_steps):
        kind = draw(
            st.sampled_from(["update", "probe", "probe", "compact"])
        )
        if kind == "update":
            width = draw(st.integers(min_value=1, max_value=32))
            slots = rng.integers(0, n, size=width)
            inserts = rng.random(width) < 0.5
            keys = [int(base_keys[slot]) for slot in slots]
            keys = [
                min(key + 1, MAX_KEY) if insert else key
                for key, insert in zip(keys, inserts)
            ]
            values = np.arange(
                next_row_id, next_row_id + width, dtype=np.int64
            )
            next_row_id += width
            keys_arr = np.asarray(keys, dtype=np.uint64)
            written.extend(keys)
            steps.append(("update", keys_arr, values))
        elif kind == "probe":
            width = draw(st.integers(min_value=1, max_value=64))
            members = base_keys[rng.integers(0, n, size=width)]
            probes = [int(key) for key in members]
            if written:
                picks = rng.integers(0, len(written), size=width // 2 + 1)
                probes.extend(written[pick] for pick in picks)
            probes.extend(
                min(int(key) + 1, MAX_KEY)
                for key in members[: width // 4 + 1]
            )
            probes.extend([0, int(base_keys[-1]), MAX_KEY])
            probes_arr = np.asarray(probes, dtype=np.uint64)
            steps.append(
                ("probe", probes_arr[rng.permutation(len(probes_arr))], None)
            )
        else:
            steps.append(("compact", None, None))
    return base_keys, steps


def _serve_probe(plan, keys: np.ndarray) -> np.ndarray:
    """Route + probe one request through the plan, arrival order kept."""
    positions = np.empty(len(keys), dtype=np.int64)
    for shard_id, shard_keys, indices in plan.split(
        keys, np.arange(len(keys), dtype=np.int64)
    ):
        positions[indices] = plan.shards[shard_id].probe(shard_keys)
    return positions


class TestInterleavedStreamsMatchOracle:
    @pytest.mark.parametrize(
        "index_cls", [BinarySearchIndex, BPlusTreeIndex]
    )
    @given(stream=update_streams())
    @settings(deadline=None)
    def test_sharded_delta_tier_matches_oracle(self, index_cls, stream):
        base_keys, steps = stream
        plan = range_shard(
            Relation(name="R", column=MaterializedColumn(base_keys)),
            num_shards=min(3, len(base_keys)),
            index_cls=index_cls,
        )
        oracle = SortedArrayOracle(base_keys)
        for kind, keys, values in steps:
            if kind == "update":
                for shard_id, shard_keys, indices in plan.split(
                    keys, np.arange(len(keys), dtype=np.int64)
                ):
                    plan.shards[shard_id].apply_updates(
                        shard_keys, values[indices]
                    )
                oracle.apply(keys, values)
            elif kind == "probe":
                np.testing.assert_array_equal(
                    _serve_probe(plan, keys),
                    oracle.lookup(keys),
                    err_msg=f"{index_cls.name} delta tier diverges",
                )
            else:
                for shard in plan.shards:
                    shard.compact()

    @given(stream=update_streams())
    @settings(deadline=None)
    def test_compaction_never_changes_answers(self, stream):
        """Probing right after compacting equals probing right before."""
        base_keys, steps = stream
        plan = range_shard(
            Relation(name="R", column=MaterializedColumn(base_keys)),
            num_shards=1,
            index_cls=BinarySearchIndex,
        )
        shard = plan.shards[0]
        for kind, keys, values in steps:
            if kind == "update":
                shard.apply_updates(keys, values)
            elif kind == "probe":
                before = shard.probe(keys).copy()
                shard.compact()
                np.testing.assert_array_equal(shard.probe(keys), before)


class TestMergeNewestWins:
    @given(stream=update_streams())
    @settings(deadline=None)
    def test_merge_agrees_with_arrival_order_dict(self, stream):
        """One merge of all updates == the oracle's final mapping."""
        base_keys, steps = stream
        delta = DeltaBuffer()
        table = {
            int(key): position for position, key in enumerate(base_keys)
        }
        for kind, keys, values in steps:
            if kind != "update":
                continue
            delta.apply(keys, values)
            for key, value in zip(keys.tolist(), values.tolist()):
                table[int(key)] = int(value)
        base_values = np.arange(len(base_keys), dtype=np.int64)
        delta_keys, delta_values = delta.drain()
        merged_keys, merged_values = merge_newest_wins(
            base_keys, base_values, delta_keys, delta_values
        )
        assert np.all(merged_keys[1:] > merged_keys[:-1])
        expected = dict(sorted(table.items()))
        assert [int(k) for k in merged_keys] == list(expected)
        assert [int(v) for v in merged_values] == list(expected.values())

    @given(
        size=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_merge_is_idempotent(self, size, seed):
        """Re-merging an already merged run with the same delta is a
        no-op: newest-wins keeps the same (key, value) pairs."""
        rng = np.random.default_rng(seed)
        base_keys = np.cumsum(
            rng.integers(1, 5, size=size)
        ).astype(np.uint64)
        base_values = np.arange(size, dtype=np.int64)
        delta_keys = base_keys[rng.integers(0, size, size=size)]
        delta_values = size + np.arange(size, dtype=np.int64)
        once_k, once_v = merge_newest_wins(
            base_keys, base_values, delta_keys, delta_values
        )
        twice_k, twice_v = merge_newest_wins(
            once_k, once_v, delta_keys, delta_values
        )
        np.testing.assert_array_equal(once_k, twice_k)
        np.testing.assert_array_equal(once_v, twice_v)
