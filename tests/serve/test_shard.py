"""Range sharding: routing, probe correctness, boundary behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.column import MaterializedColumn
from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.indexes import ALL_INDEX_TYPES, BinarySearchIndex
from repro.serve.shard import fallback_shard, range_shard


def relation_of(keys):
    return Relation(
        name="R", column=MaterializedColumn(np.asarray(keys, dtype=np.uint64))
    )


def oracle(keys, probes):
    keys = np.asarray(keys, dtype=np.uint64)
    probes = np.asarray(probes, dtype=np.uint64)
    positions = np.searchsorted(keys, probes)
    hit = (positions < len(keys)) & (keys[np.minimum(positions, len(keys) - 1)] == probes)
    return np.where(hit, positions, -1).astype(np.int64)


class TestRangeShard:
    def test_shards_cover_relation_without_overlap(self):
        relation = relation_of(np.arange(0, 400, 4))
        plan = range_shard(relation, 4, BinarySearchIndex)
        assert plan.num_shards == 4
        assert sum(s.num_tuples for s in plan.shards) == 100
        bases = [s.base_position for s in plan.shards]
        assert bases == [0, 25, 50, 75]
        for left, right in zip(plan.shards, plan.shards[1:]):
            assert left.upper_key == right.lower_key

    def test_routing_sends_members_to_owning_shard(self):
        keys = np.arange(0, 1000, 3, dtype=np.uint64)
        plan = range_shard(relation_of(keys), 3, BinarySearchIndex)
        ids = plan.route(keys)
        for shard in plan.shards:
            routed = keys[ids == shard.shard_id]
            assert routed.min() >= shard.lower_key
            assert routed.max() < shard.upper_key

    def test_out_of_domain_keys_route_to_edge_shards(self):
        keys = np.arange(100, 200, 2, dtype=np.uint64)
        plan = range_shard(relation_of(keys), 2, BinarySearchIndex)
        ids = plan.route(np.asarray([0, 99, 999], dtype=np.uint64))
        assert ids[0] == 0 and ids[1] == 0
        assert ids[2] == plan.num_shards - 1

    @pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_sharded_probe_matches_oracle(self, index_cls, num_shards):
        rng = np.random.default_rng(7)
        keys = np.unique(rng.integers(0, 2**40, 3000).astype(np.uint64))
        relation = relation_of(keys)
        plan = range_shard(relation, num_shards, index_cls)
        probes = np.concatenate(
            [
                rng.choice(keys, 500),
                rng.choice(keys, 200) + np.uint64(1),
                np.asarray([keys[0], keys[-1]], dtype=np.uint64),
            ]
        )
        expected = oracle(keys, probes)
        got = np.full(len(probes), -1, dtype=np.int64)
        for shard_id, part_keys, part_indices in plan.split(
            probes, np.arange(len(probes), dtype=np.int64)
        ):
            got[part_indices] = plan.shards[shard_id].probe(part_keys)
        np.testing.assert_array_equal(got, expected)

    def test_duplicate_probe_keys_at_shard_boundary(self):
        """Named regression guard: boundary keys, duplicated, still hit.

        A key equal to a shard's lower bound is the easiest routing
        off-by-one: ``side='left'`` routing, or an exclusive lower
        bound, sends it to the previous shard where it misses.  Probe
        every boundary key many times over (duplicates within one
        window) and demand the exact global positions.
        """
        keys = np.arange(0, 10_000, 5, dtype=np.uint64)
        plan = range_shard(relation_of(keys), 4, BinarySearchIndex)
        boundaries = np.asarray(
            [shard.lower_key for shard in plan.shards], dtype=np.uint64
        )
        probes = np.repeat(boundaries, 17)
        expected = oracle(keys, probes)
        assert (expected >= 0).all()  # boundaries are members
        got = np.full(len(probes), -1, dtype=np.int64)
        for shard_id, part_keys, part_indices in plan.split(
            probes, np.arange(len(probes), dtype=np.int64)
        ):
            # Every duplicate of a boundary key lands on its own shard.
            assert (part_keys >= plan.shards[shard_id].lower_key).all()
            got[part_indices] = plan.shards[shard_id].probe(part_keys)
        np.testing.assert_array_equal(got, expected)

    def test_more_shards_than_tuples_clamps(self):
        plan = range_shard(relation_of([10, 20, 30]), 8, BinarySearchIndex)
        assert plan.num_shards == 3
        assert all(s.num_tuples == 1 for s in plan.shards)
        np.testing.assert_array_equal(
            plan.route(np.asarray([10, 20, 30], dtype=np.uint64)), [0, 1, 2]
        )

    def test_refuses_to_materialize_huge_relations(self):
        relation = relation_of(np.arange(100, dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            range_shard(relation, 2, BinarySearchIndex, max_tuples=10)

    def test_split_preserves_intra_shard_order(self):
        keys = np.arange(0, 100, 2, dtype=np.uint64)
        plan = range_shard(relation_of(keys), 2, BinarySearchIndex)
        probes = np.asarray([90, 2, 88, 4, 86, 6], dtype=np.uint64)
        parts = dict(
            (sid, idx)
            for sid, _, idx in plan.split(
                probes, np.arange(6, dtype=np.int64)
            )
        )
        np.testing.assert_array_equal(parts[0], [1, 3, 5])
        np.testing.assert_array_equal(parts[1], [0, 2, 4])

    def test_fallback_shard_spans_whole_relation(self):
        keys = np.arange(0, 1000, 7, dtype=np.uint64)
        shard = fallback_shard(relation_of(keys), BinarySearchIndex)
        assert shard.shard_id == -1
        probes = np.asarray([0, 7, 994, 995], dtype=np.uint64)
        np.testing.assert_array_equal(
            shard.probe(probes), oracle(keys, probes)
        )

    def test_calibration_counters_are_cached_and_positive(self):
        relation = relation_of(np.arange(0, 4096, 2, dtype=np.uint64))
        plan = range_shard(relation, 2, BinarySearchIndex)
        shard = plan.shards[0]
        first = shard.calibrate()
        assert first is shard.calibrate()
        assert first.per_lookup.memory_accesses > 0
        window = shard.window_counters(512)
        assert window.lookups == pytest.approx(512)
        assert window.translation_requests >= 0
