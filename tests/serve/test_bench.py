"""``repro serve-bench``: payload shape, determinism, CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.serve.bench import run_serve_bench, write_serve_bench

BENCH_KWARGS = dict(
    shards=(1, 2),
    window_kib=(4,),
    zipf_thetas=(0.0,),
    r_tuples=2**12,
    requests=8,
    request_tuples=128,
)


class TestServeBench:
    def test_payload_shape(self):
        payload = run_serve_bench(**BENCH_KWARGS)
        assert payload["benchmark"] == "repro-serve"
        assert len(payload["sweeps"]) == 2
        row = payload["sweeps"][-1]
        assert row["shards"] == 2
        assert set(row["per_shard"]) == {"0", "1"}
        shard = row["per_shard"]["0"]
        assert shard["serve.windows"] > 0
        assert shard["serve.lookups"] > 0
        assert shard["serve.replay"]["memory_accesses"] > 0
        assert row["admitted"] + row["rejected"] == row["requests"]
        assert row["throughput_lookups_per_second"] > 0
        assert row["latency_seconds"]["p99"] >= row["latency_seconds"]["p50"]
        assert row["failed_shards"] == []

    def test_payload_is_bit_identical_across_runs(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_serve_bench(run_serve_bench(**BENCH_KWARGS), str(first))
        write_serve_bench(run_serve_bench(**BENCH_KWARGS), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_seed_changes_payload(self):
        base = run_serve_bench(**BENCH_KWARGS)
        other = run_serve_bench(seed=43, **BENCH_KWARGS)
        assert base != other
        assert other["seed"] == 43

    def test_unknown_index_rejected(self):
        with pytest.raises(ConfigurationError):
            run_serve_bench(index="fractal-tree", **BENCH_KWARGS)

    @pytest.mark.parametrize(
        "index", ["btree", "harmonia", "radix-spline"]
    )
    def test_all_indexes_serve_correctly(self, index):
        # run_serve_bench asserts every served request against the
        # workload generator's ground truth internally.
        payload = run_serve_bench(index=index, **BENCH_KWARGS)
        assert payload["index"] == index

    def test_cli_writes_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "BENCH_serve.json"
        status = main(
            [
                "serve-bench",
                "--shards", "2",
                "--window-kib", "4",
                "--zipf", "0.0",
                "--index", "binary-search",
                "--json", str(out),
            ]
        )
        assert status == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "repro-serve"
        assert [row["shards"] for row in payload["sweeps"]] == [2]
        captured = capsys.readouterr()
        assert "lookups/s" in captured.out


class TestReplicatedServeBench:
    """``--replicas`` / ``--chaos-schedule``: the payload's degraded block."""

    DEGRADED_KEYS = {
        "fallback_windows",
        "failovers",
        "recoveries",
        "deferred_windows",
        "health_transitions",
    }

    def test_degraded_block_zero_on_clean_single_copy_run(self):
        payload = run_serve_bench(**BENCH_KWARGS)
        assert payload["replicas"] == 1
        for row in payload["sweeps"]:
            block = row["degraded"]
            assert set(block) == self.DEGRADED_KEYS
            assert block["fallback_windows"] == 0
            assert block["failovers"] == 0
            assert block["health_transitions"] == []
            assert row["per_shard"]["0"]["serve.failovers"] == 0
            assert row["per_shard"]["0"]["serve.deferred_windows"] == 0

    def test_replicated_payload_deterministic(self):
        first = run_serve_bench(replicas=2, **BENCH_KWARGS)
        second = run_serve_bench(replicas=2, **BENCH_KWARGS)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["replicas"] == 2
        assert first["replica_indexes"] == [
            "binary-search",
            "binary-search",
        ]

    def test_divergent_replicas_serve_correctly(self):
        # The oracle check inside run_serve_bench asserts every served
        # request against ground truth, whichever replica answered.
        payload = run_serve_bench(
            replicas=2,
            replica_indexes=["binary-search", "btree"],
            **BENCH_KWARGS,
        )
        assert payload["replica_indexes"] == ["binary-search", "btree"]

    def test_replica_index_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_serve_bench(
                replicas=3, replica_indexes=["btree"], **BENCH_KWARGS
            )
        with pytest.raises(ConfigurationError):
            run_serve_bench(
                replicas=2,
                replica_indexes=["btree", "fractal-tree"],
                **BENCH_KWARGS,
            )
        with pytest.raises(ConfigurationError):
            run_serve_bench(replicas=0, **BENCH_KWARGS)

    def test_chaos_schedule_flows_into_degraded_block(self, tmp_path):
        from repro.resilience.chaos import ChaosEvent, ChaosSchedule

        schedule = tmp_path / "kill.json"
        ChaosSchedule(
            events=(ChaosEvent(kind="kill", at=0.0, shard=0, replica=0),)
        ).dump(str(schedule))
        payload = run_serve_bench(
            replicas=2, chaos_schedule=str(schedule), **BENCH_KWARGS
        )
        assert payload["chaos_schedule"] == str(schedule)
        blocks = [row["degraded"] for row in payload["sweeps"]]
        # Homogeneous replicas tie on price, so replica 0 leads the
        # route and the kill fires: at least one row records the
        # failover and its priced rebuild.
        assert any(block["failovers"] >= 1 for block in blocks)
        transitions = [
            event
            for block in blocks
            for event in block["health_transitions"]
        ]
        assert any(
            event["kind"] == "rebuild_scheduled" for event in transitions
        )
        # Chaos stretches time, never results: the same sweep re-run
        # under the same schedule stays bit-identical.
        again = run_serve_bench(
            replicas=2, chaos_schedule=str(schedule), **BENCH_KWARGS
        )
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )


class TestServeBenchWorkers:
    """The sweep's pooled path is bit-identical to the serial one."""

    def test_serial_and_pooled_payloads_bit_identical(self):
        serial = run_serve_bench(workers=1, **BENCH_KWARGS)
        pooled = run_serve_bench(workers=2, **BENCH_KWARGS)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_payload_carries_no_worker_count(self):
        # Worker count is an execution detail; the payload stays
        # comparable (and CI-diffable) across machines.
        payload = run_serve_bench(workers=2, **BENCH_KWARGS)
        assert "workers" not in payload

    def test_auto_workers_accepted(self):
        payload = run_serve_bench(workers=0, **BENCH_KWARGS)
        assert len(payload["sweeps"]) == 2

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_serve_bench(workers=-2, **BENCH_KWARGS)
