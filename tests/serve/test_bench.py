"""``repro serve-bench``: payload shape, determinism, CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.serve.bench import run_serve_bench, write_serve_bench

BENCH_KWARGS = dict(
    shards=(1, 2),
    window_kib=(4,),
    zipf_thetas=(0.0,),
    r_tuples=2**12,
    requests=8,
    request_tuples=128,
)


class TestServeBench:
    def test_payload_shape(self):
        payload = run_serve_bench(**BENCH_KWARGS)
        assert payload["benchmark"] == "repro-serve"
        assert len(payload["sweeps"]) == 2
        row = payload["sweeps"][-1]
        assert row["shards"] == 2
        assert set(row["per_shard"]) == {"0", "1"}
        shard = row["per_shard"]["0"]
        assert shard["serve.windows"] > 0
        assert shard["serve.lookups"] > 0
        assert shard["serve.replay"]["memory_accesses"] > 0
        assert row["admitted"] + row["rejected"] == row["requests"]
        assert row["throughput_lookups_per_second"] > 0
        assert row["latency_seconds"]["p99"] >= row["latency_seconds"]["p50"]
        assert row["failed_shards"] == []

    def test_payload_is_bit_identical_across_runs(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_serve_bench(run_serve_bench(**BENCH_KWARGS), str(first))
        write_serve_bench(run_serve_bench(**BENCH_KWARGS), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_seed_changes_payload(self):
        base = run_serve_bench(**BENCH_KWARGS)
        other = run_serve_bench(seed=43, **BENCH_KWARGS)
        assert base != other
        assert other["seed"] == 43

    def test_unknown_index_rejected(self):
        with pytest.raises(ConfigurationError):
            run_serve_bench(index="fractal-tree", **BENCH_KWARGS)

    @pytest.mark.parametrize(
        "index", ["btree", "harmonia", "radix-spline"]
    )
    def test_all_indexes_serve_correctly(self, index):
        # run_serve_bench asserts every served request against the
        # workload generator's ground truth internally.
        payload = run_serve_bench(index=index, **BENCH_KWARGS)
        assert payload["index"] == index

    def test_cli_writes_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "BENCH_serve.json"
        status = main(
            [
                "serve-bench",
                "--shards", "2",
                "--window-kib", "4",
                "--zipf", "0.0",
                "--index", "binary-search",
                "--json", str(out),
            ]
        )
        assert status == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "repro-serve"
        assert [row["shards"] for row in payload["sweeps"]] == [2]
        captured = capsys.readouterr()
        assert "lookups/s" in captured.out


class TestServeBenchWorkers:
    """The sweep's pooled path is bit-identical to the serial one."""

    def test_serial_and_pooled_payloads_bit_identical(self):
        serial = run_serve_bench(workers=1, **BENCH_KWARGS)
        pooled = run_serve_bench(workers=2, **BENCH_KWARGS)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_payload_carries_no_worker_count(self):
        # Worker count is an execution detail; the payload stays
        # comparable (and CI-diffable) across machines.
        payload = run_serve_bench(workers=2, **BENCH_KWARGS)
        assert "workers" not in payload

    def test_auto_workers_accepted(self):
        payload = run_serve_bench(workers=0, **BENCH_KWARGS)
        assert len(payload["sweeps"]) == 2

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_serve_bench(workers=-2, **BENCH_KWARGS)
