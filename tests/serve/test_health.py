"""Replica health tracking: deterministic failure detection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serve.health import (
    DEAD,
    DEFAULT_FAILURE_THRESHOLD,
    HEALTHY,
    PROBATION,
    HealthEvent,
    HealthTracker,
)


def tracker(**kwargs) -> HealthTracker:
    defaults = dict(num_shards=2, replicas_per_shard=2)
    defaults.update(kwargs)
    return HealthTracker(**defaults)


class TestValidation:
    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ConfigurationError):
            HealthTracker(num_shards=0, replicas_per_shard=1)
        with pytest.raises(ConfigurationError):
            HealthTracker(num_shards=1, replicas_per_shard=0)
        with pytest.raises(ConfigurationError):
            HealthTracker(num_shards=1, replicas_per_shard=1, failure_threshold=0)

    def test_unknown_replica_rejected(self):
        health = tracker()
        with pytest.raises(ConfigurationError):
            health.state(2, 0)
        with pytest.raises(ConfigurationError):
            health.record_failure(0, 5, now=0.0)


class TestFailureDetection:
    def test_healthy_survives_below_threshold(self):
        health = tracker(failure_threshold=3)
        assert not health.record_failure(0, 0, now=1.0)
        assert not health.record_failure(0, 0, now=2.0)
        assert health.state(0, 0) == HEALTHY

    def test_consecutive_failures_kill(self):
        health = tracker()
        assert DEFAULT_FAILURE_THRESHOLD == 2
        assert not health.record_failure(0, 0, now=1.0)
        assert health.record_failure(0, 0, now=2.0)
        assert health.is_dead(0, 0)
        assert [event.kind for event in health.events] == [
            "failure",
            "failure",
            "dead",
        ]

    def test_success_resets_the_streak(self):
        health = tracker()
        health.record_failure(0, 0, now=1.0)
        health.record_success(0, 0, now=2.0)
        # The next failure starts a fresh streak: still healthy.
        assert not health.record_failure(0, 0, now=3.0)
        assert health.state(0, 0) == HEALTHY

    def test_failures_isolated_per_replica(self):
        health = tracker()
        health.record_failure(0, 0, now=1.0)
        health.record_failure(0, 0, now=2.0)
        assert health.state(0, 1) == HEALTHY
        assert health.state(1, 0) == HEALTHY

    def test_dead_replica_failures_ignored(self):
        health = tracker()
        health.force_dead(0, 0, now=1.0)
        before = len(health.events)
        assert not health.record_failure(0, 0, now=2.0)
        assert len(health.events) == before

    def test_force_dead_skips_the_streak(self):
        health = tracker(failure_threshold=5)
        assert health.force_dead(0, 0, now=1.0)
        assert health.is_dead(0, 0)
        assert not health.force_dead(0, 0, now=2.0)


class TestRecoveryCycle:
    def kill_and_rebuild(self, health: HealthTracker) -> None:
        health.force_dead(0, 0, now=1.0)
        health.schedule_rebuild(0, 0, now=1.0, ready_at=2.0, detail="x")
        assert health.complete_rebuild(0, 0, now=2.0)

    def test_rebuild_requires_dead(self):
        health = tracker()
        with pytest.raises(ConfigurationError):
            health.schedule_rebuild(0, 0, now=1.0, ready_at=2.0)

    def test_rebuild_cannot_complete_in_the_past(self):
        health = tracker()
        health.force_dead(0, 0, now=5.0)
        with pytest.raises(ConfigurationError):
            health.schedule_rebuild(0, 0, now=5.0, ready_at=4.0)

    def test_completion_enters_probation(self):
        health = tracker()
        self.kill_and_rebuild(health)
        assert health.state(0, 0) == PROBATION
        assert health.rebuild_ready_at(0, 0) is None

    def test_stale_completion_is_noop(self):
        health = tracker()
        assert not health.complete_rebuild(0, 0, now=1.0)
        assert health.state(0, 0) == HEALTHY

    def test_probation_recovers_on_first_success(self):
        health = tracker()
        self.kill_and_rebuild(health)
        assert health.record_success(0, 0, now=3.0)
        assert health.state(0, 0) == HEALTHY
        assert health.events[-1].kind == "recovered"

    def test_probation_dies_on_first_failure(self):
        # Half-open circuit breaker: the trial window failed, no second
        # chance regardless of the healthy-state threshold.
        health = tracker(failure_threshold=5)
        self.kill_and_rebuild(health)
        assert health.record_failure(0, 0, now=3.0)
        assert health.state(0, 0) == DEAD


class TestNextRebuildReady:
    def test_none_without_pending_rebuild(self):
        health = tracker()
        assert health.next_rebuild_ready(0) is None
        health.force_dead(0, 0, now=1.0)  # dead but unscheduled
        assert health.next_rebuild_ready(0) is None

    def test_earliest_completion_wins(self):
        health = tracker()
        health.force_dead(0, 0, now=1.0)
        health.force_dead(0, 1, now=1.0)
        health.schedule_rebuild(0, 0, now=1.0, ready_at=9.0)
        health.schedule_rebuild(0, 1, now=1.0, ready_at=3.0)
        assert health.next_rebuild_ready(0) == (3.0, 1)

    def test_ties_break_on_lower_replica_id(self):
        health = tracker()
        health.force_dead(0, 0, now=1.0)
        health.force_dead(0, 1, now=1.0)
        health.schedule_rebuild(0, 0, now=1.0, ready_at=3.0)
        health.schedule_rebuild(0, 1, now=1.0, ready_at=3.0)
        assert health.next_rebuild_ready(0) == (3.0, 0)


class TestTimeline:
    def test_events_serialize_with_rounded_times(self):
        event = HealthEvent(
            time=0.123456789123, shard=1, replica=0, kind="dead"
        )
        assert event.as_dict() == {
            "t": 0.123456789,
            "shard": 1,
            "replica": 0,
            "kind": "dead",
            "detail": "",
        }

    def test_transitions_and_count(self):
        health = tracker()
        health.record_failure(0, 0, now=1.0)
        health.record_failure(0, 0, now=2.0)
        health.note(2.0, 0, 0, "failover", "window=7")
        assert health.count("failure") == 2
        assert health.count("failover") == 1
        transitions = health.transitions()
        assert [entry["kind"] for entry in transitions] == [
            "failure",
            "failure",
            "dead",
            "failover",
        ]
        assert transitions[-1]["detail"] == "window=7"
