"""Delta tier primitives: buffer, merge, read pricing, compaction policy."""

import numpy as np
import pytest

from repro.data.column import VirtualSortedColumn
from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.indexes import (
    BinarySearchIndex,
    BPlusTreeIndex,
    FastTreeIndex,
    HarmoniaIndex,
    RadixSplineIndex,
)
from repro.serve.delta import (
    DEFAULT_COMPACTION_POLICY,
    CompactionPolicy,
    DeltaBuffer,
    delta_search_steps,
    merge_newest_wins,
    read_amplification,
)
from repro.serve.recovery import (
    COMPACTION_STRATEGY_BY_INDEX,
    price_compaction,
)
from repro.serve.shard import fallback_shard


def keys_of(*values):
    return np.asarray(values, dtype=np.uint64)


def vals_of(*values):
    return np.asarray(values, dtype=np.int64)


class TestDeltaBuffer:
    def test_apply_keeps_sorted_newest_wins(self):
        delta = DeltaBuffer()
        delta.apply(keys_of(7, 3), vals_of(10, 11))
        delta.apply(keys_of(3, 9), vals_of(12, 13))
        keys, values = delta.snapshot()
        np.testing.assert_array_equal(keys, keys_of(3, 7, 9))
        np.testing.assert_array_equal(values, vals_of(12, 10, 13))

    def test_lookup_into_overrides_only_buffered_keys(self):
        delta = DeltaBuffer()
        delta.apply(keys_of(5), vals_of(99))
        positions = vals_of(0, 1, -1)
        hits = delta.lookup_into(keys_of(2, 5, 8), positions)
        assert hits == 1
        np.testing.assert_array_equal(positions, vals_of(0, 99, -1))

    def test_duplicate_keys_in_one_batch_take_the_last(self):
        delta = DeltaBuffer()
        delta.apply(keys_of(4, 4, 4), vals_of(1, 2, 3))
        positions = vals_of(-1)
        delta.lookup_into(keys_of(4), positions)
        assert positions[0] == 3

    def test_drain_resets_the_buffer(self):
        delta = DeltaBuffer()
        delta.apply(keys_of(1, 2), vals_of(8, 9))
        keys, values = delta.drain()
        assert len(keys) == 2 and len(values) == 2
        assert delta.num_tuples == 0
        assert delta.read_counters(128) is None

    def test_read_counters_scale_with_depth_and_window(self):
        delta = DeltaBuffer()
        delta.apply(keys_of(1, 2, 3, 4), vals_of(0, 1, 2, 3))
        counters = delta.read_counters(64)
        assert counters is not None
        steps = delta_search_steps(4)
        assert counters.memory_accesses == 64 * steps
        assert counters.simt_instructions == 64 * steps

    def test_rejects_mismatched_batch(self):
        with pytest.raises(ConfigurationError):
            DeltaBuffer().apply(keys_of(1, 2), vals_of(1))


class TestMergeNewestWins:
    def test_delta_overrides_base(self):
        merged_keys, merged_values = merge_newest_wins(
            keys_of(1, 3, 5), vals_of(0, 1, 2), keys_of(3, 4), vals_of(9, 8)
        )
        np.testing.assert_array_equal(merged_keys, keys_of(1, 3, 4, 5))
        np.testing.assert_array_equal(merged_values, vals_of(0, 9, 8, 2))

    def test_empty_delta_is_identity(self):
        merged_keys, merged_values = merge_newest_wins(
            keys_of(1, 2), vals_of(0, 1), keys_of(), vals_of()
        )
        np.testing.assert_array_equal(merged_keys, keys_of(1, 2))
        np.testing.assert_array_equal(merged_values, vals_of(0, 1))


class TestSearchStepsAndAmplification:
    def test_steps_are_ceil_log2_plus_one(self):
        assert delta_search_steps(0) == 0
        assert delta_search_steps(1) == 1
        assert delta_search_steps(2) == 2
        assert delta_search_steps(1024) == 11

    def test_read_amplification_relative_to_index_height(self):
        assert read_amplification(0, 4) == 0.0
        assert read_amplification(1024, 4) == pytest.approx(11 / 4)
        # A height-0 structure still yields a finite ratio.
        assert read_amplification(8, 0) == pytest.approx(4.0)


class TestCompactionPolicy:
    def test_size_cap_triggers(self):
        policy = CompactionPolicy(max_delta_tuples=8)
        assert policy.should_compact(8, 0.0, 0.0, 1.0)
        assert not policy.should_compact(7, 0.0, 0.0, 1.0)

    def test_read_amplification_cap_triggers(self):
        policy = CompactionPolicy(max_read_amplification=2.0)
        assert policy.should_compact(1, 2.5, 0.0, 1.0)
        assert not policy.should_compact(1, 1.5, 0.0, 1.0)

    def test_rent_to_own_triggers_on_accrued_read_seconds(self):
        policy = CompactionPolicy(cost_ratio=1.0)
        assert policy.should_compact(1, 0.0, 2.0, 1.5)
        assert not policy.should_compact(1, 0.0, 1.0, 1.5)

    def test_rejects_degenerate_thresholds(self):
        with pytest.raises(ConfigurationError):
            CompactionPolicy(max_delta_tuples=0)
        with pytest.raises(ConfigurationError):
            CompactionPolicy(max_read_amplification=0.0)
        with pytest.raises(ConfigurationError):
            CompactionPolicy(cost_ratio=-1.0)

    def test_default_policy_is_usable(self):
        assert DEFAULT_COMPACTION_POLICY.max_delta_tuples > 0


class TestPriceCompaction:
    @pytest.mark.parametrize(
        "index_cls,strategy",
        [
            (BPlusTreeIndex, "absorb"),
            (HarmoniaIndex, "absorb"),
            (RadixSplineIndex, "retrain"),
            (BinarySearchIndex, "rebuild"),
            (FastTreeIndex, "rebuild"),
        ],
    )
    def test_strategy_follows_index_type(self, index_cls, strategy):
        assert COMPACTION_STRATEGY_BY_INDEX[index_cls.name] == strategy
        shard = fallback_shard(
            Relation("R", VirtualSortedColumn(2**12)), index_cls
        )
        cost = price_compaction(shard, delta_tuples=256)
        assert cost.strategy == strategy
        assert cost.seconds > 0
        assert cost.describe().startswith(strategy)

    def test_absorb_is_cheaper_than_retrain_at_small_delta(self):
        """The delta-proportional strategies must beat the full-scan
        ones for small deltas over a large base -- the asymmetry the
        paper's Section 6 update guidance rests on."""
        relation = Relation("R", VirtualSortedColumn(2**12))
        absorb = price_compaction(
            fallback_shard(relation, BPlusTreeIndex), delta_tuples=16
        )
        retrain = price_compaction(
            fallback_shard(relation, RadixSplineIndex), delta_tuples=16
        )
        assert absorb.seconds < retrain.seconds

    def test_price_scales_with_delta(self):
        shard = fallback_shard(
            Relation("R", VirtualSortedColumn(2**12)), BPlusTreeIndex
        )
        small = price_compaction(shard, delta_tuples=16)
        large = price_compaction(shard, delta_tuples=4096)
        assert large.seconds > small.seconds

    def test_rejects_empty_delta(self):
        shard = fallback_shard(
            Relation("R", VirtualSortedColumn(2**10)), BPlusTreeIndex
        )
        with pytest.raises(ConfigurationError):
            price_compaction(shard, delta_tuples=0)
