"""Tumbling-window batcher: boundaries, partial flush, reuse of the
engine's window operator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.batcher import ShardBatcher
from repro.units import KEY_BYTES


def keys_of(count, start=0):
    return np.arange(start, start + count, dtype=np.uint64)


def indices_of(count, start=0):
    return np.arange(start, start + count, dtype=np.int64)


class TestShardBatcher:
    def test_window_closes_exactly_at_capacity(self):
        batcher = ShardBatcher(num_shards=1, window_bytes=8 * KEY_BYTES)
        assert batcher.push(0, keys_of(7), indices_of(7)) == []
        windows = batcher.push(0, keys_of(1, 7), indices_of(1, 7))
        assert len(windows) == 1
        assert windows[0].full
        assert len(windows[0]) == 8
        assert batcher.pending_tuples(0) == 0

    def test_oversized_push_emits_multiple_windows(self):
        batcher = ShardBatcher(num_shards=1, window_bytes=4 * KEY_BYTES)
        windows = batcher.push(0, keys_of(11), indices_of(11))
        assert [len(w) for w in windows] == [4, 4]
        assert all(w.full for w in windows)
        # The trailing 3 tuples stay buffered, not emitted.
        assert batcher.pending_tuples(0) == 3

    def test_windows_preserve_arrival_order_and_indices(self):
        batcher = ShardBatcher(num_shards=1, window_bytes=4 * KEY_BYTES)
        batcher.push(0, keys_of(2, 100), indices_of(2, 0))
        windows = batcher.push(0, keys_of(3, 200), indices_of(3, 2))
        assert len(windows) == 1
        np.testing.assert_array_equal(
            windows[0].keys, [100, 101, 200, 201]
        )
        np.testing.assert_array_equal(windows[0].indices, [0, 1, 2, 3])
        assert batcher.pending_tuples(0) == 1

    def test_flush_emits_partial_window(self):
        """Named regression guard: the final partial window must flush.

        Section 5.1 processes a window early "if no more tuples are
        available on the probe side"; a batcher that only emitted full
        windows would silently drop up to window_size - 1 trailing
        probes of every stream.
        """
        batcher = ShardBatcher(num_shards=2, window_bytes=8 * KEY_BYTES)
        batcher.push(1, keys_of(3), indices_of(3))
        windows = batcher.flush_all()
        assert [w.shard_id for w in windows] == [1]
        assert not windows[0].full
        assert len(windows[0]) == 3
        # Flush is terminal for the buffered state: nothing remains.
        assert batcher.pending_tuples(1) == 0
        assert batcher.flush_all() == []

    def test_flush_after_exact_fill_emits_nothing(self):
        batcher = ShardBatcher(num_shards=1, window_bytes=4 * KEY_BYTES)
        batcher.push(0, keys_of(4), indices_of(4))
        assert batcher.flush_all() == []

    def test_per_shard_streams_are_independent(self):
        batcher = ShardBatcher(num_shards=3, window_bytes=4 * KEY_BYTES)
        batcher.push(0, keys_of(3), indices_of(3))
        windows = batcher.push(2, keys_of(4), indices_of(4))
        assert [w.shard_id for w in windows] == [2]
        assert batcher.pending_tuples(0) == 3
        assert batcher.pending_tuples(1) == 0

    def test_rejects_unknown_shard_and_degenerate_window(self):
        batcher = ShardBatcher(num_shards=1, window_bytes=8 * KEY_BYTES)
        with pytest.raises(ConfigurationError):
            batcher.push(1, keys_of(1), indices_of(1))
        with pytest.raises(ConfigurationError):
            ShardBatcher(num_shards=1, window_bytes=KEY_BYTES - 1)
        with pytest.raises(ConfigurationError):
            ShardBatcher(num_shards=0, window_bytes=8 * KEY_BYTES)

    def test_empty_push_is_a_no_op(self):
        batcher = ShardBatcher(num_shards=1, window_bytes=4 * KEY_BYTES)
        assert batcher.push(0, keys_of(0), indices_of(0)) == []
        assert batcher.pending_tuples(0) == 0
