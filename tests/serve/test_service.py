"""End-to-end serving: oracle equality, determinism, backpressure,
fault degradation, and the ``serve.*`` observability contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.data.generator import WorkloadConfig, make_build_relation, make_probe_keys
from repro.errors import ConfigurationError
from repro.indexes import BinarySearchIndex, RadixSplineIndex
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.serve import (
    ProbeRequest,
    ShardExecutor,
    ShardedIndexService,
    fallback_shard,
    range_shard,
)
from repro.units import KEY_BYTES


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()


def build_workload(theta=0.0, r_tuples=2**12, probe_count=2**11, seed=3):
    config = WorkloadConfig(
        r_tuples=r_tuples,
        s_tuples=probe_count,
        match_rate=0.9,
        zipf_theta=theta,
        seed=seed,
    )
    relation = make_build_relation(config)
    probes = make_probe_keys(relation.column, config)
    return relation, probes


def build_service(
    relation,
    num_shards=4,
    window_tuples=64,
    index_cls=BinarySearchIndex,
    max_backlog_tuples=10_000,
    policy=None,
):
    plan = range_shard(relation, num_shards, index_cls)
    executor = ShardExecutor(
        plan, fallback_shard(relation, index_cls), policy=policy
    )
    return ShardedIndexService(
        plan,
        executor,
        window_bytes=window_tuples * KEY_BYTES,
        max_backlog_tuples=max_backlog_tuples,
    )


def as_requests(probes, request_tuples=128, interval=1e-3):
    count = len(probes.keys) // request_tuples
    return [
        ProbeRequest(
            request_id=i,
            keys=probes.keys[i * request_tuples : (i + 1) * request_tuples],
            arrival=i * interval,
        )
        for i in range(count)
    ]


class TestShardedIndexService:
    @pytest.mark.parametrize("theta", [0.0, 1.0])
    @pytest.mark.parametrize("index_cls", [BinarySearchIndex, RadixSplineIndex])
    def test_served_positions_match_generator_truth(self, theta, index_cls):
        relation, probes = build_workload(theta=theta)
        service = build_service(relation, index_cls=index_cls)
        requests = as_requests(probes)
        report = service.run(requests)
        assert report.rejected_requests == 0
        for request, outcome in zip(requests, report.outcomes):
            truth = probes.expected_positions[
                request.request_id * 128 : (request.request_id + 1) * 128
            ]
            np.testing.assert_array_equal(outcome.positions, truth)
            assert outcome.latency is not None and outcome.latency > 0

    def test_report_is_deterministic(self):
        relation, probes = build_workload()
        first = build_service(relation).run(as_requests(probes))
        second = build_service(relation).run(as_requests(probes))
        assert first.makespan_seconds == second.makespan_seconds
        assert first.latencies == second.latencies
        for shard_id, stats in first.shard_stats.items():
            other = second.shard_stats[shard_id]
            assert stats.windows == other.windows
            assert stats.busy_seconds == other.busy_seconds
            assert stats.counters.as_dict() == other.counters.as_dict()

    def test_partial_windows_flush_at_end_of_stream(self):
        """Tuples short of a full window must still be served."""
        relation, probes = build_workload(probe_count=2**10)
        # 96-tuple requests against 64-tuple windows: every request
        # leaves a 32-tuple remainder that only a flush can serve.
        service = build_service(relation, window_tuples=64)
        report = service.run(as_requests(probes, request_tuples=96))
        assert all(o.completion is not None for o in report.outcomes)
        partial = sum(
            stats.windows - stats.full_windows
            for stats in report.shard_stats.values()
        )
        assert partial > 0

    def test_backpressure_rejects_whole_requests(self):
        relation, probes = build_workload()
        service = build_service(
            relation, window_tuples=64, max_backlog_tuples=256
        )
        # Simultaneous arrivals: the backlog bound must trip.
        requests = as_requests(probes, interval=0.0)
        report = service.run(requests)
        assert report.rejected_requests > 0
        assert (
            report.admitted_requests + report.rejected_requests
            == len(requests)
        )
        for outcome in report.outcomes:
            if not outcome.admitted:
                assert outcome.positions is None
                assert outcome.latency is None
            else:
                assert outcome.completion is not None

    def test_bursty_arrivals_queue_but_do_not_change_results(self):
        relation, probes = build_workload()
        spaced = build_service(relation).run(
            as_requests(probes, interval=1.0)
        )
        bursty = build_service(relation).run(
            as_requests(probes, interval=0.0)
        )
        assert bursty.admitted_requests == spaced.admitted_requests
        for a, b in zip(spaced.outcomes, bursty.outcomes):
            np.testing.assert_array_equal(a.positions, b.positions)
        # A burst piles windows up behind busy shards; spaced arrivals
        # find the shards idle (their latency is window-fill time, not
        # queueing -- a window only closes once later tuples fill it).
        def total_wait(report):
            return sum(
                stats.queue_wait_seconds
                for stats in report.shard_stats.values()
            )

        assert total_wait(bursty) > total_wait(spaced)
        assert spaced.makespan_seconds > bursty.makespan_seconds

    def test_transient_fault_is_retried_and_results_unchanged(self):
        relation, probes = build_workload()
        requests = as_requests(probes)
        baseline = build_service(relation).run(requests)
        faults.install(
            FaultPlan(kind="raise", site="shard", at=1, count=2)
        )
        report = build_service(
            relation, policy=RetryPolicy(max_attempts=3, jitter=0.0)
        ).run(requests)
        total_retries = sum(
            stats.retries for stats in report.shard_stats.values()
        )
        assert total_retries > 0
        assert sum(
            s.degraded_windows for s in report.shard_stats.values()
        ) == 0
        for a, b in zip(baseline.outcomes, report.outcomes):
            np.testing.assert_array_equal(a.positions, b.positions)
        # Backoff is simulated time: the faulted run takes longer.
        assert report.makespan_seconds > baseline.makespan_seconds

    def test_permanent_shard_failure_degrades_to_fallback(self):
        relation, probes = build_workload()
        requests = as_requests(probes)
        baseline = build_service(relation).run(requests)
        faults.install(
            FaultPlan(
                kind="raise",
                site="shard",
                at=0,
                count=10_000,
                match="shard2",
            )
        )
        service = build_service(
            relation, policy=RetryPolicy(max_attempts=2, jitter=0.0)
        )
        report = service.run(requests)
        assert service.executor.failed_shards == [2]
        assert report.shard_stats[2].degraded_windows == (
            report.shard_stats[2].windows
        )
        # Degraded answers are identical: the fallback spans all of R.
        for a, b in zip(baseline.outcomes, report.outcomes):
            np.testing.assert_array_equal(a.positions, b.positions)

    def test_rejects_unsorted_arrivals(self):
        relation, probes = build_workload()
        requests = as_requests(probes)[:2][::-1]
        with pytest.raises(ConfigurationError):
            build_service(relation).run(requests)

    def test_serve_metrics_recorded_when_tracing(self):
        relation, probes = build_workload()
        service = build_service(relation, num_shards=2)
        obs.enable()
        obs.reset()
        try:
            report = service.run(as_requests(probes))
            windows = sum(
                obs.counter("serve.windows", shard=shard_id)
                for shard_id in (0, 1)
            )
            lookups = sum(
                obs.counter("serve.window_lookups", shard=shard_id)
                for shard_id in (0, 1)
            )
            assert windows == sum(
                stats.windows for stats in report.shard_stats.values()
            )
            assert lookups == report.total_lookups
            assert obs.counter("serve.requests.admitted") == (
                report.admitted_requests
            )
            # The aggregated replay counters land under the manifest's
            # perf-counter scheme (serve.<field>); their names are kept
            # disjoint from the labelled per-shard window counters.
            assert obs.counter("serve.lookups") == pytest.approx(
                report.total_counters().lookups
            )
            assert obs.counter("serve.memory_accesses") > 0
        finally:
            obs.reset()
            obs.disable()

    def test_untraced_run_records_nothing(self):
        relation, probes = build_workload()
        obs.reset()
        build_service(relation).run(as_requests(probes))
        assert obs.counter("serve.windows", shard=0) == 0.0
