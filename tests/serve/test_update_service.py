"""Mixed read/write serving end to end: kind-homogeneous windows,
host-authoritative updates, priced compaction events on the simulated
clock, oracle equality, chaos invariance, and the ``updates`` payload
block's bit-identity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.data.column import KEY_DTYPE
from repro.data.generator import WorkloadConfig, make_build_relation, make_probe_keys
from repro.errors import ConfigurationError
from repro.indexes import BinarySearchIndex, BPlusTreeIndex
from repro.resilience import faults
from repro.serve import (
    CompactionPolicy,
    ProbeRequest,
    ReplicatedShardExecutor,
    ShardBatcher,
    ShardExecutor,
    ShardedIndexService,
    fallback_shard,
    range_shard,
    replicate,
)
from repro.serve.bench import run_serve_bench, run_sweep_point
from repro.units import KEY_BYTES
from repro.workloads.updates import SortedArrayOracle, make_update_stream


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()


def build_workload(r_tuples=2**12, probe_count=2**11, seed=3, theta=0.0):
    config = WorkloadConfig(
        r_tuples=r_tuples,
        s_tuples=probe_count,
        match_rate=0.9,
        zipf_theta=theta,
        seed=seed,
    )
    relation = make_build_relation(config)
    probes = make_probe_keys(relation.column, config)
    return relation, probes


def mixed_requests(relation, probes, num_requests, request_tuples,
                   update_fraction=0.5, seed=42, spacing=1e-6):
    base_keys = relation.column.key_at(
        np.arange(relation.num_tuples, dtype=np.int64)
    )
    stream = make_update_stream(
        base_keys,
        probes.keys,
        num_requests,
        request_tuples,
        update_fraction,
        seed,
    )
    requests = [
        ProbeRequest(
            request_id=i,
            keys=stream.keys[i],
            arrival=i * spacing,
            kind=stream.kinds[i],
            values=stream.values[i],
        )
        for i in range(num_requests)
    ]
    return base_keys, stream, requests


def replay_against_oracle(base_keys, requests, report):
    oracle = SortedArrayOracle(base_keys)
    for request, outcome in zip(requests, report.outcomes):
        if not outcome.admitted:
            continue
        if request.kind == "update":
            np.testing.assert_array_equal(
                outcome.positions, request.values
            )
            oracle.apply(request.keys, request.values)
        else:
            np.testing.assert_array_equal(
                outcome.positions, oracle.lookup(request.keys)
            )


class TestBatcherKindCuts:
    def test_kind_change_cuts_the_open_window(self):
        batcher = ShardBatcher(num_shards=1, window_bytes=8 * KEY_BYTES)
        batcher.push(
            0,
            np.asarray([1, 2], dtype=KEY_DTYPE),
            np.asarray([0, 1], dtype=np.int64),
        )
        windows = batcher.push(
            0,
            np.asarray([3], dtype=KEY_DTYPE),
            np.asarray([2], dtype=np.int64),
            kind="update",
        )
        assert len(windows) == 1
        assert windows[0].kind == "probe"
        assert not windows[0].full
        flushed = batcher.flush(0)
        assert len(flushed) == 1
        assert flushed[0].kind == "update"

    def test_same_kind_stream_never_cuts_early(self):
        batcher = ShardBatcher(num_shards=1, window_bytes=4 * KEY_BYTES)
        out = []
        for start in range(0, 8, 2):
            out.extend(
                batcher.push(
                    0,
                    np.asarray([start, start + 1], dtype=KEY_DTYPE),
                    np.arange(start, start + 2, dtype=np.int64),
                    kind="update",
                )
            )
        assert [window.full for window in out] == [True, True]
        assert all(window.kind == "update" for window in out)

    def test_rejects_unknown_kind(self):
        batcher = ShardBatcher(num_shards=1, window_bytes=4 * KEY_BYTES)
        with pytest.raises(ConfigurationError):
            batcher.push(
                0,
                np.asarray([1], dtype=KEY_DTYPE),
                np.asarray([0], dtype=np.int64),
                kind="delete",
            )


class TestProbeRequestValidation:
    def test_update_requires_matching_values(self):
        with pytest.raises(ConfigurationError):
            ProbeRequest(
                request_id=0,
                keys=np.asarray([1, 2], dtype=KEY_DTYPE),
                arrival=0.0,
                kind="update",
                values=np.asarray([7], dtype=np.int64),
            )
        with pytest.raises(ConfigurationError):
            ProbeRequest(
                request_id=0,
                keys=np.asarray([1], dtype=KEY_DTYPE),
                arrival=0.0,
                kind="update",
            )

    def test_probe_must_not_carry_values(self):
        with pytest.raises(ConfigurationError):
            ProbeRequest(
                request_id=0,
                keys=np.asarray([1], dtype=KEY_DTYPE),
                arrival=0.0,
                values=np.asarray([7], dtype=np.int64),
            )


class TestMixedServiceSingleCopy:
    """The unreplicated PR-5 executor: correct, never compacts."""

    def test_mixed_stream_matches_oracle(self):
        relation, probes = build_workload()
        plan = range_shard(relation, 2, BinarySearchIndex)
        executor = ShardExecutor(
            plan, fallback_shard(relation, BinarySearchIndex)
        )
        service = ShardedIndexService(
            plan, executor, window_bytes=512, max_backlog_tuples=10_000
        )
        base_keys, stream, requests = mixed_requests(
            relation, probes, num_requests=16, request_tuples=64
        )
        report = service.run(requests)
        replay_against_oracle(base_keys, requests, report)
        assert executor.update_windows > 0
        assert executor.update_tuples == stream.update_tuples
        # No event scheduling on this executor: deltas persist.
        assert sum(s.delta.num_tuples for s in plan.shards) > 0

    def test_probe_stats_exclude_update_traffic(self):
        relation, probes = build_workload()
        plan = range_shard(relation, 1, BinarySearchIndex)
        executor = ShardExecutor(
            plan, fallback_shard(relation, BinarySearchIndex)
        )
        service = ShardedIndexService(
            plan, executor, window_bytes=512, max_backlog_tuples=10_000
        )
        _, stream, requests = mixed_requests(
            relation, probes, num_requests=16, request_tuples=64
        )
        report = service.run(requests)
        stats = report.shard_stats[0]
        probe_tuples = sum(
            len(r.keys) for r in requests if r.kind == "probe"
        )
        assert stats.lookups == probe_tuples
        assert stats.update_tuples == stream.update_tuples
        assert report.total_lookups == probe_tuples


class TestMixedServiceReplicated:
    def run_mixed(self, replicas=2, policy=None, num_requests=24,
                  update_fraction=0.5, index_cls=BPlusTreeIndex):
        relation, probes = build_workload()
        plan = replicate(relation, 2, [index_cls] * replicas)
        kwargs = {} if policy is None else {"compaction_policy": policy}
        executor = ReplicatedShardExecutor(
            plan, fallback_shard(relation, index_cls), **kwargs
        )
        service = ShardedIndexService(
            plan, executor, window_bytes=512, max_backlog_tuples=10_000
        )
        base_keys, stream, requests = mixed_requests(
            relation, probes, num_requests=num_requests,
            request_tuples=64, update_fraction=update_fraction,
        )
        report = service.run(requests)
        return base_keys, stream, requests, report, executor, plan

    def test_mixed_stream_matches_oracle_and_compacts(self):
        base_keys, stream, requests, report, executor, plan = (
            self.run_mixed()
        )
        replay_against_oracle(base_keys, requests, report)
        assert executor.update_tuples == stream.update_tuples
        assert len(executor.compactions) > 0
        assert executor.compactions_completed > 0
        assert executor.delta_peak > 0

    def test_compaction_events_are_priced_and_attributed(self):
        _, _, _, _, executor, _ = self.run_mixed()
        for event in executor.compactions:
            assert event["seconds"] > 0
            assert event["strategy"] == "absorb"
            assert event["index"] == BPlusTreeIndex.name
            assert event["delta_tuples"] > 0
            assert event["scheduled_at"] >= 0.0

    def test_replicas_compact_rolling_but_converge(self):
        """Every replica of a shard eventually compacts to identical
        content (the merge is content-determined)."""
        _, _, _, _, executor, plan = self.run_mixed()
        assert executor.compactions_completed > 0
        for shard_id in range(plan.num_shards):
            replicas = plan.replicas(shard_id)
            probe = np.asarray(
                [replicas[0].shard.lower_key], dtype=KEY_DTYPE
            )
            answers = {
                int(replica.shard.probe(probe.copy())[0])
                for replica in replicas
            }
            assert len(answers) == 1

    def test_size_cap_policy_forces_early_compaction(self):
        tight = CompactionPolicy(
            max_delta_tuples=16, max_read_amplification=1e9, cost_ratio=1e9
        )
        _, _, _, _, tight_exec, _ = self.run_mixed(policy=tight)
        loose = CompactionPolicy(
            max_delta_tuples=10**6,
            max_read_amplification=1e9,
            cost_ratio=1e9,
        )
        _, _, _, _, loose_exec, _ = self.run_mixed(policy=loose)
        assert len(tight_exec.compactions) > len(loose_exec.compactions)
        assert loose_exec.delta_peak > tight_exec.delta_peak

    def test_loose_policy_still_matches_oracle(self):
        loose = CompactionPolicy(
            max_delta_tuples=10**6,
            max_read_amplification=1e9,
            cost_ratio=1e9,
        )
        base_keys, _, requests, report, executor, _ = self.run_mixed(
            policy=loose
        )
        replay_against_oracle(base_keys, requests, report)
        assert len(executor.compactions) == 0

    def test_mixed_run_is_deterministic(self):
        first = self.run_mixed()
        second = self.run_mixed()
        assert first[4].compactions == second[4].compactions
        assert (
            first[3].makespan_seconds == second[3].makespan_seconds
        )

    def test_update_obs_metrics_recorded_when_tracing(self):
        obs.enable()
        obs.reset()
        try:
            self.run_mixed()
            snapshot = obs.snapshot()
        finally:
            obs.reset()
            obs.disable()
        recorded = set(snapshot["counters"]) | set(snapshot["histograms"])
        names = {entry.split("{", 1)[0] for entry in recorded}
        assert "serve.delta.applied" in names
        assert "serve.delta.depth" in names
        assert "serve.compaction.scheduled" in names
        assert "serve.compaction.seconds" in names
        assert "serve.compaction.completed" in names
        assert "serve.update_windows" in names
        assert "serve.update_tuples" in names


class TestChaosUnderMixedTraffic:
    def test_kill_schedule_preserves_positions_and_oracle(self):
        from repro.resilience.chaos import (
            ChaosEvent,
            ChaosSchedule,
            check_invariance,
            check_replay,
        )

        schedule = ChaosSchedule(
            events=(
                ChaosEvent(kind="kill", at=1e-05, shard=0, replica=0),
            )
        )
        kwargs = dict(
            shards=2,
            replicas=2,
            index="btree",
            requests=16,
            request_tuples=128,
            update_fraction=0.5,
        )
        ok, clean, chaotic = check_invariance(schedule, **kwargs)
        assert ok, "mixed-traffic positions diverge under the schedule"
        assert chaotic.update_tuples == clean.update_tuples > 0
        assert clean.compactions > 0
        replayed, _, _ = check_replay(schedule, **kwargs)
        assert replayed

    def test_summary_carries_update_and_compaction_tallies(self):
        from repro.resilience.chaos import run_serve_under_chaos

        result = run_serve_under_chaos(
            schedule=None, index="btree", update_fraction=0.5
        )
        summary = result.summary()
        assert summary["update_tuples"] == result.update_tuples > 0
        assert summary["compactions"] == result.compactions > 0
        assert (
            summary["compactions_completed"]
            == result.compactions_completed
        )


class TestBenchUpdatesPayload:
    def test_updates_block_zero_for_read_only_rows(self):
        relation, probes = build_workload()
        row = run_sweep_point(
            relation,
            probes,
            num_shards=1,
            window_kib=1,
            zipf_theta=0.0,
            index_cls=BinarySearchIndex,
            request_tuples=64,
        )
        updates = row["updates"]
        assert updates["update_windows"] == 0
        assert updates["update_tuples"] == 0
        assert updates["compactions"] == []
        assert set(updates["delta_depth"]) == {"0:-1"}

    def test_mixed_row_reports_compactions_and_depths(self):
        relation, probes = build_workload()
        row = run_sweep_point(
            relation,
            probes,
            num_shards=2,
            window_kib=1,
            zipf_theta=0.0,
            index_cls=BPlusTreeIndex,
            request_tuples=64,
            replicas=2,
            update_fraction=0.5,
        )
        updates = row["updates"]
        assert updates["update_tuples"] > 0
        assert updates["compactions_by_strategy"].get("absorb", 0) > 0
        assert updates["compactions_completed"] > 0
        assert updates["read_amplification_peak"] > 0
        assert set(updates["delta_depth"]) == {"0:0", "0:1", "1:0", "1:1"}

    def test_payload_bit_identical_across_worker_counts(self):
        kwargs = dict(
            shards=(2,),
            window_kib=(4,),
            zipf_thetas=(0.0,),
            r_tuples=2**12,
            requests=8,
            request_tuples=128,
            index="btree",
            update_fractions=(0.0, 0.5),
        )
        serial = run_serve_bench(workers=1, **kwargs)
        pooled = run_serve_bench(workers=2, **kwargs)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_update_fraction_axis_is_validated(self):
        with pytest.raises(ConfigurationError):
            run_serve_bench(
                shards=(1,),
                window_kib=(4,),
                zipf_thetas=(0.0,),
                r_tuples=2**10,
                requests=2,
                request_tuples=32,
                update_fractions=(1.5,),
            )
