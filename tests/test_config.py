"""Simulation configuration."""

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    DEFAULT_HASH_BLOCK_KEYS,
    DEFAULT_HASH_LOAD_FACTOR,
    DEFAULT_NUM_PARTITIONS,
    DEFAULT_S_TUPLES,
    SimulationConfig,
)
from repro.errors import ConfigurationError


class TestPaperDefaults:
    """The constants of the paper's Section 3.2 / 4.3.1 setup."""

    def test_s_relation(self):
        assert DEFAULT_S_TUPLES == 2**26

    def test_hash_join_settings(self):
        assert DEFAULT_HASH_LOAD_FACTOR == 0.5
        assert DEFAULT_HASH_BLOCK_KEYS == 512

    def test_partitions(self):
        assert DEFAULT_NUM_PARTITIONS == 2048


class TestSimulationConfig:
    def test_default_is_valid(self):
        assert DEFAULT_CONFIG.probe_sample % 32 == 0

    def test_sample_must_be_warp_multiple(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(probe_sample=100)

    def test_sample_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(probe_sample=0)

    def test_interleave_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(interleave_width=0)

    def test_seed_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(seed=-1)

    def test_with_sample(self):
        derived = DEFAULT_CONFIG.with_sample(2**10)
        assert derived.probe_sample == 2**10
        assert derived.seed == DEFAULT_CONFIG.seed

    def test_with_seed(self):
        derived = DEFAULT_CONFIG.with_seed(7)
        assert derived.seed == 7
        assert derived.probe_sample == DEFAULT_CONFIG.probe_sample

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.seed = 1  # type: ignore[misc]

    def test_scale_factor(self):
        config = SimulationConfig(probe_sample=2**10)
        assert config.scale_factor(2**20) == 2**10

    def test_scale_factor_never_below_one(self):
        config = SimulationConfig(probe_sample=2**10)
        assert config.scale_factor(32) == 1.0

    def test_scale_factor_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_CONFIG.scale_factor(0)
