"""Bit-identity suite for the fused batch kernels and the JIT backend.

Three layers of equivalence, each property-driven through the same
adversarial regimes as the differential suite
(:mod:`tests.indexes.test_differential`):

* ``probe_batch`` (vectorized numpy backend) vs. ``lookup`` -- the
  fused API writes the same positions into a caller-owned buffer;
* the scalar kernel *source* (:mod:`repro.indexes.kernels`, the exact
  code numba compiles under ``REPRO_JIT``) run interpreted vs.
  ``lookup`` -- this is what makes the JIT path's bit-identity
  testable without numba installed;
* :class:`~repro.hardware.counters.PerfCounters` equality across
  backends -- the fused counters are structural (a pure function of
  lookup count and index height), so both backends return identical
  counters by construction, and the suite pins that.

When numba *is* available, the compiled kernels run against the same
oracle under ``REPRO_JIT=1``; on machines without it the flag must
degrade silently to the numpy backend, which is also pinned here.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402

from repro.config import JIT_ENV  # noqa: E402
from repro.data.column import MaterializedColumn  # noqa: E402
from repro.data.relation import Relation  # noqa: E402
from repro.errors import SimulationError  # noqa: E402
from repro.indexes import ALL_INDEX_TYPES  # noqa: E402
from repro.indexes import jit  # noqa: E402

from .test_differential import oracle_lookup, workloads  # noqa: E402

NUMBA_AVAILABLE = jit.numba_available()


def build_index(index_cls, keys: np.ndarray):
    return index_cls(Relation(name="R", column=MaterializedColumn(keys)))


@pytest.fixture
def jit_env(monkeypatch):
    """Set/unset REPRO_JIT around a test, refreshing the jit caches."""

    def configure(value):
        if value is None:
            monkeypatch.delenv(JIT_ENV, raising=False)
        else:
            monkeypatch.setenv(JIT_ENV, value)
        jit.refresh()

    yield configure
    jit.refresh()


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestProbeBatchNumpy:
    @given(workload=workloads())
    def test_probe_batch_matches_lookup(self, index_cls, workload):
        keys, probes = workload
        index = build_index(index_cls, keys)
        out = np.empty(len(probes), dtype=np.int64)
        index.probe_batch(probes, out)
        np.testing.assert_array_equal(
            out,
            oracle_lookup(keys, probes),
            err_msg=f"{index_cls.name} probe_batch diverges from the oracle",
        )

    @given(workload=workloads())
    @settings(max_examples=20)
    def test_probe_batch_offset_window(self, index_cls, workload):
        keys, probes = workload
        index = build_index(index_cls, keys)
        out = np.full(len(probes) + 7, -7, dtype=np.int64)
        index.probe_batch(probes, out, offset=4)
        np.testing.assert_array_equal(
            out[4 : 4 + len(probes)], oracle_lookup(keys, probes)
        )
        # The window's surroundings are untouched.
        assert (out[:4] == -7).all()
        assert (out[4 + len(probes) :] == -7).all()

    @given(workload=workloads())
    @settings(max_examples=20)
    def test_counters_are_structural(self, index_cls, workload):
        keys, probes = workload
        index = build_index(index_cls, keys)
        out = np.empty(len(probes), dtype=np.int64)
        counters = index.probe_batch(probes, out)
        counters.validate()
        assert counters.lookups == float(len(probes))
        assert counters.memory_accesses == float(len(probes) * index.height)
        again = index.probe_batch(probes, out)
        assert counters.as_dict() == again.as_dict()

    def test_output_buffer_validation(self, index_cls):
        index = build_index(index_cls, np.arange(1, 9, dtype=np.uint64))
        probes = np.asarray([1, 2, 3], dtype=np.uint64)
        with pytest.raises(SimulationError):
            index.probe_batch(probes, np.empty(3, dtype=np.float64))
        with pytest.raises(SimulationError):
            index.probe_batch(probes, np.empty((3, 1), dtype=np.int64))
        with pytest.raises(SimulationError):
            index.probe_batch(probes, np.empty(2, dtype=np.int64))
        with pytest.raises(SimulationError):
            index.probe_batch(probes, np.empty(3, dtype=np.int64), offset=1)
        with pytest.raises(SimulationError):
            index.probe_batch(probes, np.empty(3, dtype=np.int64), offset=-1)

    def test_empty_batch_touches_nothing(self, index_cls):
        index = build_index(index_cls, np.arange(1, 9, dtype=np.uint64))
        out = np.full(4, -7, dtype=np.int64)
        counters = index.probe_batch(np.empty(0, dtype=np.uint64), out)
        assert counters.lookups == 0.0
        assert (out == -7).all()


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestScalarKernelSource:
    """The uncompiled kernel source is bit-identical to the numpy path."""

    @given(workload=workloads())
    def test_interpreted_kernel_matches_lookup(self, index_cls, workload):
        keys, probes = workload
        index = build_index(index_cls, keys)
        runner = jit.runner_for(index, compile=False)
        if runner is None:
            pytest.skip(f"{index_cls.name} has no batch kernel here")
        out = np.empty(len(probes), dtype=np.int64)
        runner(probes.astype(np.uint64), out)
        np.testing.assert_array_equal(
            out,
            oracle_lookup(keys, probes),
            err_msg=f"{index_cls.name} scalar kernel diverges from the oracle",
        )


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestJitFlag:
    def test_flag_without_numba_falls_back(self, index_cls, jit_env):
        jit_env("1")
        if NUMBA_AVAILABLE:
            pytest.skip("numba present: the fallback branch is unreachable")
        assert jit.numba_available() is False
        assert jit.enabled() is False
        assert jit.backend_name() == "numpy"
        keys = np.arange(1, 257, dtype=np.uint64) * np.uint64(3)
        probes = np.concatenate([keys[:16], keys[:16] + np.uint64(1)])
        index = build_index(index_cls, keys)
        out = np.empty(len(probes), dtype=np.int64)
        index.probe_batch(probes, out)
        np.testing.assert_array_equal(out, oracle_lookup(keys, probes))

    def test_flag_unset_means_numpy(self, index_cls, jit_env):
        jit_env(None)
        assert jit.enabled() is False
        assert jit.backend_name() == "numpy"

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    @given(workload=workloads())
    @settings(max_examples=25, deadline=None)
    def test_compiled_kernel_bit_identical(self, index_cls, workload):
        keys, probes = workload
        index = build_index(index_cls, keys)
        runner = jit.runner_for(index, compile=True)
        if runner is None:
            pytest.skip(f"{index_cls.name} has no batch kernel here")
        out = np.empty(len(probes), dtype=np.int64)
        runner(probes.astype(np.uint64), out)
        np.testing.assert_array_equal(
            out,
            oracle_lookup(keys, probes),
            err_msg=f"{index_cls.name} compiled kernel diverges",
        )


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
def test_jit_probe_batch_counters_bit_identical(index_cls, jit_env):
    """Full probe_batch under REPRO_JIT: positions AND counters match."""
    keys = np.arange(1, 1025, dtype=np.uint64) * np.uint64(5)
    probes = np.concatenate([keys, keys + np.uint64(1), keys - np.uint64(1)])
    index = build_index(index_cls, keys)
    jit_env(None)
    base_out = np.empty(len(probes), dtype=np.int64)
    base_counters = index.probe_batch(probes, base_out)
    jit_env("1")
    assert jit.enabled() is True
    jit_out = np.empty(len(probes), dtype=np.int64)
    jit_counters = index.probe_batch(probes, jit_out)
    np.testing.assert_array_equal(jit_out, base_out)
    assert jit_counters.as_dict() == base_counters.as_dict()


def test_virtual_columns_have_no_batch_kernel():
    """Kernel packing requires a materialized key array; virtual
    columns fall back to the vectorized traversal inside probe_batch."""
    from repro.data.column import VirtualSortedColumn

    relation = Relation(name="R", column=VirtualSortedColumn(num_keys=64))
    for index_cls in ALL_INDEX_TYPES:
        index = index_cls(relation)
        assert jit.runner_for(index, compile=False) is None
        out = np.empty(4, dtype=np.int64)
        probes = relation.column.key_at(np.asarray([0, 1, 2, 63]))
        index.probe_batch(probes, out)
        expected = oracle_lookup(
            relation.column.key_at(np.arange(64)), probes
        )
        np.testing.assert_array_equal(out, expected)
