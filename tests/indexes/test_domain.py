"""The clamped float->int64 cast helper behind the NP002 sanitizer."""

import warnings

import numpy as np
import pytest

from repro.indexes.domain import clamped_int64


class TestClampedInt64:
    def test_in_range_values_round_half_even(self):
        values = np.array([0.4, 0.5, 1.5, 2.49, 7.0])
        result = clamped_int64(values, 0.0, 10.0)
        # np.rint rounds half to even, matching the spline's previous
        # inline rint-then-cast behavior exactly.
        np.testing.assert_array_equal(
            result, np.array([0, 0, 2, 2, 7], dtype=np.int64)
        )
        assert result.dtype == np.int64

    def test_out_of_range_values_clamp_to_the_domain(self):
        values = np.array([-1e30, -0.6, 5.0, 1e300, np.inf, -np.inf])
        result = clamped_int64(values, 0.0, 9.0)
        np.testing.assert_array_equal(
            result, np.array([0, 0, 5, 9, 9, 0], dtype=np.int64)
        )

    def test_overflow_magnitude_casts_warning_free(self):
        # The PR-5 failure shape: a spline extrapolation past 2**63.
        # Unclamped, numpy warns "invalid value encountered in cast"
        # and the result is undefined; clamped, it is exact and silent.
        values = np.array([2.0**64, 2.0**70])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = clamped_int64(values, 0.0, 999.0)
        np.testing.assert_array_equal(
            result, np.array([999, 999], dtype=np.int64)
        )

    def test_matches_the_previous_inline_sequence(self):
        # Bit-identity with the code it replaced in the RadixSpline
        # probe: clip to [0, n-1], rint, cast.
        rng = np.random.default_rng(9)
        n = 1000
        predicted = rng.uniform(-50.0, float(n) + 50.0, size=4096)
        old = np.rint(np.clip(predicted, 0.0, float(n - 1))).astype(np.int64)
        np.testing.assert_array_equal(
            clamped_int64(predicted, 0.0, float(n - 1)), old
        )

    def test_exported_from_the_package(self):
        from repro.indexes import clamped_int64 as exported

        assert exported is clamped_int64

    @pytest.mark.parametrize("power", [0, 1, 13, 37, 62, 63])
    def test_fast_tree_log2_domain_is_exact(self, power):
        # The FastTree lower-bound extraction: log2 of a power of two
        # in [1, 2^63] must come back as exactly that power.
        block = np.array([np.uint64(1) << np.uint64(power)])
        shift = clamped_int64(np.log2(block.astype(np.float64)), 0.0, 63.0)
        np.testing.assert_array_equal(
            shift, np.array([power], dtype=np.int64)
        )
