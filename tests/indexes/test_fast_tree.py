"""FAST-style Eytzinger tree specifics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.column import VirtualSortedColumn
from repro.data.relation import Relation
from repro.errors import SimulationError
from repro.hardware.memory import MemorySpace, SystemMemory
from repro.hardware.spec import V100_NVLINK2
from repro.indexes.fast_tree import FastTreeIndex


class TestStructure:
    def test_height_is_log2(self):
        # A height-h complete tree holds 2^h - 1 keys; 2^20 keys need 21.
        index = FastTreeIndex(Relation("R", VirtualSortedColumn(2**20)))
        assert index.height == 21
        exact = FastTreeIndex(Relation("R", VirtualSortedColumn(2**20 - 1)))
        assert exact.height == 20

    def test_padded_to_complete_tree(self):
        index = FastTreeIndex(Relation("R", VirtualSortedColumn(1000)))
        assert index.padded_slots == 1023

    def test_footprint_is_padded_copy(self):
        index = FastTreeIndex(Relation("R", VirtualSortedColumn(1000)))
        assert index.footprint_bytes == 1023 * 8

    def test_place_requires_relation(self):
        index = FastTreeIndex(Relation("R", VirtualSortedColumn(16)))
        with pytest.raises(SimulationError):
            index.place(SystemMemory(V100_NVLINK2))


class TestBfsMapping:
    def test_small_complete_tree(self):
        # 7 keys, height 3: BFS slot 1 holds rank 3 (the median).
        index = FastTreeIndex(Relation("R", VirtualSortedColumn(7)))
        slots = np.array([1, 2, 3, 4, 5, 6, 7])
        ranks = index._ranks_of_slots(slots)
        assert ranks.tolist() == [3, 1, 5, 0, 2, 4, 6]

    def test_padding_reads_as_max(self):
        index = FastTreeIndex(Relation("R", VirtualSortedColumn(5)))
        # Slots whose rank >= 5 are padding.
        keys = index._keys_of_slots(np.array([1, 7]))
        assert keys[1] == np.uint64(2**64 - 1)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 100, 511, 512, 513, 4096])
    def test_all_members_found(self, n):
        column = VirtualSortedColumn(n, stride=4, seed=n)
        index = FastTreeIndex(Relation("R", column))
        positions = np.arange(n, dtype=np.int64)
        keys = column.key_at(positions)
        assert np.array_equal(index.lookup(keys), positions)

    def test_misses(self):
        column = VirtualSortedColumn(1000, stride=4, seed=1)
        index = FastTreeIndex(Relation("R", column))
        misses = column.key_at(np.arange(100)) + np.uint64(1)
        assert np.all(index.lookup(misses) == -1)

    def test_out_of_domain(self):
        column = VirtualSortedColumn(100, stride=4, offset=1000)
        index = FastTreeIndex(Relation("R", column))
        probes = np.array([0, 10**9], dtype=np.uint64)
        assert index.lookup(probes).tolist() == [-1, -1]

    def test_agrees_with_binary_search(self, small_relation, small_probes):
        from repro.indexes.binary_search import BinarySearchIndex

        fast = FastTreeIndex(small_relation)
        binary = BinarySearchIndex(small_relation)
        assert np.array_equal(
            fast.lookup(small_probes.keys), binary.lookup(small_probes.keys)
        )


class TestTrace:
    def test_trace_matches_functional(self, small_relation, small_probes):
        memory = SystemMemory(V100_NVLINK2)
        small_relation.place(memory, MemorySpace.HOST)
        index = FastTreeIndex(small_relation)
        index.place(memory)
        result = index.trace_lookups(small_probes.keys)
        assert np.array_equal(
            result.positions, index.lookup(small_probes.keys)
        )

    def test_steps_equal_height_plus_verify(self, small_relation, small_probes):
        memory = SystemMemory(V100_NVLINK2)
        small_relation.place(memory, MemorySpace.HOST)
        index = FastTreeIndex(small_relation)
        index.place(memory)
        result = index.trace_lookups(small_probes.keys)
        assert result.trace.num_steps == index.height + 1

    def test_upper_levels_share_lines(self, small_relation, small_probes):
        """The BFS layout's point: the first levels live in one cacheline."""
        memory = SystemMemory(V100_NVLINK2)
        small_relation.place(memory, MemorySpace.HOST)
        index = FastTreeIndex(small_relation)
        index.place(memory)
        result = index.trace_lookups(small_probes.keys)
        first_four_levels = result.trace.step_addresses[:4]
        lines = np.unique(first_four_levels >> 7)
        assert len(lines) == 1


class TestSweepPages:
    def test_comparable_to_binary_search(self):
        """At huge-page granularity the BFS layout's contiguity buys
        little (each deep level still spans many pages); the sweep count
        must land in the same band as plain binary search -- FAST's real
        advantage is at cacheline/L2 granularity, tested above."""
        from repro.indexes.binary_search import BinarySearchIndex

        relation = Relation("R", VirtualSortedColumn(2**34))
        kwargs = dict(
            window_lookups=2**22,
            page_bytes=2**21,
            l2_bytes=6 * 2**20,
            cacheline_bytes=128,
        )
        fast = FastTreeIndex(relation).expected_sweep_pages(**kwargs)
        binary = BinarySearchIndex(relation).expected_sweep_pages(**kwargs)
        assert 0.3 < fast / binary < 3.0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=3000),
    seed=st.integers(min_value=0, max_value=2**31),
    probes=st.integers(min_value=1, max_value=100),
)
def test_fast_tree_equals_rank(n, seed, probes):
    column = VirtualSortedColumn(n, stride=4, seed=seed)
    index = FastTreeIndex(Relation("R", column))
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, n, size=probes)
    keys = column.key_at(positions)
    keys[::2] = keys[::2] + np.uint64(1)  # mix in misses
    assert np.array_equal(index.lookup(keys), column.rank_of(keys))
