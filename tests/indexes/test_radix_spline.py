"""RadixSpline specifics, including the GreedySplineCorridor builder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.column import MaterializedColumn, VirtualSortedColumn
from repro.errors import ConfigurationError
from repro.indexes.radix_spline import (
    RadixSplineIndex,
    greedy_spline_corridor,
    uniform_spline,
)


def interpolation_error(keys, point_keys, point_positions):
    """Max |predicted - true| of linear interpolation between points."""
    positions = np.arange(len(keys), dtype=np.float64)
    segment = np.clip(
        np.searchsorted(point_keys, keys, side="right") - 1,
        0,
        len(point_keys) - 2,
    )
    key_low = point_keys[segment].astype(np.float64)
    key_high = point_keys[segment + 1].astype(np.float64)
    pos_low = point_positions[segment].astype(np.float64)
    pos_high = point_positions[segment + 1].astype(np.float64)
    span = np.maximum(key_high - key_low, 1.0)
    predicted = pos_low + (keys.astype(np.float64) - key_low) / span * (
        pos_high - pos_low
    )
    return float(np.abs(predicted - positions).max())


class TestGreedySplineCorridor:
    def test_linear_data_needs_two_points(self):
        keys = np.arange(0, 8000, 8, dtype=np.uint64)
        point_keys, point_positions = greedy_spline_corridor(keys, max_error=4)
        assert len(point_keys) == 2
        assert point_positions[0] == 0
        assert point_positions[-1] == len(keys) - 1

    def test_error_stays_near_bound(self, rng):
        """The greedy chord can exceed the corridor at interior points
        (see measure_spline_error), but only by a small constant factor."""
        gaps = rng.integers(1, 100, size=5000).astype(np.uint64)
        keys = np.cumsum(gaps).astype(np.uint64)
        for max_error in (2, 8, 32):
            point_keys, point_positions = greedy_spline_corridor(
                keys, max_error=max_error
            )
            assert interpolation_error(
                keys, point_keys, point_positions
            ) <= 3 * max_error + 1

    def test_larger_error_fewer_points(self, rng):
        gaps = rng.integers(1, 100, size=5000).astype(np.uint64)
        keys = np.cumsum(gaps).astype(np.uint64)
        tight = greedy_spline_corridor(keys, max_error=2)[0]
        loose = greedy_spline_corridor(keys, max_error=64)[0]
        assert len(loose) <= len(tight)

    def test_endpoints_included(self, rng):
        gaps = rng.integers(1, 50, size=1000).astype(np.uint64)
        keys = np.cumsum(gaps).astype(np.uint64)
        point_keys, point_positions = greedy_spline_corridor(keys, max_error=8)
        assert point_keys[0] == keys[0] and point_keys[-1] == keys[-1]
        assert point_positions[0] == 0 and point_positions[-1] == len(keys) - 1

    def test_tiny_inputs(self):
        for n in (1, 2):
            keys = np.arange(n, dtype=np.uint64) * 10
            point_keys, point_positions = greedy_spline_corridor(keys, 4)
            assert len(point_keys) == n

    def test_rejects_bad_error(self):
        with pytest.raises(ConfigurationError):
            greedy_spline_corridor(np.array([1, 2], dtype=np.uint64), 0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            greedy_spline_corridor(np.array([], dtype=np.uint64), 4)


class TestUniformSpline:
    def test_virtual_column_error_is_one(self):
        column = VirtualSortedColumn(2**16, stride=4)
        __, __, error = uniform_spline(column, interval=1024)
        assert error == 1

    def test_materialized_error_measured(self, rng):
        gaps = rng.integers(1, 100, size=4096).astype(np.uint64)
        column = MaterializedColumn(np.cumsum(gaps).astype(np.uint64))
        keys, positions, error = uniform_spline(column, interval=256)
        assert interpolation_error(column.keys, keys, positions) <= error

    def test_last_position_included(self):
        column = VirtualSortedColumn(1000, stride=4)
        __, positions, __ = uniform_spline(column, interval=300)
        assert positions[-1] == 999

    def test_rejects_tiny_interval(self):
        column = VirtualSortedColumn(100)
        with pytest.raises(ConfigurationError):
            uniform_spline(column, interval=1)


class TestRadixSplineIndex:
    def test_auto_fit_greedy_for_materialized(self, small_relation):
        index = RadixSplineIndex(small_relation)
        assert index.fit == "greedy"

    def test_auto_fit_uniform_for_virtual(self, virtual_relation):
        index = RadixSplineIndex(virtual_relation)
        assert index.fit == "uniform"

    def test_greedy_rejected_on_virtual(self, virtual_relation):
        with pytest.raises(ConfigurationError):
            RadixSplineIndex(virtual_relation, fit="greedy")

    def test_spline_density_is_realistic(self, virtual_relation):
        """Virtual columns must not get an unrealistically sparse spline
        (DESIGN.md: interval defaults to max_error**2)."""
        index = RadixSplineIndex(virtual_relation, max_error=32)
        expected_points = len(virtual_relation.column) / 32**2
        assert index.num_spline_points == pytest.approx(expected_points, rel=0.01)

    def test_footprint_includes_table_and_points(self, small_relation):
        index = RadixSplineIndex(small_relation)
        assert index.footprint_bytes >= len(index.radix_table) * 8

    def test_radix_table_bounded(self, virtual_relation):
        index = RadixSplineIndex(virtual_relation, radix_bits=18)
        assert len(index.radix_table) <= 2**18 + 2

    def test_radix_table_monotone(self, small_relation):
        index = RadixSplineIndex(small_relation)
        table = index.radix_table
        assert np.all(np.diff(table) >= 0)

    def test_max_error_controls_search_window(self, small_relation):
        tight = RadixSplineIndex(small_relation, max_error=2)
        loose = RadixSplineIndex(small_relation, max_error=64)
        assert tight.error_bound <= loose.error_bound

    def test_rejects_bad_radix_bits(self, small_relation):
        with pytest.raises(ConfigurationError):
            RadixSplineIndex(small_relation, radix_bits=0)
        with pytest.raises(ConfigurationError):
            RadixSplineIndex(small_relation, radix_bits=40)

    def test_rejects_bad_fit(self, small_relation):
        with pytest.raises(ConfigurationError):
            RadixSplineIndex(small_relation, fit="magic")

    def test_rejects_bad_max_error(self, small_relation):
        with pytest.raises(ConfigurationError):
            RadixSplineIndex(small_relation, max_error=0)

    def test_static_only(self):
        assert RadixSplineIndex.supports_updates is False


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(min_value=3, max_value=2000),
    max_error=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_greedy_corridor_property(size, max_error, seed):
    """Knots are a data subsequence and the index's measured bound is a
    true bound on the interpolation error, for arbitrary sorted data."""
    from repro.indexes.radix_spline import measure_spline_error

    rng = np.random.default_rng(seed)
    gaps = rng.integers(1, 1000, size=size).astype(np.uint64)
    keys = np.cumsum(gaps).astype(np.uint64)
    point_keys, point_positions = greedy_spline_corridor(keys, max_error)
    measured = measure_spline_error(keys, point_keys, point_positions)
    assert interpolation_error(keys, point_keys, point_positions) <= measured
    # Spline points are a subsequence of the data.
    assert np.all(np.isin(point_keys, keys))
    assert point_positions[0] == 0 and point_positions[-1] == size - 1


class TestLargeKeyRegressions:
    """Named regression tests for bugs surfaced by the differential
    suite (tests/indexes/test_differential.py)."""

    @staticmethod
    def _oracle(keys, probes):
        positions = np.searchsorted(keys, probes)
        clamped = np.minimum(positions, len(keys) - 1)
        hit = (positions < len(keys)) & (keys[clamped] == probes)
        return np.where(hit, positions, -1).astype(np.int64)

    def test_regression_adjacent_large_keys_build(self):
        """Keys near 2^62 with gap 3 used to abort the corridor builder.

        ``greedy_spline_corridor`` subtracted keys *after* converting to
        float64; at 2^62 the float64 ulp is 1024, so a gap of 3 rounded
        to dx = 0 and the builder raised "keys must be strictly
        increasing" on perfectly valid input.  Deltas are now formed on
        exact integers before the float division.
        """
        keys = (np.uint64(2**62) + np.arange(100, dtype=np.uint64) * 3).astype(
            np.uint64
        )
        point_keys, point_positions = greedy_spline_corridor(keys, max_error=4)
        assert point_positions[-1] == len(keys) - 1
        from repro.data.relation import Relation

        index = RadixSplineIndex(
            Relation(name="R", column=MaterializedColumn(keys))
        )
        probes = np.concatenate([keys, keys + np.uint64(1)])
        np.testing.assert_array_equal(
            index.lookup(probes), self._oracle(keys, probes)
        )

    def test_regression_high_bit_keys_radix_table(self):
        """Keys at or above 2^63 used to wrap in the radix table.

        Prefix computation cast keys to int64 *before* subtracting the
        domain minimum; keys >= 2^63 became negative, producing garbage
        table slots.  Subtraction now happens in uint64.
        """
        rng = np.random.default_rng(13)
        keys = np.unique(
            (np.uint64(2**63 + 17) + rng.integers(0, 2**20, 500)).astype(
                np.uint64
            )
        )
        from repro.data.relation import Relation

        index = RadixSplineIndex(
            Relation(name="R", column=MaterializedColumn(keys))
        )
        probes = np.concatenate(
            [keys[::3], keys[::5] + np.uint64(1), keys[:1] - np.uint64(1)]
        )
        np.testing.assert_array_equal(
            index.lookup(probes), self._oracle(keys, probes)
        )

    def test_regression_out_of_domain_probe_overflow(self):
        """A probe far above the domain used to overflow the int cast.

        The interpolation estimate for an out-of-domain probe (e.g.
        2^64 - 1 against a small-key relation) exceeded the int64 range
        and the float->int cast raised "invalid value encountered in
        cast".  The estimate is now clamped in float space first; the
        probe is a clean miss, warning-free.
        """
        import warnings

        keys = np.arange(0, 4000, 4, dtype=np.uint64)
        from repro.data.relation import Relation

        index = RadixSplineIndex(
            Relation(name="R", column=MaterializedColumn(keys))
        )
        probes = np.asarray(
            [np.iinfo(np.uint64).max, 2**63, 3996, 3997], dtype=np.uint64
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = index.lookup(probes)
        np.testing.assert_array_equal(result, [-1, -1, 999, -1])
