"""Harmonia specifics."""

import numpy as np
import pytest

from repro.config import DEFAULT_HARMONIA_NODE_KEYS
from repro.data.column import MaterializedColumn, VirtualSortedColumn
from repro.data.relation import Relation
from repro.errors import ConfigurationError, SimulationError
from repro.hardware.memory import MemorySpace, SystemMemory
from repro.hardware.spec import V100_NVLINK2
from repro.indexes.harmonia import HarmoniaIndex


class TestGeometry:
    def test_paper_node_width(self, small_relation):
        index = HarmoniaIndex(small_relation)
        assert index.node_keys == DEFAULT_HARMONIA_NODE_KEYS == 32

    def test_fanout_equals_node_keys(self, small_relation):
        index = HarmoniaIndex(small_relation)
        assert index.fanout == index.node_keys

    def test_levels_cover_all_keys(self):
        relation = Relation("R", VirtualSortedColumn(2**20))
        index = HarmoniaIndex(relation)
        leaves = index.level_sizes[-1]
        assert leaves * index.node_keys >= 2**20
        assert index.level_sizes[0] == 1

    def test_taller_than_btree(self):
        """32-way fanout vs 256-way: Harmonia is taller at equal size."""
        from repro.indexes.btree import BPlusTreeIndex

        relation = Relation("R", VirtualSortedColumn(2**26))
        assert (
            HarmoniaIndex(relation).height
            > BPlusTreeIndex(relation).height
        )

    def test_footprint_close_to_data(self):
        # Key region ~ |R| * 32/31 plus a 4-byte-per-node child array.
        relation = Relation("R", VirtualSortedColumn(2**24))
        footprint = HarmoniaIndex(relation).footprint_bytes
        assert relation.nbytes < footprint < 1.15 * relation.nbytes

    def test_rejects_bad_node_keys(self, small_relation):
        with pytest.raises(ConfigurationError):
            HarmoniaIndex(small_relation, node_keys=1)

    def test_rejects_bad_subwarp(self, small_relation):
        with pytest.raises(ConfigurationError):
            HarmoniaIndex(small_relation, subwarp_size=7)


class TestTraversal:
    def test_node_accesses_are_two_lines_plus_child(self, small_relation):
        memory = SystemMemory(V100_NVLINK2)
        small_relation.place(memory, MemorySpace.HOST)
        index = HarmoniaIndex(small_relation)
        index.place(memory)
        keys = small_relation.column.key_at(np.arange(64))
        result = index.trace_lookups(keys)
        # 32 keys * 8 B = 2 cachelines per node, + 1 child-array access,
        # per level.
        assert result.trace.num_steps == index.height * 3

    def test_key_region_addresses_in_allocation(self, small_relation):
        memory = SystemMemory(V100_NVLINK2)
        small_relation.place(memory, MemorySpace.HOST)
        index = HarmoniaIndex(small_relation)
        index.place(memory)
        keys = small_relation.column.key_at(np.arange(32))
        result = index.trace_lookups(keys)
        addresses = result.trace.step_addresses
        active = addresses[addresses >= 0]
        key_region = index._key_region
        child_array = index._child_array
        inside = ((active >= key_region.base) & (active < key_region.end)) | (
            (active >= child_array.base) & (active < child_array.end)
        )
        assert inside.all()

    def test_ragged_last_leaf(self):
        n = 32 * 5 + 3
        relation = Relation("R", VirtualSortedColumn(n))
        index = HarmoniaIndex(relation)
        keys = relation.column.key_at(np.arange(n))
        assert np.array_equal(index.lookup(keys), np.arange(n))

    def test_subwarp_size_affects_simt_not_results(self, small_relation):
        keys = small_relation.column.key_at(np.arange(128))
        narrow = HarmoniaIndex(small_relation, subwarp_size=4)
        wide = HarmoniaIndex(small_relation, subwarp_size=16)
        assert np.array_equal(narrow.lookup(keys), wide.lookup(keys))


class TestInserts:
    def test_insert_merges(self):
        keys = np.arange(0, 1000, 4, dtype=np.uint64)
        relation = Relation("R", MaterializedColumn(keys))
        index = HarmoniaIndex(relation)
        updated = index.insert_keys(np.array([5, 2001], dtype=np.uint64))
        assert np.all(updated.lookup(np.array([5, 2001], dtype=np.uint64)) >= 0)

    def test_insert_requires_materialized(self, virtual_relation):
        with pytest.raises(SimulationError):
            HarmoniaIndex(virtual_relation).insert_keys(
                np.array([1], dtype=np.uint64)
            )

    def test_insert_rejects_duplicates(self):
        keys = np.arange(0, 100, 4, dtype=np.uint64)
        relation = Relation("R", MaterializedColumn(keys))
        with pytest.raises(ConfigurationError):
            HarmoniaIndex(relation).insert_keys(np.array([4], dtype=np.uint64))

    def test_supports_updates_flag(self):
        # Section 6: "Harmonia is a good alternative if the index must
        # support inserts and updates."
        assert HarmoniaIndex.supports_updates is True
