"""Bit-identity suite for the fused range kernels (the non-equi primitive).

The same three layers as tests/indexes/test_probe_batch.py, applied to
``probe_range_batch``:

* the vectorized ``_range_bounds`` backend vs a ``searchsorted`` oracle
  -- per-key [start, end) spans over the sorted base;
* the scalar range-kernel *source* (:mod:`repro.indexes.kernels`, the
  code numba compiles under ``REPRO_JIT``) run interpreted vs the same
  oracle -- JIT bit-identity without numba installed;
* structural :class:`PerfCounters`: two bound traversals and two int64
  span endpoints per pair, a pure function of batch size and height.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.data.column import MaterializedColumn, VirtualSortedColumn  # noqa: E402
from repro.data.relation import Relation  # noqa: E402
from repro.errors import SimulationError  # noqa: E402
from repro.indexes import ALL_INDEX_TYPES  # noqa: E402
from repro.indexes import jit  # noqa: E402
from repro.indexes.domain import saturating_band  # noqa: E402

from .test_differential import workloads  # noqa: E402

EPSILONS = st.one_of(
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=2**30, max_value=2**34),
    st.just(2**63),
)


def build_index(index_cls, keys: np.ndarray):
    return index_cls(Relation(name="R", column=MaterializedColumn(keys)))


def oracle_range(keys, lo, hi):
    """Reference spans: searchsorted over the raw sorted key array."""
    starts = np.searchsorted(keys, lo, side="left").astype(np.int64)
    ends = np.searchsorted(keys, hi, side="right").astype(np.int64)
    return starts, np.maximum(starts, ends)


def band_bounds(probes, epsilon):
    lo, hi = saturating_band(probes, np.uint64(epsilon))
    return lo.astype(np.uint64), hi.astype(np.uint64)


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestRangeBatchNumpy:
    @given(workload=workloads(), epsilon=EPSILONS)
    def test_spans_match_searchsorted_oracle(
        self, index_cls, workload, epsilon
    ):
        keys, probes = workload
        index = build_index(index_cls, keys)
        lo, hi = band_bounds(probes, epsilon)
        starts = np.empty(len(probes), dtype=np.int64)
        ends = np.empty(len(probes), dtype=np.int64)
        index.probe_range_batch(lo, hi, starts, ends)
        want_start, want_end = oracle_range(keys, lo, hi)
        np.testing.assert_array_equal(
            starts, want_start,
            err_msg=f"{index_cls.name} span starts diverge from the oracle",
        )
        np.testing.assert_array_equal(
            ends, want_end,
            err_msg=f"{index_cls.name} span ends diverge from the oracle",
        )

    @given(workload=workloads())
    @settings(max_examples=20)
    def test_lower_bound_matches_searchsorted(self, index_cls, workload):
        keys, probes = workload
        index = build_index(index_cls, keys)
        np.testing.assert_array_equal(
            index._lower_bound(probes.astype(np.uint64)),
            np.searchsorted(keys, probes, side="left").astype(np.int64),
            err_msg=f"{index_cls.name} lower bound diverges",
        )

    @given(workload=workloads())
    @settings(max_examples=20)
    def test_offset_window(self, index_cls, workload):
        keys, probes = workload
        index = build_index(index_cls, keys)
        lo, hi = band_bounds(probes, 3)
        starts = np.full(len(probes) + 7, -7, dtype=np.int64)
        ends = np.full(len(probes) + 7, -7, dtype=np.int64)
        index.probe_range_batch(lo, hi, starts, ends, offset=4)
        want_start, want_end = oracle_range(keys, lo, hi)
        np.testing.assert_array_equal(
            starts[4 : 4 + len(probes)], want_start
        )
        np.testing.assert_array_equal(ends[4 : 4 + len(probes)], want_end)
        # The windows' surroundings are untouched.
        for buffer in (starts, ends):
            assert (buffer[:4] == -7).all()
            assert (buffer[4 + len(probes) :] == -7).all()

    @given(workload=workloads())
    @settings(max_examples=20)
    def test_counters_are_structural(self, index_cls, workload):
        keys, probes = workload
        index = build_index(index_cls, keys)
        lo, hi = band_bounds(probes, 5)
        starts = np.empty(len(probes), dtype=np.int64)
        ends = np.empty(len(probes), dtype=np.int64)
        counters = index.probe_range_batch(lo, hi, starts, ends)
        counters.validate()
        assert counters.lookups == float(len(probes))
        assert counters.memory_accesses == float(
            2 * len(probes) * index.height
        )
        assert counters.result_bytes == float(2 * len(probes) * 8)
        again = index.probe_range_batch(lo, hi, starts, ends)
        assert counters.as_dict() == again.as_dict()

    def test_inverted_bounds_give_empty_spans(self, index_cls):
        keys = np.arange(10, 90, dtype=np.uint64)
        index = build_index(index_cls, keys)
        lo = np.asarray([50, 80], dtype=np.uint64)
        hi = np.asarray([40, 20], dtype=np.uint64)
        starts = np.empty(2, dtype=np.int64)
        ends = np.empty(2, dtype=np.int64)
        index.probe_range_batch(lo, hi, starts, ends)
        assert (ends == starts).all()

    def test_buffer_validation(self, index_cls):
        index = build_index(index_cls, np.arange(1, 9, dtype=np.uint64))
        lo = np.asarray([1, 2, 3], dtype=np.uint64)
        hi = lo + np.uint64(1)
        good = np.empty(3, dtype=np.int64)
        with pytest.raises(SimulationError):
            index.probe_range_batch(lo, hi[:2], good, good.copy())
        with pytest.raises(SimulationError):
            index.probe_range_batch(lo, hi, np.empty(3, np.float64), good)
        with pytest.raises(SimulationError):
            index.probe_range_batch(lo, hi, good, np.empty((3, 1), np.int64))
        with pytest.raises(SimulationError):
            index.probe_range_batch(lo, hi, np.empty(2, np.int64), good)
        with pytest.raises(SimulationError):
            index.probe_range_batch(lo, hi, good, good.copy(), offset=1)
        with pytest.raises(SimulationError):
            index.probe_range_batch(lo, hi, good, good.copy(), offset=-1)

    def test_empty_batch_touches_nothing(self, index_cls):
        index = build_index(index_cls, np.arange(1, 9, dtype=np.uint64))
        starts = np.full(4, -7, dtype=np.int64)
        ends = np.full(4, -7, dtype=np.int64)
        empty = np.empty(0, dtype=np.uint64)
        counters = index.probe_range_batch(empty, empty, starts, ends)
        assert counters.lookups == 0.0
        assert (starts == -7).all()
        assert (ends == -7).all()


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestScalarRangeKernelSource:
    """The uncompiled range-kernel source is bit-identical to numpy."""

    @given(workload=workloads(), epsilon=EPSILONS)
    def test_interpreted_kernel_matches_oracle(
        self, index_cls, workload, epsilon
    ):
        keys, probes = workload
        index = build_index(index_cls, keys)
        runner = jit.range_runner_for(index, compile=False)
        if runner is None:
            pytest.skip(f"{index_cls.name} has no range kernel here")
        lo, hi = band_bounds(probes, epsilon)
        starts = np.empty(len(probes), dtype=np.int64)
        ends = np.empty(len(probes), dtype=np.int64)
        runner(lo, hi, starts, ends)
        want_start, want_end = oracle_range(keys, lo, hi)
        np.testing.assert_array_equal(
            starts, want_start,
            err_msg=f"{index_cls.name} scalar range kernel start diverges",
        )
        np.testing.assert_array_equal(
            ends, want_end,
            err_msg=f"{index_cls.name} scalar range kernel end diverges",
        )


def test_virtual_columns_have_no_range_kernel():
    """Kernel packing needs a materialized key array; virtual columns
    fall back to the vectorized bounds inside probe_range_batch."""
    relation = Relation(name="R", column=VirtualSortedColumn(num_keys=64))
    keys = relation.column.key_at(np.arange(64))
    probes = keys[np.asarray([0, 7, 31, 63])]
    lo, hi = band_bounds(probes, 2)
    for index_cls in ALL_INDEX_TYPES:
        index = index_cls(relation)
        assert jit.range_runner_for(index, compile=False) is None
        starts = np.empty(4, dtype=np.int64)
        ends = np.empty(4, dtype=np.int64)
        index.probe_range_batch(lo, hi, starts, ends)
        want_start, want_end = oracle_range(keys, lo, hi)
        np.testing.assert_array_equal(starts, want_start)
        np.testing.assert_array_equal(ends, want_end)
