"""B+tree specifics."""

import numpy as np
import pytest

from repro.config import DEFAULT_BTREE_NODE_BYTES
from repro.data.column import MaterializedColumn, VirtualSortedColumn
from repro.data.relation import Relation
from repro.errors import CapacityError, ConfigurationError, SimulationError
from repro.hardware.memory import MemorySpace, SystemMemory
from repro.hardware.spec import V100_NVLINK2
from repro.indexes.btree import BPlusTreeIndex
from repro.units import GIB


class TestGeometry:
    def test_paper_node_size(self, small_relation):
        index = BPlusTreeIndex(small_relation)
        assert index.node_bytes == DEFAULT_BTREE_NODE_BYTES == 4096

    def test_fanout_256(self, small_relation):
        # 4 KiB node: 255 8-byte separators + 256 8-byte pointers.
        assert BPlusTreeIndex(small_relation).fanout == 256

    def test_leaf_entries_key_only(self, small_relation):
        assert BPlusTreeIndex(small_relation).leaf_entries == 512

    def test_leaf_entries_with_payload(self, small_relation):
        index = BPlusTreeIndex(small_relation, leaf_payload_bytes=8)
        assert index.leaf_entries == 256

    def test_levels_cover_all_keys(self):
        relation = Relation("R", VirtualSortedColumn(2**22))
        index = BPlusTreeIndex(relation)
        leaves = index.level_sizes[-1]
        assert leaves * index.leaf_entries >= 2**22
        assert index.level_sizes[0] == 1  # single root

    def test_height_grows_with_size(self):
        small = BPlusTreeIndex(Relation("R", VirtualSortedColumn(2**10)))
        large = BPlusTreeIndex(Relation("R", VirtualSortedColumn(2**30)))
        assert large.height > small.height

    def test_smaller_nodes_make_taller_trees(self):
        """Section 3.1: smaller nodes -> fewer keys per node -> taller."""
        relation = Relation("R", VirtualSortedColumn(2**24))
        big_nodes = BPlusTreeIndex(relation, node_bytes=4096)
        small_nodes = BPlusTreeIndex(relation, node_bytes=256)
        assert small_nodes.height > big_nodes.height

    def test_footprint_tracks_relation(self):
        relation = Relation("R", VirtualSortedColumn(2**24))
        index = BPlusTreeIndex(relation)
        # Key-only leaves: footprint slightly above the data size.
        assert index.footprint_bytes >= relation.nbytes
        assert index.footprint_bytes < 1.1 * relation.nbytes

    def test_payload_doubles_footprint(self):
        relation = Relation("R", VirtualSortedColumn(2**24))
        lean = BPlusTreeIndex(relation).footprint_bytes
        fat = BPlusTreeIndex(relation, leaf_payload_bytes=8).footprint_bytes
        assert fat > 1.9 * lean

    def test_rejects_bad_node_size(self, small_relation):
        with pytest.raises(ConfigurationError):
            BPlusTreeIndex(small_relation, node_bytes=100)
        with pytest.raises(ConfigurationError):
            BPlusTreeIndex(small_relation, node_bytes=32)

    def test_rejects_negative_payload(self, small_relation):
        with pytest.raises(ConfigurationError):
            BPlusTreeIndex(small_relation, leaf_payload_bytes=-8)


class TestCapacity:
    def test_payload_tree_exceeds_memory_at_paper_scale(self):
        """A payload-bearing B+tree over ~111 GiB cannot fit in 256 GiB
        together with R -- the capacity wall of Section 3.2."""
        memory = SystemMemory(V100_NVLINK2)
        relation = Relation("R", VirtualSortedColumn(int(111 * GIB // 8)))
        relation.place(memory, MemorySpace.HOST)
        index = BPlusTreeIndex(relation, leaf_payload_bytes=8)
        with pytest.raises(CapacityError):
            index.place(memory)

    def test_key_only_tree_fits_at_paper_scale(self):
        """The paper measures the B+tree at 111 GiB, which requires the
        clustered (key-only) leaf layout."""
        memory = SystemMemory(V100_NVLINK2)
        relation = Relation("R", VirtualSortedColumn(int(111 * GIB // 8)))
        relation.place(memory, MemorySpace.HOST)
        BPlusTreeIndex(relation).place(memory)

    def test_place_requires_relation(self, small_relation):
        with pytest.raises(SimulationError):
            BPlusTreeIndex(small_relation).place(SystemMemory(V100_NVLINK2))


class TestInserts:
    def test_insert_merges(self):
        keys = np.arange(0, 1000, 4, dtype=np.uint64)
        relation = Relation("R", MaterializedColumn(keys))
        index = BPlusTreeIndex(relation)
        new_keys = np.array([1, 5, 2001], dtype=np.uint64)
        updated = index.insert_keys(new_keys)
        assert updated.lookup(new_keys).tolist() == [
            int(updated.relation.column.rank_of(np.array([k]))[0])
            for k in new_keys
        ]
        # Old keys remain findable.
        assert np.all(updated.lookup(keys) >= 0)

    def test_insert_rejects_duplicates(self):
        keys = np.arange(0, 100, 4, dtype=np.uint64)
        relation = Relation("R", MaterializedColumn(keys))
        index = BPlusTreeIndex(relation)
        with pytest.raises(ConfigurationError):
            index.insert_keys(np.array([4], dtype=np.uint64))

    def test_insert_requires_materialized(self, virtual_relation):
        index = BPlusTreeIndex(virtual_relation)
        with pytest.raises(SimulationError):
            index.insert_keys(np.array([1], dtype=np.uint64))

    def test_insert_preserves_node_size(self):
        keys = np.arange(0, 100, 4, dtype=np.uint64)
        relation = Relation("R", MaterializedColumn(keys))
        index = BPlusTreeIndex(relation, node_bytes=1024)
        updated = index.insert_keys(np.array([1], dtype=np.uint64))
        assert updated.node_bytes == 1024

    def test_supports_updates_flag(self):
        assert BPlusTreeIndex.supports_updates is True


class TestTraversalEdgeCases:
    def test_exactly_one_full_leaf(self):
        n = 512
        relation = Relation("R", VirtualSortedColumn(n))
        index = BPlusTreeIndex(relation)
        assert index.height == 1
        keys = relation.column.key_at(np.arange(n))
        assert np.array_equal(index.lookup(keys), np.arange(n))

    def test_leaf_boundary_keys(self):
        n = 512 * 3 + 7  # several leaves plus a ragged tail
        relation = Relation("R", VirtualSortedColumn(n))
        index = BPlusTreeIndex(relation)
        boundary_positions = np.array([511, 512, 1023, 1024, n - 1])
        keys = relation.column.key_at(boundary_positions)
        assert np.array_equal(index.lookup(keys), boundary_positions)

    def test_rightmost_path_clamped(self):
        # Keys beyond the last leaf must not index past the level arrays.
        n = 512 * 256 + 3  # forces a second internal level, ragged
        relation = Relation("R", VirtualSortedColumn(n))
        index = BPlusTreeIndex(relation)
        beyond = np.array([relation.column.max_key + 10], dtype=np.uint64)
        assert index.lookup(beyond).tolist() == [-1]


class TestLeafPaddingRegression:
    def test_regression_max_key_probe_does_not_match_leaf_padding(self):
        """Named regression test for the differential-suite finding.

        Leaf slots past the end of the column hold the MAX-key sentinel.
        A probe key of 2^64 - 1 compared equal to that padding and came
        back with an out-of-bounds "position" (e.g. position 1 in a
        1-tuple relation).  A hit now also requires the slot to be a
        real data slot.
        """
        max_key = np.uint64(np.iinfo(np.uint64).max)
        for n in (1, 7, 512, 512 + 13):  # ragged and exact-leaf shapes
            keys = np.arange(3, 3 + 4 * n, 4, dtype=np.uint64)
            relation = Relation("R", MaterializedColumn(keys))
            index = BPlusTreeIndex(relation)
            probes = np.asarray([max_key, keys[-1], keys[-1] + 2], dtype=np.uint64)
            assert index.lookup(probes).tolist() == [-1, n - 1, -1]

    def test_regression_max_key_as_real_data_still_matches(self):
        """The guard must not break a relation that legitimately ends
        at the maximum representable key."""
        max_key = np.uint64(np.iinfo(np.uint64).max)
        keys = np.asarray([5, 100, max_key], dtype=np.uint64)
        relation = Relation("R", MaterializedColumn(keys))
        index = BPlusTreeIndex(relation)
        assert index.lookup(np.asarray([max_key], dtype=np.uint64)).tolist() == [2]
