"""Properties every index must satisfy, tested uniformly.

The single most important invariant of the reproduction: an index's
*simulated* traversal is the same code as its functional lookup, so traced
and untraced results must agree bit-for-bit, and both must agree with the
ground-truth rank computation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.column import MaterializedColumn, VirtualSortedColumn
from repro.data.relation import Relation
from repro.errors import SimulationError
from repro.hardware.memory import MemorySpace, SystemMemory
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import ALL_INDEX_TYPES

INDEX_IDS = [cls.__name__ for cls in ALL_INDEX_TYPES]


@pytest.fixture(params=ALL_INDEX_TYPES, ids=INDEX_IDS)
def index_cls(request):
    return request.param


def placed_index(index_cls, relation):
    memory = SystemMemory(V100_NVLINK2)
    relation.place(memory, MemorySpace.HOST)
    index = index_cls(relation)
    index.place(memory)
    return index


class TestLookupCorrectness:
    def test_members_found(self, index_cls, small_relation, small_probes):
        index = index_cls(small_relation)
        positions = index.lookup(small_probes.keys)
        assert np.array_equal(positions, small_probes.expected_positions)

    def test_first_and_last_key(self, index_cls, small_relation):
        index = index_cls(small_relation)
        n = small_relation.num_tuples
        keys = small_relation.column.key_at(np.array([0, n - 1]))
        assert index.lookup(keys).tolist() == [0, n - 1]

    def test_below_and_above_domain(self, index_cls, small_relation):
        index = index_cls(small_relation)
        low = small_relation.column.min_key - 1
        high = small_relation.column.max_key + 1
        keys = np.array([low, high], dtype=np.uint64)
        assert index.lookup(keys).tolist() == [-1, -1]

    def test_gap_keys_not_found(self, index_cls, small_relation):
        index = index_cls(small_relation)
        member = small_relation.column.key_at(np.array([5]))[0]
        assert index.lookup(np.array([member + 1])).tolist() == [-1]

    def test_empty_batch(self, index_cls, small_relation):
        index = index_cls(small_relation)
        assert len(index.lookup(np.empty(0, dtype=np.uint64))) == 0

    def test_single_key_column(self, index_cls):
        relation = Relation(
            "R", MaterializedColumn(np.array([42], dtype=np.uint64))
        )
        index = index_cls(relation)
        assert index.lookup(np.array([42], dtype=np.uint64)).tolist() == [0]
        assert index.lookup(np.array([41], dtype=np.uint64)).tolist() == [-1]

    def test_two_key_column(self, index_cls):
        relation = Relation(
            "R", MaterializedColumn(np.array([10, 20], dtype=np.uint64))
        )
        index = index_cls(relation)
        probes = np.array([10, 15, 20, 25], dtype=np.uint64)
        assert index.lookup(probes).tolist() == [0, -1, 1, -1]

    def test_virtual_column_agrees_with_materialized(self, index_cls):
        n = 2**12
        virtual = VirtualSortedColumn(n, stride=4, seed=9)
        materialized = MaterializedColumn(virtual.key_at(np.arange(n)))
        keys = virtual.key_at(np.arange(0, n, 7))
        via_virtual = index_cls(Relation("R", virtual)).lookup(keys)
        via_materialized = index_cls(Relation("R", materialized)).lookup(keys)
        assert np.array_equal(via_virtual, via_materialized)


class TestTracing:
    def test_traced_positions_match_untraced(
        self, index_cls, small_relation, small_probes
    ):
        index = placed_index(index_cls, small_relation)
        result = index.trace_lookups(small_probes.keys)
        assert np.array_equal(result.positions, index.lookup(small_probes.keys))

    def test_trace_shape(self, index_cls, small_relation, small_probes):
        index = placed_index(index_cls, small_relation)
        result = index.trace_lookups(small_probes.keys)
        assert result.trace.num_lookups == len(small_probes.keys)
        assert result.trace.num_steps >= 1
        assert np.all(result.trace.steps_per_lookup >= 1)

    def test_trace_addresses_are_mapped(
        self, index_cls, small_relation, small_probes
    ):
        """Every recorded address must fall inside a live allocation."""
        memory = SystemMemory(V100_NVLINK2)
        small_relation.place(memory, MemorySpace.HOST)
        index = index_cls(small_relation)
        index.place(memory)
        result = index.trace_lookups(small_probes.keys[:64])
        addresses = result.trace.step_addresses
        for address in np.unique(addresses[addresses >= 0])[:200]:
            memory.find(int(address))  # raises if unmapped

    def test_trace_requires_placement(
        self, index_cls, small_relation, small_probes
    ):
        index = index_cls(small_relation)
        with pytest.raises(SimulationError):
            index.trace_lookups(small_probes.keys)

    def test_trace_rejects_empty(self, index_cls, small_relation):
        index = placed_index(index_cls, small_relation)
        with pytest.raises(SimulationError):
            index.trace_lookups(np.empty(0, dtype=np.uint64))

    def test_simt_cost_positive(self, index_cls, small_relation, small_probes):
        index = placed_index(index_cls, small_relation)
        result = index.trace_lookups(small_probes.keys)
        assert result.simt.warp_instructions > 0


class TestStructure:
    def test_footprint_non_negative(self, index_cls, small_relation):
        assert index_cls(small_relation).footprint_bytes >= 0

    def test_height_positive(self, index_cls, small_relation):
        assert index_cls(small_relation).height >= 1

    def test_sweep_pages_positive(self, index_cls, virtual_relation):
        index = index_cls(virtual_relation)
        pages = index.expected_sweep_pages(
            window_lookups=2**22,
            page_bytes=2**21,
            l2_bytes=6 * 2**20,
            cacheline_bytes=128,
        )
        assert pages > 0

    def test_sweep_pages_monotone_in_window(self, index_cls, virtual_relation):
        index = index_cls(virtual_relation)

        def pages(window):
            return index.expected_sweep_pages(
                window_lookups=window,
                page_bytes=2**21,
                l2_bytes=6 * 2**20,
                cacheline_bytes=128,
            )

        assert pages(2**24) >= pages(2**18) - 1e-9

    def test_replay_factor_positive(self, index_cls):
        assert index_cls.tlb_replay_factor > 0


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=3000),
    seed=st.integers(min_value=0, max_value=2**31),
    probes=st.integers(min_value=1, max_value=200),
)
@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES, ids=INDEX_IDS)
def test_lookup_equals_rank(index_cls, n, seed, probes):
    """Any index == column.rank_of, for arbitrary sizes and probe mixes."""
    column = VirtualSortedColumn(n, stride=4, seed=seed)
    relation = Relation("R", column)
    index = index_cls(relation)
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, n, size=probes)
    keys = column.key_at(positions)
    # Mix in misses (key+1 is never a member for stride 4).
    keys[::3] = keys[::3] + np.uint64(1)
    assert np.array_equal(index.lookup(keys), column.rank_of(keys))
