"""Binary search index specifics."""

import math

import numpy as np
import pytest

from repro.data.column import VirtualSortedColumn
from repro.data.relation import Relation
from repro.errors import SimulationError
from repro.hardware.memory import MemorySpace, SystemMemory
from repro.hardware.spec import V100_NVLINK2
from repro.indexes.binary_search import BinarySearchIndex


class TestStructure:
    def test_no_footprint(self, small_relation):
        assert BinarySearchIndex(small_relation).footprint_bytes == 0

    def test_height_is_log2(self):
        relation = Relation("R", VirtualSortedColumn(2**20))
        index = BinarySearchIndex(relation)
        assert index.height == 21  # ceil(log2(2^20 + 1))

    def test_place_requires_relation_placement(self, small_relation):
        index = BinarySearchIndex(small_relation)
        with pytest.raises(SimulationError):
            index.place(SystemMemory(V100_NVLINK2))


class TestTraceShape:
    def test_step_count_close_to_log(self, small_relation, small_probes):
        memory = SystemMemory(V100_NVLINK2)
        small_relation.place(memory, MemorySpace.HOST)
        index = BinarySearchIndex(small_relation)
        index.place(memory)
        result = index.trace_lookups(small_probes.keys)
        expected = math.ceil(math.log2(small_relation.num_tuples + 1))
        # +1 for the final verification read.
        assert result.trace.num_steps <= expected + 2
        assert result.trace.num_steps >= expected

    def test_first_step_is_shared_mid(self, small_relation, small_probes):
        """All lookups start at the same mid -- the root of the mid tree."""
        memory = SystemMemory(V100_NVLINK2)
        small_relation.place(memory, MemorySpace.HOST)
        index = BinarySearchIndex(small_relation)
        index.place(memory)
        result = index.trace_lookups(small_probes.keys)
        first_step = result.trace.step_addresses[0]
        assert len(np.unique(first_step)) == 1

    def test_addresses_stay_inside_relation(
        self, small_relation, small_probes
    ):
        memory = SystemMemory(V100_NVLINK2)
        small_relation.place(memory, MemorySpace.HOST)
        index = BinarySearchIndex(small_relation)
        index.place(memory)
        result = index.trace_lookups(small_probes.keys)
        addresses = result.trace.step_addresses
        active = addresses[addresses >= 0]
        assert active.min() >= small_relation.allocation.base
        assert active.max() < small_relation.allocation.end


class TestSweepPages:
    def test_scales_with_relation(self):
        small = BinarySearchIndex(Relation("R", VirtualSortedColumn(2**24)))
        large = BinarySearchIndex(Relation("R", VirtualSortedColumn(2**30)))
        kwargs = dict(
            window_lookups=2**22,
            page_bytes=2**21,
            l2_bytes=6 * 2**20,
            cacheline_bytes=128,
        )
        assert large.expected_sweep_pages(**kwargs) > small.expected_sweep_pages(
            **kwargs
        )

    def test_residual_higher_than_tree_indexes(self):
        """The paper's Fig. 6: at large R (where its sparse mid levels no
        longer fit the L2), binary search keeps the largest residual."""
        from repro.indexes.harmonia import HarmoniaIndex

        relation = Relation("R", VirtualSortedColumn(2**34))
        kwargs = dict(
            window_lookups=2**22,
            page_bytes=2**21,
            l2_bytes=6 * 2**20,
            cacheline_bytes=128,
        )
        binary = BinarySearchIndex(relation)
        harmonia = HarmoniaIndex(relation)
        assert binary.expected_sweep_pages(
            **kwargs
        ) > harmonia.expected_sweep_pages(**kwargs)
