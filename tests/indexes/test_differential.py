"""Property-based differential suite: every index vs a sorted-array oracle.

All four paper indexes implement the same contract -- ``lookup(keys)``
returns the position of each key in the sorted column, -1 for misses --
so a plain ``searchsorted`` over the raw key array is a complete oracle.
Hypothesis drives the two inputs through adversarial regimes:

* **relations**: singletons, dense runs, uniform gaps, tightly clustered
  keys separated by huge gaps, and keys parked in the numeric danger
  zones (near 2^53 where float64 loses integer precision, and at/above
  2^63 where int64 casts wrap);
* **probes**: member keys, near-miss keys (member +/- 1), out-of-domain
  extremes, Zipf-skewed member draws, and heavy duplication.

The suite runs under the derandomized ``repro``/``ci`` profiles (see
tests/conftest.py and TESTING.md), so every run explores identical
examples and any counterexample reproduces from the printed falsifying
example alone.  This suite is what surfaced the RadixSpline large-key
precision bugs pinned in test_radix_spline.py.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.data.column import MaterializedColumn  # noqa: E402
from repro.data.relation import Relation  # noqa: E402
from repro.data.zipf import zipf_sample  # noqa: E402
from repro.errors import ConfigurationError  # noqa: E402
from repro.indexes import ALL_INDEX_TYPES  # noqa: E402

MAX_KEY = 2**64 - 1

#: (base, max_gap) regimes the relation generator parks keys in.  The
#: last three sit in the float/int conversion danger zones.
KEY_REGIMES = (
    (0, 3),
    (0, 2**16),
    (2**32, 2**20),
    (2**53 - 2**10, 3),
    (2**62, 3),
    (2**63 + 17, 2**10),
)


def oracle_lookup(keys: np.ndarray, probes: np.ndarray) -> np.ndarray:
    """Reference semantics: sorted-array binary search, -1 on miss."""
    positions = np.searchsorted(keys, probes)
    clamped = np.minimum(positions, len(keys) - 1)
    hit = (positions < len(keys)) & (keys[clamped] == probes)
    return np.where(hit, positions, -1).astype(np.int64)


@st.composite
def relation_keys(draw) -> np.ndarray:
    """Strictly increasing uint64 key arrays across adversarial regimes."""
    size = draw(st.integers(min_value=1, max_value=256))
    base, max_gap = draw(st.sampled_from(KEY_REGIMES))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    clustered = draw(st.booleans())
    rng = np.random.default_rng(seed)
    if clustered and size >= 8:
        # Tight clusters (gap 1-2) separated by huge jumps: adjacent
        # keys whose difference underflows float arithmetic sit right
        # next to pairs whose difference overflows it.
        gaps = rng.integers(1, 3, size=size).astype(np.object_)
        cluster_starts = rng.choice(size, size=max(1, size // 16), replace=False)
        for start in cluster_starts:
            gaps[start] = int(rng.integers(2**40, 2**44))
    else:
        gaps = rng.integers(1, max_gap + 1, size=size).astype(np.object_)
    keys = np.cumsum(gaps) + base
    if int(keys[-1]) > MAX_KEY:
        # Python-int cumsum cannot wrap; rescale into range instead of
        # discarding the example.
        overshoot = int(keys[-1]) - MAX_KEY
        keys = keys - overshoot
        if int(keys[0]) < 0:
            keys = keys - int(keys[0])
    return np.asarray([int(k) for k in keys], dtype=np.uint64)


@st.composite
def probe_mix(draw, keys: np.ndarray) -> np.ndarray:
    """Probe batches mixing members, near-misses, extremes, duplicates."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    count = draw(st.integers(min_value=1, max_value=512))
    theta = draw(st.sampled_from([0.0, 1.0]))
    rng = np.random.default_rng(seed)
    n = len(keys)
    if theta > 0:
        ranks = zipf_sample(rng, n, theta, count)
        members = keys[ranks % n]
    else:
        members = keys[rng.integers(0, n, size=count)]
    over = members[rng.random(count) < 0.3] + np.uint64(1)
    under = members[rng.random(count) < 0.3] - np.uint64(1)
    extremes = np.asarray(
        [0, int(keys[0]), int(keys[-1]), MAX_KEY], dtype=np.uint64
    )
    probes = np.concatenate([members, over, under, extremes])
    # Heavy duplication: repeat a handful of probes many times over.
    repeated = np.repeat(probes[rng.integers(0, len(probes), size=4)], 16)
    probes = np.concatenate([probes, repeated])
    return probes[rng.permutation(len(probes))]


@st.composite
def workloads(draw):
    keys = draw(relation_keys())
    probes = draw(probe_mix(keys))
    return keys, probes


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestDifferentialLookup:
    @given(workload=workloads())
    def test_lookup_matches_sorted_array_oracle(self, index_cls, workload):
        keys, probes = workload
        index = index_cls(
            Relation(name="R", column=MaterializedColumn(keys))
        )
        np.testing.assert_array_equal(
            index.lookup(probes),
            oracle_lookup(keys, probes),
            err_msg=f"{index_cls.name} diverges from the oracle",
        )

    @given(
        base=st.sampled_from([regime[0] for regime in KEY_REGIMES]),
        offset=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=20)
    def test_singleton_relation(self, index_cls, base, offset):
        key = np.uint64(min(base + offset, MAX_KEY - 1))
        index = index_cls(
            Relation(
                name="R",
                column=MaterializedColumn(np.asarray([key], dtype=np.uint64)),
            )
        )
        probes = np.asarray(
            [key, key + np.uint64(1), np.uint64(0), np.uint64(MAX_KEY)],
            dtype=np.uint64,
        )
        expected = np.asarray([0, -1, -1, -1], dtype=np.int64)
        if key == 0:
            expected[2] = 0
        if key == MAX_KEY:
            expected[3] = 0
        np.testing.assert_array_equal(index.lookup(probes), expected)

    def test_empty_probe_batch(self, index_cls):
        index = index_cls(
            Relation(
                name="R",
                column=MaterializedColumn(
                    np.arange(8, dtype=np.uint64) * np.uint64(3)
                ),
            )
        )
        result = index.lookup(np.empty(0, dtype=np.uint64))
        assert result.dtype == np.int64
        assert len(result) == 0


def test_empty_relations_are_rejected_before_indexing():
    """All four indexes share one behavior for |R| = 0: the column
    constructor refuses it, so no index can be built over nothing."""
    with pytest.raises(ConfigurationError):
        MaterializedColumn(np.empty(0, dtype=np.uint64))
