"""The multi-value hash table (WarpCore-style baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CapacityError, ConfigurationError, WorkloadError
from repro.join.hash_join import MultiValueHashTable


class TestConstruction:
    def test_capacity_respects_load_factor(self):
        table = MultiValueHashTable(expected_keys=1000, load_factor=0.5)
        assert table.capacity >= 2000
        assert table.capacity & (table.capacity - 1) == 0  # power of two

    def test_paper_defaults(self):
        table = MultiValueHashTable(expected_keys=100)
        assert table.load_factor == 0.5
        assert table.block_keys == 512

    def test_footprint(self):
        table = MultiValueHashTable(expected_keys=100)
        assert table.footprint_bytes == table.capacity * 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiValueHashTable(expected_keys=0)
        with pytest.raises(ConfigurationError):
            MultiValueHashTable(expected_keys=10, load_factor=1.5)
        with pytest.raises(ConfigurationError):
            MultiValueHashTable(expected_keys=10, block_keys=0)


class TestInsertLookup:
    def test_single_value(self):
        table = MultiValueHashTable(expected_keys=16)
        table.insert(
            np.array([42], dtype=np.uint64), np.array([7], dtype=np.int64)
        )
        probe, values = table.lookup(np.array([42], dtype=np.uint64))
        assert probe.tolist() == [0]
        assert values.tolist() == [7]

    def test_missing_key(self):
        table = MultiValueHashTable(expected_keys=16)
        table.insert(
            np.array([42], dtype=np.uint64), np.array([7], dtype=np.int64)
        )
        probe, values = table.lookup(np.array([43], dtype=np.uint64))
        assert len(probe) == 0

    def test_multi_value_semantics(self):
        """Duplicate keys return every associated value."""
        table = MultiValueHashTable(expected_keys=16)
        table.insert(
            np.array([5, 5, 5], dtype=np.uint64),
            np.array([1, 2, 3], dtype=np.int64),
        )
        __, values = table.lookup(np.array([5], dtype=np.uint64))
        assert sorted(values.tolist()) == [1, 2, 3]

    def test_probe_index_tracks_input_order(self):
        table = MultiValueHashTable(expected_keys=16)
        table.insert(
            np.array([1, 2], dtype=np.uint64), np.array([10, 20], dtype=np.int64)
        )
        probe, values = table.lookup(np.array([2, 1], dtype=np.uint64))
        assert probe.tolist() == [0, 1]
        assert values.tolist() == [20, 10]

    def test_collision_chains_resolve(self):
        # Force collisions with a nearly full small table.
        table = MultiValueHashTable(expected_keys=6, load_factor=0.9)
        keys = np.arange(100, 106, dtype=np.uint64)
        table.insert(keys, np.arange(6, dtype=np.int64))
        for i, key in enumerate(keys):
            __, values = table.lookup(np.array([key], dtype=np.uint64))
            assert values.tolist() == [i]

    def test_chain_statistics_grow_with_duplicates(self):
        flat = MultiValueHashTable(expected_keys=512)
        flat.insert(
            np.arange(256, dtype=np.uint64), np.arange(256, dtype=np.int64)
        )
        skewed = MultiValueHashTable(expected_keys=512)
        skewed.insert(
            np.zeros(256, dtype=np.uint64) + 7,
            np.arange(256, dtype=np.int64),
        )
        # 256 duplicates of one key form one long run: the mean probe
        # chain is far longer than with unique keys.
        assert skewed.mean_insert_probes > 10 * flat.mean_insert_probes
        assert skewed.max_insert_probes >= 256

    def test_capacity_error(self):
        table = MultiValueHashTable(expected_keys=4, load_factor=0.9)
        with pytest.raises(CapacityError):
            table.insert(
                np.arange(100, dtype=np.uint64),
                np.arange(100, dtype=np.int64),
            )

    def test_reserved_key_rejected(self):
        table = MultiValueHashTable(expected_keys=4)
        with pytest.raises(WorkloadError):
            table.insert(
                np.array([2**64 - 1], dtype=np.uint64),
                np.array([0], dtype=np.int64),
            )

    def test_length_mismatch_rejected(self):
        table = MultiValueHashTable(expected_keys=4)
        with pytest.raises(WorkloadError):
            table.insert(
                np.array([1], dtype=np.uint64),
                np.array([1, 2], dtype=np.int64),
            )

    def test_mean_probes_empty(self):
        assert MultiValueHashTable(expected_keys=4).mean_insert_probes == 0.0


@settings(max_examples=20, deadline=None)
@given(
    num_keys=st.integers(min_value=1, max_value=300),
    duplication=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_table_equals_dict_of_lists(num_keys, duplication, seed):
    """The table is semantically a multimap, whatever the collisions."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, num_keys, size=num_keys * duplication).astype(
        np.uint64
    )
    values = np.arange(len(keys), dtype=np.int64)
    table = MultiValueHashTable(expected_keys=len(keys))
    table.insert(keys, values)
    expected = {}
    for key, value in zip(keys.tolist(), values.tolist()):
        expected.setdefault(key, []).append(value)
    probes = np.unique(keys)
    probe_idx, found = table.lookup(probes)
    for i, key in enumerate(probes.tolist()):
        got = sorted(found[probe_idx == i].tolist())
        assert got == sorted(expected[key])
