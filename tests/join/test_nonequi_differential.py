"""Property-based differential suite: non-equi joins vs brute force.

Band and KNN joins run over :meth:`Index.probe_range_batch`, so a bug in
any index's range traversal (or in the span/walk-out plumbing above it)
shows up here as a divergence from oracles that share *no* code with the
index traversals:

* the **band oracle** materializes the full ``|probes| x |keys|``
  comparison matrix -- every pair with ``|s.key - r.key| <= epsilon``
  in exact uint64 arithmetic;
* the **KNN oracle** computes the full distance matrix and takes each
  row's ``k`` smallest by a stable argsort, which encodes the pinned
  tie-break (equal distance -> smaller position -> smaller key -> LEFT).

Each join runs in its naive and its windowed-partitioned variant, over
every index type, through the same adversarial key regimes as the
equi-join differential suite (float53 precision loss, int64 wrap,
clustered gaps, duplicates, Zipf skew).  Results compare by
:meth:`JoinResult.equals` -- multiset equality of (probe, position)
pairs -- so window permutation is invisible, as it must be.

Derandomized under the ``repro``/``ci`` profiles (tests/conftest.py);
anything this suite surfaces gets pinned as a ``test_regression_*`` case
per TESTING.md.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.data.column import MaterializedColumn  # noqa: E402
from repro.data.relation import Relation  # noqa: E402
from repro.indexes import ALL_INDEX_TYPES  # noqa: E402
from repro.indexes.domain import saturating_band  # noqa: E402
from repro.join.base import JoinResult, reference_join  # noqa: E402
from repro.join.nonequi import (  # noqa: E402
    BandJoin,
    KNNJoin,
    WindowedBandJoin,
    WindowedKNNJoin,
)
from repro.partition.bits import PartitionBits  # noqa: E402
from repro.partition.radix import RadixPartitioner  # noqa: E402

from ..indexes.test_differential import workloads  # noqa: E402

#: Tiny window (8 probe tuples) so every generated stream spans several
#: windows -- the regime where offset bookkeeping can go wrong.
SMALL_WINDOW_BYTES = 64

#: Band widths: degenerate (equi), small, around the generated key gaps,
#: and huge enough to saturate at the domain edges.
EPSILONS = st.one_of(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=2**16 - 4, max_value=2**16 + 4),
    st.integers(min_value=2**40, max_value=2**44),
    st.just(2**63),
)

#: Neighbourhood sizes: small, and larger than most generated relations.
KS = st.one_of(st.integers(min_value=1, max_value=8), st.just(300))


def build_index(index_cls, keys: np.ndarray):
    return index_cls(Relation(name="R", column=MaterializedColumn(keys)))


def small_partitioner() -> RadixPartitioner:
    """A partitioner valid for any key domain (partition correctness is
    the radix suite's job; here it only has to permute within windows)."""
    return RadixPartitioner(PartitionBits(shift=2, bits=5))


def oracle_band(keys: np.ndarray, probes: np.ndarray, epsilon: int) -> JoinResult:
    """Full-matrix band join: every pair within the saturating band."""
    lo, hi = saturating_band(probes, np.uint64(epsilon))
    mask = (keys[None, :] >= lo[:, None]) & (keys[None, :] <= hi[:, None])
    probe, positions = np.nonzero(mask)
    return JoinResult(
        probe_indices=probe.astype(np.int64),
        build_positions=positions.astype(np.int64),
    )


def oracle_knn(keys: np.ndarray, probes: np.ndarray, k: int) -> JoinResult:
    """Full-matrix KNN join: each row's k smallest exact distances.

    The stable argsort breaks equal-distance ties toward the smaller
    position, i.e. the smaller key -- the LEFT candidate, exactly the
    walk-out's documented tie-break.
    """
    k_eff = min(k, len(keys))
    cols = keys[None, :]
    rows = probes[:, None]
    with np.errstate(over="ignore"):
        distances = np.where(cols >= rows, cols - rows, rows - cols)
    nearest = np.argsort(distances, axis=1, kind="stable")[:, :k_eff]
    probe = np.repeat(np.arange(len(probes), dtype=np.int64), k_eff)
    return JoinResult(
        probe_indices=probe,
        build_positions=nearest.reshape(-1).astype(np.int64),
    )


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestBandJoinDifferential:
    @given(workload=workloads(), epsilon=EPSILONS)
    def test_naive_matches_brute_force(self, index_cls, workload, epsilon):
        keys, probes = workload
        index = build_index(index_cls, keys)
        result = BandJoin(index, epsilon).join(probes)
        assert result.equals(oracle_band(keys, probes, epsilon)), (
            f"{index_cls.name} naive band join diverges at epsilon={epsilon}"
        )

    @given(workload=workloads(), epsilon=EPSILONS)
    @settings(max_examples=20)
    def test_windowed_matches_brute_force(self, index_cls, workload, epsilon):
        keys, probes = workload
        index = build_index(index_cls, keys)
        join = WindowedBandJoin(
            index,
            small_partitioner(),
            epsilon,
            window_bytes=SMALL_WINDOW_BYTES,
        )
        assert join.join(probes).equals(oracle_band(keys, probes, epsilon)), (
            f"{index_cls.name} windowed band join diverges at "
            f"epsilon={epsilon}"
        )

    @given(workload=workloads(), epsilon=EPSILONS)
    @settings(max_examples=20)
    def test_reference_join_agrees_with_matrix_oracle(
        self, index_cls, workload, epsilon
    ):
        # reference_join is itself span-based (bound_positions); pinning
        # it against the comparison matrix keeps the two oracles honest
        # with each other.  index_cls is unused -- the class-level
        # parametrize just reruns the check per profile shard.
        del index_cls
        keys, probes = workload
        column = MaterializedColumn(keys)
        assert reference_join(column, probes, epsilon=epsilon).equals(
            oracle_band(keys, probes, epsilon)
        )


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestKnnJoinDifferential:
    @given(workload=workloads(), k=KS)
    def test_naive_matches_brute_force(self, index_cls, workload, k):
        keys, probes = workload
        index = build_index(index_cls, keys)
        result = KNNJoin(index, k).join(probes)
        assert result.equals(oracle_knn(keys, probes, k)), (
            f"{index_cls.name} naive KNN join diverges at k={k}"
        )

    @given(workload=workloads(), k=KS)
    @settings(max_examples=20)
    def test_windowed_matches_brute_force(self, index_cls, workload, k):
        keys, probes = workload
        index = build_index(index_cls, keys)
        join = WindowedKNNJoin(
            index,
            small_partitioner(),
            k,
            window_bytes=SMALL_WINDOW_BYTES,
        )
        assert join.join(probes).equals(oracle_knn(keys, probes, k)), (
            f"{index_cls.name} windowed KNN join diverges at k={k}"
        )


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
def test_regression_clustered_gap_band(index_cls):
    """Band probes inside a huge key gap, pinned for every index.

    The RadixSpline's range traversal searches a ``error_bound + 2``
    window around the interpolated estimate; a probe in the middle of a
    2^42-wide gap is where an off-by-one in that margin (or in any
    index's lower-bound descent) first emits a wrong span.  Development
    versions of the range kernels were caught by exactly this shape.
    """
    rng = np.random.default_rng(7)
    gaps = np.ones(128, dtype=np.object_)
    gaps[32] = 2**42
    gaps[96] = 2**41 + 3
    keys = np.asarray(
        [int(k) for k in np.cumsum(gaps) + 2**53 - 2**10], dtype=np.uint64
    )
    mid_gap = keys[31] + np.uint64(2**41)
    probes = np.concatenate(
        [
            keys[rng.integers(0, len(keys), size=64)],
            np.asarray(
                [mid_gap, keys[31] + np.uint64(1), keys[32] - np.uint64(1)],
                dtype=np.uint64,
            ),
        ]
    )
    index = build_index(index_cls, keys)
    for epsilon in (0, 3, 2**41, 2**43):
        result = BandJoin(index, epsilon).join(probes)
        assert result.equals(oracle_band(keys, probes, epsilon)), (
            f"{index_cls.name} diverges in the clustered-gap regime at "
            f"epsilon={epsilon}"
        )
