"""Simulated (cost-model) paths of all join operators.

These tests pin down the *structure* of the estimates -- counters are
consistent, stages priced, capacity charged -- on configurations small
enough for per-test runs.  The paper-shape assertions (cliff, recovery,
ranking) live in tests/test_paper_shapes.py.
"""

import pytest

from repro.config import SimulationConfig
from repro.data.generator import WorkloadConfig
from repro.errors import WorkloadError
from repro.hardware.memory import MemorySpace
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import HarmoniaIndex, RadixSplineIndex
from repro.join.base import QueryEnvironment
from repro.join.hash_join import HashJoin
from repro.join.inlj import IndexNestedLoopJoin
from repro.join.partitioned import PartitionedINLJ
from repro.join.window import WindowedINLJ
from repro.partition.bits import choose_partition_bits
from repro.partition.radix import RadixPartitioner
from repro.units import GIB, MIB

SIM = SimulationConfig(probe_sample=2**11)
WORKLOAD = WorkloadConfig(r_tuples=int(2 * GIB // 8), s_tuples=2**20)


def make_env(index_cls=None):
    return QueryEnvironment(V100_NVLINK2, WORKLOAD, index_cls=index_cls, sim=SIM)


def make_partitioner(env):
    bits = choose_partition_bits(env.column, 2048, ignored_lsb=4)
    return RadixPartitioner(bits)


class TestINLJEstimate:
    def test_positive_throughput(self):
        env = make_env(RadixSplineIndex)
        cost = IndexNestedLoopJoin(env.index).estimate(env)
        assert 0 < cost.queries_per_second < 10_000

    def test_counters_cover_full_relation(self):
        env = make_env(RadixSplineIndex)
        cost = IndexNestedLoopJoin(env.index).estimate(env)
        assert cost.counters.lookups == WORKLOAD.s_tuples
        assert cost.counters.scan_bytes >= env.s_bytes

    def test_breakdown_has_probe_stage(self):
        env = make_env(RadixSplineIndex)
        cost = IndexNestedLoopJoin(env.index).estimate(env)
        assert "probe" in cost.breakdown

    def test_rejects_foreign_index(self):
        env = make_env(RadixSplineIndex)
        other_env = make_env(RadixSplineIndex)
        join = IndexNestedLoopJoin(other_env.index)
        with pytest.raises(WorkloadError):
            join.estimate(env)

    def test_deterministic(self):
        env = make_env(HarmoniaIndex)
        first = IndexNestedLoopJoin(env.index).estimate(env).seconds
        env2 = make_env(HarmoniaIndex)
        second = IndexNestedLoopJoin(env2.index).estimate(env2).seconds
        assert first == second


class TestSortedProbeOrder:
    def test_functional_sorted_equals_reference(self):
        from repro.data.generator import make_workload
        from repro.join.base import reference_join

        config = WorkloadConfig(
            r_tuples=2**14, s_tuples=2**11, match_rate=0.8, seed=4
        )
        relation, probes = make_workload(config)
        join = IndexNestedLoopJoin(
            RadixSplineIndex(relation), probe_order="sorted"
        )
        assert join.join(probes.keys).equals(
            reference_join(relation.column, probes.keys)
        )

    def test_sorted_beats_stream_at_large_r(self):
        from repro.units import GIB as _GIB

        big = WorkloadConfig(r_tuples=int(64 * _GIB // 8))
        stream_env = QueryEnvironment(
            V100_NVLINK2, big, index_cls=RadixSplineIndex,
            sim=SimulationConfig(probe_sample=2**13),
        )
        stream = IndexNestedLoopJoin(
            stream_env.index, probe_order="stream"
        ).estimate(stream_env)
        sorted_env = QueryEnvironment(
            V100_NVLINK2, big, index_cls=RadixSplineIndex, sim=SIM
        )
        sorted_cost = IndexNestedLoopJoin(
            sorted_env.index, probe_order="sorted"
        ).estimate(sorted_env)
        assert (
            sorted_cost.queries_per_second > 2 * stream.queries_per_second
        )

    def test_invalid_order_rejected(self):
        from repro.errors import ConfigurationError

        env = make_env(RadixSplineIndex)
        with pytest.raises(ConfigurationError):
            IndexNestedLoopJoin(env.index, probe_order="shuffled")


class TestPartitionedEstimate:
    def test_has_two_stages(self):
        env = make_env(RadixSplineIndex)
        cost = PartitionedINLJ(env.index, make_partitioner(env)).estimate(env)
        assert set(cost.breakdown) >= {"partition", "probe"}

    def test_materializes_key_buffers_in_device_memory(self):
        env = make_env(RadixSplineIndex)
        before = env.machine.memory.used(MemorySpace.DEVICE)
        PartitionedINLJ(env.index, make_partitioner(env)).estimate(env)
        after = env.machine.memory.used(MemorySpace.DEVICE)
        assert after - before >= 2 * WORKLOAD.s_tuples * 16

    def test_partition_traffic_charged(self):
        env = make_env(RadixSplineIndex)
        cost = PartitionedINLJ(env.index, make_partitioner(env)).estimate(env)
        assert cost.counters.gpu_memory_bytes >= WORKLOAD.s_tuples * 16 * 2


class TestWindowedEstimate:
    def test_no_input_materialization(self):
        """Section 5: neither input is materialized -- device memory holds
        only the in-flight window buffers."""
        env = make_env(RadixSplineIndex)
        join = WindowedINLJ(
            env.index, make_partitioner(env), window_bytes=2 * MIB
        )
        join.estimate(env)
        used = env.machine.memory.used(MemorySpace.DEVICE)
        assert used < 10 * 2 * MIB  # a few window buffers, not |S|

    def test_overlap_helps(self):
        env = make_env(RadixSplineIndex)
        overlapped = WindowedINLJ(
            env.index, make_partitioner(env), window_bytes=2 * MIB,
            overlap=True,
        ).estimate(env)
        env2 = make_env(RadixSplineIndex)
        serial = WindowedINLJ(
            env2.index, make_partitioner(env2), window_bytes=2 * MIB,
            overlap=False,
        ).estimate(env2)
        assert overlapped.seconds <= serial.seconds

    def test_breakdown_reports_windows(self):
        env = make_env(RadixSplineIndex)
        join = WindowedINLJ(
            env.index, make_partitioner(env), window_bytes=2 * MIB
        )
        cost = join.estimate(env)
        expected_windows = -(-WORKLOAD.s_tuples // join.window_tuples)
        assert cost.breakdown["num_windows"] == expected_windows

    def test_window_larger_than_s_clamps(self):
        env = make_env(RadixSplineIndex)
        join = WindowedINLJ(
            env.index, make_partitioner(env), window_bytes=100 * GIB
        )
        cost = join.estimate(env)
        assert cost.breakdown["num_windows"] == 1

    def test_rejects_foreign_index(self):
        env = make_env(RadixSplineIndex)
        other = make_env(RadixSplineIndex)
        join = WindowedINLJ(other.index, make_partitioner(env))
        with pytest.raises(WorkloadError):
            join.estimate(env)


class TestHashJoinEstimate:
    def test_scans_r_over_interconnect(self):
        env = make_env()
        cost = HashJoin(env.relation).estimate(env)
        assert cost.counters.scan_bytes >= env.r_bytes

    def test_table_charged_to_device_memory(self):
        env = make_env()
        before = env.machine.memory.used(MemorySpace.DEVICE)
        HashJoin(env.relation).estimate(env)
        used = env.machine.memory.used(MemorySpace.DEVICE) - before
        assert used >= WORKLOAD.s_tuples / 0.5 * 16 / 2  # >= capacity bytes

    def test_build_and_probe_stages(self):
        env = make_env()
        cost = HashJoin(env.relation).estimate(env)
        assert set(cost.breakdown) >= {"build", "probe"}

    def test_skew_explodes_cost(self):
        flat_env = make_env()
        flat = HashJoin(flat_env.relation).estimate(flat_env)
        skewed_workload = WorkloadConfig(
            r_tuples=WORKLOAD.r_tuples, s_tuples=WORKLOAD.s_tuples,
            zipf_theta=1.75,
        )
        skew_env = QueryEnvironment(V100_NVLINK2, skewed_workload, sim=SIM)
        skewed = HashJoin(skew_env.relation).estimate(skew_env)
        assert skewed.seconds > 100 * flat.seconds

    def test_skew_cost_monotone_in_theta(self):
        seconds = []
        for theta in (0.0, 1.0, 1.5):
            workload = WorkloadConfig(
                r_tuples=WORKLOAD.r_tuples, s_tuples=WORKLOAD.s_tuples,
                zipf_theta=theta,
            )
            env = QueryEnvironment(V100_NVLINK2, workload, sim=SIM)
            seconds.append(HashJoin(env.relation).estimate(env).seconds)
        assert seconds == sorted(seconds)
