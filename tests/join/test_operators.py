"""Functional equivalence of all join operators, across indexes.

The paper compares four INLJ variants and a hash join on one workload; all
of them compute the same equi-join, so every operator must produce exactly
the reference result -- including under partitioning, windowing, skew, and
partial match rates.
"""

import numpy as np
import pytest

from repro.data.generator import WorkloadConfig, make_workload
from repro.errors import WorkloadError
from repro.indexes import ALL_INDEX_TYPES
from repro.join.base import reference_join
from repro.join.hash_join import HashJoin
from repro.join.inlj import IndexNestedLoopJoin
from repro.join.partitioned import PartitionedINLJ
from repro.join.window import WindowedINLJ
from repro.partition.bits import choose_partition_bits
from repro.partition.radix import RadixPartitioner

INDEX_IDS = [cls.__name__ for cls in ALL_INDEX_TYPES]


def make_partitioner(relation, partitions=64):
    bits = choose_partition_bits(relation.column, partitions, ignored_lsb=4)
    return RadixPartitioner(bits)


@pytest.fixture(params=ALL_INDEX_TYPES, ids=INDEX_IDS)
def index_cls(request):
    return request.param


@pytest.fixture(
    params=[
        dict(match_rate=1.0, zipf_theta=0.0),
        dict(match_rate=0.7, zipf_theta=0.0),
        dict(match_rate=1.0, zipf_theta=1.25),
    ],
    ids=["all-match", "partial-match", "skewed"],
)
def workload(request):
    config = WorkloadConfig(
        r_tuples=2**14, s_tuples=2**11, seed=21, **request.param
    )
    relation, probes = make_workload(config, probe_count=2**11)
    return relation, probes


class TestINLJ:
    def test_matches_reference(self, index_cls, workload):
        relation, probes = workload
        join = IndexNestedLoopJoin(index_cls(relation))
        assert join.join(probes.keys).equals(
            reference_join(relation.column, probes.keys)
        )

    def test_rejects_matrix_input(self, index_cls, workload):
        relation, probes = workload
        join = IndexNestedLoopJoin(index_cls(relation))
        with pytest.raises(WorkloadError):
            join.join(probes.keys.reshape(1, -1))


class TestPartitionedINLJ:
    def test_matches_reference(self, index_cls, workload):
        relation, probes = workload
        join = PartitionedINLJ(
            index_cls(relation), make_partitioner(relation)
        )
        assert join.join(probes.keys).equals(
            reference_join(relation.column, probes.keys)
        )

    def test_probe_indices_refer_to_original_order(self, index_cls, workload):
        """Partitioning permutes lookups; results must be de-permuted."""
        relation, probes = workload
        join = PartitionedINLJ(
            index_cls(relation), make_partitioner(relation)
        )
        result = join.join(probes.keys)
        looked_up = relation.column.rank_of(probes.keys[result.probe_indices])
        assert np.array_equal(looked_up, result.build_positions)


class TestWindowedINLJ:
    @pytest.mark.parametrize("window_bytes", [64, 4096, 10**9])
    def test_matches_reference_any_window(
        self, index_cls, workload, window_bytes
    ):
        relation, probes = workload
        join = WindowedINLJ(
            index_cls(relation),
            make_partitioner(relation),
            window_bytes=window_bytes,
        )
        assert join.join(probes.keys).equals(
            reference_join(relation.column, probes.keys)
        )

    def test_window_iteration_covers_stream(self, index_cls, workload):
        relation, probes = workload
        join = WindowedINLJ(
            index_cls(relation), make_partitioner(relation), window_bytes=512
        )
        seen = sum(len(keys) for __, keys in join.windows(probes.keys))
        assert seen == len(probes.keys)

    def test_last_window_closes_early(self, index_cls, workload):
        """Section 5.1: the final window closes when the stream ends."""
        relation, probes = workload
        join = WindowedINLJ(
            index_cls(relation), make_partitioner(relation), window_bytes=8 * 60
        )
        windows = list(join.windows(probes.keys))
        assert len(windows[-1][1]) == len(probes.keys) % 60 or 60

    def test_empty_stream(self, index_cls, workload):
        relation, __ = workload
        join = WindowedINLJ(
            index_cls(relation), make_partitioner(relation), window_bytes=4096
        )
        result = join.join(np.empty(0, dtype=np.uint64))
        assert len(result) == 0

    def test_window_tuples(self, index_cls, workload):
        relation, __ = workload
        join = WindowedINLJ(
            index_cls(relation), make_partitioner(relation), window_bytes=4096
        )
        assert join.window_tuples == 512

    def test_rejects_tiny_window(self, index_cls, workload):
        relation, __ = workload
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            WindowedINLJ(
                index_cls(relation), make_partitioner(relation), window_bytes=4
            )


class TestHashJoinFunctional:
    def test_matches_reference(self, workload):
        relation, probes = workload
        join = HashJoin(relation)
        assert join.join(probes.keys).equals(
            reference_join(relation.column, probes.keys)
        )

    def test_all_operators_agree(self, workload):
        """Cross-check every operator against every other."""
        relation, probes = workload
        partitioner = make_partitioner(relation)
        results = [HashJoin(relation).join(probes.keys)]
        for index_cls in ALL_INDEX_TYPES:
            index = index_cls(relation)
            results.append(IndexNestedLoopJoin(index).join(probes.keys))
            results.append(
                WindowedINLJ(index, partitioner, window_bytes=2048).join(
                    probes.keys
                )
            )
        first = results[0]
        for other in results[1:]:
            assert first.equals(other)

    def test_requires_materialized_relation(self, virtual_relation):
        join = HashJoin(virtual_relation)
        with pytest.raises(WorkloadError):
            join.join(np.array([1], dtype=np.uint64))


class TestPartialWindowFlushRegression:
    def test_regression_matches_only_in_partial_window_are_joined(self):
        """Named regression guard for the final partial-window flush.

        Build a probe stream whose *only* matching keys sit in the
        trailing partial window (stream length deliberately not a
        multiple of the window capacity).  An operator that dropped or
        skipped the early-closing window (Section 5.1) would return an
        empty result here while still passing full-window tests.
        """
        from repro.data.column import MaterializedColumn
        from repro.data.relation import Relation
        from repro.indexes import BinarySearchIndex

        keys = np.arange(0, 8000, 8, dtype=np.uint64)
        relation = Relation("R", MaterializedColumn(keys))
        window_tuples = 64
        # 3 full windows of guaranteed misses, then a 5-tuple tail of hits.
        misses = keys[: 3 * window_tuples] + np.uint64(1)
        hits = keys[100:105]
        probes = np.concatenate([misses, hits])
        assert len(probes) % window_tuples != 0
        join = WindowedINLJ(
            BinarySearchIndex(relation),
            make_partitioner(relation),
            window_bytes=window_tuples * 8,
        )
        result = join.join(probes)
        assert result.probe_indices.tolist() == [192, 193, 194, 195, 196]
        assert result.build_positions.tolist() == [100, 101, 102, 103, 104]
        assert result.equals(reference_join(relation.column, probes))
