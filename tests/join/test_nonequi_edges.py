"""Edge-case pack for the non-equi joins and the range primitive's limits.

Each case pins one boundary of the band/KNN semantics:

* ``epsilon == 0`` collapses the band join to the equi-INLJ --
  bit-identically, not just as a multiset;
* ``k > |R|`` clamps the neighbourhood to the whole relation;
* band ties AT ``epsilon``: the interval is closed, so a key exactly
  ``epsilon`` away is a match on both sides;
* KNN equal-distance ties take the LEFT (smaller-key) candidate -- the
  deterministic tie-break documented in ``_knn_positions``;
* probes at the uint64 domain edges: ``key - epsilon`` saturates to 0
  and ``key + epsilon`` to ``2^64 - 1`` (never wraps), so boundary
  probes keep well-formed spans;
* empty spans everywhere: a band that covers no keys produces an empty
  result, not a crash or a bogus pair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.column import MaterializedColumn
from repro.data.relation import Relation
from repro.errors import ConfigurationError
from repro.indexes import ALL_INDEX_TYPES, RadixSplineIndex
from repro.indexes.domain import saturating_band
from repro.join.base import reference_join
from repro.join.inlj import IndexNestedLoopJoin
from repro.join.nonequi import (
    BandJoin,
    KNNJoin,
    WindowedBandJoin,
    WindowedKNNJoin,
)
from repro.partition.bits import PartitionBits
from repro.partition.radix import RadixPartitioner

MAX_KEY = np.uint64(2**64 - 1)


def build_index(index_cls, keys):
    return index_cls(
        Relation(name="R", column=MaterializedColumn(np.asarray(keys, np.uint64)))
    )


def small_partitioner():
    return RadixPartitioner(PartitionBits(shift=2, bits=5))


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestEpsilonZeroIsInlj:
    def test_band_zero_equals_inlj_bit_identically(self, index_cls):
        """Same pairs, same order, same dtypes -- the degenerate band
        join IS the INLJ, not merely equivalent to it."""
        keys = np.arange(1, 257, dtype=np.uint64) * np.uint64(5)
        rng = np.random.default_rng(3)
        probes = np.concatenate(
            [keys[rng.integers(0, 256, size=200)], keys[:8] + np.uint64(1)]
        )
        probes = probes[rng.permutation(len(probes))]
        index = build_index(index_cls, keys)
        band = BandJoin(index, 0).join(probes)
        inlj = IndexNestedLoopJoin(index).join(probes)
        np.testing.assert_array_equal(band.probe_indices, inlj.probe_indices)
        np.testing.assert_array_equal(
            band.build_positions, inlj.build_positions
        )
        assert band.probe_indices.dtype == inlj.probe_indices.dtype
        assert band.build_positions.dtype == inlj.build_positions.dtype


class TestKnnClamping:
    def test_k_larger_than_relation(self):
        keys = np.asarray([10, 20, 30], dtype=np.uint64)
        index = build_index(RadixSplineIndex, keys)
        result = KNNJoin(index, 50).join(np.asarray([19, 31], dtype=np.uint64))
        # k clamps to |R| = 3: every probe pairs with the whole relation.
        assert len(result) == 6
        by_probe = result.canonical()
        np.testing.assert_array_equal(
            by_probe.probe_indices, [0, 0, 0, 1, 1, 1]
        )
        np.testing.assert_array_equal(
            by_probe.build_positions, [0, 1, 2, 0, 1, 2]
        )

    def test_k_larger_than_relation_windowed(self):
        keys = np.asarray([10, 20, 30], dtype=np.uint64)
        index = build_index(RadixSplineIndex, keys)
        join = WindowedKNNJoin(
            index, small_partitioner(), 50, window_bytes=64
        )
        naive = KNNJoin(index, 50)
        probes = np.asarray([19, 31, 5], dtype=np.uint64)
        assert join.join(probes).equals(naive.join(probes))

    def test_invalid_k_rejected(self):
        index = build_index(RadixSplineIndex, np.asarray([1], np.uint64))
        with pytest.raises(ConfigurationError):
            KNNJoin(index, 0)
        with pytest.raises(ConfigurationError):
            WindowedKNNJoin(index, small_partitioner(), -1)

    def test_invalid_epsilon_rejected(self):
        index = build_index(RadixSplineIndex, np.asarray([1], np.uint64))
        with pytest.raises(ConfigurationError):
            BandJoin(index, -1)
        with pytest.raises(ConfigurationError):
            WindowedBandJoin(index, small_partitioner(), -3)


class TestTiesAtEpsilon:
    def test_band_interval_is_closed(self):
        """Keys at exactly probe +/- epsilon are matches on both sides."""
        keys = np.asarray([100, 110, 120, 130], dtype=np.uint64)
        index = build_index(RadixSplineIndex, keys)
        result = BandJoin(index, 10).join(np.asarray([110], dtype=np.uint64))
        # 100 (= 110 - 10), 110, and 120 (= 110 + 10) all match; 130 not.
        np.testing.assert_array_equal(
            result.canonical().build_positions, [0, 1, 2]
        )

    def test_band_just_inside_and_outside(self):
        keys = np.asarray([100, 120], dtype=np.uint64)
        index = build_index(RadixSplineIndex, keys)
        at = BandJoin(index, 10).join(np.asarray([110], dtype=np.uint64))
        inside = BandJoin(index, 11).join(np.asarray([110], dtype=np.uint64))
        outside = BandJoin(index, 9).join(np.asarray([110], dtype=np.uint64))
        assert len(at) == 2
        assert len(inside) == 2
        assert len(outside) == 0


class TestKnnTieBreak:
    def test_equal_distance_takes_left(self):
        """Probe 115 is exactly 5 from both 110 and 120: LEFT (110) wins
        at k=1.  Pinned: this is the documented deterministic tie-break."""
        keys = np.asarray([110, 120], dtype=np.uint64)
        index = build_index(RadixSplineIndex, keys)
        result = KNNJoin(index, 1).join(np.asarray([115], dtype=np.uint64))
        np.testing.assert_array_equal(result.build_positions, [0])

    def test_member_probe_takes_itself_first(self):
        keys = np.asarray([110, 120, 130], dtype=np.uint64)
        index = build_index(RadixSplineIndex, keys)
        result = KNNJoin(index, 1).join(
            np.asarray([110, 120, 130], dtype=np.uint64)
        )
        np.testing.assert_array_equal(result.build_positions, [0, 1, 2])

    def test_walkout_order_is_distance_order(self):
        """k=3 around 115 over [100, 110, 120, 140]: 110 (d=5, left tie),
        then 120 (d=5), then 100 (d=15)."""
        keys = np.asarray([100, 110, 120, 140], dtype=np.uint64)
        index = build_index(RadixSplineIndex, keys)
        result = KNNJoin(index, 3).join(np.asarray([115], dtype=np.uint64))
        np.testing.assert_array_equal(result.build_positions, [1, 2, 0])

    def test_windowed_tie_break_identical(self):
        keys = np.asarray([110, 120], dtype=np.uint64)
        index = build_index(RadixSplineIndex, keys)
        join = WindowedKNNJoin(index, small_partitioner(), 1, window_bytes=64)
        result = join.join(np.asarray([115], dtype=np.uint64))
        np.testing.assert_array_equal(result.build_positions, [0])


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestDomainBoundaries:
    def test_probe_at_zero_saturates_low(self, index_cls):
        keys = np.asarray([0, 5, 2**40], dtype=np.uint64)
        index = build_index(index_cls, keys)
        result = BandJoin(index, 7).join(np.asarray([0], dtype=np.uint64))
        # 0 - 7 saturates to 0; matches are keys in [0, 7] = {0, 5}.
        np.testing.assert_array_equal(
            result.canonical().build_positions, [0, 1]
        )

    def test_probe_at_max_saturates_high(self, index_cls):
        keys = np.asarray(
            [17, MAX_KEY - np.uint64(4), MAX_KEY], dtype=np.uint64
        )
        index = build_index(index_cls, keys)
        result = BandJoin(index, 9).join(np.asarray([MAX_KEY], dtype=np.uint64))
        # MAX + 9 saturates to MAX; matches are keys in [MAX-9, MAX].
        np.testing.assert_array_equal(
            result.canonical().build_positions, [1, 2]
        )

    def test_empty_spans_outside_domain(self, index_cls):
        keys = np.asarray([2**32, 2**32 + 100], dtype=np.uint64)
        index = build_index(index_cls, keys)
        probes = np.asarray([0, 1000, MAX_KEY - np.uint64(5)], dtype=np.uint64)
        result = BandJoin(index, 3).join(probes)
        assert len(result) == 0
        assert result.probe_indices.dtype == np.int64

    def test_saturation_matches_reference(self, index_cls):
        """Overflow regime end to end: keys near 2^64, epsilon crossing
        the wrap line, checked against the bound_positions oracle."""
        keys = np.asarray(
            [MAX_KEY - np.uint64(g) for g in (0, 3, 9, 2**20, 2**33)][::-1],
            dtype=np.uint64,
        )
        index = build_index(index_cls, keys)
        probes = np.asarray(
            [MAX_KEY, MAX_KEY - np.uint64(2), np.uint64(0), np.uint64(2**33)],
            dtype=np.uint64,
        )
        for epsilon in (0, 2, 2**21, 2**63):
            result = BandJoin(index, epsilon).join(probes)
            expected = reference_join(index.column, probes, epsilon=epsilon)
            assert result.equals(expected), (
                f"{index_cls.name} saturation mismatch at epsilon={epsilon}"
            )


class TestSaturatingBandHelper:
    def test_scalar_epsilon_saturates_both_ends(self):
        lo, hi = saturating_band(
            np.asarray([3, MAX_KEY - np.uint64(2)], dtype=np.uint64), 7
        )
        np.testing.assert_array_equal(
            lo, [0, MAX_KEY - np.uint64(9)]
        )
        np.testing.assert_array_equal(hi, [10, MAX_KEY])

    def test_per_key_epsilon_array(self):
        lo, hi = saturating_band(
            np.asarray([100, 100], dtype=np.uint64),
            np.asarray([1, 50], dtype=np.uint64),
        )
        np.testing.assert_array_equal(lo, [99, 50])
        np.testing.assert_array_equal(hi, [101, 150])
