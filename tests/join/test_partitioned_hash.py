"""Radix-partitioned (Grace-style) hash join."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.data.generator import WorkloadConfig, make_workload
from repro.errors import WorkloadError
from repro.hardware.memory import MemorySpace
from repro.hardware.spec import V100_NVLINK2
from repro.join.base import QueryEnvironment, reference_join
from repro.join.hash_join import HashJoin
from repro.join.partitioned_hash import PartitionedHashJoin
from repro.partition.bits import choose_partition_bits
from repro.partition.radix import RadixPartitioner
from repro.units import GIB

SIM = SimulationConfig(probe_sample=2**10)


def make_join(relation, partitions=64):
    bits = choose_partition_bits(relation.column, partitions, ignored_lsb=4)
    return PartitionedHashJoin(relation, RadixPartitioner(bits))


class TestFunctional:
    @pytest.mark.parametrize("match_rate", [1.0, 0.6])
    def test_matches_reference(self, match_rate):
        config = WorkloadConfig(
            r_tuples=2**14, s_tuples=2**11, match_rate=match_rate, seed=8
        )
        relation, probes = make_workload(config)
        join = make_join(relation)
        assert join.join(probes.keys).equals(
            reference_join(relation.column, probes.keys)
        )

    def test_agrees_with_plain_hash_join(self, small_relation, small_probes):
        partitioned = make_join(small_relation).join(small_probes.keys)
        plain = HashJoin(small_relation).join(small_probes.keys)
        assert partitioned.equals(plain)

    def test_empty_probe_side(self, small_relation):
        join = make_join(small_relation)
        assert len(join.join(np.empty(0, dtype=np.uint64))) == 0

    def test_requires_materialized(self, virtual_relation):
        join = make_join(virtual_relation)
        with pytest.raises(WorkloadError):
            join.join(np.array([1], dtype=np.uint64))


class TestEstimate:
    def make_env(self, r_gib):
        workload = WorkloadConfig(r_tuples=int(r_gib * GIB) // 8)
        return QueryEnvironment(V100_NVLINK2, workload, sim=SIM)

    def test_three_stages(self):
        env = self.make_env(2.0)
        cost = make_join(env.relation, partitions=2048).estimate(env)
        assert set(cost.breakdown) >= {"partition S", "partition R", "join"}

    def test_small_r_partitions_in_gpu(self):
        env = self.make_env(2.0)
        make_join(env.relation, partitions=2048).estimate(env)
        partitioned_r = next(
            a for a in env.machine.memory.allocations
            if a.label == "partitioned R"
        )
        assert partitioned_r.space is MemorySpace.DEVICE

    def test_large_r_spills_to_host(self):
        env = self.make_env(48.0)
        make_join(env.relation, partitions=2048).estimate(env)
        partitioned_r = next(
            a for a in env.machine.memory.allocations
            if a.label == "partitioned R"
        )
        assert partitioned_r.space is MemorySpace.HOST

    def test_consumes_memory_equal_to_inputs(self):
        """Section 2.3: "partitioning both inputs consumes additional
        memory equal to the input size"."""
        env = self.make_env(2.0)
        before_device = env.machine.memory.used(MemorySpace.DEVICE)
        make_join(env.relation, partitions=2048).estimate(env)
        extra = env.machine.memory.used(MemorySpace.DEVICE) - before_device
        assert extra >= (env.workload.r_tuples + env.workload.s_tuples) * 16

    def test_detrimental_at_scale(self):
        """Section 2.3: partitioned joins lose to the pipelined joins --
        at out-of-core scale R crosses the interconnect multiple times."""
        env = self.make_env(48.0)
        partitioned = make_join(env.relation, partitions=2048).estimate(env)
        env2 = self.make_env(48.0)
        plain = HashJoin(env2.relation).estimate(env2)
        assert (
            partitioned.queries_per_second < plain.queries_per_second
        )

    def test_interconnect_traffic_multiplied_when_spilling(self):
        env = self.make_env(48.0)
        partitioned = make_join(env.relation, partitions=2048).estimate(env)
        env2 = self.make_env(48.0)
        plain = HashJoin(env2.relation).estimate(env2)
        assert (
            partitioned.counters.scan_bytes > 2.5 * plain.counters.scan_bytes
        )
