"""Join plumbing: results, reference join, environment."""

import numpy as np
import pytest

from repro.data.column import MaterializedColumn
from repro.data.generator import WorkloadConfig
from repro.errors import CapacityError, WorkloadError
from repro.hardware.memory import MemorySpace
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import BPlusTreeIndex, RadixSplineIndex
from repro.join.base import (
    JoinResult,
    QueryEnvironment,
    expand_spans,
    reference_join,
)
from repro.units import GIB


class TestJoinResult:
    def test_equality_ignores_order(self):
        a = JoinResult(
            probe_indices=np.array([2, 0, 1]),
            build_positions=np.array([20, 0, 10]),
        )
        b = JoinResult(
            probe_indices=np.array([0, 1, 2]),
            build_positions=np.array([0, 10, 20]),
        )
        assert a.equals(b)

    def test_inequality(self):
        a = JoinResult(
            probe_indices=np.array([0]), build_positions=np.array([1])
        )
        b = JoinResult(
            probe_indices=np.array([0]), build_positions=np.array([2])
        )
        assert not a.equals(b)

    def test_different_sizes_unequal(self):
        a = JoinResult(
            probe_indices=np.array([0]), build_positions=np.array([1])
        )
        b = JoinResult(
            probe_indices=np.empty(0, dtype=np.int64),
            build_positions=np.empty(0, dtype=np.int64),
        )
        assert not a.equals(b)

    def test_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            JoinResult(
                probe_indices=np.array([0, 1]),
                build_positions=np.array([1]),
            )

    def test_len(self):
        result = JoinResult(
            probe_indices=np.array([0, 1]), build_positions=np.array([5, 6])
        )
        assert len(result) == 2


class TestReferenceJoin:
    def test_matches_found(self, small_relation, small_probes):
        result = reference_join(small_relation.column, small_probes.keys)
        assert len(result) == small_probes.num_matches

    def test_positions_correct(self, small_relation, small_probes):
        result = reference_join(small_relation.column, small_probes.keys)
        expected = small_probes.expected_positions[result.probe_indices]
        assert np.array_equal(result.build_positions, expected)


class TestMultiMatchResults:
    """Regressions for the single-match assumption the non-equi joins
    removed: ``reference_join`` used to compute one ``rank_of`` per probe
    and ``equals`` relied on one pair per probe index, so any multi-match
    result (several R positions per S tuple) compared incorrectly or
    could not be expressed at all."""

    def test_regression_canonical_orders_within_probe(self):
        result = JoinResult(
            probe_indices=np.array([1, 0, 1, 0]),
            build_positions=np.array([9, 4, 2, 7]),
        )
        canonical = result.canonical()
        np.testing.assert_array_equal(canonical.probe_indices, [0, 0, 1, 1])
        np.testing.assert_array_equal(canonical.build_positions, [4, 7, 2, 9])

    def test_regression_equals_is_multiset_equality(self):
        a = JoinResult(
            probe_indices=np.array([0, 0, 1]),
            build_positions=np.array([5, 6, 7]),
        )
        b = JoinResult(
            probe_indices=np.array([1, 0, 0]),
            build_positions=np.array([7, 6, 5]),
        )
        assert a.equals(b)
        # Same probes, different pair multiplicities: NOT equal.  A
        # probe-index lexsort alone (the old single-match comparison)
        # cannot distinguish these reliably.
        c = JoinResult(
            probe_indices=np.array([0, 0, 1]),
            build_positions=np.array([5, 5, 7]),
        )
        assert not a.equals(c)

    def test_sorted_by_probe_is_canonical(self):
        result = JoinResult(
            probe_indices=np.array([2, 1]), build_positions=np.array([0, 3])
        )
        sorted_result = result.sorted_by_probe()
        canonical = result.canonical()
        np.testing.assert_array_equal(
            sorted_result.probe_indices, canonical.probe_indices
        )
        np.testing.assert_array_equal(
            sorted_result.build_positions, canonical.build_positions
        )

    def test_expand_spans_flattens_in_canonical_order(self):
        probe, positions = expand_spans(
            sources=np.array([0, 1, 2]),
            starts=np.array([4, 9, 2]),
            ends=np.array([6, 9, 5]),
        )
        np.testing.assert_array_equal(probe, [0, 0, 2, 2, 2])
        np.testing.assert_array_equal(positions, [4, 5, 2, 3, 4])

    def test_expand_spans_inverted_spans_are_empty(self):
        probe, positions = expand_spans(
            sources=np.array([0, 1]),
            starts=np.array([5, 1]),
            ends=np.array([3, 2]),
        )
        np.testing.assert_array_equal(probe, [1])
        np.testing.assert_array_equal(positions, [1])

    def test_expand_spans_all_empty(self):
        probe, positions = expand_spans(
            sources=np.array([0, 1]),
            starts=np.array([3, 4]),
            ends=np.array([3, 4]),
        )
        assert len(probe) == 0
        assert len(positions) == 0
        assert probe.dtype == np.int64
        assert positions.dtype == np.int64

    def test_regression_reference_join_emits_multi_match(self):
        """The old rank_of formulation returned at most one position per
        probe; with a band width it must emit the whole span."""
        column = MaterializedColumn(
            np.array([10, 20, 30, 40], dtype=np.uint64)
        )
        result = reference_join(
            column, np.array([25], dtype=np.uint64), epsilon=10
        )
        canonical = result.canonical()
        np.testing.assert_array_equal(canonical.probe_indices, [0, 0])
        np.testing.assert_array_equal(canonical.build_positions, [1, 2])

    def test_reference_join_epsilon_zero_unchanged(self):
        """epsilon=0 subsumes the historical equi semantics exactly."""
        column = MaterializedColumn(
            np.array([10, 20, 30], dtype=np.uint64)
        )
        result = reference_join(
            column, np.array([20, 21, 10], dtype=np.uint64)
        )
        canonical = result.canonical()
        np.testing.assert_array_equal(canonical.probe_indices, [0, 2])
        np.testing.assert_array_equal(canonical.build_positions, [1, 0])


class TestQueryEnvironment:
    def test_places_relations_in_host(self, tiny_sim):
        workload = WorkloadConfig(r_tuples=2**12, s_tuples=2**10)
        env = QueryEnvironment(V100_NVLINK2, workload, sim=tiny_sim)
        assert env.relation.allocation.space is MemorySpace.HOST
        assert env.probe_allocation.space is MemorySpace.HOST

    def test_builds_and_places_index(self, tiny_sim):
        workload = WorkloadConfig(r_tuples=2**12, s_tuples=2**10)
        env = QueryEnvironment(
            V100_NVLINK2, workload, index_cls=RadixSplineIndex, sim=tiny_sim
        )
        assert env.index.is_placed

    def test_capacity_error_propagates(self, tiny_sim):
        # A payload-bearing B+tree over 111 GiB exceeds 256 GiB of host
        # memory together with R.
        workload = WorkloadConfig(r_tuples=int(111 * GIB // 8))
        with pytest.raises(CapacityError):
            QueryEnvironment(
                V100_NVLINK2,
                workload,
                index_cls=BPlusTreeIndex,
                sim=tiny_sim,
                index_kwargs={"leaf_payload_bytes": 8},
            )

    def test_sizes(self, tiny_sim):
        workload = WorkloadConfig(r_tuples=2**12, s_tuples=2**10)
        env = QueryEnvironment(V100_NVLINK2, workload, sim=tiny_sim)
        assert env.s_bytes == 2**10 * 8
        assert env.r_bytes == 2**12 * 8

    def test_result_bytes_scale_with_match_rate(self, tiny_sim):
        full = QueryEnvironment(
            V100_NVLINK2, WorkloadConfig(r_tuples=2**12, s_tuples=2**10),
            sim=tiny_sim,
        )
        half = QueryEnvironment(
            V100_NVLINK2,
            WorkloadConfig(r_tuples=2**12, s_tuples=2**10, match_rate=0.5),
            sim=tiny_sim,
        )
        assert half.result_bytes() == full.result_bytes() / 2
