"""Join plumbing: results, reference join, environment."""

import numpy as np
import pytest

from repro.data.generator import WorkloadConfig
from repro.errors import CapacityError, WorkloadError
from repro.hardware.memory import MemorySpace
from repro.hardware.spec import V100_NVLINK2
from repro.indexes import BPlusTreeIndex, RadixSplineIndex
from repro.join.base import JoinResult, QueryEnvironment, reference_join
from repro.units import GIB


class TestJoinResult:
    def test_equality_ignores_order(self):
        a = JoinResult(
            probe_indices=np.array([2, 0, 1]),
            build_positions=np.array([20, 0, 10]),
        )
        b = JoinResult(
            probe_indices=np.array([0, 1, 2]),
            build_positions=np.array([0, 10, 20]),
        )
        assert a.equals(b)

    def test_inequality(self):
        a = JoinResult(
            probe_indices=np.array([0]), build_positions=np.array([1])
        )
        b = JoinResult(
            probe_indices=np.array([0]), build_positions=np.array([2])
        )
        assert not a.equals(b)

    def test_different_sizes_unequal(self):
        a = JoinResult(
            probe_indices=np.array([0]), build_positions=np.array([1])
        )
        b = JoinResult(
            probe_indices=np.empty(0, dtype=np.int64),
            build_positions=np.empty(0, dtype=np.int64),
        )
        assert not a.equals(b)

    def test_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            JoinResult(
                probe_indices=np.array([0, 1]),
                build_positions=np.array([1]),
            )

    def test_len(self):
        result = JoinResult(
            probe_indices=np.array([0, 1]), build_positions=np.array([5, 6])
        )
        assert len(result) == 2


class TestReferenceJoin:
    def test_matches_found(self, small_relation, small_probes):
        result = reference_join(small_relation.column, small_probes.keys)
        assert len(result) == small_probes.num_matches

    def test_positions_correct(self, small_relation, small_probes):
        result = reference_join(small_relation.column, small_probes.keys)
        expected = small_probes.expected_positions[result.probe_indices]
        assert np.array_equal(result.build_positions, expected)


class TestQueryEnvironment:
    def test_places_relations_in_host(self, tiny_sim):
        workload = WorkloadConfig(r_tuples=2**12, s_tuples=2**10)
        env = QueryEnvironment(V100_NVLINK2, workload, sim=tiny_sim)
        assert env.relation.allocation.space is MemorySpace.HOST
        assert env.probe_allocation.space is MemorySpace.HOST

    def test_builds_and_places_index(self, tiny_sim):
        workload = WorkloadConfig(r_tuples=2**12, s_tuples=2**10)
        env = QueryEnvironment(
            V100_NVLINK2, workload, index_cls=RadixSplineIndex, sim=tiny_sim
        )
        assert env.index.is_placed

    def test_capacity_error_propagates(self, tiny_sim):
        # A payload-bearing B+tree over 111 GiB exceeds 256 GiB of host
        # memory together with R.
        workload = WorkloadConfig(r_tuples=int(111 * GIB // 8))
        with pytest.raises(CapacityError):
            QueryEnvironment(
                V100_NVLINK2,
                workload,
                index_cls=BPlusTreeIndex,
                sim=tiny_sim,
                index_kwargs={"leaf_payload_bytes": 8},
            )

    def test_sizes(self, tiny_sim):
        workload = WorkloadConfig(r_tuples=2**12, s_tuples=2**10)
        env = QueryEnvironment(V100_NVLINK2, workload, sim=tiny_sim)
        assert env.s_bytes == 2**10 * 8
        assert env.r_bytes == 2**12 * 8

    def test_result_bytes_scale_with_match_rate(self, tiny_sim):
        full = QueryEnvironment(
            V100_NVLINK2, WorkloadConfig(r_tuples=2**12, s_tuples=2**10),
            sim=tiny_sim,
        )
        half = QueryEnvironment(
            V100_NVLINK2,
            WorkloadConfig(r_tuples=2**12, s_tuples=2**10, match_rate=0.5),
            sim=tiny_sim,
        )
        assert half.result_bytes() == full.result_bytes() / 2
