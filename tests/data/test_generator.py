"""Workload generators."""

import numpy as np
import pytest

from repro.data.generator import (
    ProbeSet,
    WorkloadConfig,
    make_build_relation,
    make_ordered_probe_sample,
    make_probe_keys,
    make_workload,
)
from repro.errors import WorkloadError


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        config = WorkloadConfig(r_tuples=2**30)
        assert config.s_tuples == 2**26
        assert config.match_rate == 1.0
        assert config.zipf_theta == 0.0

    def test_selectivity(self):
        config = WorkloadConfig(r_tuples=2**28, s_tuples=2**26)
        assert config.join_selectivity == pytest.approx(0.25)

    def test_selectivity_capped(self):
        config = WorkloadConfig(r_tuples=2**10, s_tuples=2**26)
        assert config.join_selectivity == 1.0

    def test_paper_crossover_selectivities(self):
        # 8.0% at 6.2 GiB and 3.6% at 13.9 GiB (Section 5.2.3).
        gib = 2**30
        at_6_2 = WorkloadConfig(r_tuples=int(6.2 * gib / 8))
        at_13_9 = WorkloadConfig(r_tuples=int(13.9 * gib / 8))
        assert at_6_2.join_selectivity == pytest.approx(0.080, abs=0.002)
        assert at_13_9.join_selectivity == pytest.approx(0.036, abs=0.002)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(r_tuples=0),
            dict(r_tuples=10, s_tuples=0),
            dict(r_tuples=10, match_rate=1.5),
            dict(r_tuples=10, match_rate=-0.1),
            dict(r_tuples=10, zipf_theta=-1),
            dict(r_tuples=10, match_rate=0.5, stride=2),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadConfig(**kwargs)


class TestBuildRelation:
    def test_unique_sorted_keys(self):
        config = WorkloadConfig(r_tuples=2**12, seed=1)
        relation = make_build_relation(config)
        keys = relation.column.key_at(np.arange(2**12))
        assert np.all(keys[:-1] < keys[1:])

    def test_named_r(self):
        relation = make_build_relation(WorkloadConfig(r_tuples=16))
        assert relation.name == "R"


class TestProbeKeys:
    def test_all_match_at_rate_one(self):
        config = WorkloadConfig(r_tuples=2**12, seed=2)
        relation, probes = make_workload(config, probe_count=512)
        assert probes.num_matches == 512
        looked_up = relation.column.rank_of(probes.keys)
        assert np.array_equal(looked_up, probes.expected_positions)

    def test_match_rate_honored(self):
        config = WorkloadConfig(r_tuples=2**14, match_rate=0.5, seed=3)
        relation, probes = make_workload(config, probe_count=4096)
        fraction = probes.num_matches / len(probes)
        assert fraction == pytest.approx(0.5, abs=0.05)

    def test_non_matching_keys_absent_from_r(self):
        config = WorkloadConfig(r_tuples=2**14, match_rate=0.5, seed=3)
        relation, probes = make_workload(config, probe_count=4096)
        misses = probes.expected_positions < 0
        assert np.all(relation.column.rank_of(probes.keys[misses]) == -1)

    def test_reproducible(self):
        config = WorkloadConfig(r_tuples=2**12, seed=9)
        relation = make_build_relation(config)
        a = make_probe_keys(relation.column, config, count=256)
        b = make_probe_keys(relation.column, config, count=256)
        assert np.array_equal(a.keys, b.keys)

    def test_zipf_probes_repeat_hot_keys(self):
        config = WorkloadConfig(r_tuples=2**16, zipf_theta=1.5, seed=4)
        relation = make_build_relation(config)
        probes = make_probe_keys(relation.column, config, count=4096)
        __, counts = np.unique(probes.keys, return_counts=True)
        assert counts.max() > 50  # a hot key dominates

    def test_uniform_probes_rarely_repeat(self):
        config = WorkloadConfig(r_tuples=2**20, seed=4)
        relation = make_build_relation(config)
        probes = make_probe_keys(relation.column, config, count=4096)
        __, counts = np.unique(probes.keys, return_counts=True)
        assert counts.max() <= 3

    def test_rejects_zero_count(self):
        config = WorkloadConfig(r_tuples=2**12)
        relation = make_build_relation(config)
        with pytest.raises(WorkloadError):
            make_probe_keys(relation.column, config, count=0)


class TestProbeSet:
    def test_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            ProbeSet(
                keys=np.zeros(3, dtype=np.uint64),
                expected_positions=np.zeros(2, dtype=np.int64),
            )


class TestOrderedSample:
    def test_sorted_by_key(self):
        config = WorkloadConfig(r_tuples=2**20, seed=5)
        relation = make_build_relation(config)
        sample = make_ordered_probe_sample(
            relation.column, config, window_tuples=2**16, count=2**10
        )
        assert np.all(sample.keys[:-1] <= sample.keys[1:])

    def test_density_preserved(self):
        """Sample spacing must match |R| / W, not |R| / count."""
        config = WorkloadConfig(r_tuples=2**20, seed=5)
        relation = make_build_relation(config)
        window = 2**16
        count = 2**10
        sample = make_ordered_probe_sample(
            relation.column, config, window_tuples=window, count=count
        )
        covered = int(sample.expected_positions.max())
        expected_segment = config.r_tuples * count / window
        assert covered == pytest.approx(expected_segment, rel=0.2)

    def test_zipf_sample_repeats_like_a_real_window(self):
        config = WorkloadConfig(r_tuples=2**20, zipf_theta=1.25, seed=5)
        relation = make_build_relation(config)
        sample = make_ordered_probe_sample(
            relation.column, config, window_tuples=2**18, count=2**10
        )
        __, counts = np.unique(sample.keys, return_counts=True)
        assert counts.max() > 5  # hot keys duplicated within the window

    def test_count_clamped_to_window(self):
        config = WorkloadConfig(r_tuples=2**16, seed=5)
        relation = make_build_relation(config)
        sample = make_ordered_probe_sample(
            relation.column, config, window_tuples=64, count=2**12
        )
        assert len(sample) <= 4 * 64

    def test_expected_positions_correct(self):
        config = WorkloadConfig(r_tuples=2**16, seed=6)
        relation = make_build_relation(config)
        sample = make_ordered_probe_sample(
            relation.column, config, window_tuples=2**12, count=2**8
        )
        assert np.array_equal(
            relation.column.rank_of(sample.keys), sample.expected_positions
        )

    def test_rejects_bad_inputs(self):
        config = WorkloadConfig(r_tuples=2**12)
        relation = make_build_relation(config)
        with pytest.raises(WorkloadError):
            make_ordered_probe_sample(
                relation.column, config, window_tuples=0, count=10
            )
        with pytest.raises(WorkloadError):
            make_ordered_probe_sample(
                relation.column, config, window_tuples=10, count=0
            )
