"""Bounded Zipf sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.zipf import zipf_cdf, zipf_sample, zipf_sum_p2, zipf_top_mass
from repro.errors import WorkloadError


class TestCdf:
    def test_monotone(self):
        ranks = np.arange(1000)
        cdf = zipf_cdf(ranks, n=1000, theta=1.0)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_bounded(self):
        cdf = zipf_cdf(np.arange(100), n=100, theta=1.5)
        assert cdf.min() >= 0.0 and cdf.max() <= 1.0

    def test_uniform_case(self):
        cdf = zipf_cdf(np.array([49]), n=100, theta=0.0)
        assert cdf[0] == pytest.approx(0.5)

    def test_skew_concentrates_mass(self):
        light = zipf_cdf(np.array([9]), n=10_000, theta=0.5)[0]
        heavy = zipf_cdf(np.array([9]), n=10_000, theta=1.5)[0]
        assert heavy > light

    def test_rejects_bad_inputs(self):
        with pytest.raises(WorkloadError):
            zipf_cdf(np.array([0]), n=0, theta=1.0)
        with pytest.raises(WorkloadError):
            zipf_cdf(np.array([0]), n=10, theta=-1.0)


class TestSample:
    def test_bounds(self, rng):
        ranks = zipf_sample(rng, n=1000, theta=1.2, size=10_000)
        assert ranks.min() >= 0 and ranks.max() < 1000

    def test_theta_zero_is_uniform(self, rng):
        ranks = zipf_sample(rng, n=100, theta=0.0, size=100_000)
        counts = np.bincount(ranks, minlength=100)
        assert counts.std() / counts.mean() < 0.1

    def test_hot_rank_dominates_at_high_theta(self, rng):
        ranks = zipf_sample(rng, n=2**20, theta=1.75, size=50_000)
        hottest_share = np.mean(ranks == 0)
        # Bounded Zipf(1.75) gives rank 0 roughly 40% of the mass.
        assert hottest_share > 0.25

    def test_matches_cdf(self, rng):
        n, theta = 10_000, 1.0
        ranks = zipf_sample(rng, n=n, theta=theta, size=200_000)
        for quantile_rank in (10, 100, 1000):
            empirical = np.mean(ranks <= quantile_rank)
            analytic = zipf_cdf(np.array([quantile_rank]), n, theta)[0]
            assert empirical == pytest.approx(analytic, abs=0.05)

    def test_empty(self, rng):
        assert len(zipf_sample(rng, n=10, theta=1.0, size=0)) == 0

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(WorkloadError):
            zipf_sample(rng, n=0, theta=1.0, size=1)
        with pytest.raises(WorkloadError):
            zipf_sample(rng, n=10, theta=-0.1, size=1)
        with pytest.raises(WorkloadError):
            zipf_sample(rng, n=10, theta=1.0, size=-1)


class TestCollisionMass:
    def test_uniform(self):
        assert zipf_sum_p2(100, 0.0) == pytest.approx(0.01)

    def test_increases_with_skew(self):
        masses = [zipf_sum_p2(2**26, theta) for theta in (0.0, 0.5, 1.0, 1.75)]
        assert masses == sorted(masses)

    def test_heavy_skew_order_of_magnitude(self):
        # At theta=1.75, the hottest key alone carries ~0.39 of the mass,
        # so sum p^2 must be at least ~0.15.
        assert zipf_sum_p2(2**26, 1.75) > 0.1

    def test_rejects_bad_inputs(self):
        with pytest.raises(WorkloadError):
            zipf_sum_p2(0, 1.0)
        with pytest.raises(WorkloadError):
            zipf_sum_p2(10, -1.0)


class TestTopMass:
    def test_zero_top(self):
        assert zipf_top_mass(100, 1.0, 0) == 0.0

    def test_full_top(self):
        assert zipf_top_mass(100, 1.0, 100) == pytest.approx(1.0, abs=0.01)

    def test_paper_l1_hot_set(self):
        # The paper computes a 69% L1 hit chance at exponent 1.0
        # (Section 5.2.2); an L1-sized hot set over R's domain should
        # carry a comparable mass.
        l1_keys = 128 * 1024 // 8
        mass = zipf_top_mass(int(100 * 2**30 / 8), 1.0, l1_keys)
        assert 0.3 < mass < 0.9


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10**6),
    theta=st.floats(min_value=0.0, max_value=2.0),
)
def test_cdf_endpoints(n, theta):
    cdf = zipf_cdf(np.array([0, n - 1]), n=n, theta=theta)
    assert 0.0 < cdf[0] <= 1.0
    assert cdf[1] == pytest.approx(1.0, abs=0.02)
