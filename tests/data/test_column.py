"""Key columns: materialized and virtual."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.column import (
    MaterializedColumn,
    VirtualSortedColumn,
    make_column,
)
from repro.errors import ConfigurationError, WorkloadError


class TestMaterializedColumn:
    def test_basic(self):
        column = MaterializedColumn(np.array([1, 5, 9], dtype=np.uint64))
        assert len(column) == 3
        assert column.nbytes == 24
        assert column.min_key == 1
        assert column.max_key == 9

    def test_key_at(self):
        column = MaterializedColumn(np.array([1, 5, 9], dtype=np.uint64))
        assert column.key_at(np.array([0, 2])).tolist() == [1, 9]

    def test_rank_of_members(self):
        column = MaterializedColumn(np.array([1, 5, 9], dtype=np.uint64))
        assert column.rank_of(np.array([5, 1, 9])).tolist() == [1, 0, 2]

    def test_rank_of_non_members(self):
        column = MaterializedColumn(np.array([1, 5, 9], dtype=np.uint64))
        assert column.rank_of(np.array([0, 4, 10])).tolist() == [-1, -1, -1]

    def test_hint_is_exact(self):
        column = MaterializedColumn(np.array([1, 5, 9], dtype=np.uint64))
        assert column.hint_error_bound() == 0
        assert column.lower_bound_hint(np.array([6]))[0] == 2

    def test_min_gap(self):
        column = MaterializedColumn(np.array([0, 2, 10], dtype=np.uint64))
        assert column.min_gap == 2

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            MaterializedColumn(np.array([3, 1, 2], dtype=np.uint64))

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            MaterializedColumn(np.array([1, 1, 2], dtype=np.uint64))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            MaterializedColumn(np.array([], dtype=np.uint64))

    def test_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            MaterializedColumn(np.zeros((2, 2), dtype=np.uint64))

    def test_keys_view_readonly(self):
        column = MaterializedColumn(np.array([1, 2], dtype=np.uint64))
        with pytest.raises(ValueError):
            column.keys[0] = 0


class TestVirtualSortedColumn:
    def test_deterministic(self):
        a = VirtualSortedColumn(1000, stride=4, seed=7)
        b = VirtualSortedColumn(1000, stride=4, seed=7)
        positions = np.arange(1000)
        assert np.array_equal(a.key_at(positions), b.key_at(positions))

    def test_seed_changes_keys(self):
        a = VirtualSortedColumn(1000, stride=4, seed=7)
        b = VirtualSortedColumn(1000, stride=4, seed=8)
        positions = np.arange(1000)
        assert not np.array_equal(a.key_at(positions), b.key_at(positions))

    def test_strictly_increasing_full_scan(self):
        column = VirtualSortedColumn(10_000, stride=4, seed=3)
        keys = column.key_at(np.arange(10_000))
        assert np.all(keys[:-1] < keys[1:])

    def test_min_gap_two_for_stride_four(self):
        column = VirtualSortedColumn(10_000, stride=4, seed=3)
        keys = column.key_at(np.arange(10_000))
        gaps = keys[1:] - keys[:-1]
        assert gaps.min() >= 2
        assert column.min_gap == 2

    def test_key_plus_one_never_member(self):
        column = VirtualSortedColumn(10_000, stride=4, seed=3)
        keys = column.key_at(np.arange(10_000)) + np.uint64(1)
        assert np.all(column.rank_of(keys) == -1)

    def test_rank_of_roundtrip(self):
        column = VirtualSortedColumn(10_000, stride=4, seed=3)
        positions = np.array([0, 17, 9_999])
        assert np.array_equal(
            column.rank_of(column.key_at(positions)), positions
        )

    def test_rank_of_out_of_domain(self):
        column = VirtualSortedColumn(100, stride=4, offset=1000)
        assert column.rank_of(np.array([0, 999, 10**9]))[0] == -1

    def test_hint_within_bound(self):
        column = VirtualSortedColumn(10_000, stride=4, seed=3)
        positions = np.arange(10_000)
        hints = column.lower_bound_hint(column.key_at(positions))
        assert np.all(np.abs(hints - positions) <= column.hint_error_bound())

    def test_offset(self):
        column = VirtualSortedColumn(10, stride=4, offset=100)
        assert column.min_key >= 100

    def test_dense_stride_one(self):
        column = VirtualSortedColumn(100, stride=1)
        assert column.key_at(np.arange(100)).tolist() == list(range(100))

    def test_positions_out_of_range_rejected(self):
        column = VirtualSortedColumn(10)
        with pytest.raises(ConfigurationError):
            column.key_at(np.array([10]))
        with pytest.raises(ConfigurationError):
            column.key_at(np.array([-1]))

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            VirtualSortedColumn(0)
        with pytest.raises(ConfigurationError):
            VirtualSortedColumn(10, stride=0)
        with pytest.raises(ConfigurationError):
            VirtualSortedColumn(10, offset=-1)

    def test_rejects_domain_overflow(self):
        with pytest.raises(ConfigurationError):
            VirtualSortedColumn(2**61, stride=8)

    def test_validate_sample(self, rng):
        VirtualSortedColumn(10_000, stride=4).validate_sample(rng)

    def test_sample_positions(self, rng):
        column = VirtualSortedColumn(1000)
        positions = column.sample_positions(rng, 100)
        assert len(positions) == 100
        assert positions.min() >= 0 and positions.max() < 1000

    def test_sample_positions_rejects_negative(self, rng):
        with pytest.raises(WorkloadError):
            VirtualSortedColumn(10).sample_positions(rng, -1)

    def test_paper_scale_footprint(self):
        column = VirtualSortedColumn(num_keys=int(2**33.9))
        assert column.nbytes > 119 * 2**30  # ~120 GiB, nothing allocated


class TestMakeColumn:
    def test_small_materializes(self):
        column = make_column(1000, materialize_threshold=2**20)
        assert isinstance(column, MaterializedColumn)

    def test_large_stays_virtual(self):
        column = make_column(2**21, materialize_threshold=2**20)
        assert isinstance(column, VirtualSortedColumn)

    def test_same_keys_either_way(self):
        virtual = make_column(5000, materialize_threshold=0)
        materialized = make_column(5000, materialize_threshold=10_000)
        positions = np.arange(5000)
        assert np.array_equal(
            virtual.key_at(positions), materialized.key_at(positions)
        )


@settings(max_examples=40, deadline=None)
@given(
    num_keys=st.integers(min_value=1, max_value=5000),
    stride=st.integers(min_value=1, max_value=64),
    offset=st.integers(min_value=0, max_value=10**6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_virtual_column_properties(num_keys, stride, offset, seed):
    """Monotone keys, exact rank recovery, bounded hints -- any params."""
    column = VirtualSortedColumn(
        num_keys, stride=stride, offset=offset, seed=seed
    )
    positions = np.arange(num_keys, dtype=np.int64)
    keys = column.key_at(positions)
    if num_keys > 1:
        assert np.all(keys[:-1] < keys[1:])
    assert np.array_equal(column.rank_of(keys), positions)
    hints = column.lower_bound_hint(keys)
    assert np.all(np.abs(hints - positions) <= column.hint_error_bound())
