"""Relations and their simulated placement."""

import numpy as np
import pytest

from repro.data.column import MaterializedColumn
from repro.data.relation import Relation
from repro.errors import SimulationError
from repro.hardware.memory import MemorySpace, SystemMemory
from repro.hardware.spec import V100_NVLINK2
from repro.units import KEY_BYTES


@pytest.fixture
def relation():
    keys = np.arange(0, 400, 4, dtype=np.uint64)
    return Relation(name="R", column=MaterializedColumn(keys))


@pytest.fixture
def memory():
    return SystemMemory(V100_NVLINK2)


class TestRelation:
    def test_sizes(self, relation):
        assert relation.num_tuples == 100
        assert relation.nbytes == 100 * KEY_BYTES

    def test_place_host(self, relation, memory):
        allocation = relation.place(memory, MemorySpace.HOST)
        assert allocation.size == relation.nbytes
        assert relation.allocation is allocation

    def test_double_place_rejected(self, relation, memory):
        relation.place(memory, MemorySpace.HOST)
        with pytest.raises(SimulationError):
            relation.place(memory, MemorySpace.HOST)

    def test_address_of(self, relation, memory):
        relation.place(memory, MemorySpace.HOST)
        addresses = relation.address_of(np.array([0, 10]))
        assert addresses[0] == relation.allocation.base
        assert addresses[1] == relation.allocation.base + 10 * KEY_BYTES

    def test_address_requires_placement(self, relation):
        with pytest.raises(SimulationError):
            relation.address_of(np.array([0]))

    def test_repr_mentions_name(self, relation):
        assert "R" in repr(relation)
