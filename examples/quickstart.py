"""Quickstart: index a relation, join against it, estimate paper-scale cost.

Runs in a few seconds::

    python examples/quickstart.py

Demonstrates the library's two layers:

1. the functional layer -- real index structures over numpy data, exact
   join results verified against a reference;
2. the simulation layer -- the same operators estimating query throughput
   on the paper's V100 + NVLink 2.0 machine at 48 GiB, where nothing is
   materialized.
"""

import numpy as np

import repro
from repro.units import GIB, MIB, format_bytes, format_throughput


def functional_demo():
    print("=== functional layer: exact joins on real data ===")
    workload = repro.WorkloadConfig(
        r_tuples=2**18, s_tuples=2**12, match_rate=0.9, seed=7
    )
    relation, probes = repro.make_workload(workload)
    reference = repro.reference_join(relation.column, probes.keys)
    print(
        f"R: {relation.num_tuples} sorted unique keys "
        f"({format_bytes(relation.nbytes)}); "
        f"S: {len(probes)} probe keys, {probes.num_matches} with a partner"
    )
    partitioner = repro.RadixPartitioner(
        repro.choose_partition_bits(relation.column, num_partitions=256)
    )
    for index_cls in repro.ALL_INDEX_TYPES:
        index = index_cls(relation)
        join = repro.WindowedINLJ(index, partitioner, window_bytes=32 * 1024)
        result = join.join(probes.keys)
        status = "ok" if result.equals(reference) else "MISMATCH"
        print(
            f"  windowed INLJ over {index.name:<13}: "
            f"{len(result)} result pairs, {status} "
            f"(index height {index.height}, "
            f"footprint {format_bytes(index.footprint_bytes)})"
        )


def simulated_demo():
    print()
    print("=== simulation layer: the paper's machine at 48 GiB ===")
    workload = repro.WorkloadConfig(r_tuples=int(48 * GIB) // 8)
    sim = repro.SimulationConfig(probe_sample=2**13)
    print(
        f"R: {format_bytes(workload.r_tuples * 8)} in CPU memory, "
        f"S: {format_bytes(workload.s_tuples * 8)}, join selectivity "
        f"{workload.join_selectivity * 100:.1f}%"
    )
    for index_cls in (repro.RadixSplineIndex, repro.HarmoniaIndex):
        env = repro.QueryEnvironment(
            repro.V100_NVLINK2, workload, index_cls=index_cls, sim=sim
        )
        partitioner = repro.RadixPartitioner(
            repro.choose_partition_bits(env.column, 2048, ignored_lsb=4)
        )
        join = repro.WindowedINLJ(env.index, partitioner, window_bytes=32 * MIB)
        cost = join.estimate(env)
        print(
            f"  windowed INLJ over {env.index.name:<13}: "
            f"{format_throughput(cost.queries_per_second)}, "
            f"{format_bytes(cost.counters.remote_bytes)} over NVLink"
        )
    env = repro.QueryEnvironment(repro.V100_NVLINK2, workload, sim=sim)
    cost = repro.HashJoin(env.relation).estimate(env)
    print(
        f"  hash join baseline            : "
        f"{format_throughput(cost.queries_per_second)}, "
        f"{format_bytes(cost.counters.remote_bytes)} over NVLink"
    )


def main():
    functional_demo()
    simulated_demo()


if __name__ == "__main__":
    main()
