"""Hardware what-if: the same query across four CPU-GPU interconnects.

Extends the paper's Fig. 9 (V100/NVLink 2.0 vs A100/PCIe 4.0) with the
other Table 1 machines -- MI250X/Infinity Fabric 3 and GH200/NVLink C2C --
to ask how the index-vs-scan trade-off shifts across hardware generations.

    python examples/hardware_comparison.py
"""

import repro
from repro.units import GB, GIB, MIB, format_throughput

MACHINES = (
    repro.A100_PCIE4,
    repro.MI250X_IF3,
    repro.V100_NVLINK2,
    repro.GH200_C2C,
)
R_GIB = 64
SIM = repro.SimulationConfig(probe_sample=2**13)


def estimate(spec, workload):
    env = repro.QueryEnvironment(
        spec, workload, index_cls=repro.RadixSplineIndex, sim=SIM
    )
    partitioner = repro.RadixPartitioner(
        repro.choose_partition_bits(env.column, 2048, ignored_lsb=4)
    )
    inlj = repro.WindowedINLJ(
        env.index, partitioner, window_bytes=32 * MIB
    ).estimate(env)
    hash_env = repro.QueryEnvironment(spec, workload, sim=SIM)
    hash_cost = repro.HashJoin(hash_env.relation).estimate(hash_env)
    return inlj, hash_cost


def main():
    workload = repro.WorkloadConfig(r_tuples=int(R_GIB * GIB) // 8)
    print(
        f"Windowed RadixSpline INLJ vs hash join at R = {R_GIB} GiB "
        f"(selectivity {workload.join_selectivity * 100:.1f}%)\n"
    )
    header = (
        f"{'machine':<34} | {'link (seq/rand GB/s)':>21} | "
        f"{'INLJ':>10} | {'hash join':>10} | advantage"
    )
    print(header)
    print("-" * len(header))
    for spec in MACHINES:
        inlj, hash_cost = estimate(spec, workload)
        link = spec.interconnect
        random_bw = link.bandwidth_bytes * link.random_efficiency / GB
        advantage = inlj.queries_per_second / hash_cost.queries_per_second
        print(
            f"{spec.name:<34} | "
            f"{link.bandwidth_bytes / GB:>8.0f} / {random_bw:>6.1f}  | "
            f"{format_throughput(inlj.queries_per_second):>10} | "
            f"{format_throughput(hash_cost.queries_per_second):>10} | "
            f"{advantage:5.1f}x"
        )
    print()
    print(
        "Faster interconnects widen the index join's lead: its random "
        "cacheline fetches ride the link's random-access bandwidth, while "
        "the hash join's table scan is capped by CPU memory and its probes "
        "by GPU memory (paper Sections 5.2.3 and 6)."
    )


if __name__ == "__main__":
    main()
