"""Window-size tuning for the windowed-partitioning INLJ.

Section 5.1: "Window size tuning is important to avoid TLB misses.  A
small window takes advantage of hardware caches ...  Conversely, a large
window amortizes TLB misses over more tuples."  This example sweeps the
window size for each index on the paper's machine and reports the pick,
along with the TLB amortization that drives the low end of the curve.

    python examples/window_tuning.py
"""

import repro
from repro.units import GIB, KEY_BYTES, MIB, format_throughput

R_GIB = 100
WINDOW_TUPLES = tuple(2**exp for exp in range(18, 27))
SIM = repro.SimulationConfig(probe_sample=2**13)


def sweep(index_cls):
    """(window MiB, Q/s, translation requests/lookup) per window size."""
    rows = []
    r_tuples = int(R_GIB * GIB) // KEY_BYTES
    workload = repro.WorkloadConfig(r_tuples=r_tuples)
    for tuples in WINDOW_TUPLES:
        env = repro.QueryEnvironment(
            repro.V100_NVLINK2, workload, index_cls=index_cls, sim=SIM
        )
        partitioner = repro.RadixPartitioner(
            repro.choose_partition_bits(env.column, 2048, ignored_lsb=4)
        )
        join = repro.WindowedINLJ(
            env.index, partitioner, window_bytes=tuples * KEY_BYTES
        )
        cost = join.estimate(env)
        rows.append(
            (
                tuples * KEY_BYTES / MIB,
                cost.queries_per_second,
                cost.counters.translation_requests_per_lookup,
            )
        )
    return rows


def main():
    print(f"Window-size tuning at R = {R_GIB} GiB (V100 + NVLink 2.0)\n")
    for index_cls in repro.ALL_INDEX_TYPES:
        rows = sweep(index_cls)
        best = max(rows, key=lambda row: row[1])
        print(f"{index_cls.name}:")
        for mib, throughput, requests in rows:
            marker = "  <- best" if (mib, throughput) == best[:2] else ""
            print(
                f"  {mib:>6.0f} MiB: {format_throughput(throughput):>10}, "
                f"{requests:7.4f} translation requests/lookup{marker}"
            )
        spread = max(r[1] for r in rows) / min(r[1] for r in rows)
        print(f"  spread across the sweep: {spread:.2f}x\n")
    print(
        "Small windows pay one page sweep per window (higher request "
        "rates on the left); the paper finds 4-52 MiB windows already "
        "saturate the benefit (Section 5.2.1)."
    )


if __name__ == "__main__":
    main()
