"""Selective analytical joins: choosing an access path like the paper does.

The paper's workload "is inspired by queries such as TPC-H Q4 and Q12,
which have a large input to a single join with a low join selectivity"
(Section 3.2).  Think of ORDERS joined to a small filtered LINEITEM batch:
the bigger the fact table relative to the probe batch, the lower the
selectivity, and the stronger the case for an index join over a full scan.

This example plays a query optimizer: it sweeps the fact-table size,
estimates every access path on the paper's V100 machine, and prints the
plan choice with the crossover -- reproducing Section 6's guidance that an
out-of-core INLJ wins below ~8% selectivity.

    python examples/selective_join.py
"""

import repro
from repro.units import GIB, MIB, format_throughput

FACT_TABLE_SIZES_GIB = (2, 4, 8, 16, 32, 64, 100)
SIM = repro.SimulationConfig(probe_sample=2**13)


def estimate_paths(workload):
    """Estimate each access path; returns {plan name: QueryCost}."""
    paths = {}
    env = repro.QueryEnvironment(
        repro.V100_NVLINK2, workload, index_cls=repro.RadixSplineIndex, sim=SIM
    )
    partitioner = repro.RadixPartitioner(
        repro.choose_partition_bits(env.column, 2048, ignored_lsb=4)
    )
    paths["index join (RadixSpline, windowed)"] = repro.WindowedINLJ(
        env.index, partitioner, window_bytes=32 * MIB
    ).estimate(env)
    hash_env = repro.QueryEnvironment(repro.V100_NVLINK2, workload, sim=SIM)
    paths["hash join (full table scan)"] = repro.HashJoin(
        hash_env.relation
    ).estimate(hash_env)
    return paths


def main():
    print("Plan choice for a selective join (V100 + NVLink 2.0)")
    print(f"probe batch fixed at 2^26 tuples (512 MiB), fact table scaled:\n")
    header = (
        f"{'fact table':>11} | {'selectivity':>11} | "
        f"{'index join':>12} | {'hash join':>12} | chosen plan"
    )
    print(header)
    print("-" * len(header))
    crossover = None
    for gib in FACT_TABLE_SIZES_GIB:
        workload = repro.WorkloadConfig(r_tuples=int(gib * GIB) // 8)
        paths = estimate_paths(workload)
        index_cost = paths["index join (RadixSpline, windowed)"]
        hash_cost = paths["hash join (full table scan)"]
        index_wins = (
            index_cost.queries_per_second > hash_cost.queries_per_second
        )
        if index_wins and crossover is None:
            crossover = gib
        chosen = "index join" if index_wins else "hash join"
        print(
            f"{gib:>8} GiB | {workload.join_selectivity * 100:>10.1f}% | "
            f"{format_throughput(index_cost.queries_per_second):>12} | "
            f"{format_throughput(hash_cost.queries_per_second):>12} | {chosen}"
        )
    print()
    if crossover is not None:
        selectivity = 2**26 / (crossover * GIB / 8) * 100
        print(
            f"The index join takes over near {crossover} GiB "
            f"(selectivity ~{selectivity:.1f}%); the paper reports the "
            "crossover at 6.2 GiB (8.0%) on this machine."
        )


if __name__ == "__main__":
    main()
