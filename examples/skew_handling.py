"""Skew handling: why the windowed INLJ survives what kills the hash join.

Reproduces the scenario of the paper's Section 5.2.2 as an application
story: a click-stream fact table whose foreign keys follow a Zipf
distribution (a few viral items get most events).  The multi-value hash
table degenerates -- duplicate hot keys grow probe chains quadratically --
while the windowed INLJ *benefits* from skew, because sorted hot keys hit
the GPU caches.

    python examples/skew_handling.py
"""

import numpy as np

import repro
from repro.data.zipf import zipf_top_mass
from repro.units import GIB, MIB, format_throughput

SIM = repro.SimulationConfig(probe_sample=2**13)
R_GIB = 64
THETAS = (0.0, 0.5, 1.0, 1.5, 1.75)
TEN_HOURS = 10 * 3600.0


def functional_chain_demo():
    """Show the probe-chain degeneration on real (small) data."""
    print("=== hash-table chains on real data (2^14 inserts) ===")
    for theta in (0.0, 1.25):
        rng = np.random.default_rng(5)
        n = 2**18
        if theta > 0:
            from repro.data.zipf import zipf_sample

            ranks = zipf_sample(rng, n, theta, 2**14)
        else:
            ranks = rng.integers(0, n, 2**14)
        table = repro.MultiValueHashTable(expected_keys=2**14)
        table.insert(
            ranks.astype(np.uint64), np.arange(2**14, dtype=np.int64)
        )
        print(
            f"  zipf {theta:>4}: mean insert chain "
            f"{table.mean_insert_probes:8.1f}, longest "
            f"{table.max_insert_probes}"
        )
    print()


def simulated_sweep():
    print(f"=== paper-scale skew sweep (R = {R_GIB} GiB, 32 MiB windows) ===")
    header = (
        f"{'zipf':>5} | {'hot-set share':>13} | "
        f"{'windowed INLJ':>14} | hash join"
    )
    print(header)
    print("-" * len(header))
    r_tuples = int(R_GIB * GIB) // 8
    for theta in THETAS:
        workload = repro.WorkloadConfig(r_tuples=r_tuples, zipf_theta=theta)
        env = repro.QueryEnvironment(
            repro.V100_NVLINK2, workload, index_cls=repro.RadixSplineIndex,
            sim=SIM,
        )
        partitioner = repro.RadixPartitioner(
            repro.choose_partition_bits(env.column, 2048, ignored_lsb=4)
        )
        inlj = repro.WindowedINLJ(
            env.index, partitioner, window_bytes=32 * MIB
        ).estimate(env)
        hash_env = repro.QueryEnvironment(repro.V100_NVLINK2, workload, sim=SIM)
        hash_cost = repro.HashJoin(hash_env.relation).estimate(hash_env)
        if hash_cost.seconds > TEN_HOURS:
            hash_text = f"DNF (> {hash_cost.seconds / 3600:.0f} h)"
        elif hash_cost.seconds > 60:
            hash_text = f"{hash_cost.queries_per_second:.4f} Q/s"
        else:
            hash_text = format_throughput(hash_cost.queries_per_second)
        hot_share = zipf_top_mass(r_tuples, max(theta, 1e-9), 2**14)
        print(
            f"{theta:>5} | {hot_share * 100:>12.1f}% | "
            f"{format_throughput(inlj.queries_per_second):>14} | {hash_text}"
        )
    print()
    print(
        "The paper terminated its skewed hash-join run after 10 hours "
        "(Section 5.2.2); the windowed INLJ instead speeds up once hot "
        "keys start hitting the GPU caches (exponents above 1.0)."
    )


def main():
    functional_chain_demo()
    simulated_sweep()


if __name__ == "__main__":
    main()
