"""repro: reproduction of "Efficiently Indexing Large Data on GPUs with
Fast Interconnects" (Schmeisser, Lutz, Markl -- EDBT 2025).

The library has two coupled layers:

* a **functional layer** -- real index structures (binary search, B+tree,
  Harmonia, RadixSpline), joins (INLJ variants, a WarpCore-style hash
  join), and radix partitioning over numpy data, exact at laptop scale;
* a **simulation layer** -- a discrete cost model of the paper's hardware
  (V100/NVLink 2.0, A100/PCIe 4.0): interconnect, GPU caches, and the GPU
  TLB whose 32 GiB range causes the paper's throughput cliff.  Virtual
  columns let index traversals cover the paper's 0.5-120 GiB relations
  without materializing them.

Quick start::

    import repro

    workload = repro.WorkloadConfig(r_tuples=2**30)
    env = repro.QueryEnvironment(
        repro.V100_NVLINK2, workload, index_cls=repro.RadixSplineIndex
    )
    join = repro.WindowedINLJ(
        env.index, repro.RadixPartitioner(
            repro.choose_partition_bits(env.column, num_partitions=2048)
        ),
    )
    cost = join.estimate(env)
    print(cost.queries_per_second, "Q/s")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .config import DEFAULT_CONFIG, SimulationConfig
from .data import (
    Column,
    MaterializedColumn,
    ProbeSet,
    Relation,
    VirtualSortedColumn,
    WorkloadConfig,
    make_build_relation,
    make_column,
    make_probe_keys,
    make_workload,
)
from .errors import (
    CapacityError,
    ConfigurationError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from .hardware import (
    A100_PCIE4,
    GH200_C2C,
    MI250X_IF3,
    PerfCounters,
    SystemSpec,
    TABLE1_INTERCONNECTS,
    V100_NVLINK2,
)
from .engine import Pipeline, PlanChoice, QueryPlanner
from .indexes import (
    ALL_INDEX_TYPES,
    EXTENSION_INDEX_TYPES,
    BinarySearchIndex,
    BPlusTreeIndex,
    FastTreeIndex,
    HarmoniaIndex,
    Index,
    RadixSplineIndex,
)
from .join import (
    HashJoin,
    IndexNestedLoopJoin,
    JoinResult,
    MultiValueHashTable,
    PartitionedHashJoin,
    PartitionedINLJ,
    QueryEnvironment,
    WindowedINLJ,
    reference_join,
)
from .partition import PartitionBits, RadixPartitioner, choose_partition_bits
from .perf import CostModel, QueryCost, Series
from .serve import (
    ProbeRequest,
    ServeReport,
    ShardedIndexService,
    ShardExecutor,
    ShardPlan,
    fallback_shard,
    range_shard,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SimulationConfig",
    "Column",
    "MaterializedColumn",
    "ProbeSet",
    "Relation",
    "VirtualSortedColumn",
    "WorkloadConfig",
    "make_build_relation",
    "make_column",
    "make_probe_keys",
    "make_workload",
    "CapacityError",
    "ConfigurationError",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "A100_PCIE4",
    "GH200_C2C",
    "MI250X_IF3",
    "PerfCounters",
    "SystemSpec",
    "TABLE1_INTERCONNECTS",
    "V100_NVLINK2",
    "ALL_INDEX_TYPES",
    "EXTENSION_INDEX_TYPES",
    "BinarySearchIndex",
    "BPlusTreeIndex",
    "FastTreeIndex",
    "HarmoniaIndex",
    "Index",
    "RadixSplineIndex",
    "HashJoin",
    "IndexNestedLoopJoin",
    "JoinResult",
    "MultiValueHashTable",
    "PartitionedHashJoin",
    "PartitionedINLJ",
    "QueryEnvironment",
    "WindowedINLJ",
    "reference_join",
    "Pipeline",
    "PlanChoice",
    "QueryPlanner",
    "PartitionBits",
    "RadixPartitioner",
    "choose_partition_bits",
    "CostModel",
    "QueryCost",
    "Series",
    "ProbeRequest",
    "ServeReport",
    "ShardedIndexService",
    "ShardExecutor",
    "ShardPlan",
    "fallback_shard",
    "range_shard",
]
