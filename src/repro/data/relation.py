"""Relations: a named key column plus its simulated placement.

The paper's schema is deliberately minimal -- each relation is a single
8-byte integer column (Section 3.2) -- so a relation here is a column, a
name, and (once placed) an allocation in host or device memory whose
addresses feed the TLB/cache simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import SimulationError
from ..units import KEY_BYTES, format_bytes
from ..hardware.memory import Allocation, MemorySpace, SystemMemory
from .column import Column


@dataclass
class Relation:
    """A base relation over a single key column.

    Attributes:
        name: label, e.g. ``"R"`` or ``"S"``.
        column: the key data (materialized or virtual).
        allocation: where the relation lives once placed; None before
            placement.
    """

    name: str
    column: Column
    allocation: Optional[Allocation] = field(default=None)

    @property
    def num_tuples(self) -> int:
        return len(self.column)

    @property
    def nbytes(self) -> int:
        return self.column.nbytes

    def place(self, memory: SystemMemory, space: MemorySpace) -> Allocation:
        """Reserve simulated memory for this relation.

        Base relations go to host memory (the paper stores R, S, and all
        indexes in CPU memory); join hash tables go to device memory.
        """
        if self.allocation is not None:
            raise SimulationError(
                f"relation '{self.name}' is already placed at "
                f"{self.allocation.base:#x}"
            )
        self.allocation = memory.allocate(
            self.nbytes, space, label=f"relation {self.name}"
        )
        return self.allocation

    def address_of(self, positions: np.ndarray) -> np.ndarray:
        """Byte addresses of tuples at the given positions (vectorized)."""
        if self.allocation is None:
            raise SimulationError(
                f"relation '{self.name}' is not placed in simulated memory"
            )
        positions = np.asarray(positions, dtype=np.int64)
        return self.allocation.base + positions * KEY_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        placed = (
            f"@{self.allocation.base:#x}" if self.allocation is not None else "unplaced"
        )
        return (
            f"Relation({self.name}, {self.num_tuples} tuples, "
            f"{format_bytes(self.nbytes)}, {placed})"
        )
