"""Data layer: key columns, relations, and workload generators.

The paper's dataset (Section 3.2) is two relations of single 8-byte integer
attributes: R holds unique sorted keys (the indexed build side, scaled from
0.5 GiB to 120 GiB) and S holds foreign keys drawn from R (the probe side,
fixed at 2^26 tuples).  Columns come in two flavours:

* :class:`~repro.data.column.MaterializedColumn` -- a real numpy array, used
  for functional correctness at laptop scale;
* :class:`~repro.data.column.VirtualSortedColumn` -- an implicit column whose
  key at any position is computable in O(1), so indexes can traverse 120 GiB
  address spaces without materializing them (see DESIGN.md Section 5).
"""

from .column import (
    Column,
    KEY_DTYPE,
    MaterializedColumn,
    VirtualSortedColumn,
    make_column,
)
from .relation import Relation
from .generator import (
    ProbeSet,
    WorkloadConfig,
    make_build_relation,
    make_probe_keys,
    make_workload,
)
from .zipf import zipf_cdf, zipf_sample, zipf_top_mass

__all__ = [
    "Column",
    "KEY_DTYPE",
    "MaterializedColumn",
    "VirtualSortedColumn",
    "make_column",
    "Relation",
    "ProbeSet",
    "WorkloadConfig",
    "make_build_relation",
    "make_probe_keys",
    "make_workload",
    "zipf_cdf",
    "zipf_sample",
    "zipf_top_mass",
]
