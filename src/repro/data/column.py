"""Sorted key columns: materialized (numpy) and virtual (implicit).

Every index in :mod:`repro.indexes` is built over a :class:`Column`.  The
abstraction exists because the paper scales the indexed relation R to
120 GiB -- far beyond what this environment can materialize.  A
:class:`VirtualSortedColumn` makes the key at position ``i`` a pure O(1)
function of ``i``:

    key(i) = offset + i * stride + noise(i),   noise(i) = hash(i) mod g

with ``g = max(1, stride - 1)`` (``noise == 0`` for stride <= 2).  The
sequence is strictly increasing and, for stride >= 3, has a minimum gap of
2, so ``key + 1`` is never a member -- which is how generators produce
guaranteed non-matching probe keys.  Crucially the rank of any member key is
recoverable in O(1) (``(key - offset) // stride``), so membership tests and
reference join results stay exact at any scale.

Both column kinds expose the same interface; index code never branches on
the concrete type.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import ConfigurationError, WorkloadError
from ..units import KEY_BYTES

#: Dtype of all keys (paper: single 8-byte integer attributes).
KEY_DTYPE = np.uint64

ArrayLike = Union[np.ndarray, int]


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 hash; deterministic and well mixed.

    Used to derive per-position noise for virtual columns.  Operates on
    uint64 with wrap-around, which numpy provides natively.
    """
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


class Column:
    """Interface shared by materialized and virtual sorted key columns.

    A column is an immutable, strictly increasing sequence of uint64 keys.
    """

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Storage footprint of the column (8 bytes per key)."""
        return len(self) * KEY_BYTES

    def key_at(self, positions: ArrayLike) -> np.ndarray:
        """Keys at the given positions (vectorized)."""
        raise NotImplementedError

    def rank_of(self, keys: ArrayLike) -> np.ndarray:
        """Exact positions of the given keys; -1 where a key is absent."""
        raise NotImplementedError

    def lower_bound_hint(self, keys: ArrayLike) -> np.ndarray:
        """Approximate position of each key and a guaranteed error bound.

        Returns an int64 array ``est`` such that the true lower-bound
        position of every key lies within ``[est - error_bound(),
        est + error_bound()]`` clamped to the column.  Learned indexes
        (RadixSpline) build on this for virtual columns.
        """
        raise NotImplementedError

    def hint_error_bound(self) -> int:
        """Error bound accompanying :meth:`lower_bound_hint`."""
        raise NotImplementedError

    def bound_positions(self, keys: ArrayLike, side: str = "left") -> np.ndarray:
        """Vectorized ``searchsorted`` over the column.

        ``side="left"`` returns the first position whose key is ``>=``
        each probe (the lower bound); ``side="right"`` the first whose
        key is ``>`` it.  Both return ``len(self)`` when no such
        position exists.  The generic implementation bisects through
        :meth:`key_at` in O(log n) vectorized rounds so it works for
        virtual columns too; materialized columns override it with a
        direct ``searchsorted``.  This is the ground-truth primitive the
        non-equi join oracles are built on.
        """
        if side not in ("left", "right"):
            raise ConfigurationError(
                f"side must be 'left' or 'right', got {side!r}"
            )
        keys = np.atleast_1d(np.asarray(keys, dtype=KEY_DTYPE))
        n = len(self)
        lo = np.zeros(len(keys), dtype=np.int64)
        hi = np.full(len(keys), n, dtype=np.int64)
        while True:
            active = lo < hi
            if not active.any():
                break
            mid = (lo + hi) >> 1
            # mid < n whenever active, so the masked read never leaves
            # the column.
            mid_keys = self.key_at(np.where(active, mid, 0))
            if side == "left":
                go_right = active & (mid_keys < keys)
            else:
                go_right = active & (mid_keys <= keys)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
        return lo

    @property
    def min_key(self) -> int:
        return int(self.key_at(np.asarray([0]))[0])

    @property
    def max_key(self) -> int:
        return int(self.key_at(np.asarray([len(self) - 1]))[0])

    @property
    def min_gap(self) -> int:
        """Guaranteed minimum difference between adjacent keys."""
        raise NotImplementedError

    def validate_sample(self, rng: np.random.Generator, samples: int = 4096) -> None:
        """Spot-check monotonicity on a random sample of adjacent pairs.

        Full validation of a virtual 2^34-key column is infeasible;
        sampling catches parameterization bugs cheaply.
        """
        n = len(self)
        if n < 2:
            return
        positions = rng.integers(0, n - 1, size=min(samples, n - 1))
        left = self.key_at(positions)
        right = self.key_at(positions + 1)
        if not np.all(left < right):
            raise WorkloadError("column is not strictly increasing")


class MaterializedColumn(Column):
    """A sorted unique key column backed by a real numpy array."""

    def __init__(self, keys: np.ndarray):
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        if keys.ndim != 1:
            raise ConfigurationError(
                f"keys must be one-dimensional, got shape {keys.shape}"
            )
        if len(keys) == 0:
            raise ConfigurationError("a column cannot be empty")
        if len(keys) > 1 and not np.all(keys[:-1] < keys[1:]):
            raise ConfigurationError("keys must be strictly increasing")
        self._keys = keys
        if len(keys) > 1:
            gaps = keys[1:] - keys[:-1]
            self._min_gap = int(gaps.min())
        else:
            self._min_gap = 1

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def keys(self) -> np.ndarray:
        """The backing array (read-only view)."""
        view = self._keys.view()
        view.flags.writeable = False
        return view

    def key_at(self, positions: ArrayLike) -> np.ndarray:
        positions = np.asarray(positions)
        return self._keys[positions]

    def rank_of(self, keys: ArrayLike) -> np.ndarray:
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        positions = np.searchsorted(self._keys, keys).astype(np.int64)
        in_range = positions < len(self._keys)
        found = np.zeros(len(keys), dtype=bool)
        found[in_range] = self._keys[positions[in_range]] == keys[in_range]
        positions[~found] = -1
        return positions

    def lower_bound_hint(self, keys: ArrayLike) -> np.ndarray:
        # A materialized column answers exactly; hint == truth, error 0.
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        return np.searchsorted(self._keys, keys).astype(np.int64)

    def hint_error_bound(self) -> int:
        return 0

    def bound_positions(self, keys: ArrayLike, side: str = "left") -> np.ndarray:
        if side not in ("left", "right"):
            raise ConfigurationError(
                f"side must be 'left' or 'right', got {side!r}"
            )
        keys = np.atleast_1d(np.asarray(keys, dtype=KEY_DTYPE))
        return np.searchsorted(self._keys, keys, side=side).astype(np.int64)

    @property
    def min_gap(self) -> int:
        return self._min_gap


class VirtualSortedColumn(Column):
    """An implicit sorted unique key column of arbitrary size.

    Attributes:
        num_keys: column length (up to 2^34 and beyond).
        stride: average key spacing; keys occupy
            ``[offset, offset + num_keys * stride)``.
        offset: key of position 0 before noise.
        seed: noise stream selector.
    """

    def __init__(
        self,
        num_keys: int,
        stride: int = 4,
        offset: int = 0,
        seed: int = 0,
    ):
        if num_keys <= 0:
            raise ConfigurationError(f"num_keys must be positive, got {num_keys}")
        if stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {stride}")
        if offset < 0:
            raise ConfigurationError(f"offset must be non-negative, got {offset}")
        span = offset + num_keys * stride
        if span >= 2**63:
            raise ConfigurationError(
                f"key domain [{offset}, {span}) exceeds 63 bits"
            )
        self.num_keys = num_keys
        self.stride = stride
        self.offset = offset
        self.seed = seed
        # Noise range keeps the sequence strictly increasing with the
        # largest possible gap floor: noise in [0, stride-2] for stride>=3.
        self._noise_mod = max(1, stride - 1)

    def __len__(self) -> int:
        return self.num_keys

    def _noise(self, positions: np.ndarray) -> np.ndarray:
        if self._noise_mod == 1:
            return np.zeros(len(positions), dtype=KEY_DTYPE)
        seed_mix = np.uint64((self.seed * 0x5851F42D4C957F2D) % 2**64)
        mixed = _splitmix64(positions.astype(np.uint64) ^ seed_mix)
        return mixed % np.uint64(self._noise_mod)

    def key_at(self, positions: ArrayLike) -> np.ndarray:
        positions = np.atleast_1d(np.asarray(positions))
        if positions.size and (
            positions.min() < 0 or positions.max() >= self.num_keys
        ):
            raise ConfigurationError(
                f"positions out of range [0, {self.num_keys})"
            )
        base = (
            np.uint64(self.offset)
            + positions.astype(np.uint64) * np.uint64(self.stride)
        )
        return base + self._noise(positions)

    def rank_of(self, keys: ArrayLike) -> np.ndarray:
        keys = np.atleast_1d(np.asarray(keys, dtype=KEY_DTYPE))
        shifted = keys.astype(np.int64) - np.int64(self.offset)
        candidates = shifted // np.int64(self.stride)
        valid = (candidates >= 0) & (candidates < self.num_keys) & (shifted >= 0)
        result = np.full(len(keys), -1, dtype=np.int64)
        if valid.any():
            cand_valid = candidates[valid]
            actual = self.key_at(cand_valid)
            matches = actual == keys[valid]
            matched_positions = np.where(matches, cand_valid, -1)
            result[valid] = matched_positions
        return result

    def lower_bound_hint(self, keys: ArrayLike) -> np.ndarray:
        keys = np.atleast_1d(np.asarray(keys, dtype=KEY_DTYPE))
        shifted = keys.astype(np.int64) - np.int64(self.offset)
        estimate = shifted // np.int64(self.stride)
        return np.clip(estimate, 0, self.num_keys - 1)

    def hint_error_bound(self) -> int:
        # key(i) lies in [offset + i*stride, offset + i*stride + stride - 2],
        # so (key - offset) // stride recovers i for member keys and is off
        # by at most one position for arbitrary keys in the domain.
        return 1

    @property
    def min_gap(self) -> int:
        if self.stride >= 3:
            return 2
        return self.stride

    def sample_positions(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Uniform random positions, for drawing foreign keys."""
        if count < 0:
            raise WorkloadError(f"sample count must be non-negative, got {count}")
        return rng.integers(0, self.num_keys, size=count, dtype=np.int64)


def make_column(
    num_keys: int,
    materialize_threshold: int = 2**22,
    stride: int = 4,
    seed: int = 0,
) -> Column:
    """Build a column, materializing it when small enough to be cheap.

    Experiments use this helper so that laptop-scale runs exercise the real
    array path and paper-scale runs use the implicit path, with identical
    key sequences (the materialized variant evaluates the same formula).
    """
    virtual = VirtualSortedColumn(num_keys=num_keys, stride=stride, seed=seed)
    if num_keys <= materialize_threshold:
        positions = np.arange(num_keys, dtype=np.int64)
        return MaterializedColumn(virtual.key_at(positions))
    return virtual
