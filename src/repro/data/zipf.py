"""Zipf-distributed rank sampling for skewed probe keys.

The paper's skew experiment (Section 5.2.2) Zipf-distributes the lookup
keys with exponents 0-1.75 over the full key domain of R.  ``numpy``'s
built-in Zipf sampler only supports exponents > 1 and unbounded support,
so we implement bounded Zipf sampling by inverting a continuous
approximation of the CDF -- the standard approach for database workload
generators (e.g. the YCSB ScrambledZipfian ancestor).  For exponent 0 the
distribution degenerates to uniform.

Sampled values are *ranks* in ``[0, n)``; callers map ranks to key-column
positions.  Rank 0 is the hottest item.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError


def _harmonic_approx(n: float, theta: float) -> float:
    """Approximate generalized harmonic number H_{n,theta}.

    Uses the integral approximation ``H ~ (n^(1-theta) - 1) / (1 - theta)
    + 0.5 * (1 + n^-theta)`` which is accurate to well under 1% for the
    n >= 2^20 domains these workloads use.
    """
    if theta == 1.0:
        return float(np.log(n) + 0.577215664901532 + 0.5 / n)
    return float((n ** (1.0 - theta) - 1.0) / (1.0 - theta) + 0.5 * (1.0 + n**-theta))


def zipf_cdf(ranks: np.ndarray, n: int, theta: float) -> np.ndarray:
    """Approximate CDF of the bounded Zipf(theta) distribution at ``ranks``.

    ``ranks`` are 0-based; the returned probabilities are
    ``P[rank <= ranks]``.  Exposed for tests and for analytic cache-hit
    calculations (the paper computes a 69% L1 hit chance at exponent 1.0,
    Section 5.2.2).
    """
    if n <= 0:
        raise WorkloadError(f"domain size must be positive, got {n}")
    if theta < 0:
        raise WorkloadError(f"zipf exponent must be non-negative, got {theta}")
    ranks = np.asarray(ranks, dtype=np.float64)
    if theta == 0.0:
        return np.clip((ranks + 1.0) / n, 0.0, 1.0)
    h_n = _harmonic_approx(float(n), theta)
    shifted = np.maximum(ranks, 0.0) + 1.0
    if abs(theta - 1.0) < 1e-12:
        h_r = np.log(shifted) + 0.577215664901532 + 0.5 / shifted
    else:
        h_r = (shifted ** (1.0 - theta) - 1.0) / (1.0 - theta) + 0.5 * (
            1.0 + shifted**-theta
        )
    h_r = np.where(ranks >= 0, h_r, 0.0)
    return np.clip(h_r / h_n, 0.0, 1.0)


def zipf_sample(
    rng: np.random.Generator, n: int, theta: float, size: int
) -> np.ndarray:
    """Draw ``size`` ranks in ``[0, n)`` from a bounded Zipf(theta).

    Inversion of the continuous CDF approximation: for uniform ``u``,

        rank ~ ((u * ((n+1)^(1-theta) - 1) + 1)^(1/(1-theta))) - 1

    (and ``exp(u * ln(n+1)) - 1`` at theta == 1).  Hot ranks are small.
    """
    if n <= 0:
        raise WorkloadError(f"domain size must be positive, got {n}")
    if size < 0:
        raise WorkloadError(f"sample size must be non-negative, got {size}")
    if theta < 0:
        raise WorkloadError(f"zipf exponent must be non-negative, got {theta}")
    if size == 0:
        return np.empty(0, dtype=np.int64)
    if theta == 0.0:
        return rng.integers(0, n, size=size, dtype=np.int64)
    u = rng.random(size)
    if abs(theta - 1.0) < 1e-9:
        ranks = np.exp(u * np.log(float(n) + 1.0)) - 1.0
    else:
        top = (float(n) + 1.0) ** (1.0 - theta) - 1.0
        ranks = (u * top + 1.0) ** (1.0 / (1.0 - theta)) - 1.0
    # Clip in float space *before* the int cast: theta near 1 can push
    # the inversion past int64, and float->int64 overflow is undefined.
    ranks = np.clip(np.floor(ranks), 0.0, float(n - 1))
    return ranks.astype(np.int64)


def zipf_sum_p2(n: int, theta: float) -> float:
    """Sum of squared probabilities of a bounded Zipf(theta) distribution.

    ``sum_r p_r^2 = H_{n,2*theta} / H_{n,theta}^2``.  This is the collision
    mass driving duplicate-key chain growth in multi-value hash tables
    (paper Section 5.2.2: "the hash join degrades to a long probe chain").
    For theta == 0 it reduces to ``1/n``.
    """
    if n <= 0:
        raise WorkloadError(f"domain size must be positive, got {n}")
    if theta < 0:
        raise WorkloadError(f"zipf exponent must be non-negative, got {theta}")
    if theta == 0.0:
        return 1.0 / n
    h_theta = _harmonic_approx(float(n), theta)
    h_2theta = _harmonic_approx(float(n), 2.0 * theta)
    return h_2theta / (h_theta * h_theta)


def zipf_top_mass(n: int, theta: float, top: int) -> float:
    """Probability mass carried by the ``top`` hottest ranks.

    Used to reason about cache hit rates under skew: with theta = 1 and the
    paper's setup, a small prefix of hot keys carries most accesses.
    """
    if top <= 0:
        return 0.0
    top = min(top, n)
    return float(zipf_cdf(np.asarray([top - 1]), n, theta)[0])
