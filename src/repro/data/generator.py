"""Workload generators matching the paper's Section 3.2.

The workload is "inspired by queries such as TPC-H Q4 and Q12, which have a
large input to a single join with a low join selectivity":

* R: unique sorted 8-byte keys, scaled 2^26-2^33.9 tuples (0.5-120 GiB);
* S: 2^26 foreign keys drawn from R, uniform (Figs. 3-7, 9) or
  Zipf-distributed with exponent 0-1.75 (Fig. 8);
* join selectivity |matching R tuples| / |R| falls as R grows, because S
  and the match rate stay fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_S_TUPLES
from ..errors import WorkloadError
from .column import Column, KEY_DTYPE, make_column
from .relation import Relation
from .zipf import zipf_sample


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one paper-style workload instance.

    Attributes:
        r_tuples: size of the indexed relation R.
        s_tuples: size of the probe relation S (paper default 2^26).
        match_rate: fraction of S tuples that find a join partner
            (the paper fixes it; 1.0 keeps the result size |S|).
        zipf_theta: probe-key skew exponent (0 == uniform; paper Fig. 8
            sweeps 0-1.75).
        stride: average key gap of R's domain (>= 3 guarantees that
            key + 1 is a non-member, which implements match_rate < 1).
        seed: RNG seed; one seed determines R, S, and sampling.
    """

    r_tuples: int
    s_tuples: int = DEFAULT_S_TUPLES
    match_rate: float = 1.0
    zipf_theta: float = 0.0
    stride: int = 4
    seed: int = 42

    def __post_init__(self) -> None:
        if self.r_tuples <= 0:
            raise WorkloadError(f"r_tuples must be positive, got {self.r_tuples}")
        if self.s_tuples <= 0:
            raise WorkloadError(f"s_tuples must be positive, got {self.s_tuples}")
        if not 0.0 <= self.match_rate <= 1.0:
            raise WorkloadError(
                f"match_rate must be in [0, 1], got {self.match_rate}"
            )
        if self.zipf_theta < 0:
            raise WorkloadError(
                f"zipf_theta must be non-negative, got {self.zipf_theta}"
            )
        if self.stride < 3 and self.match_rate < 1.0:
            raise WorkloadError(
                "match_rate < 1 requires stride >= 3 so that non-member "
                f"keys exist between members; got stride {self.stride}"
            )

    @property
    def join_selectivity(self) -> float:
        """Fraction of R tuples with at least one S match (upper bound).

        With |S| uniform draws over |R| positions the expected fraction is
        ``1 - (1 - 1/|R|)^(|S| * match_rate)``; the paper quotes the simpler
        ``|S| / |R|`` ratio (8.0% at 6.2 GiB), which we mirror.
        """
        return min(1.0, self.s_tuples * self.match_rate / self.r_tuples)


def make_build_relation(config: WorkloadConfig) -> Relation:
    """Create R: unique sorted keys, materialized only when small."""
    column = make_column(
        num_keys=config.r_tuples, stride=config.stride, seed=config.seed
    )
    return Relation(name="R", column=column)


def make_probe_keys(
    build_column: Column, config: WorkloadConfig, count: int = None
) -> "ProbeSet":
    """Draw probe keys for S from R's key domain.

    Matching keys are members of R at Zipf- or uniformly-distributed
    positions; non-matching keys are member keys plus one (never members,
    because R's minimum gap is 2 for stride >= 3).

    Args:
        build_column: R's key column.
        config: workload parameters.
        count: number of probe keys to draw (defaults to ``config.s_tuples``;
            simulators pass their sample size).
    """
    if count is None:
        count = config.s_tuples
    if count <= 0:
        raise WorkloadError(f"probe count must be positive, got {count}")
    rng = np.random.default_rng(config.seed + 0x5EED)
    n = len(build_column)
    if config.zipf_theta > 0:
        ranks = zipf_sample(rng, n, config.zipf_theta, count)
        # Scatter hot ranks across the key domain so skew does not
        # accidentally equal spatial locality: rank -> position via a
        # fixed multiplicative permutation (odd multiplier => bijection
        # modulo any n when applied to ranks then reduced).
        positions = (ranks * np.int64(2654435761) + np.int64(config.seed)) % n
    else:
        positions = rng.integers(0, n, size=count, dtype=np.int64)
    keys = build_column.key_at(positions).astype(KEY_DTYPE)
    expected = positions.copy()
    if config.match_rate < 1.0:
        misses = rng.random(count) >= config.match_rate
        keys = keys.copy()
        keys[misses] += KEY_DTYPE(1)
        expected[misses] = -1
    return ProbeSet(keys=keys, expected_positions=expected)


@dataclass(frozen=True)
class ProbeSet:
    """Probe keys plus the ground-truth join partner positions.

    ``expected_positions[i] == -1`` marks a probe with no partner in R.
    Tests and examples use the ground truth to verify every index and join
    implementation end-to-end.
    """

    keys: np.ndarray
    expected_positions: np.ndarray

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.expected_positions):
            raise WorkloadError(
                "keys and expected_positions must have equal length: "
                f"{len(self.keys)} != {len(self.expected_positions)}"
            )

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def num_matches(self) -> int:
        return int(np.count_nonzero(self.expected_positions >= 0))


def make_ordered_probe_sample(
    build_column: Column,
    config: WorkloadConfig,
    window_tuples: int,
    count: int,
) -> ProbeSet:
    """A density-preserving sample of one partition-ordered window.

    Simulating partition-ordered lookups with a thinned global sample
    destroys exactly the locality being measured: sampled neighbours land
    thousands of keys apart instead of ``|R| / W`` apart.  This sampler
    keeps the real window's key density by drawing ``count`` keys from a
    *contiguous prefix* of R sized ``|R| * count / W`` -- the first
    ``count`` keys of a sorted window of ``W`` tuples -- and sorting them
    (the state after radix partitioning, whose partitions cover contiguous
    key ranges).

    Zipf-skewed workloads draw a full window of ranks and keep the tuples
    landing in the sample's key-range segment -- the conditional
    distribution of a contiguous chunk of a partition-ordered window.
    That preserves both the window's key density *and* its per-key
    duplicate counts (a window of 4M Zipf-1.0 tuples repeats its hot keys
    many times; those repeats are exactly the cache locality the skew
    experiment measures).
    """
    if window_tuples <= 0:
        raise WorkloadError(
            f"window_tuples must be positive, got {window_tuples}"
        )
    if count <= 0:
        raise WorkloadError(f"probe count must be positive, got {count}")
    count = min(count, window_tuples)
    rng = np.random.default_rng(config.seed + 0x0D0E)
    n = len(build_column)
    segment = max(1, min(n, round(n * count / window_tuples)))
    if config.zipf_theta > 0:
        from .zipf import zipf_sample

        # Draw the whole window (capped for memory), map ranks to their
        # scattered positions, and keep the segment's share.
        draw = min(window_tuples, 2**24)
        effective_segment = max(1, min(n, round(n * count / draw)))
        ranks = zipf_sample(rng, n, config.zipf_theta, draw)
        all_positions = (
            ranks * np.int64(2654435761) + np.int64(config.seed)
        ) % n
        positions = all_positions[all_positions < effective_segment]
        if len(positions) == 0:
            # Extremely skewed draws can miss the segment; fall back to
            # the hot set itself, which is what such a window contains.
            positions = all_positions[:count]
        elif len(positions) > 4 * count:
            positions = positions[: 4 * count]
    else:
        positions = rng.integers(0, segment, size=count, dtype=np.int64)
    positions.sort()
    keys = build_column.key_at(positions).astype(KEY_DTYPE)
    expected = positions.copy()
    if config.match_rate < 1.0:
        misses = rng.random(count) >= config.match_rate
        keys = keys.copy()
        keys[misses] += KEY_DTYPE(1)
        expected[misses] = -1
    return ProbeSet(keys=keys, expected_positions=expected)


def make_workload(config: WorkloadConfig, probe_count: int = None):
    """Convenience: build R, draw probes, return ``(relation, probes)``."""
    relation = make_build_relation(config)
    probes = make_probe_keys(relation.column, config, count=probe_count)
    return relation, probes
