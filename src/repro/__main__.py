"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments [names...] [--quick] [--workers N]`` -- regenerate the
  paper's tables and figures (same as ``python -m repro.experiments.runner``);
* ``bench [--json FILE] [--compare-reference]`` -- time the standard
  sweeps and record wall clocks plus key counters to a JSON report;
* ``bench2 [--json FILE] [--workers N] [--min-serve-throughput N]`` --
  benchmark the fused probe path: kernel micro-bench, the BENCH_1 sweep
  set through the worker pool, and the serve-bench sweep (BENCH_2.json);
* ``serve-bench [--shards N...] [--window-kib K...] [--zipf T...]
  [--index NAME] [--replicas K] [--replica-indexes NAME...]
  [--chaos-schedule FILE] [--update-fraction F...]
  [--min-compactions N] [--seed S] [--json FILE]`` -- sweep the
  sharded serving layer (simulated clock; output is bit-identical per
  seed), optionally with K replicas per shard, a scripted fault
  schedule, and mixed read/write traffic through the delta tier;
* ``chaos --schedule FILE [--event-log FILE] [--update-fraction F]
  [options]`` -- replay a declarative fault schedule against the
  replicated serving layer and gate on result invariance versus the
  fault-free run, optionally under mixed read/write traffic;
* ``plan --r-gib N [options]`` -- run the access-path planner for one
  workload and print the EXPLAIN output;
* ``obs report [manifests...]`` -- render or diff ``metrics.json``
  observability manifests emitted by ``experiments --trace``;
* ``lint [paths...] [--fail-on-findings] [--format json]`` -- run the
  AST-based invariant checker (determinism, unit, and instrumentation
  rules) over the tree;
* ``info`` -- library, machine-preset, and index overview.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .data.generator import WorkloadConfig
from .errors import ConfigurationError
from .engine.planner import QueryPlanner
from .hardware.spec import A100_PCIE4, GH200_C2C, MI250X_IF3, V100_NVLINK2
from .indexes import ALL_INDEX_TYPES, EXTENSION_INDEX_TYPES
from .units import GB, GIB, format_bytes

MACHINES = {
    "v100": V100_NVLINK2,
    "a100": A100_PCIE4,
    "mi250x": MI250X_IF3,
    "gh200": GH200_C2C,
}


def cmd_info(_args) -> int:
    print(f"repro {__version__} -- reproduction of 'Efficiently Indexing "
          "Large Data on GPUs with Fast Interconnects' (EDBT 2025)")
    print("\nmachine presets:")
    for key, spec in MACHINES.items():
        link = spec.interconnect
        print(
            f"  {key:>7}: {spec.name} "
            f"({link.bandwidth_bytes / GB:.0f} GB/s link, "
            f"{format_bytes(spec.gpu.tlb_range_bytes)} TLB range, "
            f"{format_bytes(spec.cpu.memory_capacity_bytes)} CPU memory)"
        )
    print("\nindex structures:")
    for cls in ALL_INDEX_TYPES + EXTENSION_INDEX_TYPES:
        updates = "updates" if cls.supports_updates else "static"
        extension = (
            " [extension]" if cls in EXTENSION_INDEX_TYPES else ""
        )
        print(f"  {cls.name:>14}: {updates}{extension}")
    print("\nsee DESIGN.md for the system inventory and EXPERIMENTS.md for")
    print("the paper-vs-measured record.")
    return 0


def cmd_experiments(args) -> int:
    from .experiments.runner import policy_from_args, run_report

    report = run_report(
        args.names,
        quick=args.quick,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        policy=policy_from_args(args),
        trace=True if args.trace else None,
        trace_file=args.trace_file,
    )
    return report.exit_code()


def cmd_obs(args) -> int:
    from .obs.report import run_report as obs_run_report

    return obs_run_report(
        args.manifests,
        diff=args.diff,
        fail_on_drift=args.fail_on_drift,
        rel_tol=args.rel_tol,
    )


def cmd_lint(args) -> int:
    from .analysis.cli import run_lint

    return run_lint(args)


def cmd_bench(args) -> int:
    from .experiments.bench import main as bench_main

    bench_main(
        json_path=args.json,
        workers=args.workers,
        compare_reference=args.compare_reference,
    )
    return 0


def cmd_bench2(args) -> int:
    from .experiments.bench2 import main as bench2_main

    return bench2_main(
        json_path=args.json,
        workers=args.workers,
        baseline_path=args.baseline,
        min_serve_throughput=args.min_serve_throughput,
    )


def cmd_serve_bench(args) -> int:
    from .serve.bench import main as serve_bench_main

    payload = serve_bench_main(
        shards=tuple(args.shards),
        window_kib=tuple(args.window_kib),
        zipf_thetas=tuple(args.zipf),
        index=args.index,
        seed=args.seed,
        json_path=args.json,
        workers=args.workers,
        replicas=args.replicas,
        replica_indexes=(
            tuple(args.replica_indexes) if args.replica_indexes else None
        ),
        chaos_schedule=args.chaos_schedule,
        update_fractions=tuple(args.update_fraction),
    )
    if args.min_compactions is not None:
        scheduled = sum(
            len(row["updates"]["compactions"]) for row in payload["sweeps"]
        )
        if scheduled < args.min_compactions:
            print(
                f"error: {scheduled} compactions scheduled across the "
                f"sweep, below the --min-compactions floor of "
                f"{args.min_compactions}",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_chaos(args) -> int:
    from .resilience.chaos import main as chaos_main

    return chaos_main(
        schedule_path=args.schedule,
        shards=args.shards,
        replicas=args.replicas,
        index=args.index,
        replica_indexes=(
            tuple(args.replica_indexes) if args.replica_indexes else None
        ),
        r_tuples=args.r_tuples,
        requests=args.requests,
        request_tuples=args.request_tuples,
        window_kib=args.window_kib,
        seed=args.seed,
        event_log_path=args.event_log,
        update_fraction=args.update_fraction,
    )


def cmd_plan(args) -> int:
    spec = MACHINES[args.machine]
    workload = WorkloadConfig(
        r_tuples=max(1, int(args.r_gib * GIB) // 8),
        zipf_theta=args.zipf,
    )
    planner = QueryPlanner(spec)
    choice = planner.plan(
        workload,
        require_updates=args.require_updates,
        include_variants=args.variants,
    )
    print(
        f"workload: R = {args.r_gib:g} GiB, S = 2^26 tuples, "
        f"selectivity {workload.join_selectivity * 100:.1f}%, "
        f"zipf {args.zipf:g}, machine = {spec.name}"
    )
    print(choice.explain())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("info", help="library overview")

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("names", nargs="*", help="subset to run")
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument(
        "--workers", type=int, default=1,
        help="processes for the standard sweeps (results identical to serial)",
    )
    from .experiments.runner import add_resilience_arguments, add_trace_arguments

    add_resilience_arguments(experiments)
    add_trace_arguments(experiments)

    bench = subparsers.add_parser(
        "bench", help="time the standard sweeps and write a JSON report"
    )
    bench.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the benchmark payload to FILE (e.g. BENCH_1.json)",
    )
    bench.add_argument(
        "--workers", type=int, default=0,
        help="processes for the sweeps (0 = one per CPU core)",
    )
    bench.add_argument(
        "--compare-reference", action="store_true",
        help="also time the OrderedDict reference models for a speedup figure",
    )

    bench2 = subparsers.add_parser(
        "bench2",
        help="benchmark the fused probe path and write BENCH_2.json",
    )
    bench2.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the benchmark payload to FILE (e.g. BENCH_2.json)",
    )
    bench2.add_argument(
        "--workers", type=int, default=0,
        help="sweep processes (0 = one per CPU core)",
    )
    bench2.add_argument(
        "--baseline", default="BENCH_1.json", metavar="FILE",
        help="BENCH_1 payload to compare the sweep wall clock against",
    )
    bench2.add_argument(
        "--min-serve-throughput", type=float, default=None, metavar="N",
        help="fail (exit 1) if the simulated peak serve throughput drops "
        "below N lookups/s (deterministic per seed)",
    )

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="sweep the sharded serving layer and write a BENCH JSON",
    )
    serve_bench.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts to sweep (simulated GPUs)",
    )
    serve_bench.add_argument(
        "--window-kib", type=int, nargs="+", default=[4, 16],
        help="tumbling-window sizes to sweep, in KiB of probe keys",
    )
    serve_bench.add_argument(
        "--zipf", type=float, nargs="+", default=[0.0, 1.0],
        help="probe-key Zipf exponents to sweep",
    )
    serve_bench.add_argument(
        "--index", default="binary-search",
        choices=["binary-search", "btree", "harmonia", "radix-spline"],
        help="index structure built per shard",
    )
    serve_bench.add_argument(
        "--seed", type=int, default=42, help="workload RNG seed"
    )
    serve_bench.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the sweep payload to FILE (e.g. BENCH_serve.json)",
    )
    serve_bench.add_argument(
        "--workers", type=int, default=0,
        help="sweep-point processes (0 = one per CPU core; payload is "
        "bit-identical at any worker count)",
    )
    serve_bench.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per range shard (1 = the unreplicated PR-5 path)",
    )
    serve_bench.add_argument(
        "--replica-indexes", nargs="+", default=None, metavar="NAME",
        choices=["binary-search", "btree", "harmonia", "radix-spline"],
        help="index per replica level (len must equal --replicas); "
        "defaults to --index on every replica",
    )
    serve_bench.add_argument(
        "--chaos-schedule", default=None, metavar="FILE",
        help="replay this chaos schedule (repro-chaos/1 JSON) inside "
        "every sweep point",
    )
    serve_bench.add_argument(
        "--update-fraction", type=float, nargs="+", default=[0.0],
        metavar="F",
        help="update-request fractions to sweep (0.0 = read-only; each "
        "fraction re-runs the sweep with that share of requests as "
        "insert/upsert windows through the delta tier)",
    )
    serve_bench.add_argument(
        "--min-compactions", type=int, default=None, metavar="N",
        help="fail (exit 1) unless at least N priced compactions were "
        "scheduled across the sweep (deterministic per seed)",
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="replay a scripted fault schedule against replicated serving",
    )
    chaos.add_argument(
        "--schedule", required=True, metavar="FILE",
        help="chaos schedule JSON (schema repro-chaos/1)",
    )
    chaos.add_argument("--shards", type=int, default=2)
    chaos.add_argument("--replicas", type=int, default=2)
    chaos.add_argument(
        "--index", default="binary-search",
        choices=["binary-search", "btree", "harmonia", "radix-spline"],
    )
    chaos.add_argument(
        "--replica-indexes", nargs="+", default=None, metavar="NAME",
        choices=["binary-search", "btree", "harmonia", "radix-spline"],
        help="index per replica level (len must equal --replicas)",
    )
    chaos.add_argument("--r-tuples", type=int, default=2**12)
    chaos.add_argument("--requests", type=int, default=16)
    chaos.add_argument("--request-tuples", type=int, default=256)
    chaos.add_argument("--window-kib", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument(
        "--event-log", default=None, metavar="FILE",
        help="write the chaos event-log artifact (timeline + injections)",
    )
    chaos.add_argument(
        "--update-fraction", type=float, default=0.0, metavar="F",
        help="run the schedule under mixed read/write traffic: this "
        "share of requests become update windows through the delta tier",
    )

    obs_parser = subparsers.add_parser(
        "obs", help="observability manifests: render and diff metrics.json"
    )
    obs_subparsers = obs_parser.add_subparsers(dest="obs_command")
    obs_report = obs_subparsers.add_parser(
        "report", help="render one manifest, or diff BASELINE CURRENT"
    )
    from .obs.report import add_report_arguments

    add_report_arguments(obs_report)

    lint = subparsers.add_parser(
        "lint", help="AST-based invariant checks (determinism, units, obs)"
    )
    from .analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    plan = subparsers.add_parser(
        "plan", help="cost-based access-path selection for one workload"
    )
    plan.add_argument("--r-gib", type=float, default=48.0)
    plan.add_argument(
        "--machine", choices=sorted(MACHINES), default="v100"
    )
    plan.add_argument("--zipf", type=float, default=0.0)
    plan.add_argument("--require-updates", action="store_true")
    plan.add_argument(
        "--variants", action="store_true",
        help="also price naive/materializing INLJ variants",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "info":
            return cmd_info(args)
        if args.command == "experiments":
            return cmd_experiments(args)
        if args.command == "bench":
            return cmd_bench(args)
        if args.command == "bench2":
            return cmd_bench2(args)
        if args.command == "serve-bench":
            return cmd_serve_bench(args)
        if args.command == "chaos":
            return cmd_chaos(args)
        if args.command == "lint":
            try:
                return cmd_lint(args)
            except (OSError, ValueError) as error:
                # Unreadable or malformed baseline files, unknown rules.
                print(f"error: {error}", file=sys.stderr)
                return 2
        if args.command == "plan":
            return cmd_plan(args)
        if args.command == "obs":
            if args.obs_command != "report":
                obs_parser.print_help()
                return 1
            try:
                return cmd_obs(args)
            except (OSError, ValueError) as error:
                # Unreadable or malformed manifest files.
                print(f"error: {error}", file=sys.stderr)
                return 2
    except ConfigurationError as error:
        # Bad flags (e.g. --workers 0) are usage errors, not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
