"""Radix partitioning of lookup keys (paper Section 4).

Partitioning the probe keys gives neighbouring GPU threads keys that are
close in R, so index traversals stay within the TLB's reach.
:mod:`repro.partition.bits` picks *which* bits to partition on ("bits
starting at the bit splitting the root node, down to the bit above the
page size", Section 4.2); :mod:`repro.partition.radix` performs the
partitioning and models its cost (the linear allocator-based software
write-combining partitioner of Stehle & Jacobsen [46]).
"""

from .bits import PartitionBits, choose_partition_bits
from .radix import RadixPartitioner

__all__ = ["PartitionBits", "choose_partition_bits", "RadixPartitioner"]
