"""Radix partitioner: functional scatter plus an SWWC cost model.

The paper radix-partitions lookup keys "using the linear allocator-based
software write-combining algorithm [Stehle & Jacobsen], due to its high
performance in GPU memory" with 2048 partitions (Section 4.3.1).  That
algorithm makes two device-memory passes (histogram, then write-combined
scatter); the cost model charges exactly that.

The functional path performs a real histogram + stable scatter, so tests
can verify partition contents and intra-partition stability -- the property
windowed INLJ relies on (tuples of one partition are contiguous, in
arrival order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from ..hardware.counters import PerfCounters
from .bits import PartitionBits


@dataclass
class PartitionOutput:
    """Result of partitioning one batch of keys.

    Attributes:
        keys: keys reordered so each partition is contiguous.
        source_indices: original index of each reordered key (the payload
            the INLJ carries to emit join results).
        offsets: partition start offsets (len = num_partitions + 1).
    """

    keys: np.ndarray
    source_indices: np.ndarray
    offsets: np.ndarray

    @property
    def num_partitions(self) -> int:
        return len(self.offsets) - 1

    def partition_slice(self, partition: int) -> slice:
        return slice(int(self.offsets[partition]), int(self.offsets[partition + 1]))


class RadixPartitioner:
    """Single-pass radix partitioner over a fixed bit selection."""

    def __init__(self, bits: PartitionBits):
        self.bits = bits

    def partition(
        self, keys: np.ndarray, source_indices: Optional[np.ndarray] = None
    ) -> PartitionOutput:
        """Histogram + stable scatter (the SWWC algorithm's semantics)."""
        keys = np.asarray(keys, dtype=np.uint64)
        if source_indices is None:
            source_indices = np.arange(len(keys), dtype=np.int64)
        else:
            source_indices = np.asarray(source_indices, dtype=np.int64)
            if len(source_indices) != len(keys):
                raise ConfigurationError(
                    "source_indices length must match keys: "
                    f"{len(source_indices)} != {len(keys)}"
                )
        if not obs.enabled():
            partitions = self.bits.partition_of(keys)
            histogram = np.bincount(
                partitions, minlength=self.bits.num_partitions
            ).astype(np.int64)
            offsets = np.zeros(self.bits.num_partitions + 1, dtype=np.int64)
            np.cumsum(histogram, out=offsets[1:])
            order = self._stable_order(partitions, len(keys))
            return PartitionOutput(
                keys=keys[order],
                source_indices=source_indices[order],
                offsets=offsets,
            )
        with obs.span(
            "partition.fanout",
            partitions=self.bits.num_partitions,
            tuples=len(keys),
        ):
            partitions = self.bits.partition_of(keys)
            histogram = np.bincount(
                partitions, minlength=self.bits.num_partitions
            ).astype(np.int64)
            offsets = np.zeros(self.bits.num_partitions + 1, dtype=np.int64)
            np.cumsum(histogram, out=offsets[1:])
            order = self._stable_order(partitions, len(keys))
        obs.add("partition.batches")
        obs.add("partition.tuples", float(len(keys)))
        obs.add(
            "partition.occupied_partitions",
            float(int(np.count_nonzero(histogram))),
        )
        obs.observe("partition.batch_tuples", float(len(keys)))
        return PartitionOutput(
            keys=keys[order],
            source_indices=source_indices[order],
            offsets=offsets,
        )

    def _stable_order(self, partitions: np.ndarray, n: int) -> np.ndarray:
        """Stable scatter order: within a partition, arrival order holds
        (the linear allocator hands out slots in arrival order).

        Packs (partition id, position) into one int64 per tuple and sorts
        that -- a single primitive-type sort, an order of magnitude faster
        than the general stable ``argsort`` it replaces.  Falls back to
        the argsort when id and position bits cannot share 63 bits.
        """
        id_bits = max(1, int(self.bits.num_partitions - 1).bit_length())
        pos_bits = max(1, (n - 1).bit_length())
        if id_bits + pos_bits > 63:
            return np.argsort(partitions, kind="stable")
        packed = partitions.astype(np.int64) << pos_bits
        packed |= np.arange(n, dtype=np.int64)
        packed.sort()
        packed &= (np.int64(1) << pos_bits) - np.int64(1)
        return packed

    # ------------------------------------------------------------------
    # Cost model.
    # ------------------------------------------------------------------

    def partition_counters(
        self, num_tuples: float, tuple_bytes: float = 16.0, passes: float = 2.0
    ) -> PerfCounters:
        """Device-memory traffic of partitioning ``num_tuples`` tuples.

        SWWC reads + writes the data once per pass (histogram pass reads
        only, scatter pass reads and writes; we charge 2 x size per pass
        on average, matching the partitioner's measured bandwidth profile).
        """
        if num_tuples < 0:
            raise ConfigurationError(
                f"tuple count must be non-negative: {num_tuples}"
            )
        counters = PerfCounters()
        counters.gpu_memory_bytes = num_tuples * tuple_bytes * passes
        return counters


def partition_and_verify(
    partitioner: RadixPartitioner, keys: np.ndarray
) -> Tuple[PartitionOutput, bool]:
    """Partition and check the partition-id ordering invariant.

    Returns (output, ok).  Exposed for tests and examples; the join
    operators trust :meth:`RadixPartitioner.partition` directly.
    """
    output = partitioner.partition(keys)
    ids = partitioner.bits.partition_of(output.keys)
    ok = bool(np.all(ids[:-1] <= ids[1:]))
    return output, ok
