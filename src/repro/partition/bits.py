"""Choosing the radix bits to partition lookup keys on.

Section 4.2 of the paper: two aspects determine the bits.  The most
significant bits of the keys are identical (the data is smaller than the
address space), so they carry no information; the least significant bits
fall inside one memory page, so partitioning on them cannot improve page
locality.  "Thus, we choose bits starting at the bit splitting the root
node, down to the bit above the page size."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.column import Column
from ..errors import ConfigurationError


@dataclass(frozen=True)
class PartitionBits:
    """A radix-bit selection: partition id = (key >> shift) & mask.

    Attributes:
        shift: number of low bits skipped.
        bits: number of radix bits used.
        offset: subtracted from keys before shifting (domains rarely start
            at zero).
    """

    shift: int
    bits: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.shift < 0:
            raise ConfigurationError(f"shift must be non-negative: {self.shift}")
        if self.bits < 1 or self.bits > 32:
            raise ConfigurationError(f"bits must be in [1, 32]: {self.bits}")
        if self.offset < 0:
            raise ConfigurationError(f"offset must be non-negative: {self.offset}")

    @property
    def num_partitions(self) -> int:
        return 1 << self.bits

    def partition_of(self, keys: np.ndarray) -> np.ndarray:
        """Partition id of each key (vectorized)."""
        keys = np.asarray(keys, dtype=np.uint64)
        shifted = (keys - np.uint64(self.offset)) >> np.uint64(self.shift)
        return (shifted & np.uint64(self.num_partitions - 1)).astype(np.int64)


def choose_partition_bits(
    column: Column,
    num_partitions: int,
    ignored_lsb: int = 0,
) -> PartitionBits:
    """Pick radix bits per the paper's rule for a given key column.

    The highest useful bit is the one that splits the key domain (the
    "root node" split); below it, ``log2(num_partitions)`` bits are taken,
    but never below ``ignored_lsb`` (the paper ignores the 4 least
    significant bits, Section 4.3.1: keys that close together always share
    a page).
    """
    if num_partitions < 2 or num_partitions & (num_partitions - 1) != 0:
        raise ConfigurationError(
            f"num_partitions must be a power of two >= 2, got {num_partitions}"
        )
    if ignored_lsb < 0:
        raise ConfigurationError(
            f"ignored_lsb must be non-negative, got {ignored_lsb}"
        )
    bits = num_partitions.bit_length() - 1
    min_key = column.min_key
    max_key = column.max_key
    span = max_key - min_key
    if span <= 0:
        raise ConfigurationError("key domain has zero span; nothing to partition")
    span_bits = span.bit_length()  # bit index of the domain-splitting bit + 1
    shift = max(ignored_lsb, span_bits - bits)
    available = max(1, span_bits - shift)
    bits = min(bits, available)
    return PartitionBits(shift=shift, bits=bits, offset=min_key)
