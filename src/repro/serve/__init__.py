"""Sharded, batched, simulated-clock serving of index probes.

The serving layer puts the paper's indexes behind a front door shaped
like production traffic ("serve heavy traffic from millions of users",
ROADMAP north star): the relation is range-sharded across N simulated
GPUs (:mod:`.shard`), requests are buffered into per-shard tumbling
windows that reuse the engine's window operator (:mod:`.batcher`),
bounded backlogs apply backpressure (:mod:`.admission`), and a
discrete-event loop over a logical clock (:mod:`.clock`,
:mod:`.service`) schedules window execution priced by the perf replay
model (:mod:`.executor`).  Each range can carry K replicas --
optionally divergent index types (:mod:`.replica`) -- behind a
cost-based router with failure detection (:mod:`.health`) and priced
background rebuilds (:mod:`.recovery`).  Online updates land in a
per-shard sorted delta tier merged into every probe (:mod:`.delta`),
folded back into the base index by policy-driven compactions priced in
the same simulated currency.  ``repro serve-bench`` (:mod:`.bench`)
sweeps the configuration space and emits a bit-identical BENCH JSON.
"""

from .admission import AdmissionController
from .batcher import ShardBatcher, Window
from .clock import SimulatedClock
from .delta import (
    CompactionPolicy,
    DeltaBuffer,
    delta_search_steps,
    merge_newest_wins,
    read_amplification,
)
from .executor import (
    ReplicatedShardExecutor,
    ShardExecutor,
    WindowDeferred,
    WindowResult,
)
from .health import (
    DEAD,
    HEALTHY,
    PROBATION,
    HealthEvent,
    HealthTracker,
)
from .recovery import (
    CompactionCost,
    RebuildCost,
    price_compaction,
    price_rebuild,
)
from .replica import Replica, ReplicaSet, ReplicatedPlan, replicate
from .service import (
    ProbeRequest,
    RequestOutcome,
    ServeReport,
    ShardStats,
    ShardedIndexService,
)
from .shard import Shard, ShardPlan, fallback_shard, range_shard

__all__ = [
    "AdmissionController",
    "CompactionCost",
    "CompactionPolicy",
    "DEAD",
    "DeltaBuffer",
    "HEALTHY",
    "HealthEvent",
    "HealthTracker",
    "PROBATION",
    "ProbeRequest",
    "RebuildCost",
    "Replica",
    "ReplicaSet",
    "ReplicatedPlan",
    "ReplicatedShardExecutor",
    "RequestOutcome",
    "ServeReport",
    "Shard",
    "ShardBatcher",
    "ShardExecutor",
    "ShardPlan",
    "ShardStats",
    "ShardedIndexService",
    "SimulatedClock",
    "Window",
    "WindowDeferred",
    "WindowResult",
    "delta_search_steps",
    "fallback_shard",
    "merge_newest_wins",
    "price_compaction",
    "price_rebuild",
    "range_shard",
    "read_amplification",
    "replicate",
]
