"""Sharded, batched, simulated-clock serving of index probes.

The serving layer puts the paper's indexes behind a front door shaped
like production traffic ("serve heavy traffic from millions of users",
ROADMAP north star): the relation is range-sharded across N simulated
GPUs (:mod:`.shard`), requests are buffered into per-shard tumbling
windows that reuse the engine's window operator (:mod:`.batcher`),
bounded backlogs apply backpressure (:mod:`.admission`), and a
discrete-event loop over a logical clock (:mod:`.clock`,
:mod:`.service`) schedules window execution priced by the perf replay
model (:mod:`.executor`).  ``repro serve-bench`` (:mod:`.bench`) sweeps
the configuration space and emits a bit-identical BENCH JSON.
"""

from .admission import AdmissionController
from .batcher import ShardBatcher, Window
from .clock import SimulatedClock
from .executor import ShardExecutor, WindowResult
from .service import (
    ProbeRequest,
    RequestOutcome,
    ServeReport,
    ShardStats,
    ShardedIndexService,
)
from .shard import Shard, ShardPlan, fallback_shard, range_shard

__all__ = [
    "AdmissionController",
    "ProbeRequest",
    "RequestOutcome",
    "ServeReport",
    "Shard",
    "ShardBatcher",
    "ShardExecutor",
    "ShardPlan",
    "ShardStats",
    "ShardedIndexService",
    "SimulatedClock",
    "Window",
    "WindowResult",
    "fallback_shard",
    "range_shard",
]
