"""Tumbling-window batching of per-shard probe streams.

The batcher is the serving-layer counterpart of the paper's Section 5
windowed partitioning: each shard's probe stream is cut into disjoint
fixed-size tumbling windows, closed when they reach capacity or when the
stream ends.  Window boundaries are not re-implemented -- the batcher
*drives* the engine's :class:`~repro.engine.pipeline.WindowOperator`
over its pending batches, so serving windows and pipeline windows can
never drift apart.  (``WindowOperator`` always emits its final partial
window because a pull stream cannot distinguish "stream ended" from
"more later"; the batcher, which does know, retains a trailing partial
window until :meth:`flush`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..engine.pipeline import TupleBatch, WindowOperator
from ..errors import ConfigurationError
from ..units import KEY_BYTES


@dataclass
class Window:
    """One closed tumbling window of a shard's probe stream.

    Attributes:
        shard_id: the shard whose stream this window belongs to.
        keys: probe keys in arrival order.
        indices: global stream position of each key.
        full: False only for the final, flush-closed partial window.
        deferrals: times the replicated executor parked this window to
            wait for a rebuild (capped; see ``MAX_WINDOW_DEFERRALS``).
        kind: ``"probe"`` or ``"update"`` -- windows are homogeneous
            (the batcher cuts on kind changes), so the executor never
            mixes reads and writes inside one kernel window.
        values: for update windows, the global row id each key writes;
            ``None`` for probe windows.
    """

    shard_id: int
    keys: np.ndarray
    indices: np.ndarray
    full: bool
    deferrals: int = 0
    kind: str = "probe"
    values: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.keys)


class ShardBatcher:
    """Per-shard tumbling windows over pushed probe batches."""

    def __init__(self, num_shards: int, window_bytes: int):
        if num_shards < 1:
            raise ConfigurationError(
                f"batcher needs at least one shard, got {num_shards}"
            )
        if window_bytes < KEY_BYTES:
            raise ConfigurationError(
                f"window must hold at least one tuple, got {window_bytes}"
            )
        self.num_shards = num_shards
        self.window_bytes = window_bytes
        self.window_tuples = max(1, window_bytes // KEY_BYTES)
        self._pending: Dict[int, List[TupleBatch]] = {
            shard: [] for shard in range(num_shards)
        }
        self._pending_tuples = np.zeros(num_shards, dtype=np.int64)
        self._pending_kind: Dict[int, str] = {
            shard: "probe" for shard in range(num_shards)
        }

    def pending_tuples(self, shard_id: int) -> int:
        """Tuples buffered for ``shard_id`` in its open window."""
        return int(self._pending_tuples[shard_id])

    def push(
        self,
        shard_id: int,
        keys: np.ndarray,
        indices: np.ndarray,
        kind: str = "probe",
    ) -> List[Window]:
        """Append a batch to a shard's stream; return any closed windows.

        Windows stay homogeneous in ``kind``: a batch of a different
        kind first flushes the shard's open window (as an early-cut
        partial), preserving per-shard FIFO order between reads and
        writes -- the ordering the sorted-array oracle replays.
        """
        if not 0 <= shard_id < self.num_shards:
            raise ConfigurationError(
                f"shard id {shard_id} outside [0, {self.num_shards})"
            )
        if kind not in ("probe", "update"):
            raise ConfigurationError(
                f"unknown window kind {kind!r} (want 'probe' or 'update')"
            )
        if len(keys) == 0:
            return []
        windows: List[Window] = []
        if self._pending[shard_id] and self._pending_kind[shard_id] != kind:
            windows.extend(self._cut(shard_id, ended=True))
        self._pending_kind[shard_id] = kind
        self._pending[shard_id].append(
            TupleBatch(keys=keys, indices=np.asarray(indices, dtype=np.int64))
        )
        self._pending_tuples[shard_id] += len(keys)
        if self._pending_tuples[shard_id] >= self.window_tuples:
            windows.extend(self._cut(shard_id, ended=False))
        return windows

    def flush(self, shard_id: int) -> List[Window]:
        """Close the shard's open window early ("no more tuples are
        available on the probe-side", Section 5.1)."""
        return self._cut(shard_id, ended=True)

    def flush_all(self) -> List[Window]:
        """End-of-stream flush of every shard, in shard order."""
        windows: List[Window] = []
        for shard_id in range(self.num_shards):
            windows.extend(self.flush(shard_id))
        return windows

    def _cut(self, shard_id: int, ended: bool) -> List[Window]:
        """Run the engine's WindowOperator over pending batches.

        Full windows are emitted; the operator's unconditional trailing
        partial window is retained as the new pending state unless the
        stream has ended.
        """
        pending = self._pending[shard_id]
        if not pending:
            return []
        operator = WindowOperator(self.window_bytes)
        cut = list(operator.process(iter(pending)))
        self._pending[shard_id] = []
        self._pending_tuples[shard_id] = 0
        windows: List[Window] = []
        for batch in cut:
            if len(batch) < self.window_tuples and not ended:
                # The open tail: put it back for the next push.
                self._pending[shard_id] = [batch]
                self._pending_tuples[shard_id] = len(batch)
                break
            windows.append(
                Window(
                    shard_id=shard_id,
                    keys=batch.keys,
                    indices=batch.indices,
                    full=len(batch) >= self.window_tuples,
                    kind=self._pending_kind[shard_id],
                )
            )
        return windows
