"""Sharded index serving: batched, admission-controlled, simulated-clock.

:class:`ShardedIndexService` ties the serving layer together.  Probe
requests arrive on a simulated timeline; each is routed to the shards
owning its keys, admitted whole or rejected whole by the backlog bound,
and buffered into per-shard tumbling windows.  Closed windows queue FIFO
per shard; each shard is one simulated GPU that executes one window at a
time, its service time priced by the cost model.  The event loop is a
plain discrete-event simulation over a :class:`SimulatedClock` --
completions and arrivals interleave on the heap, with completions at
equal timestamps processed first so a draining shard frees backlog
before the next arrival is admitted.

Everything is deterministic: no wall clock (DET002), no unseeded
randomness (DET001), no unordered-set iteration (DET003).  Two runs over
the same requests produce bit-identical reports.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..errors import ConfigurationError, SimulationError
from ..hardware.counters import PerfCounters
from .admission import AdmissionController
from .batcher import ShardBatcher, Window
from .clock import SimulatedClock
from .executor import (
    ReplicatedShardExecutor,
    ShardExecutor,
    WindowDeferred,
    WindowResult,
)
from .replica import ReplicatedPlan
from .shard import ShardPlan

#: Either serving topology: the service drives both through the same
#: ``split``/``execute`` surface (see the duck-typed recovery hooks).
PlanLike = Union[ShardPlan, ReplicatedPlan]
ExecutorLike = Union[ShardExecutor, ReplicatedShardExecutor]

#: Heap ranks: recoveries before completions before arrivals at equal
#: timestamps.  A replica rejoining at time t must be visible to a
#: window dispatched at t (the deferral path relies on it), and a
#: draining shard must free backlog before the next arrival is
#: admitted.
_RECOVERY = -1
_COMPLETION = 0
_ARRIVAL = 1


@dataclass(frozen=True)
class _Recovery:
    """Heap payload: a scheduled rebuild or compaction completes."""

    key: Tuple[Any, ...]


@dataclass(frozen=True)
class _ShardKick:
    """Heap payload: re-dispatch a shard parked on a deferred window."""

    shard_id: int


@dataclass(frozen=True)
class ProbeRequest:
    """One client request: a batch of keys at an arrival time.

    ``kind`` is ``"probe"`` (read the keys' positions) or ``"update"``
    (write: ``values`` carries the global row id each key takes, and
    the served positions echo those row ids back as the write
    acknowledgement).
    """

    request_id: int
    keys: np.ndarray
    arrival: float
    kind: str = "probe"
    values: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if len(self.keys) == 0:
            raise ConfigurationError(
                f"request {self.request_id} carries no keys"
            )
        if self.arrival < 0:
            raise ConfigurationError(
                f"request {self.request_id} arrives before time zero"
            )
        if self.kind not in ("probe", "update"):
            raise ConfigurationError(
                f"request {self.request_id} has unknown kind {self.kind!r}"
            )
        if self.kind == "update":
            if self.values is None or len(self.values) != len(self.keys):
                raise ConfigurationError(
                    f"update request {self.request_id} needs one value "
                    "per key"
                )
        elif self.values is not None:
            raise ConfigurationError(
                f"probe request {self.request_id} must not carry values"
            )


@dataclass
class RequestOutcome:
    """Served (or rejected) state of one request.

    ``positions`` are global R positions aligned with the request's
    keys, -1 for misses; ``None`` iff the request was rejected.
    """

    request_id: int
    arrival: float
    admitted: bool
    positions: Optional[np.ndarray] = None
    completion: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.completion is None:
            return None
        return self.completion - self.arrival


@dataclass
class ShardStats:
    """Per-shard serving tallies, aggregated over the run."""

    windows: int = 0
    full_windows: int = 0
    lookups: int = 0
    matches: int = 0
    update_windows: int = 0
    update_tuples: int = 0
    retries: int = 0
    degraded_windows: int = 0
    failovers: int = 0
    deferred_windows: int = 0
    queue_wait_seconds: float = 0.0
    busy_seconds: float = 0.0
    counters: PerfCounters = field(default_factory=PerfCounters)


@dataclass
class ServeReport:
    """Everything one :meth:`ShardedIndexService.run` produced."""

    outcomes: List[RequestOutcome]
    shard_stats: Dict[int, ShardStats]
    makespan_seconds: float
    admitted_requests: int
    rejected_requests: int

    @property
    def total_lookups(self) -> int:
        return sum(stats.lookups for stats in self.shard_stats.values())

    @property
    def throughput_lookups_per_second(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.total_lookups / self.makespan_seconds

    @property
    def latencies(self) -> List[float]:
        """Latencies of served requests, in request order."""
        return [
            outcome.latency
            for outcome in self.outcomes
            if outcome.latency is not None
        ]

    def total_counters(self) -> PerfCounters:
        total = PerfCounters()
        for _, stats in sorted(self.shard_stats.items()):
            total.add(stats.counters)
        return total


class ShardedIndexService:
    """Discrete-event serving simulation over a shard plan."""

    def __init__(
        self,
        plan: PlanLike,
        executor: ExecutorLike,
        window_bytes: int,
        max_backlog_tuples: int,
    ):
        self.plan = plan
        self.executor = executor
        self.batcher = ShardBatcher(plan.num_shards, window_bytes)
        self.admission = AdmissionController(
            plan.num_shards, max_backlog_tuples
        )
        self.clock = SimulatedClock()
        self._queues: List[Deque[Tuple[Window, float]]] = [
            deque() for _ in range(plan.num_shards)
        ]
        self._busy: List[bool] = [False] * plan.num_shards
        self._seq = 0
        #: Makespan excludes trailing recovery events: a rebuild that
        #: completes after the last tuple was served extends the event
        #: timeline, not the serving time.
        self._makespan = 0.0
        # Replication hooks, duck-typed so the PR-5 executor (which has
        # neither replicas nor recovery) keeps working unchanged.
        self._take_scheduled = getattr(executor, "take_scheduled", None)
        self._handle_recovery = getattr(executor, "handle_recovery", None)
        self._stats: Dict[int, ShardStats] = {}
        #: Global-stream row-id values of admitted update tuples
        #: (-1 for probe tuples), indexed by stream position; grown
        #: geometrically.  Windows slice it by their stream indices.
        self._stream_values = np.full(0, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Event loop.
    # ------------------------------------------------------------------

    def run(self, requests: List[ProbeRequest]) -> ServeReport:
        """Serve ``requests`` to completion; returns the full report.

        Requests must be sorted by arrival time (a serving front door
        sees its clients in order); the loop raises otherwise rather
        than silently reordering.
        """
        for earlier, later in zip(requests, requests[1:]):
            if later.arrival < earlier.arrival:
                raise ConfigurationError(
                    "requests must be sorted by arrival: "
                    f"{later.request_id} before {earlier.request_id}"
                )
        outcomes = {
            request.request_id: RequestOutcome(
                request_id=request.request_id,
                arrival=request.arrival,
                admitted=False,
            )
            for request in requests
        }
        stats = {
            shard.shard_id: ShardStats() for shard in self.plan.shards
        }
        self._stats = stats
        # Global stream bookkeeping: admitted requests occupy contiguous
        # stream-index ranges, so a searchsorted over their start
        # offsets maps any window index back to its owning request.
        admitted_ids: List[int] = []
        admitted_starts: List[int] = []
        remaining: Dict[int, int] = {}
        stream_length = 0

        heap: List[Tuple[float, int, int, object]] = []
        for request in requests:
            self._push(heap, request.arrival, _ARRIVAL, request)
        pending_arrivals = len(requests)

        with obs.span("serve.run", shards=self.plan.num_shards):
            while heap:
                timestamp, rank, _, payload = heapq.heappop(heap)
                self.clock.advance_to(timestamp)
                if rank == _RECOVERY:
                    assert isinstance(payload, _Recovery)
                    if self._handle_recovery is not None:
                        self._handle_recovery(payload.key, self.clock.now)
                    continue
                if isinstance(payload, _ShardKick):
                    # The deferred window's rebuild deadline arrived;
                    # the recovery at the same timestamp already ran
                    # (rank -1), so the rejoined replica is routable.
                    self._busy[payload.shard_id] = False
                    self._start_next(heap, payload.shard_id, stats)
                    continue
                if rank == _ARRIVAL:
                    request = payload
                    pending_arrivals -= 1
                    self._makespan = self.clock.now
                    parts = self.plan.split(
                        request.keys,
                        np.arange(
                            stream_length,
                            stream_length + len(request.keys),
                            dtype=np.int64,
                        ),
                    )
                    if self.admission.try_admit(parts):
                        outcome = outcomes[request.request_id]
                        outcome.admitted = True
                        outcome.positions = np.full(
                            len(request.keys), -1, dtype=np.int64
                        )
                        remaining[request.request_id] = len(request.keys)
                        admitted_ids.append(request.request_id)
                        admitted_starts.append(stream_length)
                        self._record_stream_values(stream_length, request)
                        stream_length += len(request.keys)
                        if obs.enabled():
                            obs.add("serve.requests.admitted")
                        for shard_id, keys, indices in parts:
                            self._enqueue(
                                heap,
                                self.batcher.push(
                                    shard_id,
                                    keys,
                                    indices,
                                    kind=request.kind,
                                ),
                            )
                    elif obs.enabled():
                        obs.add("serve.requests.rejected")
                    if pending_arrivals == 0:
                        # End of stream: close every open partial window
                        # ("no more tuples are available", Section 5.1).
                        self._enqueue(heap, self.batcher.flush_all())
                else:
                    result = payload
                    self._makespan = self.clock.now
                    self._complete(
                        result,
                        outcomes,
                        stats,
                        remaining,
                        np.asarray(admitted_ids, dtype=np.int64),
                        np.asarray(admitted_starts, dtype=np.int64),
                    )
                    shard_id = result.window.shard_id
                    self._busy[shard_id] = False
                    self._start_next(heap, shard_id, stats)

        leftover = [
            request_id
            for request_id, count in sorted(remaining.items())
            if count > 0
        ]
        if leftover:
            raise SimulationError(
                f"service drained with unserved tuples for {leftover}"
            )
        report = ServeReport(
            outcomes=[outcomes[request.request_id] for request in requests],
            shard_stats=stats,
            makespan_seconds=self._makespan,
            admitted_requests=self.admission.admitted_requests,
            rejected_requests=self.admission.rejected_requests,
        )
        if obs.enabled():
            obs.add_perf_counters("serve", report.total_counters())
        return report

    # ------------------------------------------------------------------
    # Shard scheduling.
    # ------------------------------------------------------------------

    def _push(
        self, heap: list, timestamp: float, rank: int, payload: object
    ) -> None:
        self._seq += 1
        heapq.heappush(heap, (timestamp, rank, self._seq, payload))

    def _record_stream_values(
        self, start: int, request: ProbeRequest
    ) -> None:
        """Land an admitted request's row-id values in the stream array."""
        end = start + len(request.keys)
        if end > len(self._stream_values):
            grown = np.full(
                max(end, 2 * max(1, len(self._stream_values))),
                -1,
                dtype=np.int64,
            )
            grown[: len(self._stream_values)] = self._stream_values
            self._stream_values = grown
        if request.kind == "update":
            assert request.values is not None  # __post_init__ checked
            self._stream_values[start:end] = request.values

    def _enqueue(self, heap: list, windows: List[Window]) -> None:
        """Queue closed windows; start any idle shard immediately."""
        for window in windows:
            shard_id = window.shard_id
            if window.kind == "update" and window.values is None:
                window.values = self._stream_values[window.indices]
            self._queues[shard_id].append((window, self.clock.now))
            if not self._busy[shard_id]:
                self._dispatch(heap, shard_id)

    def _start_next(
        self, heap: list, shard_id: int, stats: Dict[int, ShardStats]
    ) -> None:
        if self._queues[shard_id]:
            self._dispatch(heap, shard_id)

    def _dispatch(self, heap: list, shard_id: int) -> None:
        """Execute the shard's next queued window on the simulated GPU."""
        window, enqueued = self._queues[shard_id].popleft()
        self._busy[shard_id] = True
        wait = self.clock.now - enqueued
        with obs.span(
            "serve.window", shard=shard_id, tuples=len(window)
        ):
            result = self.executor.execute(window, now=self.clock.now)
        self._drain_scheduled(heap)
        if isinstance(result, WindowDeferred):
            # Failover-vs-wait chose to wait: park the window at the
            # queue head (original enqueue time intact, so its queue
            # wait keeps accruing) and hold the shard busy until the
            # rebuild deadline kicks it.
            self._queues[shard_id].appendleft((window, enqueued))
            if shard_id in self._stats:
                self._stats[shard_id].deferred_windows += 1
            self._push(
                heap, result.ready_at, _COMPLETION, _ShardKick(shard_id)
            )
            return
        result.queue_wait = wait
        self._push(
            heap,
            self.clock.now + result.service_seconds,
            _COMPLETION,
            result,
        )

    def _drain_scheduled(self, heap: list) -> None:
        """Turn newly scheduled rebuilds into simulated-clock events."""
        if self._take_scheduled is None:
            return
        for ready_at, key in self._take_scheduled():
            self._push(heap, ready_at, _RECOVERY, _Recovery(key))

    def _complete(
        self,
        result: WindowResult,
        outcomes: Dict[int, RequestOutcome],
        stats: Dict[int, ShardStats],
        remaining: Dict[int, int],
        admitted_ids: np.ndarray,
        admitted_starts: np.ndarray,
    ) -> None:
        """Scatter a window's positions back to its requests."""
        window = result.window
        shard_id = window.shard_id
        shard_stats = stats[shard_id]
        is_update = window.kind == "update"
        if is_update:
            # Writes are tallied apart from reads: lookup/match rates
            # (and throughput, which divides lookups) stay read-only
            # quantities, directly comparable to a zero-update run.
            shard_stats.update_windows += 1
            shard_stats.update_tuples += len(window)
        else:
            shard_stats.windows += 1
            if window.full:
                shard_stats.full_windows += 1
            shard_stats.lookups += len(window)
            matches = int(np.count_nonzero(result.positions >= 0))
            shard_stats.matches += matches
        shard_stats.retries += result.retries
        shard_stats.failovers += result.failovers
        if result.degraded:
            shard_stats.degraded_windows += 1
        wait = result.queue_wait
        shard_stats.queue_wait_seconds += wait
        shard_stats.busy_seconds += result.service_seconds
        shard_stats.counters.add(result.counters)
        # Window counters use names disjoint from PerfCounters fields:
        # the run-total replay counters land as ``serve.<field>`` via
        # add_perf_counters, and one obs name must keep one label set.
        if obs.enabled():
            if is_update:
                obs.add("serve.update_windows", shard=shard_id)
                obs.add(
                    "serve.update_tuples", len(window), shard=shard_id
                )
            else:
                obs.add("serve.windows", shard=shard_id)
                obs.add(
                    "serve.window_lookups", len(window), shard=shard_id
                )
                obs.add(
                    "serve.window_matches", matches, shard=shard_id
                )
            obs.observe("serve.queue_wait", wait, shard=shard_id)
        self.admission.drain(shard_id, len(window))

        slot = (
            np.searchsorted(admitted_starts, window.indices, side="right")
            - 1
        )
        owners = admitted_ids[slot]
        offsets = window.indices - admitted_starts[slot]
        for request_id in np.unique(owners):
            mask = owners == request_id
            outcome = outcomes[int(request_id)]
            assert outcome.positions is not None
            outcome.positions[offsets[mask]] = result.positions[mask]
            remaining[int(request_id)] -= int(np.count_nonzero(mask))
            if remaining[int(request_id)] == 0:
                outcome.completion = self.clock.now
                if obs.enabled():
                    obs.observe("serve.latency", outcome.latency)
