"""Simulated time for the serving layer.

The serving subsystem schedules work on a *logical* clock: every
timestamp in the system -- request arrivals, window completions, queue
waits, latencies -- is a simulated quantity derived from the cost model,
never from the host's wall clock.  That keeps the whole serving
simulation DET002-clean (no ``time.*`` reads) and makes every run
bit-identical for a given seed, which is what lets ``repro serve-bench``
gate CI on its own JSON output.
"""

from __future__ import annotations

from ..errors import SimulationError


class SimulatedClock:
    """A monotonically advancing logical clock (seconds, float64).

    The event loop advances it to each event's timestamp; components
    read it through :meth:`now`.  Moving backwards is a scheduling bug
    and raises immediately rather than silently reordering events.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise SimulationError(
                f"clock cannot start before zero, got {start}"
            )
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (idempotent at equal
        times); raises on attempts to move backwards."""
        if timestamp < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance by a non-negative duration and return the new time."""
        if seconds < 0:
            raise SimulationError(
                f"cannot advance by a negative duration: {seconds}"
            )
        self._now += float(seconds)
        return self._now
