"""Admission control: bounded per-shard backlogs with backpressure.

A serving system that accepts every request merely moves the overload
into its queues; latency then grows without bound while throughput stays
flat.  The admission controller caps the number of probe tuples queued
per shard (buffered in the batcher's open window, waiting in closed
windows, or executing).  A request is admitted *atomically*: if any
shard it touches would exceed its backlog bound, the whole request is
rejected -- partial admission would return partial answers, which the
differential oracle (and any real client) cannot use.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError


class AdmissionController:
    """Tuple-bounded per-shard backlog accounting."""

    def __init__(self, num_shards: int, max_backlog_tuples: int):
        if num_shards < 1:
            raise ConfigurationError(
                f"admission needs at least one shard, got {num_shards}"
            )
        if max_backlog_tuples < 1:
            raise ConfigurationError(
                "per-shard backlog bound must be positive, got "
                f"{max_backlog_tuples}"
            )
        self.max_backlog_tuples = max_backlog_tuples
        self._backlog = np.zeros(num_shards, dtype=np.int64)
        self.admitted_requests = 0
        self.rejected_requests = 0

    def backlog(self, shard_id: int) -> int:
        """Tuples currently queued or executing on ``shard_id``."""
        return int(self._backlog[shard_id])

    def try_admit(self, parts: List[Tuple[int, np.ndarray, np.ndarray]]) -> bool:
        """Admit a split request whole, or reject it whole.

        ``parts`` is the routing output: (shard_id, keys, indices)
        tuples.  On admission every touched shard's backlog grows by its
        share; on rejection nothing changes (backpressure -- the client
        must retry later).
        """
        for shard_id, keys, _ in parts:
            if self._backlog[shard_id] + len(keys) > self.max_backlog_tuples:
                self.rejected_requests += 1
                return False
        for shard_id, keys, _ in parts:
            self._backlog[shard_id] += len(keys)
        self.admitted_requests += 1
        return True

    def drain(self, shard_id: int, tuples: int) -> None:
        """Release backlog after a window of ``tuples`` completes."""
        if tuples < 0:
            raise ConfigurationError(
                f"cannot drain a negative tuple count: {tuples}"
            )
        if tuples > self._backlog[shard_id]:
            raise ConfigurationError(
                f"drain of {tuples} exceeds shard {shard_id} backlog "
                f"{int(self._backlog[shard_id])}"
            )
        self._backlog[shard_id] -= tuples
