"""Replica health tracking on the simulated clock.

The replicated serving layer needs one source of truth for "which
replica may serve this window".  :class:`HealthTracker` keeps a small
per-replica state machine driven entirely by *simulated* timestamps the
caller passes in -- the tracker itself never reads a clock (DET002), so
the full health timeline of a run is a deterministic function of the
traffic and the fault schedule.

States::

    healthy --(consecutive failures >= threshold, or retry budget
               exhausted)--> dead --(rebuild completes)--> probation
    probation --(first successful probe)--> healthy
    probation --(any failure)--> dead            (half-open trips again)

``probation`` is the half-open state of a classic circuit breaker: a
rebuilt replica is *allowed* traffic again but has not yet proven
itself; the router sends it one trial window (it executes one window at
a time, so probation-first ordering is exactly "one in-flight trial").

Every transition is appended to :attr:`HealthTracker.events` as a
:class:`HealthEvent` -- the bit-identical failover/recovery timeline the
chaos harness replays and ``repro serve-bench`` exports in its
``degraded`` block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError

#: Replica health states (plain strings: they land in JSON payloads).
HEALTHY = "healthy"
PROBATION = "probation"
DEAD = "dead"

#: Default consecutive-failure threshold before a replica is declared
#: dead.  Two strikes: one transient blip is absorbed by the retry
#: policy, two in a row reads as a crashed or wedged replica.
DEFAULT_FAILURE_THRESHOLD = 2


@dataclass(frozen=True)
class HealthEvent:
    """One timestamped health transition of one replica.

    Attributes:
        time: simulated time of the transition, seconds.
        shard: range shard the replica serves.
        replica: replica id within the shard's replica set.
        kind: ``failure | dead | failover | rebuild_scheduled |
            rebuild_complete | recovered | deferred | fallback``.
        detail: free-form context (rebuild kind, priced seconds, ...).
    """

    time: float
    shard: int
    replica: int
    kind: str
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "t": round(self.time, 9),
            "shard": self.shard,
            "replica": self.replica,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class _ReplicaHealth:
    state: str = HEALTHY
    consecutive_failures: int = 0
    #: Simulated completion time of the in-flight rebuild, if any.
    rebuild_ready_at: Optional[float] = None


class HealthTracker:
    """Per-replica failure detection with deterministic transitions."""

    def __init__(
        self,
        num_shards: int,
        replicas_per_shard: int,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
    ):
        if num_shards < 1:
            raise ConfigurationError(
                f"health tracker needs at least one shard, got {num_shards}"
            )
        if replicas_per_shard < 1:
            raise ConfigurationError(
                "health tracker needs at least one replica per shard, got "
                f"{replicas_per_shard}"
            )
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        self.num_shards = num_shards
        self.replicas_per_shard = replicas_per_shard
        self.failure_threshold = failure_threshold
        self._health: Dict[Tuple[int, int], _ReplicaHealth] = {
            (shard, replica): _ReplicaHealth()
            for shard in range(num_shards)
            for replica in range(replicas_per_shard)
        }
        #: Append-only transition timeline, in event order.
        self.events: List[HealthEvent] = []

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    def _slot(self, shard: int, replica: int) -> _ReplicaHealth:
        try:
            return self._health[(shard, replica)]
        except KeyError:
            raise ConfigurationError(
                f"unknown replica shard{shard}r{replica} (plan has "
                f"{self.num_shards} shards x {self.replicas_per_shard} "
                "replicas)"
            ) from None

    def state(self, shard: int, replica: int) -> str:
        return self._slot(shard, replica).state

    def is_dead(self, shard: int, replica: int) -> bool:
        return self._slot(shard, replica).state == DEAD

    def rebuild_ready_at(self, shard: int, replica: int) -> Optional[float]:
        return self._slot(shard, replica).rebuild_ready_at

    def next_rebuild_ready(
        self, shard: int
    ) -> Optional[Tuple[float, int]]:
        """Earliest pending rebuild of ``shard``: (ready_at, replica).

        Ties break on the lower replica id, keeping the failover-vs-wait
        decision deterministic.  ``None`` when no rebuild is in flight.
        """
        best: Optional[Tuple[float, int]] = None
        for replica in range(self.replicas_per_shard):
            slot = self._health[(shard, replica)]
            if slot.state != DEAD or slot.rebuild_ready_at is None:
                continue
            candidate = (slot.rebuild_ready_at, replica)
            if best is None or candidate < best:
                best = candidate
        return best

    def count(self, kind: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for event in self.events if event.kind == kind)

    def transitions(self) -> List[dict]:
        """The full timeline as JSON-ready dicts, in event order."""
        return [event.as_dict() for event in self.events]

    # ------------------------------------------------------------------
    # Transitions.
    # ------------------------------------------------------------------

    def note(
        self, time: float, shard: int, replica: int, kind: str, detail: str = ""
    ) -> None:
        """Append a non-state-changing event (failover, fallback, ...)."""
        self.events.append(HealthEvent(time, shard, replica, kind, detail))

    def record_failure(self, shard: int, replica: int, now: float) -> bool:
        """One failed probe attempt; returns True on a *new* death.

        A healthy replica dies after ``failure_threshold`` consecutive
        failures; a probation replica dies on its first (the half-open
        trial failed).  Failures on an already-dead replica are ignored
        -- the router should not have sent it traffic.
        """
        slot = self._slot(shard, replica)
        if slot.state == DEAD:
            return False
        slot.consecutive_failures += 1
        self.note(
            now,
            shard,
            replica,
            "failure",
            f"consecutive={slot.consecutive_failures}",
        )
        if slot.state == PROBATION or (
            slot.consecutive_failures >= self.failure_threshold
        ):
            return self._die(slot, shard, replica, now)
        return False

    def force_dead(self, shard: int, replica: int, now: float) -> bool:
        """Declare a replica dead regardless of its failure streak.

        Used when a retry budget is exhausted on one window: whatever
        the streak says, the replica could not serve.
        """
        slot = self._slot(shard, replica)
        if slot.state == DEAD:
            return False
        return self._die(slot, shard, replica, now)

    def _die(
        self, slot: _ReplicaHealth, shard: int, replica: int, now: float
    ) -> bool:
        slot.state = DEAD
        slot.consecutive_failures = 0
        self.note(now, shard, replica, "dead")
        return True

    def record_success(self, shard: int, replica: int, now: float) -> bool:
        """One served window; returns True when probation -> healthy."""
        slot = self._slot(shard, replica)
        slot.consecutive_failures = 0
        if slot.state == PROBATION:
            slot.state = HEALTHY
            self.note(now, shard, replica, "recovered")
            return True
        return False

    def schedule_rebuild(
        self,
        shard: int,
        replica: int,
        now: float,
        ready_at: float,
        detail: str = "",
    ) -> None:
        """Record that a dead replica's rebuild completes at ``ready_at``."""
        slot = self._slot(shard, replica)
        if slot.state != DEAD:
            raise ConfigurationError(
                f"cannot rebuild shard{shard}r{replica}: state is "
                f"{slot.state!r}, not {DEAD!r}"
            )
        if ready_at < now:
            raise ConfigurationError(
                f"rebuild cannot complete in the past: {ready_at} < {now}"
            )
        slot.rebuild_ready_at = ready_at
        self.note(now, shard, replica, "rebuild_scheduled", detail)

    def complete_rebuild(self, shard: int, replica: int, now: float) -> bool:
        """A rebuild finished: dead -> probation (half-open).

        Returns True when a transition happened; a completion for a
        replica that is not dead (e.g. a stale event) is a no-op.
        """
        slot = self._slot(shard, replica)
        if slot.state != DEAD:
            return False
        slot.state = PROBATION
        slot.rebuild_ready_at = None
        slot.consecutive_failures = 0
        self.note(now, shard, replica, "rebuild_complete")
        return True
