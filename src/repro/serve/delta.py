"""Per-shard delta tier: a sorted buffer absorbing online updates.

The serve layer's indexes are the paper's *static* structures -- even
the "updatable" trees are implicit arrays here -- so online traffic
that writes cannot touch the base index per key.  Instead every shard
(and every replica of it, and the fallback) carries a
:class:`DeltaBuffer`: a small sorted array of ``(key, row id)`` pairs
absorbing insert/upsert windows.  Probes reconcile the base
``probe_batch`` answer against a ``searchsorted`` over the delta,
newest-wins, so served positions stay element-equal to a sorted-array
oracle applying the same update stream (the FliX-motivated design from
ROADMAP open item 1: GPU-resident indexes struggle with in-place
updates, so buffer-and-merge).

Reads over a deep delta pay for the extra binary search -- the *read
amplification* the :class:`CompactionPolicy` trades against the priced
cost of folding the delta back into the base index
(:func:`~repro.serve.recovery.price_compaction`): B+tree/Harmonia
absorb cheaply, the RadixSpline must retrain, binary-search/FAST
rebuild.  Compaction is scheduled on the simulated clock exactly like
a PR-7 recovery rebuild.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..data.column import KEY_DTYPE
from ..errors import ConfigurationError
from ..hardware.counters import PerfCounters


def merge_newest_wins(
    base_keys: np.ndarray,
    base_values: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two key/value runs; later entries override earlier ones.

    Within ``keys`` itself the *last* occurrence of a duplicate wins,
    and any key present in both runs takes its value from
    ``keys``/``values`` -- the update stream's arrival-order semantics.
    Returns sorted, unique arrays.
    """
    all_keys = np.concatenate(
        [np.asarray(base_keys, dtype=KEY_DTYPE),
         np.asarray(keys, dtype=KEY_DTYPE)]
    )
    all_values = np.concatenate(
        [np.asarray(base_values, dtype=np.int64),
         np.asarray(values, dtype=np.int64)]
    )
    # Stable sort keeps arrival order within equal keys, so keep-last
    # per key group implements newest-wins.
    order = np.argsort(all_keys, kind="stable")
    sorted_keys = all_keys[order]
    sorted_values = all_values[order]
    keep = np.empty(len(sorted_keys), dtype=bool)
    if len(sorted_keys):
        keep[:-1] = sorted_keys[1:] != sorted_keys[:-1]
        keep[-1] = True
    return sorted_keys[keep], sorted_values[keep]


def delta_search_steps(delta_tuples: int) -> int:
    """Binary-search touches one delta lookup costs (0 when empty)."""
    if delta_tuples <= 0:
        return 0
    return int(math.ceil(math.log2(delta_tuples))) + 1 if delta_tuples > 1 else 1


def read_amplification(delta_tuples: int, index_height: int) -> float:
    """Structural read tax: delta search depth over base index height.

    1.0 means every probe does as much extra pointer-chasing in the
    delta as one full base traversal -- the quantity the compaction
    policy thresholds.
    """
    return delta_search_steps(delta_tuples) / float(max(1, index_height))


class DeltaBuffer:
    """Sorted ``(key, row id)`` pairs absorbing an update stream.

    Values are *global row ids*: base R rows occupy ``[0, N)`` and each
    update tuple carries ``N + its global sequence in the stream``, so
    a served position names exactly one version of one key.  ``apply``
    is idempotent for a repeated batch (newest-wins of equal values),
    which keeps retried update windows safe.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=KEY_DTYPE)
        self._values = np.empty(0, dtype=np.int64)

    @property
    def num_tuples(self) -> int:
        return len(self._keys)

    @property
    def search_steps(self) -> int:
        return delta_search_steps(len(self._keys))

    def apply(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Absorb one update window (newest-wins against current state)."""
        if len(keys) != len(values):
            raise ConfigurationError(
                f"update window carries {len(keys)} keys but "
                f"{len(values)} values"
            )
        if len(keys) == 0:
            return
        self._keys, self._values = merge_newest_wins(
            self._keys, self._values, keys, values
        )

    def lookup_into(self, keys: np.ndarray, positions: np.ndarray) -> int:
        """Override ``positions`` with delta hits; returns the hit count.

        The delta is newer than any base answer, so a hit replaces
        whatever the base probe produced (match or miss) -- the
        newest-wins reconciliation of the tentpole contract.
        """
        if len(self._keys) == 0:
            return 0
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        slots = np.searchsorted(self._keys, keys)
        clipped = np.minimum(slots, len(self._keys) - 1)
        hits = self._keys[clipped] == keys
        positions[hits] = self._values[clipped[hits]]
        return int(np.count_nonzero(hits))

    def drain(self) -> Tuple[np.ndarray, np.ndarray]:
        """Hand the buffered pairs to a compaction and reset to empty."""
        keys, values = self._keys, self._values
        self._keys = np.empty(0, dtype=KEY_DTYPE)
        self._values = np.empty(0, dtype=np.int64)
        return keys, values

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of the buffered pairs (tests and payload plumbing)."""
        return self._keys.copy(), self._values.copy()

    def read_counters(self, window_tuples: int) -> Optional[PerfCounters]:
        """Extra replay counters one probe window pays for this delta.

        Analytic model of the reconciliation ``searchsorted``: each of
        the window's lookups walks ``search_steps`` levels of the
        delta.  The buffer is small and hot, so all but the deepest two
        touches hit cache; two go remote (the delta lives host-side
        like the index).  ``None`` when the delta is empty, so the
        fast path stays counter-free.
        """
        if len(self._keys) == 0 or window_tuples <= 0:
            return None
        steps = float(self.search_steps)
        width = float(window_tuples)
        remote = width * float(min(self.search_steps, 2))
        return PerfCounters(
            memory_accesses=width * steps,
            l2_hits=width * max(0.0, steps - 2.0),
            remote_accesses=remote,
            simt_instructions=width * steps,
        )


#: Delta size at which compaction is forced regardless of pricing.
DEFAULT_MAX_DELTA_TUPLES = 1024

#: Read-amplification cap: compact once delta search depth reaches this
#: multiple of the base index height.
DEFAULT_MAX_READ_AMPLIFICATION = 2.0

#: Rent-to-own ratio: compact once accrued delta-read seconds exceed
#: this multiple of the (per-index-type) compaction price.
DEFAULT_COST_RATIO = 1.0


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold a replica's delta back into its base index.

    Three triggers, checked in order:

    * hard size cap (``max_delta_tuples``) -- bounds worst-case delta
      depth whatever the prices say;
    * read-amplification cap (``max_read_amplification``) -- bounds the
      structural read tax per probe;
    * the priced rent-to-own rule (``cost_ratio``) -- compact once the
      *accrued* extra read seconds a replica has paid for its delta
      exceed ``cost_ratio`` times the compaction price.  This is what
      makes compact-now-vs-degrade-reads a real per-index-type cost
      decision: a B+tree absorbs cheaply and compacts early, a
      RadixSpline retrain is expensive so it tolerates a deeper delta.
    """

    max_delta_tuples: int = DEFAULT_MAX_DELTA_TUPLES
    max_read_amplification: float = DEFAULT_MAX_READ_AMPLIFICATION
    cost_ratio: float = DEFAULT_COST_RATIO

    def __post_init__(self) -> None:
        if self.max_delta_tuples < 1:
            raise ConfigurationError(
                f"max_delta_tuples must be >= 1, got {self.max_delta_tuples}"
            )
        if self.max_read_amplification <= 0:
            raise ConfigurationError(
                "max_read_amplification must be positive, got "
                f"{self.max_read_amplification}"
            )
        if self.cost_ratio <= 0:
            raise ConfigurationError(
                f"cost_ratio must be positive, got {self.cost_ratio}"
            )

    def should_compact(
        self,
        delta_tuples: int,
        read_amp: float,
        accrued_read_seconds: float,
        compaction_seconds: float,
    ) -> bool:
        if delta_tuples <= 0:
            return False
        if delta_tuples >= self.max_delta_tuples:
            return True
        if read_amp >= self.max_read_amplification:
            return True
        return accrued_read_seconds >= self.cost_ratio * compaction_seconds


#: The executor's default policy instance.
DEFAULT_COMPACTION_POLICY = CompactionPolicy()
