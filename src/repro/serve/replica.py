"""Replica sets: K copies of every range shard, optionally divergent.

A :class:`ReplicatedPlan` keeps the routing shape of a plain
:class:`~repro.serve.shard.ShardPlan` -- same shard count, same key
cuts, same ``route``/``split`` -- but behind every range sits a
*replica set*: K :class:`Shard` instances over the same key slice, each
free to carry a different index type.  Range cuts depend only on the
tuple count and shard count (see :func:`~repro.serve.shard.range_shard`),
so building one plan per index class and zipping them yields perfectly
aligned replicas: every replica of a range returns identical global
positions, which is what makes failover invisible to clients.

Divergent replicas are the point, not a curiosity: the four paper
indexes win in different regimes (BENCH_1 crossover pinned in
``test_paper_claims.py``), so a replica set mixing, say, a B+tree with
a RadixSpline gives the router a real price spread to exploit -- and
gives recovery a real per-type rebuild cost to weigh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Type

import numpy as np

from ..data.relation import Relation
from ..errors import ConfigurationError
from .shard import Shard, ShardPlan, range_shard


@dataclass(frozen=True)
class Replica:
    """One copy of a range shard: a :class:`Shard` plus its replica id."""

    replica_id: int
    shard: Shard

    @property
    def index_name(self) -> str:
        return self.shard.index.name


class ReplicaSet:
    """All replicas of one range, in replica-id order."""

    def __init__(self, shard_id: int, replicas: List[Replica]):
        if not replicas:
            raise ConfigurationError(
                f"replica set for shard {shard_id} is empty"
            )
        for expected, replica in enumerate(replicas):
            if replica.replica_id != expected:
                raise ConfigurationError(
                    f"replica ids of shard {shard_id} must be dense from "
                    f"0, got {replica.replica_id} at position {expected}"
                )
        self.shard_id = shard_id
        self.replicas = replicas

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self):
        return iter(self.replicas)

    def __getitem__(self, replica_id: int) -> Replica:
        return self.replicas[replica_id]


class ReplicatedPlan:
    """A shard plan where each range is served by a replica set.

    Routing delegates to the primary plan (replica 0's shards), so the
    service's split/admission/batching path is untouched by
    replication; only the executor sees the extra copies.
    """

    def __init__(self, base: ShardPlan, replica_sets: List[ReplicaSet]):
        if len(replica_sets) != base.num_shards:
            raise ConfigurationError(
                f"plan has {base.num_shards} shards but "
                f"{len(replica_sets)} replica sets"
            )
        widths = {len(replica_set) for replica_set in replica_sets}
        if len(widths) != 1:
            raise ConfigurationError(
                "all replica sets must be the same width, got "
                f"{sorted(widths)}"
            )
        self.base = base
        self.replica_sets = replica_sets
        self.replicas_per_shard = len(replica_sets[0])

    # -- ShardPlan-compatible surface (the service only uses these). ----

    @property
    def num_shards(self) -> int:
        return self.base.num_shards

    @property
    def shards(self) -> List[Shard]:
        return self.base.shards

    @property
    def column(self):
        return self.base.column

    def route(self, keys: np.ndarray) -> np.ndarray:
        return self.base.route(keys)

    def split(
        self, keys: np.ndarray, indices: np.ndarray
    ) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        return self.base.split(keys, indices)

    # -- Replica access. ------------------------------------------------

    def replicas(self, shard_id: int) -> ReplicaSet:
        return self.replica_sets[shard_id]

    def replica(self, shard_id: int, replica_id: int) -> Replica:
        return self.replica_sets[shard_id][replica_id]


def replicate(
    relation: Relation,
    num_shards: int,
    index_classes: Sequence[Type],
    max_tuples: int = 2**22,
) -> ReplicatedPlan:
    """Build a replicated plan: one replica per entry of ``index_classes``.

    ``index_classes[k]`` is replica ``k``'s index type on *every* shard
    (a homogeneous fleet is ``[cls] * K``).  Each replica level is a
    full :func:`range_shard` plan of its own; the cuts are identical
    across levels, so replicas of a shard serve the same key slice.
    """
    if not index_classes:
        raise ConfigurationError(
            "replicate() needs at least one index class"
        )
    plans = [
        range_shard(relation, num_shards, index_cls, max_tuples=max_tuples)
        for index_cls in index_classes
    ]
    base = plans[0]
    replica_sets = [
        ReplicaSet(
            shard_id,
            [
                Replica(replica_id=level, shard=plan.shards[shard_id])
                for level, plan in enumerate(plans)
            ],
        )
        for shard_id in range(base.num_shards)
    ]
    return ReplicatedPlan(base, replica_sets)
