"""Range sharding: one index per simulated GPU over a key sub-range.

The sharding layer splits the build relation R into ``num_shards``
contiguous position ranges of (near-)equal size.  Because R's key column
is sorted, equal position ranges are disjoint, contiguous *key* ranges,
so a probe key routes to exactly one shard with a single
``searchsorted`` over the shard boundaries -- the serving-layer analogue
of the paper's radix routing.  Each shard owns:

* a sub-relation (the slice of R it serves) and an index built over it;
* a radix partitioner chosen for the *shard's* key range, so each
  shard's windows keep the TLB-friendly partition-ordered access
  pattern of Section 4;
* its own simulated machine (lazily built) used to replay a traced
  lookup sample -- the per-shard perf counters ``repro serve-bench``
  aggregates.

Shard-local lookup positions are offset by the shard's base position, so
service responses are *global* R positions, directly comparable to the
unsharded oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..config import SimulationConfig
from ..data.column import Column, MaterializedColumn
from ..data.relation import Relation
from ..errors import ConfigurationError
from ..gpu.executor import MachineModel
from ..hardware.counters import PerfCounters
from ..hardware.memory import MemorySpace
from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes.base import Index
from ..partition.bits import PartitionBits, choose_partition_bits
from ..partition.radix import RadixPartitioner
from .delta import DeltaBuffer, merge_newest_wins

#: Partition fanout per shard window.  Shards serve a fraction of R, so
#: a smaller fanout than the paper's global 2048 keeps partitions
#: usefully sized at serving-window scale.
SHARD_NUM_PARTITIONS = 256

#: Default sample width of the per-shard calibration replay.
CALIBRATION_SIM = SimulationConfig(probe_sample=2**10)


def _shard_partitioner(column: Column) -> RadixPartitioner:
    """The paper's bit-selection rule scoped to one shard's key range.

    Fanout shrinks with the shard (a shard of W keys cannot usefully
    split into more than ~W partitions); degenerate shards -- a single
    key, or a zero-span domain -- get a trivial 2-way split so the
    partition-then-probe path stays uniform.
    """
    n = len(column)
    fanout = SHARD_NUM_PARTITIONS
    while fanout > 2 and fanout > n:
        fanout //= 2
    try:
        return RadixPartitioner(
            choose_partition_bits(column, num_partitions=fanout)
        )
    except ConfigurationError:
        return RadixPartitioner(PartitionBits(shift=0, bits=1, offset=0))


@dataclass
class ShardCalibration:
    """Replayed per-lookup counter rates of one shard's index.

    ``per_lookup`` holds the event-simulated counters of one traced,
    partition-ordered lookup, already divided by the sample width; a
    window of W tuples costs ``per_lookup.scaled(W)`` plus the analytic
    TLB share (which depends on W and is added per window).
    """

    per_lookup: PerfCounters
    sample_lookups: int


class Shard:
    """One simulated GPU serving a contiguous key range of R."""

    def __init__(
        self,
        shard_id: int,
        relation: Relation,
        index: Index,
        base_position: int,
        lower_key: int,
        upper_key: int,
    ):
        self.shard_id = shard_id
        self.relation = relation
        self.index = index
        self.base_position = base_position
        #: Inclusive lower / exclusive upper bound of the served keys.
        self.lower_key = lower_key
        self.upper_key = upper_key
        self.partitioner = _shard_partitioner(relation.column)
        self._machine: Optional[MachineModel] = None
        self._calibration: Optional[ShardCalibration] = None
        #: Reused partition-order scratch for :meth:`probe` (grows to the
        #: widest window seen; never escapes the method).
        self._ordered = np.empty(0, dtype=np.int64)
        #: Sorted buffer of online updates, reconciled into every probe.
        self.delta = DeltaBuffer()
        #: After a compaction the base slice no longer maps to a dense
        #: global range: each local position carries an explicit global
        #: row id here.  ``None`` means the seed layout (dense
        #: ``base_position + local``) still holds.
        self._row_ids: Optional[np.ndarray] = None

    @property
    def num_tuples(self) -> int:
        return self.relation.num_tuples

    def probe(self, keys: np.ndarray) -> np.ndarray:
        """Partition-ordered probe of one window; global positions.

        Mirrors one window of :class:`~repro.join.window.WindowedINLJ`:
        radix-partition the window's keys, look them up in partition
        order, then unscramble back to arrival order.  Misses stay -1;
        hits are offset to global R positions.
        """
        keys = np.asarray(keys)
        count = len(keys)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        output = self.partitioner.partition(keys)
        if len(self._ordered) < count:
            self._ordered = np.empty(count, dtype=np.int64)
        # Fused kernel probe into the reused partition-order scratch,
        # then one unscramble scatter into the window's result array
        # (which the service later lands in the request's single
        # preallocated positions buffer).
        self.index.probe_batch(output.keys, self._ordered)
        positions = np.empty(count, dtype=np.int64)
        positions[output.source_indices] = self._ordered[:count]
        matched = positions >= 0
        if self._row_ids is None:
            positions[matched] += self.base_position
        else:
            positions[matched] = self._row_ids[positions[matched]]
        # Delta tuples are newer than any base answer: reconcile the
        # window against the buffered updates, newest-wins.
        self.delta.lookup_into(keys, positions)
        return positions

    # ------------------------------------------------------------------
    # Online updates (delta tier).
    # ------------------------------------------------------------------

    def apply_updates(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Absorb one update window into the shard's delta buffer."""
        self.delta.apply(keys, values)

    def compact(self) -> int:
        """Fold the delta tier into the base index; returns merged count.

        Merges the buffered ``(key, row id)`` pairs with the base slice
        (newest-wins), rebuilds the relation, index, and partitioner
        over the merged run, and invalidates the cached calibration so
        the next window reprices against the new structure.  The merge
        is content-determined -- every replica of a shard compacts to
        the same state whatever its traffic history -- which is what
        keeps served positions replica-independent.
        """
        delta_keys, delta_values = self.delta.drain()
        if len(delta_keys) == 0:
            return 0
        base_keys = self.relation.column.key_at(
            np.arange(self.num_tuples, dtype=np.int64)
        )
        if self._row_ids is None:
            base_values = self.base_position + np.arange(
                self.num_tuples, dtype=np.int64
            )
        else:
            base_values = self._row_ids
        merged_keys, merged_values = merge_newest_wins(
            base_keys, base_values, delta_keys, delta_values
        )
        self.relation = Relation(
            name=self.relation.name, column=MaterializedColumn(merged_keys)
        )
        self.index = type(self.index)(self.relation)
        self.partitioner = _shard_partitioner(self.relation.column)
        self._row_ids = merged_values
        self._machine = None
        self._calibration = None
        return len(delta_keys)

    # ------------------------------------------------------------------
    # Perf calibration (replayed counters).
    # ------------------------------------------------------------------

    def calibrate(
        self,
        spec: SystemSpec = V100_NVLINK2,
        sim: SimulationConfig = CALIBRATION_SIM,
    ) -> ShardCalibration:
        """Replay a traced, sorted member-key sample on a fresh machine.

        The first call builds the shard's machine model, places the
        sub-relation and index in simulated host memory, traces a
        deterministic evenly-spaced member sample (sorted keys == the
        state after radix partitioning), and replays it through the
        cache hierarchy.  Subsequent calls return the cached rates.
        """
        if self._calibration is not None:
            return self._calibration
        machine = MachineModel(spec, sim)
        self.relation.place(machine.memory, MemorySpace.HOST)
        self.index.place(machine.memory)
        count = min(sim.probe_sample, self.num_tuples)
        sample_positions = np.linspace(
            0, self.num_tuples - 1, num=count, dtype=np.int64
        )
        sample_keys = self.relation.column.key_at(sample_positions)
        machine.reset_hierarchy()
        lookup = self.index.trace_lookups(sample_keys)
        raw = machine.simulate_lookups(lookup.trace, simulate_tlb=False)
        raw.simt_instructions = lookup.simt.warp_instructions
        raw.divergence_replays = lookup.simt.divergence_replays
        scaled = machine.scale_lookup_counters(
            raw, float(count), replay_factor=self.index.tlb_replay_factor
        )
        self._machine = machine
        self._calibration = ShardCalibration(
            per_lookup=scaled.scaled(1.0 / count), sample_lookups=count
        )
        return self._calibration

    def window_counters(
        self,
        window_tuples: int,
        spec: SystemSpec = V100_NVLINK2,
        sim: SimulationConfig = CALIBRATION_SIM,
    ) -> PerfCounters:
        """Replayed counters of one ``window_tuples``-wide probe window."""
        if window_tuples <= 0:
            raise ConfigurationError(
                f"window tuple count must be positive, got {window_tuples}"
            )
        calibration = self.calibrate(spec, sim)
        counters = calibration.per_lookup.scaled(float(window_tuples))
        machine = self._machine
        assert machine is not None  # calibrate() always sets it
        gpu = spec.gpu
        sweep_pages = self.index.expected_sweep_pages(
            window_lookups=float(window_tuples),
            page_bytes=gpu.tlb_entry_bytes,
            l2_bytes=gpu.l2_bytes,
            cacheline_bytes=gpu.cacheline_bytes,
        )
        counters.add(
            machine.analytic_tlb_counters(
                sweep_pages, replay_factor=self.index.tlb_replay_factor
            )
        )
        counters.add(
            self.partitioner.partition_counters(float(window_tuples))
        )
        return counters


class ShardPlan:
    """A range-sharded layout of one relation across N simulated GPUs."""

    def __init__(self, shards: List[Shard], column: Column):
        if not shards:
            raise ConfigurationError("a shard plan needs at least one shard")
        self.shards = shards
        self.column = column
        #: Lower key bound of each shard; routing searchsorts this.
        self._lower_bounds = np.asarray(
            [shard.lower_key for shard in shards], dtype=np.uint64
        )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def route(self, keys: np.ndarray) -> np.ndarray:
        """Shard id of each probe key (vectorized).

        Keys below the first shard's range route to shard 0 and keys
        above the last route to the last shard; both are guaranteed
        misses there, which keeps routing total without a reject path.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        ids = np.searchsorted(self._lower_bounds, keys, side="right") - 1
        return np.clip(ids, 0, self.num_shards - 1).astype(np.int64)

    def split(
        self, keys: np.ndarray, indices: np.ndarray
    ) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        """Scatter a request into per-shard (shard_id, keys, indices).

        Intra-shard arrival order is preserved (stable grouping), so a
        shard's stream is the original stream filtered to its range --
        the property the tumbling batcher's window boundaries rely on.
        """
        ids = self.route(keys)
        parts: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for shard_id in np.unique(ids):
            mask = ids == shard_id
            parts.append((int(shard_id), keys[mask], indices[mask]))
        return parts


def range_shard(
    relation: Relation,
    num_shards: int,
    index_cls: type,
    max_tuples: int = 2**22,
) -> ShardPlan:
    """Range-shard ``relation`` into ``num_shards`` per-shard indexes.

    Shard boundaries are equal position splits of the sorted column
    (equal data per simulated GPU).  Shard columns are materialized
    slices, so any :mod:`repro.indexes` class works per shard;
    ``max_tuples`` guards against accidentally materializing a
    paper-scale virtual column.
    """
    if num_shards < 1:
        raise ConfigurationError(
            f"shard count must be >= 1, got {num_shards}"
        )
    column = relation.column
    n = len(column)
    if n > max_tuples:
        raise ConfigurationError(
            f"refusing to materialize {n} tuples for sharding "
            f"(max_tuples={max_tuples}); serve benches use reduced R"
        )
    num_shards = min(num_shards, n)
    cuts = [(n * s) // num_shards for s in range(num_shards + 1)]
    shards: List[Shard] = []
    for shard_id in range(num_shards):
        lo, hi = cuts[shard_id], cuts[shard_id + 1]
        keys = column.key_at(np.arange(lo, hi, dtype=np.int64))
        sub_relation = Relation(
            name=f"{relation.name}.shard{shard_id}",
            column=MaterializedColumn(keys),
        )
        upper = (
            int(column.key_at(np.asarray([hi]))[0])
            if hi < n
            else int(keys[-1]) + 1
        )
        shards.append(
            Shard(
                shard_id=shard_id,
                relation=sub_relation,
                index=index_cls(sub_relation),
                base_position=lo,
                lower_key=int(keys[0]),
                upper_key=upper,
            )
        )
    return ShardPlan(shards, column)


def fallback_shard(relation: Relation, index_cls: type) -> Shard:
    """A single shard over the whole relation: the degraded path.

    When a shard fails permanently, its traffic falls back to this
    unsharded index -- slower (taller structure, whole-relation span)
    but correct, so results never change under degradation.
    """
    column = relation.column
    keys = column.key_at(np.arange(len(column), dtype=np.int64))
    full = Relation(
        name=f"{relation.name}.fallback", column=MaterializedColumn(keys)
    )
    return Shard(
        shard_id=-1,
        relation=full,
        index=index_cls(full),
        base_position=0,
        lower_key=int(keys[0]),
        upper_key=int(keys[-1]) + 1,
    )
