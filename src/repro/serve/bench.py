"""``repro serve-bench``: sweep the serving layer, write BENCH JSON.

Sweeps shard count x window size x Zipf skew over a reduced relation and
reports, per sweep point, the serving simulation's makespan, throughput,
latency percentiles, admission tallies, and per-shard ``serve.*``
counters (including each shard's aggregated replay :class:`PerfCounters`).

Unlike ``repro bench`` -- which times the *host* and therefore reads the
wall clock -- every number here is simulated, so the payload carries no
platform fields and two runs with the same seed are **bit-identical**;
CI diffs the file directly.  Every request is also checked against the
workload generator's ground-truth positions, so the bench doubles as an
end-to-end differential test of the sharded path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..data.generator import WorkloadConfig, make_build_relation, make_probe_keys
from ..errors import ConfigurationError, SimulationError
from ..experiments.common import map_tasks, resolve_workers
from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..resilience import faults
from ..indexes import (
    BinarySearchIndex,
    BPlusTreeIndex,
    HarmoniaIndex,
    RadixSplineIndex,
)
from ..ioutil import atomic_write_json
from ..perf.model import CostModel
from ..units import KEY_BYTES, KIB
from ..workloads.updates import SortedArrayOracle, make_update_stream
from .executor import (
    KERNELS_PER_WINDOW,
    ReplicatedShardExecutor,
    ShardExecutor,
)
from .replica import replicate
from .service import ProbeRequest, ServeReport, ShardedIndexService
from .shard import CALIBRATION_SIM, fallback_shard, range_shard

#: CLI index names (the four paper indexes).
INDEX_BY_NAME: Dict[str, Type] = {
    "binary-search": BinarySearchIndex,
    "btree": BPlusTreeIndex,
    "harmonia": HarmoniaIndex,
    "radix-spline": RadixSplineIndex,
}

#: Default sweep axes: shard counts, window sizes (KiB), Zipf thetas.
DEFAULT_SHARDS = (1, 2, 4)
DEFAULT_WINDOW_KIB = (4, 16)
DEFAULT_ZIPF = (0.0, 1.0)

#: Default reduced workload: 2^16 R tuples, 64 requests x 512 keys.
DEFAULT_R_TUPLES = 2**16
DEFAULT_REQUESTS = 64
DEFAULT_REQUEST_TUPLES = 512

#: Fraction of modelled shard capacity the arrival schedule offers.
#: Below 1.0 queues stay bounded; the backlog bound handles bursts.
DEFAULT_UTILIZATION = 0.8

#: Per-shard backlog bound, in windows worth of tuples.
BACKLOG_WINDOWS = 8

#: Default update-fraction axis: the read-only sweep of PR 5.
DEFAULT_UPDATE_FRACTIONS = (0.0,)


def _arrival_interval(
    plan, window_tuples: int, request_tuples: int, spec: SystemSpec
) -> float:
    """Deterministic open-loop arrival spacing at the target load.

    Models the fleet's service rate from shard 0's calibrated window
    price (all shards serve near-equal slices of R, so one shard is a
    good stand-in) and spaces arrivals so the offered tuple rate is
    ``DEFAULT_UTILIZATION`` of it.
    """
    cost = CostModel(spec)
    window_seconds = (
        cost.probe_stage_time(plan.shards[0].window_counters(window_tuples))
        + KERNELS_PER_WINDOW * cost.constants.kernel_launch_seconds
    )
    tuples_per_second = (
        plan.num_shards * window_tuples / max(window_seconds, 1e-12)
    )
    return request_tuples / (tuples_per_second * DEFAULT_UTILIZATION)


def _latency_summary(report: ServeReport) -> Dict[str, float]:
    latencies = np.asarray(report.latencies, dtype=np.float64)
    if len(latencies) == 0:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "p50": float(np.percentile(latencies, 50)),
        "p95": float(np.percentile(latencies, 95)),
        "p99": float(np.percentile(latencies, 99)),
        "max": float(latencies.max()),
    }


def _per_shard_metrics(report: ServeReport) -> Dict[str, Dict[str, object]]:
    """The ``serve.*`` metric block of one sweep point, per shard."""
    metrics: Dict[str, Dict[str, object]] = {}
    for shard_id, stats in sorted(report.shard_stats.items()):
        replay = {
            name: round(value, 6)
            for name, value in sorted(stats.counters.as_dict().items())
        }
        metrics[str(shard_id)] = {
            "serve.windows": stats.windows,
            "serve.full_windows": stats.full_windows,
            "serve.lookups": stats.lookups,
            "serve.matches": stats.matches,
            "serve.retries": stats.retries,
            "serve.degraded_windows": stats.degraded_windows,
            "serve.failovers": stats.failovers,
            "serve.deferred_windows": stats.deferred_windows,
            "serve.queue_wait_seconds": round(stats.queue_wait_seconds, 9),
            "serve.busy_seconds": round(stats.busy_seconds, 9),
            "serve.replay": replay,
        }
    return metrics


def _degraded_block(executor) -> Dict[str, object]:
    """The per-row ``degraded`` payload: fallback traffic, failovers,
    recoveries, and the full per-replica health-transition timeline.

    Works for both executors: the PR-5 :class:`ShardExecutor` has no
    replicas, so everything but its fallback tally reads as zero/empty.
    """
    health = getattr(executor, "health", None)
    return {
        "fallback_windows": getattr(executor, "fallback_windows", 0),
        "failovers": getattr(executor, "failovers", 0),
        "recoveries": getattr(executor, "recoveries", 0),
        "deferred_windows": getattr(executor, "deferrals", 0),
        "health_transitions": (
            health.transitions() if health is not None else []
        ),
    }


def _check_against_oracle(
    report: ServeReport, requests: List[ProbeRequest], expected: np.ndarray
) -> None:
    """Assert every served request matches the generator ground truth."""
    for request, outcome in zip(requests, report.outcomes):
        if not outcome.admitted:
            continue
        truth = expected[
            request.request_id * len(request.keys) : (request.request_id + 1)
            * len(request.keys)
        ]
        if outcome.positions is None or not np.array_equal(
            outcome.positions, truth
        ):
            raise SimulationError(
                f"served positions diverge from the oracle for request "
                f"{request.request_id}"
            )


def _check_mixed_against_oracle(
    report: ServeReport, requests: List[ProbeRequest], base_keys: np.ndarray
) -> None:
    """Replay admitted requests against the sorted-array-with-updates
    oracle, in arrival order.

    Per-key ordering in the serve path equals arrival order (stable
    routing + kind-homogeneous FIFO windows), so applying admitted
    updates in request order and checking each probe against the
    oracle's state at that point is exact.  Rejected updates were never
    applied (admission is whole-request), so the oracle skips them too.
    """
    oracle = SortedArrayOracle(base_keys)
    for request, outcome in zip(requests, report.outcomes):
        if not outcome.admitted:
            continue
        if request.kind == "update":
            assert request.values is not None
            if outcome.positions is None or not np.array_equal(
                outcome.positions, request.values
            ):
                raise SimulationError(
                    f"update request {request.request_id} was not "
                    "acknowledged with its row ids"
                )
            oracle.apply(request.keys, request.values)
        else:
            expected = oracle.lookup(request.keys)
            if outcome.positions is None or not np.array_equal(
                outcome.positions, expected
            ):
                raise SimulationError(
                    "served positions diverge from the update oracle "
                    f"for request {request.request_id}"
                )


def _updates_block(executor, plan, replicated: bool) -> Dict[str, object]:
    """The per-row ``updates`` payload block (zeros on read-only runs)."""
    compactions = list(getattr(executor, "compactions", []))
    by_strategy: Dict[str, int] = {}
    for event in compactions:
        strategy = str(event["strategy"])
        by_strategy[strategy] = by_strategy.get(strategy, 0) + 1
    depths: Dict[str, int] = {}
    if replicated:
        for shard_id in range(plan.num_shards):
            for replica in plan.replicas(shard_id):
                depths[f"{shard_id}:{replica.replica_id}"] = (
                    replica.shard.delta.num_tuples
                )
    else:
        for shard in plan.shards:
            depths[f"{shard.shard_id}:-1"] = shard.delta.num_tuples
    return {
        "update_windows": getattr(executor, "update_windows", 0),
        "update_tuples": getattr(executor, "update_tuples", 0),
        "delta_depth": depths,
        "delta_peak": getattr(executor, "delta_peak", 0),
        "read_amplification_peak": round(
            getattr(executor, "read_amplification_peak", 0.0), 6
        ),
        "compactions": compactions,
        "compactions_by_strategy": dict(sorted(by_strategy.items())),
        "compactions_completed": getattr(
            executor, "compactions_completed", 0
        ),
    }


def run_sweep_point(
    relation,
    probes,
    num_shards: int,
    window_kib: int,
    zipf_theta: float,
    index_cls: Type,
    request_tuples: int,
    spec: SystemSpec = V100_NVLINK2,
    replicas: int = 1,
    replica_index_classes: Optional[Sequence[Type]] = None,
    chaos_text: str = "",
    update_fraction: float = 0.0,
    seed: int = 42,
) -> dict:
    """Serve one (shards, window, skew) configuration; returns its row.

    ``replicas=1`` with no chaos keeps the PR-5 single-copy executor --
    bit-identical rows to earlier payloads aside from the additive
    ``degraded`` block.  ``replicas>1`` (or any chaos schedule) serves
    through :class:`ReplicatedShardExecutor`; ``chaos_text`` carries a
    ``repro-chaos/1`` schedule as JSON text so sweep tasks stay plain
    picklable tuples.  ``update_fraction > 0`` interleaves update
    requests into the stream (forcing the replicated executor, which
    owns compaction scheduling) and swaps the ground-truth check for
    the sorted-array-with-updates oracle.
    """
    window_bytes = window_kib * KIB
    replicated = (
        replicas > 1
        or bool(chaos_text)
        or bool(replica_index_classes)
        or update_fraction > 0.0
    )
    if replicated:
        index_classes = (
            list(replica_index_classes)
            if replica_index_classes
            else [index_cls] * replicas
        )
        if len(index_classes) != replicas:
            raise ConfigurationError(
                f"replica index list names {len(index_classes)} replicas "
                f"but replicas={replicas}"
            )
        plan = replicate(relation, num_shards, index_classes)
        controller = None
        if chaos_text:
            import json as _json

            from ..resilience.chaos import ChaosController, ChaosSchedule

            controller = ChaosController(
                ChaosSchedule.from_dict(_json.loads(chaos_text))
            )
        executor = ReplicatedShardExecutor(
            plan,
            fallback_shard(relation, index_classes[0]),
            chaos=controller,
        )
    else:
        plan = range_shard(relation, num_shards, index_cls)
        executor = ShardExecutor(plan, fallback_shard(relation, index_cls))
    service = ShardedIndexService(
        plan,
        executor,
        window_bytes=window_bytes,
        max_backlog_tuples=BACKLOG_WINDOWS * max(1, window_bytes // KEY_BYTES),
    )
    interval = _arrival_interval(
        plan, max(1, window_bytes // KEY_BYTES), request_tuples, spec
    )
    num_requests = len(probes.keys) // request_tuples
    if update_fraction > 0.0:
        base_keys = relation.column.key_at(
            np.arange(relation.num_tuples, dtype=np.int64)
        )
        stream = make_update_stream(
            base_keys,
            probes.keys,
            num_requests,
            request_tuples,
            update_fraction,
            seed,
        )
        requests = [
            ProbeRequest(
                request_id=i,
                keys=stream.keys[i],
                arrival=i * interval,
                kind=stream.kinds[i],
                values=stream.values[i],
            )
            for i in range(num_requests)
        ]
        report = service.run(requests)
        _check_mixed_against_oracle(report, requests, base_keys)
    else:
        requests = [
            ProbeRequest(
                request_id=i,
                keys=probes.keys[
                    i * request_tuples : (i + 1) * request_tuples
                ],
                arrival=i * interval,
            )
            for i in range(num_requests)
        ]
        report = service.run(requests)
        _check_against_oracle(report, requests, probes.expected_positions)
    return {
        "shards": num_shards,
        "window_kib": window_kib,
        "zipf_theta": zipf_theta,
        "update_fraction": update_fraction,
        "replicas": replicas if replicated else 1,
        "requests": num_requests,
        "admitted": report.admitted_requests,
        "rejected": report.rejected_requests,
        "arrival_interval_seconds": round(interval, 12),
        "makespan_seconds": round(report.makespan_seconds, 9),
        "total_lookups": report.total_lookups,
        "throughput_lookups_per_second": round(
            report.throughput_lookups_per_second, 3
        ),
        "latency_seconds": {
            name: round(value, 9)
            for name, value in _latency_summary(report).items()
        },
        "failed_shards": executor.failed_shards,
        "degraded": _degraded_block(executor),
        "updates": _updates_block(executor, plan, replicated),
        "per_shard": _per_shard_metrics(report),
    }


#: One serve sweep point as a picklable task for the resilient pool:
#: (num_shards, window_kib, zipf_theta, index_name, r_tuples, requests,
#: request_tuples, seed, spec, replicas, replica_indexes, chaos_text,
#: update_fraction).
ServeTask = Tuple[
    int, int, float, str, int, int, int, int, SystemSpec,
    int, Tuple[str, ...], str, float,
]


def serve_task_label(task: ServeTask) -> str:
    """Short human/fault-matchable name for one serve sweep point."""
    num_shards, window_kib, theta, index = task[:4]
    replicas = task[9]
    update_fraction = task[12]
    suffix = f":r{replicas}" if replicas > 1 else ""
    if update_fraction > 0.0:
        suffix += f":u{update_fraction}"
    return f"serve:{index}:{num_shards}s:{window_kib}k:z{theta}{suffix}"


#: Per-process memo of generated serve workloads, keyed by workload
#: config.  The parent reuses one (relation, probes) pair across every
#: serial point of a theta, and each pool worker regenerates a workload
#: at most once for its share of the sweep.
_WORKLOAD_MEMO: Dict[tuple, tuple] = {}


def _serve_workload(
    r_tuples: int, s_tuples: int, zipf_theta: float, seed: int
) -> tuple:
    key = (r_tuples, s_tuples, zipf_theta, seed)
    if key not in _WORKLOAD_MEMO:
        config = WorkloadConfig(
            r_tuples=r_tuples,
            s_tuples=s_tuples,
            zipf_theta=zipf_theta,
            seed=seed,
        )
        relation = make_build_relation(config)
        probes = make_probe_keys(relation.column, config)
        _WORKLOAD_MEMO[key] = (relation, probes)
    return _WORKLOAD_MEMO[key]


def run_serve_point_task(task: ServeTask) -> dict:
    """Serve one sweep task; the resilient pool's unit of work.

    Deterministic given the task alone: the workload derives from the
    task's seed and the serving simulation reads no ambient state, so
    serial and pooled sweeps produce bit-identical rows (the payload is
    diffed for exactly that in the serve tests).
    """
    (
        num_shards,
        window_kib,
        zipf_theta,
        index,
        r_tuples,
        requests,
        request_tuples,
        seed,
        spec,
        replicas,
        replica_indexes,
        chaos_text,
        update_fraction,
    ) = task
    faults.check("point", serve_task_label(task))
    relation, probes = _serve_workload(
        r_tuples, requests * request_tuples, zipf_theta, seed
    )
    return run_sweep_point(
        relation,
        probes,
        num_shards=num_shards,
        window_kib=window_kib,
        zipf_theta=zipf_theta,
        index_cls=INDEX_BY_NAME[index],
        request_tuples=request_tuples,
        spec=spec,
        replicas=replicas,
        replica_index_classes=(
            [INDEX_BY_NAME[name] for name in replica_indexes]
            if replica_indexes
            else None
        ),
        chaos_text=chaos_text,
        update_fraction=update_fraction,
        seed=seed,
    )


def run_serve_bench(
    shards: Sequence[int] = DEFAULT_SHARDS,
    window_kib: Sequence[int] = DEFAULT_WINDOW_KIB,
    zipf_thetas: Sequence[float] = DEFAULT_ZIPF,
    index: str = "binary-search",
    r_tuples: int = DEFAULT_R_TUPLES,
    requests: int = DEFAULT_REQUESTS,
    request_tuples: int = DEFAULT_REQUEST_TUPLES,
    seed: int = 42,
    spec: SystemSpec = V100_NVLINK2,
    workers: int = 0,
    replicas: int = 1,
    replica_indexes: Optional[Sequence[str]] = None,
    chaos_schedule: Optional[str] = None,
    update_fractions: Sequence[float] = DEFAULT_UPDATE_FRACTIONS,
) -> dict:
    """Run the full sweep; returns the JSON-ready payload.

    Sweep points fan out across the resilient worker pool
    (:func:`repro.experiments.common.map_tasks`): ``workers=0`` (the
    default) resolves to one process per CPU core, ``1`` forces the
    serial path, and either way the payload is bit-identical -- rows
    come back in task order and every row is a pure function of its
    task.  The payload deliberately carries no worker-count field.

    ``replicas``/``replica_indexes`` serve each point through the
    replicated executor; ``chaos_schedule`` (a path) replays the same
    scripted fault schedule inside every sweep point.
    ``update_fractions`` adds the mixed read/write axis: each fraction
    re-runs the sweep with that share of requests as updates.
    """
    for fraction in update_fractions:
        if fraction < 0.0 or fraction > 1.0:
            raise ConfigurationError(
                f"update fractions must be in [0, 1], got {fraction}"
            )
    if index not in INDEX_BY_NAME:
        raise ConfigurationError(
            f"unknown index {index!r}; choose from "
            f"{', '.join(sorted(INDEX_BY_NAME))}"
        )
    if replicas < 1:
        raise ConfigurationError(
            f"replica count must be >= 1, got {replicas}"
        )
    names: Tuple[str, ...] = tuple(replica_indexes or ())
    unknown = sorted(set(names) - set(INDEX_BY_NAME))
    if unknown:
        raise ConfigurationError(
            f"unknown replica index names {unknown}; choose from "
            f"{', '.join(sorted(INDEX_BY_NAME))}"
        )
    if names and len(names) != replicas:
        raise ConfigurationError(
            f"--replica-indexes names {len(names)} replicas but "
            f"--replicas is {replicas}"
        )
    chaos_text = ""
    if chaos_schedule:
        # Validate eagerly (a bad file should fail the run, not every
        # worker) and ship the schedule as canonical JSON text so the
        # task tuples stay picklable.
        import json as _json

        from ..resilience.chaos import ChaosSchedule

        chaos_text = _json.dumps(
            ChaosSchedule.load(chaos_schedule).as_dict(), sort_keys=True
        )
    resolved = resolve_workers(workers)
    tasks: List[ServeTask] = [
        (
            num_shards,
            kib,
            theta,
            index,
            r_tuples,
            requests,
            request_tuples,
            seed,
            spec,
            replicas,
            names,
            chaos_text,
            float(fraction),
        )
        for fraction in update_fractions
        for theta in zipf_thetas
        for num_shards in shards
        for kib in window_kib
    ]
    sweeps = map_tasks(
        run_serve_point_task,
        tasks,
        workers=resolved,
        label_fn=serve_task_label,
    )
    return {
        "benchmark": "repro-serve",
        "index": index,
        "replicas": replicas,
        "replica_indexes": list(names) if names else [index] * replicas,
        "chaos_schedule": chaos_schedule or "",
        "update_fractions": [float(f) for f in update_fractions],
        "r_tuples": r_tuples,
        "requests": requests,
        "request_tuples": request_tuples,
        "seed": seed,
        "utilization": DEFAULT_UTILIZATION,
        "backlog_windows": BACKLOG_WINDOWS,
        "calibration_probe_sample": CALIBRATION_SIM.probe_sample,
        "sweeps": sweeps,
    }


def write_serve_bench(payload: dict, path: str) -> None:
    atomic_write_json(payload=payload, path=path, sort_keys=False)


def main(
    shards: Sequence[int] = DEFAULT_SHARDS,
    window_kib: Sequence[int] = DEFAULT_WINDOW_KIB,
    zipf_thetas: Sequence[float] = DEFAULT_ZIPF,
    index: str = "binary-search",
    seed: int = 42,
    json_path: Optional[str] = None,
    workers: int = 0,
    replicas: int = 1,
    replica_indexes: Optional[Sequence[str]] = None,
    chaos_schedule: Optional[str] = None,
    update_fractions: Sequence[float] = DEFAULT_UPDATE_FRACTIONS,
) -> dict:
    """CLI entry point: run the sweep, print a summary, optionally write."""
    payload = run_serve_bench(
        shards=shards,
        window_kib=window_kib,
        zipf_thetas=zipf_thetas,
        index=index,
        seed=seed,
        workers=workers,
        replicas=replicas,
        replica_indexes=replica_indexes,
        chaos_schedule=chaos_schedule,
        update_fractions=update_fractions,
    )
    for row in payload["sweeps"]:
        degraded = row["degraded"]
        updates = row["updates"]
        extras = ""
        if degraded["failovers"] or degraded["recoveries"]:
            extras = (
                f", failovers {degraded['failovers']}, "
                f"recoveries {degraded['recoveries']}"
            )
        if row["update_fraction"] > 0.0:
            extras += (
                f", updates {updates['update_tuples']}, "
                f"compactions {len(updates['compactions'])}"
            )
        print(
            f"shards={row['shards']} window={row['window_kib']}KiB "
            f"theta={row['zipf_theta']} uf={row['update_fraction']}: "
            f"{row['throughput_lookups_per_second']:.0f} lookups/s, "
            f"p99 {row['latency_seconds']['p99'] * 1e6:.1f}us, "
            f"admitted {row['admitted']}/{row['requests']}{extras}"
        )
    if json_path:
        write_serve_bench(payload, json_path)
    return payload
