"""Window execution: probe, price, retry, fail over, degrade.

The executor runs one closed window on its shard and answers two
questions: *what are the positions* (by actually probing the simulated
index) and *how long did it take* (by pricing the shard's replayed
window counters through the cost model -- simulated seconds, never wall
clock).  Failures are injected through the fault sites and absorbed by
the resilience layer's retry policy; backoff sleeps are captured into
*simulated* delay instead of sleeping, so fault plans stretch latency
without touching the wall clock.

Two executors share that contract:

* :class:`ShardExecutor` (PR 5): one index per range.  A shard that
  exhausts its retry budget is marked failed and its traffic degrades
  to the single-shard fallback index.
* :class:`ReplicatedShardExecutor`: K replicas per range behind a
  cost-based router.  A window goes to the cheapest healthy replica
  (probation replicas first -- the half-open trial); a replica that
  exhausts its budget is declared dead, its rebuild is priced and
  scheduled on the simulated clock, and the window fails over to the
  next candidate.  With every replica of a range down, the router
  weighs *waiting for the earliest rebuild* against *probing the
  fallback* and either defers the window (:class:`WindowDeferred`) or
  degrades.

Either way a window's positions are identical no matter which replica
or fallback served it -- all copies return global R positions -- which
is the invariance the chaos harness checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..config import SimulationConfig
from ..errors import ConfigurationError, SweepExecutionError
from ..hardware.counters import PerfCounters
from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..perf.model import CostModel
from ..resilience import faults
from ..resilience.retry import RetryPolicy, active_policy, with_retry
from ..units import KEY_BYTES
from .batcher import Window
from .delta import (
    DEFAULT_COMPACTION_POLICY,
    CompactionPolicy,
    read_amplification,
)
from .health import DEFAULT_FAILURE_THRESHOLD, HealthTracker, PROBATION
from .recovery import (
    CompactionCost,
    RebuildCost,
    price_compaction,
    price_rebuild,
)
from .replica import ReplicatedPlan
from .shard import CALIBRATION_SIM, Shard, ShardPlan

#: Fault-injection site checked before every window probe.  Plans match
#: shards via the label, e.g. ``shard:raise@2:match=shard1``.
FAULT_SITE = "shard"

#: Fault site of the replicated path; labels name the replica, e.g.
#: ``replica:raise@2:match=shard1r0``.
REPLICA_FAULT_SITE = "replica"

#: A window executes as two serial kernels, mirroring the windowed
#: INLJ's partition-then-probe stage pair (Section 5).
KERNELS_PER_WINDOW = 2

#: A window defers to a pending rebuild at most this many times before
#: it must take the fallback -- the terminating backstop under fault
#: schedules that keep re-killing the recovering replica.
MAX_WINDOW_DEFERRALS = 2


@dataclass
class WindowResult:
    """Outcome of executing one window.

    ``service_seconds`` is pure simulated time: the cost model's price
    for the window's replayed counters, two kernel launches, and any
    retry backoff (captured, not slept).
    """

    window: Window
    positions: np.ndarray
    service_seconds: float
    counters: PerfCounters
    retries: int = 0
    degraded: bool = False
    #: Filled in by the service: seconds the window sat queued.
    queue_wait: float = 0.0
    #: Replica that served the window (-1: unreplicated or fallback).
    replica: int = -1
    #: Replicas that died under this window before one answered.
    failovers: int = 0


@dataclass(frozen=True)
class WindowDeferred:
    """The router chose to wait for a rebuild instead of degrading.

    The service re-queues the window and retries it once the simulated
    clock reaches ``ready_at`` (the earliest pending rebuild of the
    window's shard).
    """

    window: Window
    ready_at: float


def _fallback_probe(fallback: Shard, window: Window) -> np.ndarray:
    """Degraded-path probe, attributed to the ``serve_fallback`` phase.

    The fallback index bypasses the per-shard counters, so degraded
    traffic gets its own ``serve.fallback.*`` names -- visible in
    ``repro obs report`` instead of silently folded into healthy
    traffic.  The fallback spans all of R, so its positions are already
    global: identical to the healthy shard's answer.
    """
    with obs.phase("serve_fallback"):
        with obs.span("serve.fallback.probe", shard=window.shard_id):
            positions = fallback.probe(window.keys)
        if obs.enabled():
            obs.add("serve.fallback.windows", shard=window.shard_id)
            obs.add(
                "serve.fallback.lookups", len(window), shard=window.shard_id
            )
    return positions


def _update_window_values(window: Window) -> np.ndarray:
    """The row ids an update window writes; raises on a probe window."""
    if window.kind != "update" or window.values is None:
        raise ConfigurationError(
            f"window of kind {window.kind!r} is not an executable update"
        )
    if len(window.values) != len(window.keys):
        raise ConfigurationError(
            f"update window carries {len(window.keys)} keys but "
            f"{len(window.values)} values"
        )
    return window.values


def _update_counters(
    window_tuples: int, delta_tuples_after: int
) -> PerfCounters:
    """Replay counters of absorbing one update window into a delta.

    The window ships its ``(key, row id)`` pairs over the interconnect
    (sequential scan) and merges them into the sorted buffer -- a pass
    over the post-merge delta.  Pure in (window width, resulting delta
    depth), so update timelines replay bit-identically.
    """
    width = float(window_tuples)
    depth = float(max(0, delta_tuples_after))
    return PerfCounters(
        scan_bytes=width * 2 * KEY_BYTES,
        memory_accesses=width + depth,
        remote_accesses=width,
        simt_instructions=width + depth,
    )


@dataclass
class ShardExecutor:
    """Executes windows against a :class:`ShardPlan` with a fallback."""

    plan: ShardPlan
    fallback: Shard
    spec: SystemSpec = V100_NVLINK2
    sim: SimulationConfig = CALIBRATION_SIM
    policy: Optional[RetryPolicy] = None
    _cost: CostModel = field(init=False)
    _failed: List[bool] = field(init=False)

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = active_policy()
        self._cost = CostModel(self.spec)
        self._failed = [False] * self.plan.num_shards
        self.fallback_windows = 0
        self.update_windows = 0
        self.update_tuples = 0

    def shard_failed(self, shard_id: int) -> bool:
        """True once ``shard_id`` exhausted its retry budget."""
        return self._failed[shard_id]

    @property
    def failed_shards(self) -> List[int]:
        return [sid for sid, down in enumerate(self._failed) if down]

    def execute(self, window: Window, now: float = 0.0) -> WindowResult:
        """Run one window; returns positions plus simulated timing.

        ``now`` is the dispatch timestamp on the simulated clock; the
        unreplicated executor does not use it (accepted so the service
        drives both executors identically).
        """
        del now
        if window.kind == "update":
            return self._execute_update(window)
        shard = self.plan.shards[window.shard_id]
        delays: List[float] = []
        degraded = self._failed[window.shard_id]

        def probe() -> np.ndarray:
            faults.check(FAULT_SITE, label=f"shard{window.shard_id}")
            return shard.probe(window.keys)

        positions: Optional[np.ndarray] = None
        assert self.policy is not None  # set in __post_init__
        if not degraded:
            try:
                positions = with_retry(
                    probe,
                    self.policy,
                    label=f"serve.shard{window.shard_id}",
                    sleep=delays.append,
                )
            except SweepExecutionError:
                self._failed[window.shard_id] = True
                degraded = True
                if obs.enabled():
                    obs.add("serve.shard_failures", shard=window.shard_id)
        if degraded:
            positions = _fallback_probe(self.fallback, window)
            self.fallback_windows += 1
        assert positions is not None
        active = self.fallback if degraded else shard
        counters = active.window_counters(len(window), self.spec, self.sim)
        service = (
            self._cost.probe_stage_time(counters)
            + KERNELS_PER_WINDOW * self._cost.constants.kernel_launch_seconds
            + sum(delays)
        )
        delta_counters = active.delta.read_counters(len(window))
        if delta_counters is not None:
            # Reconciling against a non-empty delta is a serial extra
            # stage: the probe result must exist before it is merged.
            service += self._cost.probe_stage_time(delta_counters)
            counters.add(delta_counters)
        if obs.enabled():
            if delays:
                obs.add(
                    "serve.retries", len(delays), shard=window.shard_id
                )
            if degraded:
                obs.add("serve.degraded_windows", shard=window.shard_id)
        return WindowResult(
            window=window,
            positions=positions,
            service_seconds=service,
            counters=counters,
            retries=len(delays),
            degraded=degraded,
        )

    def _execute_update(self, window: Window) -> WindowResult:
        """Absorb one update window into the shard's delta tier.

        Updates are host-authoritative: the window applies to the
        shard *and* the fallback copy unconditionally (no fault site,
        no retries), so degraded probe traffic keeps seeing every
        write.  The unreplicated executor never compacts -- compaction
        needs the simulated-clock event scheduling only the replicated
        executor has -- so its deltas persist for the run, still
        correct through the probe-side merge.
        """
        values = _update_window_values(window)
        shard = self.plan.shards[window.shard_id]
        shard.apply_updates(window.keys, values)
        self.fallback.apply_updates(window.keys, values)
        self.update_windows += 1
        self.update_tuples += len(window)
        counters = _update_counters(len(window), shard.delta.num_tuples)
        service = (
            self._cost.probe_stage_time(counters)
            + KERNELS_PER_WINDOW * self._cost.constants.kernel_launch_seconds
        )
        if obs.enabled():
            obs.add(
                "serve.delta.applied", len(window), shard=window.shard_id
            )
            obs.observe(
                "serve.delta.depth",
                shard.delta.num_tuples,
                shard=window.shard_id,
            )
        return WindowResult(
            window=window,
            positions=values.copy(),
            service_seconds=service,
            counters=counters,
        )


@dataclass
class ReplicatedShardExecutor:
    """Cost-routed window execution over replica sets with recovery.

    ``chaos`` is an optional scripted fault source (duck-typed against
    :class:`repro.resilience.chaos.ChaosController`): ``check_probe``
    is consulted before every replica probe attempt and ``on_restart``
    is notified when a rebuilt replica rejoins.
    """

    plan: ReplicatedPlan
    fallback: Shard
    spec: SystemSpec = V100_NVLINK2
    sim: SimulationConfig = CALIBRATION_SIM
    policy: Optional[RetryPolicy] = None
    failure_threshold: int = DEFAULT_FAILURE_THRESHOLD
    chaos: Optional[object] = None
    compaction_policy: CompactionPolicy = DEFAULT_COMPACTION_POLICY
    _cost: CostModel = field(init=False)

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = active_policy()
        self._cost = CostModel(self.spec)
        self.health = HealthTracker(
            self.plan.num_shards,
            self.plan.replicas_per_shard,
            failure_threshold=self.failure_threshold,
        )
        #: Simulated *base* window price per (shard, replica, window
        #: tuples); the delta reconciliation stage is priced fresh on
        #: top because delta depth changes with every update window.
        self._price_memo: Dict[Tuple[int, int, int], float] = {}
        self._fallback_price_memo: Dict[int, float] = {}
        #: Rebuild price per (shard, replica): invalidated only by a
        #: compaction, which changes the slice being rebuilt.
        self._rebuild_memo: Dict[Tuple[int, int], RebuildCost] = {}
        #: Newly scheduled simulated-clock completions for the service:
        #: (ready_at, key) where key is ``(shard, replica)`` for a
        #: rebuild or ``("compact", shard, replica)`` for a compaction.
        self._scheduled: List[Tuple[float, Tuple[Any, ...]]] = []
        #: Monotonic id of every executed window, chaos's batch handle.
        self._window_seq = 0
        #: In-flight compactions: (shard, replica) -> completion time.
        #: A compacting replica is unroutable until its merge lands.
        self._compacting: Dict[Tuple[int, int], float] = {}
        #: Simulated seconds each replica has spent reconciling probe
        #: windows against its delta -- the "rent" the priced
        #: compaction trigger weighs against the merge cost.
        self._delta_read_seconds: Dict[Tuple[int, int], float] = {}
        self.fallback_windows = 0
        self.failovers = 0
        self.recoveries = 0
        self.deferrals = 0
        self.update_windows = 0
        self.update_tuples = 0
        #: Scheduled compaction events, in schedule order (payload rows).
        self.compactions: List[Dict[str, object]] = []
        self.compactions_completed = 0
        self.delta_peak = 0
        self.read_amplification_peak = 0.0

    # ------------------------------------------------------------------
    # Pricing and routing.
    # ------------------------------------------------------------------

    def window_price(
        self, shard_id: int, replica_id: int, window_tuples: int
    ) -> float:
        """Simulated seconds for one replica to serve one window.

        The memoized base price plus a fresh delta-reconciliation
        stage: a replica carrying a deep delta is genuinely more
        expensive to route to, which is how reads feel the pressure
        that the compaction policy relieves.
        """
        key = (shard_id, replica_id, window_tuples)
        shard = self.plan.replica(shard_id, replica_id).shard
        if key not in self._price_memo:
            counters = shard.window_counters(
                window_tuples, self.spec, self.sim
            )
            self._price_memo[key] = (
                self._cost.probe_stage_time(counters)
                + KERNELS_PER_WINDOW
                * self._cost.constants.kernel_launch_seconds
            )
        return self._price_memo[key] + self._delta_stage_seconds(
            shard, window_tuples
        )

    def fallback_price(self, window_tuples: int) -> float:
        if window_tuples not in self._fallback_price_memo:
            counters = self.fallback.window_counters(
                window_tuples, self.spec, self.sim
            )
            self._fallback_price_memo[window_tuples] = (
                self._cost.probe_stage_time(counters)
                + KERNELS_PER_WINDOW
                * self._cost.constants.kernel_launch_seconds
            )
        return self._fallback_price_memo[
            window_tuples
        ] + self._delta_stage_seconds(self.fallback, window_tuples)

    def _delta_stage_seconds(
        self, shard: Shard, window_tuples: int
    ) -> float:
        """Priced delta-reconciliation stage of one window (0 if empty)."""
        counters = shard.delta.read_counters(window_tuples)
        if counters is None:
            return 0.0
        return self._cost.probe_stage_time(counters)

    def rebuild_cost(self, shard_id: int, replica_id: int) -> RebuildCost:
        key = (shard_id, replica_id)
        if key not in self._rebuild_memo:
            shard = self.plan.replica(shard_id, replica_id).shard
            self._rebuild_memo[key] = price_rebuild(
                shard, self.spec, self._cost.constants
            )
        return self._rebuild_memo[key]

    def route(self, shard_id: int, window_tuples: int) -> List[int]:
        """Serving candidates for one window, best first.

        Probation replicas lead (the half-open trial: a shard executes
        one window at a time, so probation-first ordering is exactly
        one in-flight trial); within a tier the cheapest priced replica
        wins, with replica id as the deterministic tiebreak.
        """
        ranked: List[Tuple[int, float, int]] = []
        for replica in self.plan.replicas(shard_id):
            if self.health.is_dead(shard_id, replica.replica_id):
                continue
            if (shard_id, replica.replica_id) in self._compacting:
                # Mid-merge: the replica's index is being rewritten.
                continue
            tier = (
                0
                if self.health.state(shard_id, replica.replica_id)
                == PROBATION
                else 1
            )
            ranked.append(
                (
                    tier,
                    self.window_price(
                        shard_id, replica.replica_id, window_tuples
                    ),
                    replica.replica_id,
                )
            )
        ranked.sort()
        return [replica_id for _, _, replica_id in ranked]

    # ------------------------------------------------------------------
    # Failure, recovery, and the service-facing hooks.
    # ------------------------------------------------------------------

    def _on_dead(self, shard_id: int, replica_id: int, now: float) -> None:
        """Price and schedule the dead replica's background rebuild."""
        cost = self.rebuild_cost(shard_id, replica_id)
        ready_at = now + cost.seconds
        self.health.schedule_rebuild(
            shard_id, replica_id, now, ready_at, detail=cost.describe()
        )
        self._scheduled.append((ready_at, (shard_id, replica_id)))
        if obs.enabled():
            obs.add("serve.rebuilds", shard=shard_id, replica=replica_id)
            obs.observe(
                "serve.rebuild_seconds",
                cost.seconds,
                shard=shard_id,
                replica=replica_id,
            )

    def take_scheduled(self) -> List[Tuple[float, Tuple[Any, ...]]]:
        """Drain completions (rebuilds, compactions) since the last call."""
        scheduled = self._scheduled
        self._scheduled = []
        return scheduled

    def handle_recovery(self, key: Tuple[Any, ...], now: float) -> bool:
        """A scheduled completion event fired.

        ``(shard, replica)`` keys are rebuild completions (the replica
        rejoins); ``("compact", shard, replica)`` keys are compaction
        completions (the merge lands).  Returns True when state
        actually transitioned (a stale completion is a no-op).
        """
        if len(key) == 3 and key[0] == "compact":
            return self._complete_compaction(int(key[1]), int(key[2]), now)
        shard_id, replica_id = key
        if not self.health.complete_rebuild(shard_id, replica_id, now):
            return False
        self.recoveries += 1
        if self.chaos is not None:
            self.chaos.on_restart(shard_id, replica_id, now)  # type: ignore[attr-defined]
        if obs.enabled():
            obs.add("serve.recoveries", shard=shard_id, replica=replica_id)
        return True

    # ------------------------------------------------------------------
    # Compaction: the priced fold of a replica's delta into its base.
    # ------------------------------------------------------------------

    def _evaluate_compaction(self, shard_id: int, now: float) -> None:
        """Schedule compactions whose trigger fired, rolling per shard.

        At most all-but-one *routable* replica of a shard compacts at a
        time (replicas have identical deltas, so triggers fire together;
        rolling keeps the shard serving without degrading).  A
        single-replica shard compacts anyway -- its windows then face
        the genuine defer-or-fallback cost decision.  Dead replicas
        compact freely: the merge is a host-side content operation.
        """
        replicas = list(self.plan.replicas(shard_id))
        available = sum(
            1
            for replica in replicas
            if not self.health.is_dead(shard_id, replica.replica_id)
            and (shard_id, replica.replica_id) not in self._compacting
        )
        for replica in replicas:
            key = (shard_id, replica.replica_id)
            if key in self._compacting:
                continue
            shard = replica.shard
            depth = shard.delta.num_tuples
            if depth == 0:
                continue
            amp = read_amplification(depth, shard.index.height)
            self.delta_peak = max(self.delta_peak, depth)
            self.read_amplification_peak = max(
                self.read_amplification_peak, amp
            )
            cost = price_compaction(
                shard, depth, self.spec, self._cost.constants
            )
            if not self.compaction_policy.should_compact(
                depth,
                amp,
                self._delta_read_seconds.get(key, 0.0),
                cost.seconds,
            ):
                continue
            routable = not self.health.is_dead(shard_id, replica.replica_id)
            if routable and available <= 1 and len(replicas) > 1:
                continue
            self._schedule_compaction(key, cost, depth, amp, now)
            if routable:
                available -= 1

    def _schedule_compaction(
        self,
        key: Tuple[int, int],
        cost: CompactionCost,
        depth: int,
        amp: float,
        now: float,
    ) -> None:
        shard_id, replica_id = key
        ready_at = now + cost.seconds
        self._compacting[key] = ready_at
        self._scheduled.append((ready_at, ("compact", shard_id, replica_id)))
        self.compactions.append(
            {
                "shard": shard_id,
                "replica": replica_id,
                "index": self.plan.replica(shard_id, replica_id).index_name,
                "strategy": cost.strategy,
                "delta_tuples": depth,
                "read_amplification": round(amp, 6),
                "scheduled_at": round(now, 9),
                "seconds": round(cost.seconds, 9),
            }
        )
        self.health.note(
            now, shard_id, replica_id, "compaction_scheduled", cost.describe()
        )
        if obs.enabled():
            obs.add(
                "serve.compaction.scheduled",
                shard=shard_id,
                replica=replica_id,
            )
            obs.observe(
                "serve.compaction.seconds",
                cost.seconds,
                shard=shard_id,
                replica=replica_id,
            )

    def _complete_compaction(
        self, shard_id: int, replica_id: int, now: float
    ) -> bool:
        """A compaction event fired: fold the delta, reprice the slot."""
        key = (shard_id, replica_id)
        if self._compacting.pop(key, None) is None:
            return False
        shard = self.plan.replica(shard_id, replica_id).shard
        merged = shard.compact()
        # The base slice changed: stale prices must not serve routing.
        self._price_memo = {
            memo_key: price
            for memo_key, price in self._price_memo.items()
            if memo_key[:2] != key
        }
        self._rebuild_memo.pop(key, None)
        self._delta_read_seconds.pop(key, None)
        self.compactions_completed += 1
        self.health.note(
            now, shard_id, replica_id, "compaction_complete",
            f"merged={merged}",
        )
        if obs.enabled():
            obs.add(
                "serve.compaction.completed",
                shard=shard_id,
                replica=replica_id,
            )
        return True

    @property
    def failed_shards(self) -> List[int]:
        """Shards whose entire replica set is currently dead."""
        return [
            shard_id
            for shard_id in range(self.plan.num_shards)
            if all(
                self.health.is_dead(shard_id, replica.replica_id)
                for replica in self.plan.replicas(shard_id)
            )
        ]

    def shard_failed(self, shard_id: int) -> bool:
        return all(
            self.health.is_dead(shard_id, replica.replica_id)
            for replica in self.plan.replicas(shard_id)
        )

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def execute(
        self, window: Window, now: float = 0.0
    ) -> Union[WindowResult, WindowDeferred]:
        """Serve one window at simulated time ``now``.

        Walks the routed candidates; each candidate gets the full retry
        budget, and one that exhausts it is declared dead (rebuild
        scheduled) before the window fails over to the next.  With no
        candidate left, the failover-vs-wait decision runs: defer to
        the earliest rebuild when waiting is priced cheaper than the
        fallback probe, else degrade.

        Update windows take their own path: host-authoritative delta
        application to every replica, no routing, no fault injection.
        """
        if window.kind == "update":
            return self._execute_update(window, now)
        seq = self._window_seq
        self._window_seq += 1
        shard_id = window.shard_id
        delays: List[float] = []
        failovers = 0
        positions: Optional[np.ndarray] = None
        served_by = -1
        assert self.policy is not None  # set in __post_init__

        for replica_id in self.route(shard_id, len(window)):
            shard = self.plan.replica(shard_id, replica_id).shard
            label = f"shard{shard_id}r{replica_id}"

            def probe(
                replica_id: int = replica_id,
                shard: Shard = shard,
                label: str = label,
            ) -> np.ndarray:
                try:
                    if self.chaos is not None:
                        self.chaos.check_probe(  # type: ignore[attr-defined]
                            shard_id, replica_id, now, seq
                        )
                    faults.check(REPLICA_FAULT_SITE, label=label)
                    out = shard.probe(window.keys)
                except Exception:
                    self.health.record_failure(shard_id, replica_id, now)
                    raise
                self.health.record_success(shard_id, replica_id, now)
                return out

            try:
                positions = with_retry(
                    probe,
                    self.policy,
                    label=f"serve.{label}",
                    sleep=delays.append,
                )
                served_by = replica_id
                break
            except SweepExecutionError:
                self.health.force_dead(shard_id, replica_id, now)
                self._on_dead(shard_id, replica_id, now)
                failovers += 1
                self.health.note(
                    now, shard_id, replica_id, "failover", f"window={seq}"
                )
                if obs.enabled():
                    obs.add(
                        "serve.failovers", shard=shard_id, replica=replica_id
                    )

        self.failovers += failovers
        degraded = False
        if positions is None:
            deferred = self._maybe_defer(window, now, seq)
            if deferred is not None:
                return deferred
            positions = _fallback_probe(self.fallback, window)
            self.fallback_windows += 1
            degraded = True
            self.health.note(now, shard_id, -1, "fallback", f"window={seq}")

        if degraded:
            active = self.fallback
            counters = active.window_counters(
                len(window), self.spec, self.sim
            )
        else:
            active = self.plan.replica(shard_id, served_by).shard
            counters = active.window_counters(
                len(window), self.spec, self.sim
            )
        service = (
            self._cost.probe_stage_time(counters)
            + KERNELS_PER_WINDOW * self._cost.constants.kernel_launch_seconds
            + sum(delays)
        )
        delta_counters = active.delta.read_counters(len(window))
        if delta_counters is not None:
            # Serial reconciliation stage; its seconds are the "rent"
            # the compaction policy's priced trigger accumulates.
            delta_seconds = self._cost.probe_stage_time(delta_counters)
            service += delta_seconds
            counters.add(delta_counters)
            if not degraded:
                key = (shard_id, served_by)
                self._delta_read_seconds[key] = (
                    self._delta_read_seconds.get(key, 0.0) + delta_seconds
                )
            self._evaluate_compaction(shard_id, now)
        if obs.enabled():
            if delays:
                obs.add("serve.retries", len(delays), shard=shard_id)
            if degraded:
                obs.add("serve.degraded_windows", shard=shard_id)
        return WindowResult(
            window=window,
            positions=positions,
            service_seconds=service,
            counters=counters,
            retries=len(delays),
            degraded=degraded,
            replica=served_by,
            failovers=failovers,
        )

    def _execute_update(
        self, window: Window, now: float
    ) -> WindowResult:
        """Absorb one update window into every replica's delta tier.

        Updates are host-authoritative: the buffered pairs live in host
        memory, so they apply to every replica (dead or alive -- a dead
        replica's rebuild starts from current host state) and to the
        fallback, unconditionally.  No chaos check, no fault site, no
        retries: a kill schedule stretches read latency, never loses a
        write, which is what keeps the PR-7 invariance gate meaningful
        under mixed traffic.
        """
        self._window_seq += 1
        values = _update_window_values(window)
        shard_id = window.shard_id
        depth = 0
        for replica in self.plan.replicas(shard_id):
            replica.shard.apply_updates(window.keys, values)
            depth = replica.shard.delta.num_tuples
        self.fallback.apply_updates(window.keys, values)
        self.update_windows += 1
        self.update_tuples += len(window)
        self.delta_peak = max(self.delta_peak, depth)
        counters = _update_counters(len(window), depth)
        service = (
            self._cost.probe_stage_time(counters)
            + KERNELS_PER_WINDOW * self._cost.constants.kernel_launch_seconds
        )
        if obs.enabled():
            obs.add("serve.delta.applied", len(window), shard=shard_id)
            obs.observe("serve.delta.depth", depth, shard=shard_id)
        self._evaluate_compaction(shard_id, now)
        return WindowResult(
            window=window,
            positions=values.copy(),
            service_seconds=service,
            counters=counters,
        )

    def _maybe_defer(
        self, window: Window, now: float, seq: int
    ) -> Optional[WindowDeferred]:
        """The failover-vs-wait decision once no replica is routable.

        Waiting wins when (time until the earliest rebuild *or*
        compaction completes) plus (that replica's window price)
        undercuts the fallback probe -- both sides in the same
        simulated currency.  Deferrals per window are capped so fault
        schedules that keep re-killing the recovering replica still
        terminate.
        """
        if window.deferrals >= MAX_WINDOW_DEFERRALS:
            return None
        candidates: List[Tuple[float, int]] = []
        pending = self.health.next_rebuild_ready(window.shard_id)
        if pending is not None:
            candidates.append(pending)
        for (shard_id, replica_id), compact_ready in sorted(
            self._compacting.items()
        ):
            if shard_id == window.shard_id and not self.health.is_dead(
                shard_id, replica_id
            ):
                candidates.append((compact_ready, replica_id))
        if not candidates:
            return None
        ready_at, replica_id = min(candidates)
        wait = max(0.0, ready_at - now)
        rebuilt_price = self.window_price(
            window.shard_id, replica_id, len(window)
        )
        if wait + rebuilt_price >= self.fallback_price(len(window)):
            return None
        window.deferrals += 1
        self.deferrals += 1
        self.health.note(
            now,
            window.shard_id,
            replica_id,
            "deferred",
            f"window={seq} ready_at={ready_at:.9f}",
        )
        if obs.enabled():
            obs.add("serve.deferred_windows", shard=window.shard_id)
        return WindowDeferred(window=window, ready_at=ready_at)
