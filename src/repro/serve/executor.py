"""Window execution: probe, price, retry, degrade.

The executor runs one closed window on its shard and answers two
questions: *what are the positions* (by actually probing the simulated
index) and *how long did it take* (by pricing the shard's replayed
window counters through the cost model -- simulated seconds, never wall
clock).  Failures are injected through the ``shard`` fault site and
absorbed by the resilience layer's retry policy; backoff sleeps are
captured into *simulated* delay instead of sleeping, so fault plans
stretch latency without touching the wall clock.  A shard that exhausts
its retry budget is marked failed and its traffic degrades to the
single-shard fallback index -- slower, but returning identical global
positions, so recovery never changes results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import obs
from ..config import SimulationConfig
from ..errors import SweepExecutionError
from ..hardware.counters import PerfCounters
from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..perf.model import CostModel
from ..resilience import faults
from ..resilience.retry import RetryPolicy, active_policy, with_retry
from .batcher import Window
from .shard import CALIBRATION_SIM, Shard, ShardPlan

#: Fault-injection site checked before every window probe.  Plans match
#: shards via the label, e.g. ``shard:raise@2:match=shard1``.
FAULT_SITE = "shard"

#: A window executes as two serial kernels, mirroring the windowed
#: INLJ's partition-then-probe stage pair (Section 5).
KERNELS_PER_WINDOW = 2


@dataclass
class WindowResult:
    """Outcome of executing one window.

    ``service_seconds`` is pure simulated time: the cost model's price
    for the window's replayed counters, two kernel launches, and any
    retry backoff (captured, not slept).
    """

    window: Window
    positions: np.ndarray
    service_seconds: float
    counters: PerfCounters
    retries: int = 0
    degraded: bool = False
    #: Filled in by the service: seconds the window sat queued.
    queue_wait: float = 0.0


@dataclass
class ShardExecutor:
    """Executes windows against a :class:`ShardPlan` with a fallback."""

    plan: ShardPlan
    fallback: Shard
    spec: SystemSpec = V100_NVLINK2
    sim: SimulationConfig = CALIBRATION_SIM
    policy: Optional[RetryPolicy] = None
    _cost: CostModel = field(init=False)
    _failed: List[bool] = field(init=False)

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = active_policy()
        self._cost = CostModel(self.spec)
        self._failed = [False] * self.plan.num_shards

    def shard_failed(self, shard_id: int) -> bool:
        """True once ``shard_id`` exhausted its retry budget."""
        return self._failed[shard_id]

    @property
    def failed_shards(self) -> List[int]:
        return [sid for sid, down in enumerate(self._failed) if down]

    def execute(self, window: Window) -> WindowResult:
        """Run one window; returns positions plus simulated timing."""
        shard = self.plan.shards[window.shard_id]
        delays: List[float] = []
        degraded = self._failed[window.shard_id]

        def probe() -> np.ndarray:
            faults.check(FAULT_SITE, label=f"shard{window.shard_id}")
            return shard.probe(window.keys)

        positions: Optional[np.ndarray] = None
        if not degraded:
            try:
                positions = with_retry(
                    probe,
                    self.policy,
                    label=f"serve.shard{window.shard_id}",
                    sleep=delays.append,
                )
            except SweepExecutionError:
                self._failed[window.shard_id] = True
                degraded = True
                if obs.enabled():
                    obs.add("serve.shard_failures", shard=window.shard_id)
        if degraded:
            # The fallback index spans all of R, so its positions are
            # already global -- identical to the healthy shard's answer.
            positions = self.fallback.probe(window.keys)
        assert positions is not None
        active = self.fallback if degraded else shard
        counters = active.window_counters(len(window), self.spec, self.sim)
        service = (
            self._cost.probe_stage_time(counters)
            + KERNELS_PER_WINDOW * self._cost.constants.kernel_launch_seconds
            + sum(delays)
        )
        if obs.enabled():
            if delays:
                obs.add(
                    "serve.retries", len(delays), shard=window.shard_id
                )
            if degraded:
                obs.add("serve.degraded_windows", shard=window.shard_id)
        return WindowResult(
            window=window,
            positions=positions,
            service_seconds=service,
            counters=counters,
            retries=len(delays),
            degraded=degraded,
        )
