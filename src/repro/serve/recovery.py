"""Rebuild pricing: what it costs to bring a dead replica back.

When a replica dies, its index is gone (the simulated GPU dropped out);
recovery re-reads the shard's tuples from host memory and rebuilds the
index structure on-device.  That latency differs sharply by index type
-- FliX (PAPERS.md) motivates exactly this asymmetry -- and it is the
quantity the failover-vs-wait decision trades against the price of
probing a slower surviving replica or the whole-relation fallback:

* ``slice_copy`` (binary search): the index *is* the sorted slice; one
  sequential scan over the interconnect and the replica is back.
* ``bulk_load`` (B+tree, Harmonia): scan the slice, write the node
  arrays (the structure's footprint), and run the linear bulk-load
  pass.
* ``retrain`` (RadixSpline): two passes over the keys -- one to fit
  spline segments, one to verify the error bound -- plus writing the
  radix table and segment arrays.
* ``hash_rebuild`` (anything else): scan the slice and scatter every
  tuple into the table at random-sector efficiency.

All prices come from the same :class:`~repro.perf.model.CostModel` that
prices probe windows, so "wait for the rebuild" and "fail over" are in
the same simulated currency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..perf.model import CalibrationConstants, CostModel, DEFAULT_CALIBRATION
from ..units import KEY_BYTES
from .shard import Shard

#: Rebuild kind per index name; unknown index types price as a hash
#: rebuild (the most conservative: random scatter per tuple).
REBUILD_KIND_BY_INDEX: Dict[str, str] = {
    "binary search": "slice_copy",
    "B+tree": "bulk_load",
    "Harmonia": "bulk_load",
    "FAST tree": "bulk_load",
    "RadixSpline": "retrain",
}

#: Kernel launches charged per rebuild (transfer + build), mirroring the
#: probe path's partition-then-probe pair.
REBUILD_KERNELS = 2


@dataclass(frozen=True)
class RebuildCost:
    """Priced recovery of one replica.

    ``breakdown`` maps stage name -> seconds and sums to ``seconds``
    (minus nothing: launches are a stage of their own).
    """

    seconds: float
    kind: str
    breakdown: Dict[str, float]

    def describe(self) -> str:
        return f"{self.kind}:{self.seconds:.9f}s"


def price_rebuild(
    shard: Shard,
    spec: SystemSpec = V100_NVLINK2,
    constants: CalibrationConstants = DEFAULT_CALIBRATION,
) -> RebuildCost:
    """Simulated seconds to rebuild ``shard``'s index from host memory.

    Pure and deterministic: depends only on the shard's tuple count,
    its index type's footprint, and the machine spec -- never on run
    state -- so recovery timelines replay bit-identically.
    """
    cost = CostModel(spec, constants)
    n = shard.num_tuples
    slice_bytes = float(n * KEY_BYTES)
    kind = REBUILD_KIND_BY_INDEX.get(shard.index.name, "hash_rebuild")
    breakdown: Dict[str, float] = {}
    if kind == "slice_copy":
        breakdown["scan"] = cost.scan_time(slice_bytes)
    elif kind == "bulk_load":
        breakdown["scan"] = cost.scan_time(slice_bytes)
        breakdown["write_structure"] = cost.gpu_memory_time(
            float(shard.index.footprint_bytes)
        )
        breakdown["bulk_load"] = cost.compute_time(float(n))
    elif kind == "retrain":
        # Fit pass + error-bound verification pass over the keys.
        breakdown["scan"] = 2.0 * cost.scan_time(slice_bytes)
        breakdown["write_structure"] = cost.gpu_memory_time(
            float(shard.index.footprint_bytes)
        )
        breakdown["train"] = cost.compute_time(float(2 * n))
    else:
        breakdown["scan"] = cost.scan_time(slice_bytes)
        breakdown["scatter"] = cost.gpu_memory_time(
            float(n)
            * constants.hash_build_accesses
            * constants.gpu_sector_bytes,
            random=True,
        )
        breakdown["build"] = cost.compute_time(float(n))
    breakdown["launches"] = (
        REBUILD_KERNELS * constants.kernel_launch_seconds
    )
    return RebuildCost(
        seconds=sum(breakdown.values()), kind=kind, breakdown=breakdown
    )


#: Compaction strategy per index name -- the per-type asymmetry the
#: paper calls out ("Harmonia/B+tree if the index must support inserts
#: and updates"): trees absorb delta tuples through traversal +
#: leaf-write, the RadixSpline must retrain over the merged keys, and
#: implicit-array structures (binary search, FAST's cache-line layout)
#: rebuild outright.  Unknown types rebuild (conservative).
COMPACTION_STRATEGY_BY_INDEX: Dict[str, str] = {
    "binary search": "rebuild",
    "B+tree": "absorb",
    "Harmonia": "absorb",
    "FAST tree": "rebuild",
    "RadixSpline": "retrain",
}


@dataclass(frozen=True)
class CompactionCost:
    """Priced fold of one replica's delta tier into its base index.

    Same shape and currency as :class:`RebuildCost`, so the compaction
    scheduler can reuse the recovery event machinery unchanged.
    """

    seconds: float
    strategy: str
    breakdown: Dict[str, float]

    def describe(self) -> str:
        return f"{self.strategy}:{self.seconds:.9f}s"


def price_compaction(
    shard: Shard,
    delta_tuples: int,
    spec: SystemSpec = V100_NVLINK2,
    constants: CalibrationConstants = DEFAULT_CALIBRATION,
) -> CompactionCost:
    """Simulated seconds to merge ``delta_tuples`` into ``shard``'s index.

    Pure in (shard size, index type, delta size, machine spec), so
    compaction timelines replay bit-identically like rebuilds do.

    * ``absorb`` (B+tree, Harmonia): one traversal per delta tuple to
      the target leaf plus the leaf write -- random device accesses
      scaling with tree height, no touch of the base slice.
    * ``retrain`` (RadixSpline): the merged key run must be re-fit; two
      passes over ``n + d`` keys plus writing the model arrays.
    * ``rebuild`` (binary search, FAST, unknown): merge-write the new
      sorted slice and rebuild the structure over ``n + d`` tuples.
    """
    if delta_tuples <= 0:
        raise ConfigurationError(
            f"compaction needs a non-empty delta, got {delta_tuples} tuples"
        )
    cost = CostModel(spec, constants)
    n = shard.num_tuples
    d = int(delta_tuples)
    merged_bytes = float((n + d) * KEY_BYTES)
    strategy = COMPACTION_STRATEGY_BY_INDEX.get(shard.index.name, "rebuild")
    breakdown: Dict[str, float] = {}
    if strategy == "absorb":
        height = float(max(1, shard.index.height))
        breakdown["traverse"] = cost.remote_random_time(d * (height + 1.0))
        breakdown["leaf_write"] = cost.gpu_memory_time(
            float(d * 2 * KEY_BYTES), random=True
        )
        breakdown["rebalance"] = cost.compute_time(float(d) * height)
    elif strategy == "retrain":
        breakdown["scan"] = 2.0 * cost.scan_time(merged_bytes)
        breakdown["write_structure"] = cost.gpu_memory_time(
            float(shard.index.footprint_bytes)
        )
        breakdown["train"] = cost.compute_time(float(2 * (n + d)))
    else:
        breakdown["merge_scan"] = cost.scan_time(merged_bytes)
        breakdown["write_structure"] = cost.gpu_memory_time(
            merged_bytes + float(shard.index.footprint_bytes)
        )
        breakdown["build"] = cost.compute_time(float(n + d))
    breakdown["launches"] = (
        REBUILD_KERNELS * constants.kernel_launch_seconds
    )
    return CompactionCost(
        seconds=sum(breakdown.values()),
        strategy=strategy,
        breakdown=breakdown,
    )
