"""Rebuild pricing: what it costs to bring a dead replica back.

When a replica dies, its index is gone (the simulated GPU dropped out);
recovery re-reads the shard's tuples from host memory and rebuilds the
index structure on-device.  That latency differs sharply by index type
-- FliX (PAPERS.md) motivates exactly this asymmetry -- and it is the
quantity the failover-vs-wait decision trades against the price of
probing a slower surviving replica or the whole-relation fallback:

* ``slice_copy`` (binary search): the index *is* the sorted slice; one
  sequential scan over the interconnect and the replica is back.
* ``bulk_load`` (B+tree, Harmonia): scan the slice, write the node
  arrays (the structure's footprint), and run the linear bulk-load
  pass.
* ``retrain`` (RadixSpline): two passes over the keys -- one to fit
  spline segments, one to verify the error bound -- plus writing the
  radix table and segment arrays.
* ``hash_rebuild`` (anything else): scan the slice and scatter every
  tuple into the table at random-sector efficiency.

All prices come from the same :class:`~repro.perf.model.CostModel` that
prices probe windows, so "wait for the rebuild" and "fail over" are in
the same simulated currency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..perf.model import CalibrationConstants, CostModel, DEFAULT_CALIBRATION
from ..units import KEY_BYTES
from .shard import Shard

#: Rebuild kind per index name; unknown index types price as a hash
#: rebuild (the most conservative: random scatter per tuple).
REBUILD_KIND_BY_INDEX: Dict[str, str] = {
    "binary search": "slice_copy",
    "B+tree": "bulk_load",
    "Harmonia": "bulk_load",
    "FAST tree": "bulk_load",
    "RadixSpline": "retrain",
}

#: Kernel launches charged per rebuild (transfer + build), mirroring the
#: probe path's partition-then-probe pair.
REBUILD_KERNELS = 2


@dataclass(frozen=True)
class RebuildCost:
    """Priced recovery of one replica.

    ``breakdown`` maps stage name -> seconds and sums to ``seconds``
    (minus nothing: launches are a stage of their own).
    """

    seconds: float
    kind: str
    breakdown: Dict[str, float]

    def describe(self) -> str:
        return f"{self.kind}:{self.seconds:.9f}s"


def price_rebuild(
    shard: Shard,
    spec: SystemSpec = V100_NVLINK2,
    constants: CalibrationConstants = DEFAULT_CALIBRATION,
) -> RebuildCost:
    """Simulated seconds to rebuild ``shard``'s index from host memory.

    Pure and deterministic: depends only on the shard's tuple count,
    its index type's footprint, and the machine spec -- never on run
    state -- so recovery timelines replay bit-identically.
    """
    cost = CostModel(spec, constants)
    n = shard.num_tuples
    slice_bytes = float(n * KEY_BYTES)
    kind = REBUILD_KIND_BY_INDEX.get(shard.index.name, "hash_rebuild")
    breakdown: Dict[str, float] = {}
    if kind == "slice_copy":
        breakdown["scan"] = cost.scan_time(slice_bytes)
    elif kind == "bulk_load":
        breakdown["scan"] = cost.scan_time(slice_bytes)
        breakdown["write_structure"] = cost.gpu_memory_time(
            float(shard.index.footprint_bytes)
        )
        breakdown["bulk_load"] = cost.compute_time(float(n))
    elif kind == "retrain":
        # Fit pass + error-bound verification pass over the keys.
        breakdown["scan"] = 2.0 * cost.scan_time(slice_bytes)
        breakdown["write_structure"] = cost.gpu_memory_time(
            float(shard.index.footprint_bytes)
        )
        breakdown["train"] = cost.compute_time(float(2 * n))
    else:
        breakdown["scan"] = cost.scan_time(slice_bytes)
        breakdown["scatter"] = cost.gpu_memory_time(
            float(n)
            * constants.hash_build_accesses
            * constants.gpu_sector_bytes,
            random=True,
        )
        breakdown["build"] = cost.compute_time(float(n))
    breakdown["launches"] = (
        REBUILD_KERNELS * constants.kernel_launch_seconds
    )
    return RebuildCost(
        seconds=sum(breakdown.values()), kind=kind, breakdown=breakdown
    )
