"""Byte and time units used throughout the library.

The paper reports sizes in binary units (GiB for relations, MiB for
windows) and interconnect bandwidths in decimal GB/s, matching vendor
datasheets.  We keep both conventions and name them explicitly so call
sites never multiply magic numbers.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

#: Size of one GPU cacheline in bytes.  Fast interconnects transfer remote
#: memory at this granularity (NVIDIA GPUs use 128-byte L2 lines; the L2
#: fetches 32-byte sectors, but the paper's transfer analysis works at
#: cacheline granularity).
CACHELINE_BYTES = 128

#: Size of one key/value attribute in bytes.  The paper uses single 8-byte
#: integer attributes "to maximize the tree height of indexes" (Section 3.2).
KEY_BYTES = 8

MICROSECOND = 1e-6
NANOSECOND = 1e-9


def format_bytes(num_bytes: float) -> str:
    """Render a byte count using binary units, e.g. ``format_bytes(2**35)
    == '32.0 GiB'``.

    Negative values are rejected because no size in this library can be
    negative; raising early catches sign bugs in cost arithmetic.
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    for unit, name in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if num_bytes >= unit:
            return f"{num_bytes / unit:.1f} {name}"
    return f"{num_bytes:.0f} B"


def format_seconds(seconds: float) -> str:
    """Render a duration with a sensible unit, e.g. ``'3.0 us'``."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_throughput(queries_per_second: float) -> str:
    """Render a query throughput the way the paper's figures do (Q/s)."""
    if queries_per_second < 0:
        raise ValueError(
            f"throughput must be non-negative, got {queries_per_second}"
        )
    return f"{queries_per_second:.2f} Q/s"


def tuples_to_bytes(num_tuples: int, tuple_bytes: int = KEY_BYTES) -> int:
    """Size in bytes of a relation with ``num_tuples`` fixed-width tuples."""
    if num_tuples < 0:
        raise ValueError(f"tuple count must be non-negative, got {num_tuples}")
    if tuple_bytes <= 0:
        raise ValueError(f"tuple width must be positive, got {tuple_bytes}")
    return num_tuples * tuple_bytes


def bytes_to_tuples(num_bytes: int, tuple_bytes: int = KEY_BYTES) -> int:
    """Number of fixed-width tuples that fit in ``num_bytes`` (floor)."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    if tuple_bytes <= 0:
        raise ValueError(f"tuple width must be positive, got {tuple_bytes}")
    return num_bytes // tuple_bytes
