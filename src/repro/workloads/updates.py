"""Index maintenance under insert batches.

Two views of the same question ("what does it cost to keep the index
fresh?"):

* :func:`functional_insert_throughput` -- actually insert key batches
  into a materialized index (merge-based, as the implicit structures
  rebuild) and report inserts/second achieved in this process.  Useful
  for validating semantics, not for absolute rates.
* :func:`maintenance_cost` -- cost-model seconds per insert batch at
  paper scale.  Tree indexes absorb a batch with per-key traversals and
  localized writes; the RadixSpline has no incremental form and must
  refit, paying a full scan of R -- which is exactly why the paper
  recommends Harmonia when updates matter (Section 6).

The serving layer's online-update path adds a third view: a mixed
read/write *request stream* (:func:`make_update_stream`) served through
the delta tier, checked element-for-element against
:class:`SortedArrayOracle` -- an intentionally naive
sorted-array-with-updates reference whose only job is to be obviously
correct.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple, Type

import numpy as np

from ..data.column import KEY_DTYPE, MaterializedColumn
from ..data.relation import Relation
from ..errors import ConfigurationError, WorkloadError
from ..hardware.spec import CpuSpec
from ..indexes.base import Index
from ..indexes.btree import BPlusTreeIndex
from ..indexes.harmonia import HarmoniaIndex
from ..perf.cpu import CpuCostModel
from ..units import KEY_BYTES


@dataclass(frozen=True)
class UpdateCost:
    """Maintenance estimate for one insert batch.

    Attributes:
        seconds_per_batch: modeled time to absorb the batch.
        strategy: "in-place" (tree insert paths) or "rebuild" (refit the
            whole structure).
        amortized_seconds_per_insert: seconds_per_batch / batch_size.
    """

    seconds_per_batch: float
    strategy: str

    def amortized_seconds_per_insert(self, batch_size: int) -> float:
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch size must be positive, got {batch_size}"
            )
        return self.seconds_per_batch / batch_size


def maintenance_cost(
    index: Index, batch_size: int, cpu: CpuSpec
) -> UpdateCost:
    """Cost-model seconds for one insert batch into ``index``.

    Updates run CPU-side (the index lives in CPU memory; Section 3.2).
    Updateable trees pay, per key, a traversal plus a leaf write --
    ``height + 2`` random cacheline accesses.  Static structures
    (RadixSpline, binary search's sorted array, the FAST layout) must
    rebuild: a streaming pass over the data plus writing the structure.
    """
    if batch_size <= 0:
        raise ConfigurationError(
            f"batch size must be positive, got {batch_size}"
        )
    model = CpuCostModel(cpu)
    if index.supports_updates:
        accesses = float(batch_size) * (index.height + 2)
        return UpdateCost(
            seconds_per_batch=model.random_time(accesses),
            strategy="in-place",
        )
    data_bytes = float(len(index.column)) * KEY_BYTES
    rebuild = model.scan_time(data_bytes) + model.scan_time(
        float(index.footprint_bytes)
    )
    return UpdateCost(seconds_per_batch=rebuild, strategy="rebuild")


def functional_insert_throughput(
    index_cls: Type, base_tuples: int, batch_size: int, batches: int = 3,
    seed: int = 0,
) -> float:
    """Measured inserts/second for merge-based inserts on real data.

    Only meaningful for update-capable indexes (B+tree, Harmonia); static
    ones raise, mirroring their lack of an insert path.
    """
    if index_cls not in (BPlusTreeIndex, HarmoniaIndex):
        raise WorkloadError(
            f"{index_cls.__name__} has no insert path; Section 6 reserves "
            "update workloads for the tree indexes"
        )
    if base_tuples <= 0 or batch_size <= 0 or batches <= 0:
        raise ConfigurationError("sizes must be positive")
    # Base keys on even positions of a wide domain leave odd gaps free
    # for inserts.
    base_keys = np.arange(0, base_tuples * 4, 4, dtype=KEY_DTYPE)
    index = index_cls(Relation("R", MaterializedColumn(base_keys)))
    inserted = 0
    # Measured wall-clock throughput *is* this function's deliverable
    # (like the bench harness); the clock never feeds model state.
    started = time.perf_counter()  # repro: noqa[DET002]
    top = base_tuples * 4
    for batch in range(batches):
        offset = top + batch * batch_size * 4
        new_keys = (
            offset + np.arange(batch_size, dtype=np.int64) * 4 + 1
        ).astype(KEY_DTYPE)
        index = index.insert_keys(new_keys)
        inserted += batch_size
        # Every batch must remain fully queryable.
        found = index.lookup(new_keys)
        if np.any(found < 0):
            raise WorkloadError("inserted keys not found after merge")
    elapsed = time.perf_counter() - started  # repro: noqa[DET002]
    return inserted / elapsed if elapsed > 0 else float("inf")


# ----------------------------------------------------------------------
# Mixed read/write request streams and their reference semantics.
# ----------------------------------------------------------------------

#: Probability an update tuple is an insert (vs. an upsert of an
#: existing key).
INSERT_SHARE = 0.5

#: Share of a probe request's keys redirected at recently written keys
#: once any exist -- mixed workloads must actually *read their writes*
#: or the delta tier goes untested.
READBACK_SHARE = 0.25


@dataclass(frozen=True)
class UpdateStream:
    """A deterministic interleaved probe/update request stream.

    Per request ``i``: ``kinds[i]`` is ``"probe"`` or ``"update"``,
    ``keys[i]`` the request's keys, and ``values[i]`` the global row id
    each key writes (``None`` for probes).  Row ids continue R's global
    position space: base tuples occupy ``[0, base_tuples)`` and update
    tuple ``j`` of the stream writes ``base_tuples + j``, so every
    served position names exactly one version of one key.
    """

    kinds: Tuple[str, ...]
    keys: Tuple[np.ndarray, ...]
    values: Tuple[Optional[np.ndarray], ...]
    base_tuples: int

    @property
    def num_requests(self) -> int:
        return len(self.kinds)

    @property
    def update_requests(self) -> int:
        return sum(1 for kind in self.kinds if kind == "update")

    @property
    def update_tuples(self) -> int:
        return sum(
            len(keys)
            for kind, keys in zip(self.kinds, self.keys)
            if kind == "update"
        )


def make_update_stream(
    base_keys: np.ndarray,
    probe_keys: np.ndarray,
    num_requests: int,
    request_tuples: int,
    update_fraction: float,
    seed: int,
) -> UpdateStream:
    """Interleave update requests into a probe-key stream.

    Each request is an update with probability ``update_fraction``.
    Update tuples split ~evenly between *upserts* of existing keys and
    *inserts* of fresh keys (``member + 1`` -- the generator's stride
    guarantees those are non-members).  Probe requests slice
    ``probe_keys`` as the read-only bench does, then redirect
    ``READBACK_SHARE`` of their keys at previously written keys once
    any exist, so reads exercise the delta tier and post-compaction
    base.  Fully deterministic in ``seed``.
    """
    if update_fraction < 0.0 or update_fraction > 1.0:
        raise ConfigurationError(
            f"update fraction must be in [0, 1], got {update_fraction}"
        )
    if len(probe_keys) < num_requests * request_tuples:
        raise ConfigurationError(
            f"probe stream holds {len(probe_keys)} keys but the request "
            f"stream needs {num_requests * request_tuples}"
        )
    base_keys = np.asarray(base_keys, dtype=KEY_DTYPE)
    base_tuples = len(base_keys)
    rng = np.random.default_rng([seed, 0x5EED])
    is_update = rng.random(num_requests) < update_fraction
    kinds: list = []
    keys_out: list = []
    values_out: list = []
    written: list = []  # keys touched so far, in write order
    next_row_id = base_tuples
    for i in range(num_requests):
        if is_update[i]:
            slots = rng.integers(0, base_tuples, size=request_tuples)
            inserts = rng.random(request_tuples) < INSERT_SHARE
            keys = base_keys[slots].copy()
            keys[inserts] += KEY_DTYPE(1)
            values = next_row_id + np.arange(
                request_tuples, dtype=np.int64
            )
            next_row_id += request_tuples
            kinds.append("update")
            keys_out.append(keys)
            values_out.append(values)
            written.append(keys)
        else:
            keys = probe_keys[
                i * request_tuples : (i + 1) * request_tuples
            ].copy()
            if written:
                pool = np.concatenate(written)
                readback = rng.random(request_tuples) < READBACK_SHARE
                picks = rng.integers(
                    0, len(pool), size=int(np.count_nonzero(readback))
                )
                keys[readback] = pool[picks]
            kinds.append("probe")
            keys_out.append(keys)
            values_out.append(None)
    return UpdateStream(
        kinds=tuple(kinds),
        keys=tuple(keys_out),
        values=tuple(values_out),
        base_tuples=base_tuples,
    )


class SortedArrayOracle:
    """Reference semantics of a sorted array absorbing an update stream.

    Deliberately naive and structurally unrelated to the serve layer's
    delta tier (a plain key -> row-id mapping applied in arrival
    order), so differential tests compare two independent
    implementations.  ``lookup`` answers the *newest* row id of a key,
    -1 for keys never present.
    """

    def __init__(self, base_keys: np.ndarray):
        keys = np.asarray(base_keys, dtype=KEY_DTYPE)
        if np.any(keys[1:] <= keys[:-1]):
            raise ConfigurationError(
                "oracle base keys must be strictly increasing"
            )
        self._table = {
            int(key): position for position, key in enumerate(keys)
        }

    def apply(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Absorb one update batch, in order (later entries win)."""
        if len(keys) != len(values):
            raise ConfigurationError(
                f"oracle batch carries {len(keys)} keys but "
                f"{len(values)} values"
            )
        for key, value in zip(keys.tolist(), values.tolist()):
            self._table[int(key)] = int(value)

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Newest row id per key; -1 for absent keys."""
        table = self._table
        return np.fromiter(
            (table.get(int(key), -1) for key in keys.tolist()),
            dtype=np.int64,
            count=len(keys),
        )
