"""Index maintenance under insert batches.

Two views of the same question ("what does it cost to keep the index
fresh?"):

* :func:`functional_insert_throughput` -- actually insert key batches
  into a materialized index (merge-based, as the implicit structures
  rebuild) and report inserts/second achieved in this process.  Useful
  for validating semantics, not for absolute rates.
* :func:`maintenance_cost` -- cost-model seconds per insert batch at
  paper scale.  Tree indexes absorb a batch with per-key traversals and
  localized writes; the RadixSpline has no incremental form and must
  refit, paying a full scan of R -- which is exactly why the paper
  recommends Harmonia when updates matter (Section 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Type

import numpy as np

from ..data.column import KEY_DTYPE, MaterializedColumn
from ..data.relation import Relation
from ..errors import ConfigurationError, WorkloadError
from ..hardware.spec import CpuSpec
from ..indexes.base import Index
from ..indexes.btree import BPlusTreeIndex
from ..indexes.harmonia import HarmoniaIndex
from ..perf.cpu import CpuCostModel
from ..units import KEY_BYTES


@dataclass(frozen=True)
class UpdateCost:
    """Maintenance estimate for one insert batch.

    Attributes:
        seconds_per_batch: modeled time to absorb the batch.
        strategy: "in-place" (tree insert paths) or "rebuild" (refit the
            whole structure).
        amortized_seconds_per_insert: seconds_per_batch / batch_size.
    """

    seconds_per_batch: float
    strategy: str

    def amortized_seconds_per_insert(self, batch_size: int) -> float:
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch size must be positive, got {batch_size}"
            )
        return self.seconds_per_batch / batch_size


def maintenance_cost(
    index: Index, batch_size: int, cpu: CpuSpec
) -> UpdateCost:
    """Cost-model seconds for one insert batch into ``index``.

    Updates run CPU-side (the index lives in CPU memory; Section 3.2).
    Updateable trees pay, per key, a traversal plus a leaf write --
    ``height + 2`` random cacheline accesses.  Static structures
    (RadixSpline, binary search's sorted array, the FAST layout) must
    rebuild: a streaming pass over the data plus writing the structure.
    """
    if batch_size <= 0:
        raise ConfigurationError(
            f"batch size must be positive, got {batch_size}"
        )
    model = CpuCostModel(cpu)
    if index.supports_updates:
        accesses = float(batch_size) * (index.height + 2)
        return UpdateCost(
            seconds_per_batch=model.random_time(accesses),
            strategy="in-place",
        )
    data_bytes = float(len(index.column)) * KEY_BYTES
    rebuild = model.scan_time(data_bytes) + model.scan_time(
        float(index.footprint_bytes)
    )
    return UpdateCost(seconds_per_batch=rebuild, strategy="rebuild")


def functional_insert_throughput(
    index_cls: Type, base_tuples: int, batch_size: int, batches: int = 3,
    seed: int = 0,
) -> float:
    """Measured inserts/second for merge-based inserts on real data.

    Only meaningful for update-capable indexes (B+tree, Harmonia); static
    ones raise, mirroring their lack of an insert path.
    """
    if index_cls not in (BPlusTreeIndex, HarmoniaIndex):
        raise WorkloadError(
            f"{index_cls.__name__} has no insert path; Section 6 reserves "
            "update workloads for the tree indexes"
        )
    if base_tuples <= 0 or batch_size <= 0 or batches <= 0:
        raise ConfigurationError("sizes must be positive")
    # Base keys on even positions of a wide domain leave odd gaps free
    # for inserts.
    base_keys = np.arange(0, base_tuples * 4, 4, dtype=KEY_DTYPE)
    index = index_cls(Relation("R", MaterializedColumn(base_keys)))
    inserted = 0
    # Measured wall-clock throughput *is* this function's deliverable
    # (like the bench harness); the clock never feeds model state.
    started = time.perf_counter()  # repro: noqa[DET002]
    top = base_tuples * 4
    for batch in range(batches):
        offset = top + batch * batch_size * 4
        new_keys = (
            offset + np.arange(batch_size, dtype=np.int64) * 4 + 1
        ).astype(KEY_DTYPE)
        index = index.insert_keys(new_keys)
        inserted += batch_size
        # Every batch must remain fully queryable.
        found = index.lookup(new_keys)
        if np.any(found < 0):
            raise WorkloadError("inserted keys not found after merge")
    elapsed = time.perf_counter() - started  # repro: noqa[DET002]
    return inserted / elapsed if elapsed > 0 else float("inf")
