"""Workload studies beyond single read-only joins.

The paper evaluates read-only joins and closes with operational guidance
(Section 6): choose the RadixSpline for static data, Harmonia (or a
B+tree) "if the index must support inserts and updates".  This package
quantifies that guidance:

* :mod:`repro.workloads.updates` -- batched-insert cost for each index
  structure, functionally (merge-based inserts on real data) and under
  the cost model (maintenance seconds per batch at paper scale).
"""

from .updates import (
    UpdateCost,
    functional_insert_throughput,
    maintenance_cost,
)

__all__ = [
    "UpdateCost",
    "functional_insert_throughput",
    "maintenance_cost",
]
