"""Workload studies beyond single read-only joins.

The paper evaluates read-only joins and closes with operational guidance
(Section 6): choose the RadixSpline for static data, Harmonia (or a
B+tree) "if the index must support inserts and updates".  This package
quantifies that guidance:

* :mod:`repro.workloads.updates` -- batched-insert cost for each index
  structure, functionally (merge-based inserts on real data) and under
  the cost model (maintenance seconds per batch at paper scale), plus
  mixed read/write request streams (:func:`make_update_stream`) and the
  sorted-array-with-updates reference (:class:`SortedArrayOracle`) the
  serving layer's delta tier is checked against.
* :mod:`repro.workloads.nonequi` -- seeded band/KNN probe streams for
  the non-equi joins: member keys jittered inside the band (or key gap),
  uniform or Zipf-scattered like the equi stream.
"""

from .nonequi import (
    NonEquiProbeSet,
    band_epsilon_for_matches,
    make_band_probe_keys,
    make_knn_probe_keys,
)
from .updates import (
    SortedArrayOracle,
    UpdateCost,
    UpdateStream,
    functional_insert_throughput,
    maintenance_cost,
    make_update_stream,
)

__all__ = [
    "NonEquiProbeSet",
    "band_epsilon_for_matches",
    "make_band_probe_keys",
    "make_knn_probe_keys",
    "SortedArrayOracle",
    "UpdateCost",
    "UpdateStream",
    "functional_insert_throughput",
    "maintenance_cost",
    "make_update_stream",
]
