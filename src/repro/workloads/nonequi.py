"""Seeded probe-stream generators for the non-equi joins.

Band and KNN probes differ from the equi-join streams in one essential
way: the interesting probes are *near* member keys without necessarily
being members.  Both generators therefore draw positions with the same
machinery as :func:`repro.data.generator.make_probe_keys` (uniform, or
Zipf ranks scattered through the fixed multiplicative permutation so hot
ranks are spatially spread), then jitter the member key inside the
relevant neighbourhood:

* band probes jitter up to ``epsilon`` on either side, so a stream at
  band width ``epsilon`` exercises empty, partial, and full spans;
* KNN probes jitter within one key gap (up to ``stride``), so the
  walk-out starts between members -- the regime where left/right
  distances genuinely compete.

Everything is derived from ``config.seed`` with stream-specific salts,
so a workload's equi, band, and KNN streams are mutually independent
but individually reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..data.column import Column, KEY_DTYPE
from ..data.generator import WorkloadConfig
from ..data.zipf import zipf_sample
from ..errors import WorkloadError
from ..indexes.domain import clamped_int64, saturating_band

#: Seed salts: one independent stream per probe kind.
_BAND_SALT = 0xBA4D
_KNN_SALT = 0x4A11


@dataclass(frozen=True)
class NonEquiProbeSet:
    """A seeded non-equi probe stream.

    Attributes:
        keys: the probe keys, in stream (random) order.
        kind: ``"band"`` or ``"knn"``.
        param: the stream's shape parameter (``epsilon`` for band
            streams, ``k`` for KNN streams).
    """

    keys: np.ndarray
    kind: str
    param: int

    def __post_init__(self) -> None:
        if self.kind not in ("band", "knn"):
            raise WorkloadError(
                f"kind must be 'band' or 'knn', got {self.kind!r}"
            )
        if self.param < 0:
            raise WorkloadError(
                f"param must be non-negative, got {self.param}"
            )

    def __len__(self) -> int:
        return len(self.keys)


def _draw_positions(
    rng: np.random.Generator, n: int, config: WorkloadConfig, count: int
) -> np.ndarray:
    """Member positions, uniform or Zipf-scattered like the equi stream."""
    if config.zipf_theta > 0:
        ranks = zipf_sample(rng, n, config.zipf_theta, count)
        return (ranks * np.int64(2654435761) + np.int64(config.seed)) % n
    return rng.integers(0, n, size=count, dtype=np.int64)


def make_band_probe_keys(
    build_column: Column,
    config: WorkloadConfig,
    epsilon: int,
    count: Optional[int] = None,
) -> NonEquiProbeSet:
    """Draw a band-probe stream for band width ``epsilon``.

    Each probe is a member key jittered by a uniform offset in
    ``[-epsilon, +epsilon]``, saturating at the uint64 domain edges -- so
    edge probes keep well-defined (clamped) bands and every probe's true
    band overlaps at least the member it was jittered from whenever the
    jitter magnitude is within ``epsilon``.
    """
    if count is None:
        count = config.s_tuples
    if count <= 0:
        raise WorkloadError(f"probe count must be positive, got {count}")
    if epsilon < 0:
        raise WorkloadError(f"epsilon must be non-negative, got {epsilon}")
    rng = np.random.default_rng(config.seed + _BAND_SALT)
    n = len(build_column)
    positions = _draw_positions(rng, n, config, count)
    members = build_column.key_at(positions).astype(KEY_DTYPE)
    magnitude = rng.integers(0, epsilon + 1, size=count, dtype=np.uint64)
    below, above = saturating_band(members, magnitude)
    go_below = rng.random(count) < 0.5
    keys = np.where(go_below, below, above).astype(KEY_DTYPE)
    return NonEquiProbeSet(keys=keys, kind="band", param=int(epsilon))


def make_knn_probe_keys(
    build_column: Column,
    config: WorkloadConfig,
    k: int,
    count: Optional[int] = None,
) -> NonEquiProbeSet:
    """Draw a KNN-probe stream for neighbourhood size ``k``.

    Probes are member keys jittered by up to one stride in either
    direction (saturating), which places most probes strictly between
    members: the walk-out's left/right cursors then start at genuinely
    different distances, including exact equal-distance ties.
    """
    if count is None:
        count = config.s_tuples
    if count <= 0:
        raise WorkloadError(f"probe count must be positive, got {count}")
    if k <= 0:
        raise WorkloadError(f"k must be positive, got {k}")
    rng = np.random.default_rng(config.seed + _KNN_SALT)
    n = len(build_column)
    positions = _draw_positions(rng, n, config, count)
    members = build_column.key_at(positions).astype(KEY_DTYPE)
    magnitude = rng.integers(
        0, max(1, config.stride) + 1, size=count, dtype=np.uint64
    )
    below, above = saturating_band(members, magnitude)
    go_below = rng.random(count) < 0.5
    keys = np.where(go_below, below, above).astype(KEY_DTYPE)
    return NonEquiProbeSet(keys=keys, kind="knn", param=int(k))


def band_epsilon_for_matches(build_column: Column, matches: float) -> int:
    """The band width yielding ``matches`` expected pairs per probe.

    Inverts the uniform-density estimate of
    :func:`repro.join.nonequi.expected_band_matches`: a band of width
    ``2 * epsilon`` over average key gap ``g`` covers about
    ``2 * epsilon / g + 1`` keys, so ``epsilon = (matches - 1) * g / 2``.
    The float-to-int cast is clamped into the key span (NP002), and the
    result is floored at 0 (``matches <= 1`` degenerates to a point
    probe).
    """
    if matches <= 0:
        raise WorkloadError(
            f"matches must be positive, got {matches}"
        )
    n = len(build_column)
    if n <= 1:
        return 0
    avg_gap = (build_column.max_key - build_column.min_key) / (n - 1)
    span = float(build_column.max_key - build_column.min_key)
    epsilon = clamped_int64(
        np.asarray([(matches - 1.0) * avg_gap / 2.0]), 0.0, span
    )
    return int(epsilon[0])
