"""Extension experiment: CPU vs GPU execution of the same join.

Not a paper figure, but the paper's opening argument (Sections 1-2.1):
fast interconnects put GPU *scans* on a level playing field with CPUs --
no speedup, CPU memory feeds both -- so the way to beat the CPU is to
exploit *selectivity* through out-of-core indexes.  This experiment puts
the three regimes side by side across R:

* CPU hash join (the incumbent, memory-bandwidth bound);
* GPU hash join (scan capped by CPU memory, probes in HBM);
* GPU windowed INLJ over the RadixSpline (the paper's contribution).
"""

from __future__ import annotations

from typing import Sequence

from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes import RadixSplineIndex
from ..join.hash_join import HashJoin
from ..join.window import WindowedINLJ
from ..perf.cpu import CpuCostModel
from ..perf.report import Series
from ..units import MIB
from .common import (
    ExperimentResult,
    ORDERED_SIM,
    default_partitioner,
    gib_to_tuples,
    make_environment,
    run_point_or_skip,
)

PAPER_EXPECTATION = (
    "Scan-bound plans show no GPU-vs-CPU speedup (CPU memory feeds both); "
    "the selective index join is where the GPU pulls ahead (Sections 1-2.1)"
)

DEFAULT_R_SIZES_GIB = (2.0, 8.0, 16.0, 32.0, 64.0, 100.0)


def run(
    spec: SystemSpec = V100_NVLINK2,
    r_sizes_gib: Sequence[float] = DEFAULT_R_SIZES_GIB,
    sim=ORDERED_SIM,
    window_bytes: int = 32 * MIB,
) -> ExperimentResult:
    """Sweep R over the three regimes on one machine."""
    result = ExperimentResult(
        name="cpu_gpu",
        title="CPU hash join vs GPU hash join vs GPU windowed INLJ (Q/s)",
        x_label="R (GiB)",
        paper_expectation=PAPER_EXPECTATION,
    )
    cpu_model = CpuCostModel(spec.cpu)
    cpu_series = Series("CPU hash join")
    gpu_hash_series = Series("GPU hash join")
    gpu_inlj_series = Series("GPU windowed INLJ (RadixSpline)")
    for gib in r_sizes_gib:
        r_tuples = gib_to_tuples(gib)

        def cpu_point():
            from ..data.generator import WorkloadConfig

            return cpu_model.hash_join(WorkloadConfig(r_tuples=r_tuples))

        cost = run_point_or_skip(result, f"cpu hash @ {gib} GiB", cpu_point)
        if cost is not None:
            cpu_series.append(gib, cost.queries_per_second)

        def gpu_hash_point():
            env = make_environment(spec, r_tuples, sim=sim)
            return HashJoin(env.relation).estimate(env)

        cost = run_point_or_skip(
            result, f"gpu hash @ {gib} GiB", gpu_hash_point
        )
        if cost is not None:
            gpu_hash_series.append(gib, cost.queries_per_second)

        def gpu_inlj_point():
            env = make_environment(
                spec, r_tuples, index_cls=RadixSplineIndex, sim=sim
            )
            join = WindowedINLJ(
                env.index,
                default_partitioner(env.column),
                window_bytes=window_bytes,
            )
            return join.estimate(env)

        cost = run_point_or_skip(
            result, f"gpu inlj @ {gib} GiB", gpu_inlj_point
        )
        if cost is not None:
            gpu_inlj_series.append(gib, cost.queries_per_second)
    result.series = [cpu_series, gpu_hash_series, gpu_inlj_series]
    _annotate(result)
    return result


def _annotate(result: ExperimentResult) -> None:
    by_label = result.series_by_label()
    cpu = by_label["CPU hash join"]
    inlj = by_label["GPU windowed INLJ (RadixSpline)"]
    if cpu.y and inlj.y:
        speedup = inlj.y[-1] / cpu.y[-1] if cpu.y[-1] > 0 else float("inf")
        result.notes.append(
            f"at {inlj.x[-1]:g} GiB the GPU index join runs {speedup:.1f}x "
            "faster than the CPU hash join"
        )
    gpu_hash = by_label["GPU hash join"]
    if cpu.y and gpu_hash.y:
        shared = sorted(set(cpu.x) & set(gpu_hash.x))
        if shared:
            last = shared[-1]
            ratio = gpu_hash.as_dict()[last] / cpu.as_dict()[last]
            result.notes.append(
                f"GPU-vs-CPU hash-join ratio at {last:g} GiB: {ratio:.1f}x "
                "(probe-bound plans do benefit from HBM; pure scans do not)"
            )
