"""Section 6 headline claims, measured.

The paper's discussion distills four quantitative claims:

1. the index reduces the transfer volume by up to ~12x vs a table scan;
2. TLB misses cost up to 16.7x of naive INLJ throughput on large data;
3. an out-of-core INLJ outperforms the hash join below ~8.0% selectivity;
4. the RadixSpline is 1.1-1.8x faster than the second-best index
   (Harmonia).

This module measures each claim with the same machinery as the figures and
reports paper-vs-measured pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import DEFAULT_S_TUPLES
from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes import BinarySearchIndex, HarmoniaIndex, RadixSplineIndex
from ..join.hash_join import HashJoin
from ..join.inlj import IndexNestedLoopJoin
from ..join.partitioned import PartitionedINLJ
from ..join.window import WindowedINLJ
from ..units import GIB, MIB
from .common import (
    NAIVE_SIM,
    ORDERED_SIM,
    default_partitioner,
    gib_to_tuples,
    make_environment,
)
from . import fig9


@dataclass
class Claim:
    """One paper claim with its measured counterpart."""

    name: str
    paper: str
    measured: str
    holds: bool

    def to_text(self) -> str:
        status = "HOLDS" if self.holds else "DEVIATES"
        return (
            f"[{status}] {self.name}\n"
            f"    paper:    {self.paper}\n"
            f"    measured: {self.measured}"
        )


def transfer_volume_claim(
    spec: SystemSpec = V100_NVLINK2,
    r_gib: float = 111.0,
    sim=ORDERED_SIM,
) -> Claim:
    """Claim 1: index scans move far less data than table scans."""
    r_tuples = gib_to_tuples(r_gib)
    env = make_environment(spec, r_tuples, index_cls=RadixSplineIndex, sim=sim)
    join = WindowedINLJ(
        env.index, default_partitioner(env.column), window_bytes=32 * MIB
    )
    inlj_cost = join.estimate(env)
    hash_env = make_environment(spec, r_tuples, sim=sim)
    hash_cost = HashJoin(hash_env.relation).estimate(hash_env)
    inlj_bytes = inlj_cost.counters.remote_bytes
    scan_bytes = hash_cost.counters.remote_bytes
    reduction = scan_bytes / inlj_bytes if inlj_bytes > 0 else float("inf")
    return Claim(
        name="index reduces interconnect transfer volume",
        paper="up to ~12x less transfer volume than a table scan",
        measured=(
            f"{reduction:.1f}x at {r_gib:g} GiB "
            f"({inlj_bytes / GIB:.1f} GiB indexed vs "
            f"{scan_bytes / GIB:.1f} GiB scanned)"
        ),
        holds=reduction >= 4.0,
    )


def tlb_drop_claim(
    spec: SystemSpec = V100_NVLINK2,
    r_gib: float = 111.0,
    naive_sim=NAIVE_SIM,
    ordered_sim=ORDERED_SIM,
) -> Claim:
    """Claim 2: TLB misses cost naive INLJs a large throughput factor."""
    r_tuples = gib_to_tuples(r_gib)
    worst_drop = 0.0
    worst_index = ""
    for index_cls in (BinarySearchIndex, HarmoniaIndex, RadixSplineIndex):
        env = make_environment(spec, r_tuples, index_cls=index_cls, sim=naive_sim)
        naive = IndexNestedLoopJoin(env.index).estimate(env)
        env = make_environment(
            spec, r_tuples, index_cls=index_cls, sim=ordered_sim
        )
        partitioned = PartitionedINLJ(
            env.index, default_partitioner(env.column)
        ).estimate(env)
        if naive.queries_per_second > 0:
            drop = partitioned.queries_per_second / naive.queries_per_second
            if drop > worst_drop:
                worst_drop = drop
                worst_index = index_cls.name
    return Claim(
        name="TLB misses cause the naive INLJ throughput drop",
        paper="throughput drop of up to 16.7x on large data",
        measured=f"up to {worst_drop:.1f}x ({worst_index}) at {r_gib:g} GiB",
        holds=worst_drop >= 8.0,
    )


def selectivity_claim(spec: SystemSpec = V100_NVLINK2, sim=ORDERED_SIM) -> Claim:
    """Claim 3: the INLJ wins below a selectivity threshold."""
    result = fig9.run(
        specs=(spec,),
        r_sizes_gib=(2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0),
        sim=sim,
        index_types=(RadixSplineIndex,),
    )
    by_label = result.series_by_label()
    tag = spec.interconnect.name
    crossover = fig9.find_crossover(
        by_label[f"RadixSpline [{tag}]"], by_label[f"hash join [{tag}]"]
    )
    if crossover is None:
        return Claim(
            name="INLJ outperforms the hash join below a selectivity threshold",
            paper="below 8.0% selectivity (V100)",
            measured="no crossover found in the sweep",
            holds=False,
        )
    selectivity = DEFAULT_S_TUPLES / gib_to_tuples(crossover) * 100
    return Claim(
        name="INLJ outperforms the hash join below a selectivity threshold",
        paper="below 8.0% selectivity, i.e. beyond 6.2 GiB (V100)",
        measured=f"beyond ~{crossover:.1f} GiB (selectivity ~{selectivity:.1f}%)",
        holds=crossover <= 20.0,
    )


def index_ranking_claim(
    spec: SystemSpec = V100_NVLINK2,
    r_gib: float = 100.0,
    sim=ORDERED_SIM,
) -> Claim:
    """Claim 4: RadixSpline beats Harmonia by 1.1-1.8x."""
    r_tuples = gib_to_tuples(r_gib)
    throughputs = {}
    for index_cls in (RadixSplineIndex, HarmoniaIndex):
        env = make_environment(spec, r_tuples, index_cls=index_cls, sim=sim)
        join = WindowedINLJ(
            env.index, default_partitioner(env.column), window_bytes=32 * MIB
        )
        throughputs[index_cls.name] = join.estimate(env).queries_per_second
    ratio = throughputs["RadixSpline"] / throughputs["Harmonia"]
    return Claim(
        name="RadixSpline is the fastest out-of-core index",
        paper="1.1-1.8x higher throughput than Harmonia",
        measured=f"{ratio:.2f}x over Harmonia at {r_gib:g} GiB",
        holds=1.05 <= ratio <= 2.5,
    )


def run(spec: SystemSpec = V100_NVLINK2) -> List[Claim]:
    """Measure all Section 6 claims."""
    return [
        transfer_volume_claim(spec),
        tlb_drop_claim(spec),
        selectivity_claim(spec),
        index_ranking_claim(spec),
    ]
