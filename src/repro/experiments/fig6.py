"""Figure 6: translation requests eliminated by partitioning (Section 4.3.2).

The paper plots the percentage of translation requests eliminated relative
to the naive runs of Fig. 4: "The improvement at the TLB range boundary is
nearly 100%. ... binary search still experiences about 0.1 translation
requests per lookup.  However, the other indexes have almost zero requests
per key."
"""

from __future__ import annotations

from typing import Sequence

from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes import ALL_INDEX_TYPES
from ..perf.report import Series
from .common import (
    DEFAULT_R_SIZES_GIB,
    ExperimentResult,
    NAIVE_SIM,
    ORDERED_SIM,
)
from . import fig3, fig5

PAPER_EXPECTATION = (
    "Nearly 100% of translation requests eliminated at and beyond the "
    "32 GiB boundary; binary search retains ~0.1 requests/lookup, the "
    "other indexes almost zero"
)


def run(
    spec: SystemSpec = V100_NVLINK2,
    r_sizes_gib: Sequence[float] = DEFAULT_R_SIZES_GIB,
    naive_sim=NAIVE_SIM,
    ordered_sim=ORDERED_SIM,
    index_types: Sequence[type] = ALL_INDEX_TYPES,
    naive_requests: ExperimentResult = None,
    partitioned_requests: ExperimentResult = None,
) -> ExperimentResult:
    """Percentage of translation requests eliminated by partitioning.

    Re-runs Figs. 3-5 unless the caller passes their request results in
    (the runner does, to avoid recomputing the expensive naive sweep).
    """
    if naive_requests is None:
        __, naive_requests = fig3.run(
            spec=spec, r_sizes_gib=r_sizes_gib, sim=naive_sim,
            index_types=index_types,
        )
    if partitioned_requests is None:
        __, partitioned_requests = fig5.run(
            spec=spec, r_sizes_gib=r_sizes_gib, sim=ordered_sim,
            index_types=index_types, include_hash_join=False,
        )
    result = ExperimentResult(
        name="fig6",
        title="Translation requests eliminated by partitioning (%)",
        x_label="R (GiB)",
        paper_expectation=PAPER_EXPECTATION,
    )
    naive_by_label = naive_requests.series_by_label()
    partitioned_by_label = partitioned_requests.series_by_label()
    for index_cls in index_types:
        label = index_cls.name
        if label not in naive_by_label or label not in partitioned_by_label:
            continue
        naive = naive_by_label[label].as_dict()
        partitioned = partitioned_by_label[label].as_dict()
        series = Series(label)
        for x_value in sorted(set(naive) & set(partitioned)):
            before = naive[x_value]
            after = partitioned[x_value]
            if before < 0.05:
                # Below the TLB range there are (almost) no requests to
                # eliminate; the paper plots this region as fully
                # improved, and so do we.
                eliminated = 100.0
            else:
                eliminated = 100.0 * (1.0 - min(after, before) / before)
            series.append(x_value, eliminated)
        result.series.append(series)
        if series.y:
            residual = partitioned.get(series.x[-1], 0.0)
            result.notes.append(
                f"{label}: {series.y[-1]:.2f}% eliminated at "
                f"{series.x[-1]:g} GiB (residual {residual:.3f} requests/lookup)"
            )
    return result
