"""Figure 9: PCIe 4.0 (A100) vs NVLink 2.0 (V100) (Section 5.2.3).

Paper setup: the two fastest INLJ variants (RadixSpline and Harmonia) with
32 MiB windows, against the hash join, on both machines.  Paper
observations: the hash join is ~1.7x faster on the A100 (faster GPU); the
INLJ-vs-hash crossover moves from 6.2 GiB (8.0% selectivity) on the V100
to 13.9 GiB (3.6%) on the A100, because fast interconnects serve random
accesses better than PCIe.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import DEFAULT_S_TUPLES
from ..hardware.spec import A100_PCIE4, SystemSpec, V100_NVLINK2
from ..indexes import HarmoniaIndex, RadixSplineIndex
from ..join.hash_join import HashJoin
from ..join.window import WindowedINLJ
from ..perf.report import Series
from ..units import MIB
from .common import (
    ExperimentResult,
    ORDERED_SIM,
    default_partitioner,
    gib_to_tuples,
    make_environment,
    run_point_or_skip,
)

PAPER_EXPECTATION = (
    "Hash join ~1.7x faster on the A100; INLJ/hash crossover at 6.2 GiB "
    "(8.0% selectivity) on V100/NVLink vs 13.9 GiB (3.6%) on A100/PCIe4"
)

DEFAULT_R_SIZES_GIB = (2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0, 100.0)


def run(
    specs: Sequence[SystemSpec] = (V100_NVLINK2, A100_PCIE4),
    r_sizes_gib: Sequence[float] = DEFAULT_R_SIZES_GIB,
    window_bytes: int = 32 * MIB,
    sim=ORDERED_SIM,
    index_types: Sequence[type] = (RadixSplineIndex, HarmoniaIndex),
) -> ExperimentResult:
    """Sweep R on each machine; find the INLJ-vs-hash crossover."""
    result = ExperimentResult(
        name="fig9",
        title="Windowed INLJ vs hash join across interconnects (Q/s)",
        x_label="R (GiB)",
        paper_expectation=PAPER_EXPECTATION,
    )
    for spec in specs:
        tag = spec.interconnect.name
        hash_series = Series(f"hash join [{tag}]")
        index_series = {
            cls: Series(f"{cls.name} [{tag}]") for cls in index_types
        }
        for gib in r_sizes_gib:
            r_tuples = gib_to_tuples(gib)
            for index_cls in index_types:
                def point(index_cls=index_cls):
                    env = make_environment(
                        spec, r_tuples, index_cls=index_cls, sim=sim
                    )
                    join = WindowedINLJ(
                        env.index,
                        default_partitioner(env.column),
                        window_bytes=window_bytes,
                    )
                    return join.estimate(env)

                cost = run_point_or_skip(
                    result, f"{index_cls.name} [{tag}] @ {gib} GiB", point
                )
                if cost is not None:
                    index_series[index_cls].append(
                        gib, cost.queries_per_second
                    )

            def hash_point():
                env = make_environment(spec, r_tuples, sim=sim)
                return HashJoin(env.relation).estimate(env)

            cost = run_point_or_skip(
                result, f"hash [{tag}] @ {gib} GiB", hash_point
            )
            if cost is not None:
                hash_series.append(gib, cost.queries_per_second)
        for index_cls in index_types:
            result.series.append(index_series[index_cls])
        result.series.append(hash_series)
        crossover = find_crossover(
            index_series[index_types[0]], hash_series
        )
        if crossover is not None:
            selectivity = DEFAULT_S_TUPLES / gib_to_tuples(crossover) * 100
            result.notes.append(
                f"{tag}: {index_types[0].name}-INLJ overtakes the hash join "
                f"near {crossover:.1f} GiB (selectivity ~{selectivity:.1f}%)"
            )
        else:
            result.notes.append(f"{tag}: no crossover within the sweep")
    return result


def find_crossover(
    inlj: Series, hash_join: Series
) -> Optional[float]:
    """R (GiB) where the INLJ first beats the hash join, interpolated."""
    common = sorted(set(inlj.x) & set(hash_join.x))
    inlj_map = inlj.as_dict()
    hash_map = hash_join.as_dict()
    previous = None
    for x_value in common:
        diff = inlj_map[x_value] - hash_map[x_value]
        if diff > 0:
            if previous is None:
                return x_value
            prev_x, prev_diff = previous
            if diff == prev_diff:
                return x_value
            # Linear interpolation of the sign change.
            fraction = -prev_diff / (diff - prev_diff)
            return prev_x + fraction * (x_value - prev_x)
        previous = (x_value, diff)
    return None
