"""Shared experiment scaffolding.

The paper's standard setup (Section 3.2): S fixed at 2^26 tuples, R scaled
from 2^26 to 2^33.9 tuples (0.5-120 GiB), V100 + NVLink 2.0, 2048-way
radix partitioning ignoring the 4 least significant bits, throughput over
the whole query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..config import (
    DEFAULT_IGNORED_LSB,
    DEFAULT_NUM_PARTITIONS,
    SimulationConfig,
)
from ..data.column import Column
from ..data.generator import WorkloadConfig
from ..errors import CapacityError, ConfigurationError
from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..join.base import QueryEnvironment
from ..partition.bits import choose_partition_bits
from ..partition.radix import RadixPartitioner
from ..perf.report import Series, format_series_table
from ..units import GIB, KEY_BYTES
from . import cache

#: R sizes (GiB) swept by Figs. 3-6.  The paper scales 0.5-120 GiB; the
#: last point matches the paper's quoted "111 GiB" measurements.
DEFAULT_R_SIZES_GIB = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 48.0, 64.0, 111.0)

#: Event-simulation sample sizes.  Naive (random-order) runs need a sample
#: wider than the TLB so inter-thread thrashing is fully expressed; ordered
#: runs use the analytic TLB and can sample less.
NAIVE_SIM = SimulationConfig(probe_sample=2**16)
ORDERED_SIM = SimulationConfig(probe_sample=2**14)


def gib_to_tuples(gib: float) -> int:
    """R size in tuples for a target size in GiB (8-byte keys)."""
    return max(1, int(gib * GIB) // KEY_BYTES)


def make_environment(
    spec: SystemSpec,
    r_tuples: int,
    index_cls: Optional[Type] = None,
    sim: SimulationConfig = ORDERED_SIM,
    zipf_theta: float = 0.0,
    index_kwargs: Optional[dict] = None,
) -> QueryEnvironment:
    """Standard-workload environment on ``spec``.

    Raises :class:`~repro.errors.CapacityError` when the relation or the
    index exceeds the machine's memory (the paper's reduced R limits);
    callers skip that point, as the paper's figures do.

    Routed through :mod:`repro.experiments.cache`: when the session cache
    is enabled (runner, benchmark harness, ``repro bench``), identical
    requests share one environment instead of rebuilding the index.
    """
    workload = WorkloadConfig(r_tuples=r_tuples, zipf_theta=zipf_theta)
    return cache.environment(
        spec, workload, index_cls=index_cls, sim=sim, index_kwargs=index_kwargs
    )


def default_partitioner(column: Column) -> RadixPartitioner:
    """The paper's partitioner: 2048 partitions, 4 LSBs ignored (S4.3.1)."""
    bits = choose_partition_bits(
        column,
        num_partitions=DEFAULT_NUM_PARTITIONS,
        ignored_lsb=DEFAULT_IGNORED_LSB,
    )
    return RadixPartitioner(bits)


@dataclass
class ExperimentResult:
    """Output of one experiment: labelled series plus free-form notes.

    Attributes:
        name: experiment id (e.g. ``"fig5"``).
        title: human-readable description.
        x_label: meaning of the series' x values.
        series: one entry per line of the figure.
        notes: per-run remarks (skipped points, DNFs, derived metrics).
        paper_expectation: what the paper reports, for EXPERIMENTS.md.
    """

    name: str
    title: str
    x_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_expectation: str = ""

    def series_by_label(self) -> Dict[str, Series]:
        return {series.label: series for series in self.series}

    def to_text(self, y_format: str = "{:.3f}") -> str:
        """Figure-like text table plus notes."""
        parts = [
            format_series_table(
                self.series,
                x_label=self.x_label,
                y_format=y_format,
                title=f"{self.name}: {self.title}",
            )
        ]
        for note in self.notes:
            parts.append(f"  note: {note}")
        if self.paper_expectation:
            parts.append(f"  paper: {self.paper_expectation}")
        return "\n".join(parts)


def run_point_or_skip(result: ExperimentResult, label: str, func) -> Optional[float]:
    """Execute one data point, recording capacity-limit skips.

    The paper drops B+tree/Harmonia points past their memory limit
    (Section 3.2); this helper mirrors that by catching
    :class:`CapacityError` and noting the skip instead of failing the
    whole experiment.
    """
    try:
        return func()
    except CapacityError as error:
        result.notes.append(f"{label}: skipped ({error})")
        return None


# ----------------------------------------------------------------------
# Sweep points as picklable tasks (the parallel runner's unit of work).
# ----------------------------------------------------------------------

#: One standard sweep point: join kind, machine, R size, index, sim.
#: ``index_cls`` is None for the hash join.  Tasks are plain tuples of
#: picklable values so ``multiprocessing`` workers can receive them.
PointTask = Tuple[str, SystemSpec, int, Optional[Type], SimulationConfig]


def run_standard_point(task: PointTask):
    """Simulate one sweep point; returns ``("ok", cost) | ("skip", msg)``.

    This is the single code path behind both the serial and the parallel
    sweep runners -- determinism across the two is by construction, since
    every point derives its RNG streams from the task's ``sim.seed``
    alone.  Points are memoized through the session cache under a key
    built only from the task, so identical (index, R size, sample
    config) points simulate once across figures.
    """
    kind, spec, r_tuples, index_cls, sim = task

    def compute():
        if kind == "inlj":
            from ..join.inlj import IndexNestedLoopJoin

            env = make_environment(spec, r_tuples, index_cls=index_cls, sim=sim)
            return IndexNestedLoopJoin(env.index).estimate(env)
        if kind == "partitioned":
            from ..join.partitioned import PartitionedINLJ

            env = make_environment(spec, r_tuples, index_cls=index_cls, sim=sim)
            partitioner = default_partitioner(env.column)
            return PartitionedINLJ(env.index, partitioner).estimate(env)
        if kind == "hash":
            from ..join.hash_join import HashJoin

            env = make_environment(spec, r_tuples, sim=sim)
            return HashJoin(env.relation).estimate(env)
        raise ConfigurationError(f"unknown point kind: {kind!r}")

    try:
        cost = cache.point(("standard-point",) + task, compute)
    except CapacityError as error:
        return ("skip", str(error))
    return ("ok", cost)


def map_standard_points(tasks: Sequence[PointTask], workers: int = 1) -> list:
    """Run sweep points serially or across ``workers`` processes.

    Results come back in task order either way, and each point is
    computed by :func:`run_standard_point` either way, so serial and
    parallel runs produce bit-identical figures.  Worker processes each
    hold their own session cache; the merged results are re-inserted
    into the parent's cache so later figures still get their hits.
    """
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [run_standard_point(task) for task in tasks]
    import multiprocessing

    with multiprocessing.Pool(min(workers, len(tasks))) as pool:
        outcomes = pool.map(run_standard_point, list(tasks))
    for task, outcome in zip(tasks, outcomes):
        if outcome[0] == "ok":
            cache.point(
                ("standard-point",) + tuple(task),
                lambda value=outcome[1]: value,
            )
    return outcomes
