"""Shared experiment scaffolding.

The paper's standard setup (Section 3.2): S fixed at 2^26 tuples, R scaled
from 2^26 to 2^33.9 tuples (0.5-120 GiB), V100 + NVLink 2.0, 2048-way
radix partitioning ignoring the 4 least significant bits, throughput over
the whole query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from .. import obs
from ..config import (
    DEFAULT_IGNORED_LSB,
    DEFAULT_NUM_PARTITIONS,
    SimulationConfig,
)
from ..data.column import Column
from ..data.generator import WorkloadConfig
from ..errors import CapacityError, ConfigurationError, SweepExecutionError
from ..hardware.spec import SystemSpec
from ..join.base import QueryEnvironment
from ..partition.bits import choose_partition_bits
from ..partition.radix import RadixPartitioner
from ..perf.report import Series, format_series_table
from ..resilience import checkpoint as checkpoint_mod
from ..resilience import faults
from ..resilience import retry as retry_mod
from ..resilience.retry import RetryPolicy, with_retry
from ..units import GIB, KEY_BYTES
from . import cache

#: R sizes (GiB) swept by Figs. 3-6.  The paper scales 0.5-120 GiB; the
#: last point matches the paper's quoted "111 GiB" measurements.
DEFAULT_R_SIZES_GIB = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 48.0, 64.0, 111.0)

#: Event-simulation sample sizes.  Naive (random-order) runs need a sample
#: wider than the TLB so inter-thread thrashing is fully expressed; ordered
#: runs use the analytic TLB and can sample less.
NAIVE_SIM = SimulationConfig(probe_sample=2**16)
ORDERED_SIM = SimulationConfig(probe_sample=2**14)


def gib_to_tuples(gib: float) -> int:
    """R size in tuples for a target size in GiB (8-byte keys)."""
    return max(1, int(gib * GIB) // KEY_BYTES)


def make_environment(
    spec: SystemSpec,
    r_tuples: int,
    index_cls: Optional[Type] = None,
    sim: SimulationConfig = ORDERED_SIM,
    zipf_theta: float = 0.0,
    index_kwargs: Optional[dict] = None,
) -> QueryEnvironment:
    """Standard-workload environment on ``spec``.

    Raises :class:`~repro.errors.CapacityError` when the relation or the
    index exceeds the machine's memory (the paper's reduced R limits);
    callers skip that point, as the paper's figures do.

    Routed through :mod:`repro.experiments.cache`: when the session cache
    is enabled (runner, benchmark harness, ``repro bench``), identical
    requests share one environment instead of rebuilding the index.
    """
    workload = WorkloadConfig(r_tuples=r_tuples, zipf_theta=zipf_theta)
    return cache.environment(
        spec, workload, index_cls=index_cls, sim=sim, index_kwargs=index_kwargs
    )


def default_partitioner(column: Column) -> RadixPartitioner:
    """The paper's partitioner: 2048 partitions, 4 LSBs ignored (S4.3.1)."""
    bits = choose_partition_bits(
        column,
        num_partitions=DEFAULT_NUM_PARTITIONS,
        ignored_lsb=DEFAULT_IGNORED_LSB,
    )
    return RadixPartitioner(bits)


@dataclass
class ExperimentResult:
    """Output of one experiment: labelled series plus free-form notes.

    Attributes:
        name: experiment id (e.g. ``"fig5"``).
        title: human-readable description.
        x_label: meaning of the series' x values.
        series: one entry per line of the figure.
        notes: per-run remarks (skipped points, DNFs, derived metrics).
        paper_expectation: what the paper reports, for EXPERIMENTS.md.
    """

    name: str
    title: str
    x_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_expectation: str = ""

    def series_by_label(self) -> Dict[str, Series]:
        return {series.label: series for series in self.series}

    def to_text(self, y_format: str = "{:.3f}") -> str:
        """Figure-like text table plus notes."""
        parts = [
            format_series_table(
                self.series,
                x_label=self.x_label,
                y_format=y_format,
                title=f"{self.name}: {self.title}",
            )
        ]
        for note in self.notes:
            parts.append(f"  note: {note}")
        if self.paper_expectation:
            parts.append(f"  paper: {self.paper_expectation}")
        return "\n".join(parts)


def run_point_or_skip(result: ExperimentResult, label: str, func) -> Optional[float]:
    """Execute one data point, recording capacity-limit skips.

    The paper drops B+tree/Harmonia points past their memory limit
    (Section 3.2); this helper mirrors that by catching
    :class:`CapacityError` and noting the skip instead of failing the
    whole experiment.
    """
    try:
        return func()
    except CapacityError as error:
        result.notes.append(f"{label}: skipped ({error})")
        return None


# ----------------------------------------------------------------------
# Sweep points as picklable tasks (the parallel runner's unit of work).
# ----------------------------------------------------------------------

#: One standard sweep point: join kind, machine, R size, index, sim.
#: ``index_cls`` is None for the hash join.  Tasks are plain tuples of
#: picklable values so ``multiprocessing`` workers can receive them.
PointTask = Tuple[str, SystemSpec, int, Optional[Type], SimulationConfig]


def task_label(task: PointTask) -> str:
    """Short human/fault-matchable name for one sweep point."""
    kind, _spec, r_tuples, index_cls, _sim = task
    index_name = index_cls.__name__ if index_cls is not None else "none"
    return f"{kind}:{index_name}:{r_tuples}"


def run_standard_point(task: PointTask):
    """Simulate one sweep point; returns ``("ok", cost) | ("skip", msg)``.

    This is the single code path behind both the serial and the parallel
    sweep runners -- determinism across the two is by construction, since
    every point derives its RNG streams from the task's ``sim.seed``
    alone.  Points are memoized through the session cache under a key
    built only from the task, so identical (index, R size, sample
    config) points simulate once across figures.

    A fault-injection check precedes the computation: with a
    ``*@point`` plan installed (see :mod:`repro.resilience.faults`) this
    is where injected raises, hangs, and worker crashes happen -- in
    exactly the process (serial parent or pool worker) executing the
    point, which is what makes every recovery path reachable from tests.
    """
    kind, spec, r_tuples, index_cls, sim = task
    faults.check("point", task_label(task))

    def compute():
        if kind == "inlj":
            from ..join.inlj import IndexNestedLoopJoin

            env = make_environment(spec, r_tuples, index_cls=index_cls, sim=sim)
            return IndexNestedLoopJoin(env.index).estimate(env)
        if kind == "partitioned":
            from ..join.partitioned import PartitionedINLJ

            env = make_environment(spec, r_tuples, index_cls=index_cls, sim=sim)
            partitioner = default_partitioner(env.column)
            return PartitionedINLJ(env.index, partitioner).estimate(env)
        if kind == "hash":
            from ..join.hash_join import HashJoin

            env = make_environment(spec, r_tuples, sim=sim)
            return HashJoin(env.relation).estimate(env)
        raise ConfigurationError(f"unknown point kind: {kind!r}")

    try:
        cost = cache.point(("standard-point",) + task, compute)
    except CapacityError as error:
        return ("skip", str(error))
    return ("ok", cost)


def validate_workers(workers) -> int:
    """Reject nonsense ``--workers`` values before they reach a pool."""
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ConfigurationError(
            f"workers must be an integer, got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(
            f"workers must be >= 1, got {workers} "
            "(1 = serial, N = N sweep processes)"
        )
    return workers


def resolve_workers(workers) -> int:
    """Worker count with ``0``/``None`` meaning auto: one per CPU core."""
    if workers is None:
        workers = 0
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ConfigurationError(
            f"workers must be an integer, got {workers!r}"
        )
    if workers == 0:
        import os

        return max(1, os.cpu_count() or 1)
    return validate_workers(workers)


#: Diagnostics from the most recent :func:`map_standard_points` call in
#: this process: resumed/computed point counts, retries, pool restarts,
#: and whether the sweep degraded to serial.  Read by tests and by the
#: runner's failure reports; never consulted for control flow.
LAST_SWEEP: dict = {}


def _reset_sweep_stats(total: int) -> dict:
    LAST_SWEEP.clear()
    LAST_SWEEP.update(
        {
            "points": total,
            "resumed": 0,
            "computed": 0,
            "requeued": 0,
            "pool_restarts": 0,
            "degraded": False,
        }
    )
    return LAST_SWEEP


def _merge_into_cache(task: PointTask, outcome) -> None:
    """Re-insert a worker/checkpoint result into this process's cache."""
    if outcome[0] == "ok":
        cache.point(
            ("standard-point",) + tuple(task),
            lambda value=outcome[1]: value,
        )


def _record(checkpoint, fingerprints, index, outcome) -> None:
    if checkpoint is not None:
        checkpoint.record(fingerprints[index], outcome)


def _init_worker() -> None:
    """Pool-worker initializer: fault counters restart from zero."""
    faults.reset_for_worker()


def _run_serial(run_task, label_fn, tasks, indices, results, policy,
                checkpoint, fingerprints):
    """Serial execution with retry; used directly and as the fallback."""
    for index in indices:
        outcome = with_retry(
            lambda task=tasks[index]: run_task(task),
            policy,
            label=label_fn(tasks[index]),
        )
        results[index] = outcome
        LAST_SWEEP["computed"] += 1
        _record(checkpoint, fingerprints, index, outcome)


def _run_pooled(run_task, label_fn, merge, tasks, pending, results, workers,
                policy, checkpoint, fingerprints):
    """Fan pending points across a pool, surviving crashes and hangs.

    Every point is submitted individually and collected with a per-point
    timeout, so a worker crash (its result never arrives) and a wedged
    worker (ditto) look the same: a lost point.  Lost points are
    requeued into a fresh pool -- the old one is terminated, which also
    reaps wedged processes -- and after ``policy.max_pool_restarts``
    rebuilds the sweep degrades gracefully to serial execution for
    whatever is left.  Points that *raise* are retried up to
    ``policy.max_attempts`` with backoff; a point that exhausts its
    budget fails the sweep with :class:`SweepExecutionError` (the runner
    isolates that per experiment).
    """
    import multiprocessing

    attempts = {index: 0 for index in pending}
    restarts = 0
    while pending:
        pool = multiprocessing.Pool(
            min(workers, len(pending)), initializer=_init_worker
        )
        lost = False
        requeue = []
        try:
            handles = [
                (index, pool.apply_async(run_task, (tasks[index],)))
                for index in pending
            ]
            for index, handle in handles:
                label = label_fn(tasks[index])
                try:
                    outcome = handle.get(policy.point_timeout)
                except multiprocessing.TimeoutError:
                    # Crash or hang: the result will never arrive.
                    lost = True
                    attempts[index] += 1
                    requeue.append(index)
                    LAST_SWEEP["requeued"] += 1
                except (CapacityError, ConfigurationError):
                    raise  # non-retryable; bubble to the experiment
                except Exception as error:
                    attempts[index] += 1
                    if attempts[index] >= policy.max_attempts:
                        raise SweepExecutionError(
                            f"{label} failed after {attempts[index]} "
                            f"attempts: {type(error).__name__}: {error}"
                        ) from error
                    requeue.append(index)
                    LAST_SWEEP["requeued"] += 1
                    time.sleep(policy.backoff(attempts[index], label))
                else:
                    results[index] = outcome
                    LAST_SWEEP["computed"] += 1
                    if merge is not None:
                        merge(tasks[index], outcome)
                    _record(checkpoint, fingerprints, index, outcome)
        finally:
            # terminate (not close): reaps wedged/crashed workers too.
            pool.terminate()
            pool.join()
        pending = requeue
        if lost and pending:
            restarts += 1
            LAST_SWEEP["pool_restarts"] = restarts
            if restarts > policy.max_pool_restarts:
                # The pool keeps dying: finish the remaining points
                # serially rather than flail (injected crash faults are
                # inert in the parent process by design).
                LAST_SWEEP["degraded"] = True
                _run_serial(
                    run_task, label_fn, tasks, pending, results, policy,
                    checkpoint, fingerprints,
                )
                return


def map_tasks(
    run_task,
    tasks: Sequence,
    workers: int = 1,
    policy: Optional[RetryPolicy] = None,
    checkpoint: Optional[checkpoint_mod.SweepCheckpoint] = None,
    resume: Optional[bool] = None,
    label_fn=None,
    merge=None,
) -> list:
    """Run picklable tasks resiliently, serially or across processes.

    The generic engine behind :func:`map_standard_points` (experiment
    sweeps) and the serve-bench sweep.  Results come back in task order
    either way, and each task runs through the same ``run_task``
    function either way, so serial, parallel, retried, requeued, and
    resumed runs all produce bit-identical output -- provided
    ``run_task`` is a pure function of its task (derive every RNG stream
    from the task itself).

    ``run_task`` must be a module-level function (pool workers receive
    it by pickle).  ``label_fn`` names a task for logs and fault plans;
    ``merge(task, outcome)`` runs in the parent for every pooled result,
    letting callers re-insert worker results into parent-process caches.

    Resilience (see :mod:`repro.resilience`):

    * failing tasks retry with exponential backoff + deterministic
      jitter (``policy``, default :meth:`RetryPolicy.from_env`);
    * pooled tasks carry a timeout; a crashed or wedged worker shows up
      as a lost task, which is requeued into a fresh pool, and repeated
      pool deaths degrade the sweep to serial execution;
    * with a checkpoint active (explicit argument, the runner's
      ``--checkpoint-dir``, or ``REPRO_CHECKPOINT_DIR``), completed
      tasks append to a JSONL file keyed by the task list's config
      hash, and a resumed run recomputes only the missing tasks.

    ``resume`` overrides the checkpoint's resume mode only when a
    checkpoint is constructed here (it is ignored for an explicitly
    passed instance, which already chose its mode).
    """
    tasks = list(tasks)
    if label_fn is None:
        label_fn = repr
    if workers is not None:
        validate_workers(workers)
    if policy is None:
        policy = retry_mod.active_policy()
    stats = _reset_sweep_stats(len(tasks))
    if checkpoint is None:
        checkpoint = checkpoint_mod.for_tasks(tasks)
        if checkpoint is not None and resume is False:
            checkpoint = checkpoint_mod.SweepCheckpoint(
                checkpoint.path, resume=False
            )
    fingerprints = (
        [checkpoint_mod.fingerprint(task) for task in tasks]
        if checkpoint is not None
        else None
    )

    results: list = [None] * len(tasks)
    pending = []
    for index, task in enumerate(tasks):
        stored = (
            checkpoint.get(fingerprints[index])
            if checkpoint is not None
            else None
        )
        if stored is not None:
            results[index] = stored
            stats["resumed"] += 1
            if merge is not None:
                merge(task, stored)
        else:
            pending.append(index)

    # Pooled workers collect obs counters in their own process and do not
    # report them back; traced sweeps that must account every op (e.g. the
    # CI bench-smoke manifest) run serially.
    with obs.span(
        "sweep.map",
        points=len(tasks),
        pending=len(pending),
        workers=workers or 1,
    ):
        if workers is None or workers <= 1 or len(pending) <= 1:
            _run_serial(
                run_task, label_fn, tasks, pending, results, policy,
                checkpoint, fingerprints,
            )
        else:
            _run_pooled(
                run_task, label_fn, merge, tasks, pending, results, workers,
                policy, checkpoint, fingerprints,
            )
    if obs.enabled():
        for key in (
            "points", "resumed", "computed", "requeued", "pool_restarts"
        ):
            if stats[key]:
                obs.add(f"sweep.{key}", float(stats[key]))
        if stats["degraded"]:
            obs.add("sweep.degraded")
    return results


def map_standard_points(
    tasks: Sequence[PointTask],
    workers: int = 1,
    policy: Optional[RetryPolicy] = None,
    checkpoint: Optional[checkpoint_mod.SweepCheckpoint] = None,
    resume: Optional[bool] = None,
) -> list:
    """Run standard sweep points resiliently; see :func:`map_tasks`.

    Each point is computed by :func:`run_standard_point` whichever
    execution path runs it, so serial, parallel, retried, requeued, and
    resumed runs all produce bit-identical figures.  Worker processes
    each hold their own session cache; merged results are re-inserted
    into the parent's cache so later figures still get their hits.
    """
    return map_tasks(
        run_standard_point,
        tasks,
        workers=workers,
        policy=policy,
        checkpoint=checkpoint,
        resume=resume,
        label_fn=task_label,
        merge=_merge_into_cache,
    )
