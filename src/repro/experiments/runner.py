"""Run every experiment and render the paper-vs-measured report.

Usage::

    python -m repro.experiments.runner            # everything (minutes)
    python -m repro.experiments.runner fig5 fig7  # a subset
    python -m repro.experiments.runner --quick    # reduced sweeps (~1 min)

The output is the text the benchmark harness and EXPERIMENTS.md are built
from: one figure-shaped table per experiment, with the paper's expectation
attached.

Failure isolation: each experiment runs inside a guard.  An experiment
that raises is captured as a structured
:class:`~repro.resilience.report.ExperimentFailure` (exception,
traceback, elapsed time, sweep points completed), every *other*
experiment still runs, and the run ends with a failure summary and -- via
the CLI -- a nonzero exit code.  Checkpointing (``--checkpoint-dir`` /
``--resume``) lets a killed run pick up where it stopped, recomputing
only the missing sweep points.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .. import obs
from ..errors import ConfigurationError
from ..resilience import checkpoint as checkpoint_mod
from ..resilience import faults
from ..resilience.report import ExperimentFailure, RunReport
from ..resilience import retry as retry_mod
from ..resilience.retry import RetryPolicy
from . import (
    cache,
    claims,
    common,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    nonequi,
    table1,
)
from .common import DEFAULT_R_SIZES_GIB, NAIVE_SIM

#: Reduced sweeps for --quick mode.
QUICK_R_SIZES = (1.0, 16.0, 32.0, 48.0, 111.0)
QUICK_WINDOWS = tuple(2**exp for exp in (18, 20, 22, 24, 26))
QUICK_THETAS = (0.0, 0.5, 1.0, 1.5, 1.75)
QUICK_NAIVE_SIM = NAIVE_SIM.with_sample(2**15)


def run_report(
    names,
    quick: bool = False,
    stream=None,
    output_dir=None,
    charts: bool = False,
    workers: int = 1,
    checkpoint_dir=None,
    resume: bool = False,
    policy: RetryPolicy = None,
    trace: bool = None,
    trace_file=None,
) -> RunReport:
    """Run the named experiments (all if empty); returns a RunReport.

    ``output_dir`` additionally writes each result as CSV + JSON;
    ``charts`` appends a terminal chart under every figure's table.
    ``stream`` defaults to the *current* sys.stdout (resolved per call,
    so redirected/captured stdout is honoured).  ``workers > 1`` fans the
    standard sweeps' points across that many processes; the figures are
    bit-identical to a serial run.  ``checkpoint_dir`` persists completed
    sweep points; with ``resume`` a rerun skips the points already on
    disk (still bit-identical).  ``policy`` tunes retry/timeout behavior
    for the sweeps (default: :meth:`RetryPolicy.from_env`).

    ``trace=True`` enables the observability layer (:mod:`repro.obs`)
    for this run, ``trace=False`` disables it, and ``None`` keeps the
    ``REPRO_TRACE`` environment default.  A traced run writes a
    ``metrics.json`` run manifest to ``trace_file`` (default:
    ``REPRO_TRACE_FILE``, else ``metrics.json`` in ``output_dir`` or the
    working directory) plus one ``<name>.metrics.json`` per exported
    experiment.  Note pooled workers (``workers > 1``) keep their op
    counters local; fully-accounted manifests need a serial run.
    """
    if stream is None:
        stream = sys.stdout
    common.validate_workers(workers)
    if trace is not None:
        obs.enable(bool(trace))
    obs.reset()
    from ..perf.alloc import tune_allocator

    tune_allocator()
    report = RunReport()
    with cache.session(), checkpoint_mod.configured(
        checkpoint_dir, resume=resume
    ), retry_mod.configured(policy):
        _run_all(names, quick, stream, output_dir, charts, workers, report)
    report.timings.update(obs.phase_wall_seconds())
    run_summary = report.run_summary_text()
    if run_summary:
        stream.write(run_summary + "\n")
        stream.flush()
    summary = report.summary_text()
    if summary:
        stream.write(summary + "\n")
        stream.flush()
    if obs.enabled():
        target = trace_file or os.environ.get(obs.TRACE_FILE_ENV)
        if not target:
            target = (
                os.path.join(output_dir, "metrics.json")
                if output_dir is not None
                else "metrics.json"
            )
        obs.write_manifest(
            target,
            run_info={
                "experiments": sorted(report.results),
                "quick": bool(quick),
                "workers": workers,
            },
        )
        stream.write(f"[trace manifest written to {target}]\n")
        stream.flush()
    return report


def run_all(
    names,
    quick: bool = False,
    stream=None,
    output_dir=None,
    charts: bool = False,
    workers: int = 1,
    checkpoint_dir=None,
    resume: bool = False,
    policy: RetryPolicy = None,
) -> dict:
    """Backward-compatible wrapper: results by name (see :func:`run_report`)."""
    return run_report(
        names,
        quick=quick,
        stream=stream,
        output_dir=output_dir,
        charts=charts,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        policy=policy,
    ).results


def _run_all(names, quick, stream, output_dir, charts, workers, report):
    wanted = set(names) if names else None
    results = report.results

    def selected(name: str) -> bool:
        return wanted is None or name in wanted

    def emit(text: str) -> None:
        stream.write(text + "\n\n")
        stream.flush()

    def took(name: str) -> float:
        """Wall seconds one experiment phase spent (span-sourced)."""
        seconds = obs.tracer().phase_wall_seconds(name)
        return 0.0 if seconds is None else seconds

    def guarded(name: str, func):
        """Run one experiment in isolation; capture any failure.

        Returns the experiment's value, or None when it failed (the
        failure lands in the report and the remaining experiments still
        run).  The ``experiment`` fault-injection site fires here, so
        tests can force any single experiment to fail by name.

        The whole experiment executes inside an ``obs.phase(name)``
        scope: its wall time is measured unconditionally (the exit
        summary and failure report use it), and while tracing is on
        every counter recorded inside lands in the phase's shadow
        section of the run manifest.
        """
        started = time.time()
        sweep_before = dict(common.LAST_SWEEP)
        try:
            with obs.phase(name):
                faults.check("experiment", name)
                return func()
        except Exception as error:  # isolated: the run continues
            # Only attribute sweep progress to this failure if this
            # experiment actually advanced a sweep.
            completed = (
                common.LAST_SWEEP.get("computed")
                if common.LAST_SWEEP != sweep_before
                else None
            )
            elapsed = obs.tracer().phase_wall_seconds(name)
            if elapsed is None:
                elapsed = time.time() - started
            report.failures.append(
                ExperimentFailure.from_exception(
                    name,
                    "experiment",
                    error,
                    started,
                    points_completed=completed,
                    elapsed_seconds=elapsed,
                )
            )
            emit(
                f"  [{name} FAILED after {elapsed:.1f}s: "
                f"{type(error).__name__}: {error}; continuing -- see "
                "failure summary]"
            )
            return None

    def finish(result, phase=None) -> None:
        if output_dir is not None:
            from ..perf.export import write_result

            write_result(result, output_dir)
            if obs.enabled():
                obs.write_manifest(
                    os.path.join(output_dir, f"{result.name}.metrics.json"),
                    run_info={"experiment": result.name},
                    phase=phase or result.name,
                )
        if charts:
            from ..perf.charts import chart_experiment

            started = time.time()
            try:
                emit(chart_experiment(result))
            except Exception as error:
                # Charts are best-effort output, but their failures are
                # real bugs: keep the run alive, record the full
                # traceback in the failure report instead of swallowing
                # it into a one-liner.
                report.failures.append(
                    ExperimentFailure.from_exception(
                        f"{result.name} chart",
                        "chart",
                        error,
                        started,
                        fatal=False,
                    )
                )
                emit(
                    f"  [chart for {result.name} failed: "
                    f"{type(error).__name__}: {error}; traceback in "
                    "failure summary]"
                )

    r_sizes = QUICK_R_SIZES if quick else DEFAULT_R_SIZES_GIB
    naive_sim = QUICK_NAIVE_SIM if quick else NAIVE_SIM

    if selected("table1"):
        value = guarded("table1", table1.run)
        if value is not None:
            results["table1"] = value
            emit(value)
            emit(f"  [table1 took {took('table1'):.1f}s]")

    naive_requests = None
    if selected("fig3") or selected("fig4") or selected("fig6"):
        value = guarded(
            "fig3+fig4",
            lambda: fig3.run(r_sizes_gib=r_sizes, sim=naive_sim, workers=workers),
        )
        if value is not None:
            throughput, naive_requests = value
            results["fig3"] = throughput
            results["fig4"] = naive_requests
            if selected("fig3"):
                emit(throughput.to_text())
                finish(throughput, phase="fig3+fig4")
            if selected("fig4"):
                emit(naive_requests.to_text(y_format="{:.2f}"))
                finish(naive_requests, phase="fig3+fig4")
            emit(f"  [fig3+fig4 took {took('fig3+fig4'):.1f}s]")

    partitioned_requests = None
    if selected("fig5") or selected("fig6"):
        value = guarded(
            "fig5",
            lambda: fig5.run(r_sizes_gib=r_sizes, workers=workers),
        )
        if value is not None:
            throughput, partitioned_requests = value
            results["fig5"] = throughput
            if selected("fig5"):
                emit(throughput.to_text())
                finish(throughput, phase="fig5")
            emit(f"  [fig5 took {took('fig5'):.1f}s]")

    if selected("fig6"):
        value = guarded(
            "fig6",
            lambda: fig6.run(
                r_sizes_gib=r_sizes,
                naive_requests=naive_requests,
                partitioned_requests=partitioned_requests,
            ),
        )
        if value is not None:
            results["fig6"] = value
            emit(value.to_text(y_format="{:.2f}"))
            finish(value)
            emit(f"  [fig6 took {took('fig6'):.1f}s]")

    if selected("fig7"):
        windows = QUICK_WINDOWS if quick else fig7.DEFAULT_WINDOW_TUPLES
        value = guarded("fig7", lambda: fig7.run(window_tuples=windows))
        if value is not None:
            results["fig7"] = value
            emit(value.to_text())
            finish(value)
            emit(f"  [fig7 took {took('fig7'):.1f}s]")

    if selected("fig8"):
        thetas = QUICK_THETAS if quick else fig8.DEFAULT_THETAS
        value = guarded("fig8", lambda: fig8.run(thetas=thetas))
        if value is not None:
            results["fig8"] = value
            emit(value.to_text())
            finish(value)
            emit(f"  [fig8 took {took('fig8'):.1f}s]")

    if selected("fig9"):
        value = guarded("fig9", fig9.run)
        if value is not None:
            results["fig9"] = value
            emit(value.to_text())
            finish(value)
            emit(f"  [fig9 took {took('fig9'):.1f}s]")

    if selected("nonequi"):
        thetas = (0.0,) if quick else nonequi.DEFAULT_THETAS
        value = guarded(
            "nonequi", lambda: nonequi.run(thetas=thetas, workers=workers)
        )
        if value is not None:
            results["nonequi"] = value
            emit(value.to_text())
            finish(value)
            emit(f"  [nonequi took {took('nonequi'):.1f}s]")

    if selected("claims"):
        measured = guarded("claims", claims.run)
        if measured is not None:
            results["claims"] = measured
            for claim in measured:
                emit(claim.to_text())
            emit(f"  [claims took {took('claims'):.1f}s]")


def add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared retry/timeout/checkpoint CLI flags."""
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per sweep point (default 3, or REPRO_RETRIES)",
    )
    parser.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="seconds before a pooled sweep point is declared lost and "
             "requeued (default 300, or REPRO_POINT_TIMEOUT; 0 disables)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="append completed sweep points to JSONL checkpoints in DIR",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint-dir (or REPRO_CHECKPOINT_DIR): skip sweep "
             "points already checkpointed, recomputing only the missing ones",
    )


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability CLI flags."""
    parser.add_argument(
        "--trace", action="store_true",
        help="enable the observability layer: spans, op counters, and a "
             "metrics.json run manifest (same as REPRO_TRACE=1)",
    )
    parser.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="run-manifest path for --trace (default REPRO_TRACE_FILE, "
             "else metrics.json next to the exported results)",
    )


def policy_from_args(args) -> RetryPolicy:
    """A :class:`RetryPolicy` from parsed CLI flags over env defaults."""
    policy = RetryPolicy.from_env()
    overrides = {}
    if getattr(args, "retries", None) is not None:
        overrides["max_attempts"] = args.retries
    if getattr(args, "point_timeout", None) is not None:
        overrides["point_timeout"] = (
            args.point_timeout if args.point_timeout > 0 else None
        )
    if overrides:
        from dataclasses import replace

        policy = replace(policy, **overrides)
    return policy


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="subset to run: table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 "
             "nonequi claims",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps (~1 minute)"
    )
    parser.add_argument(
        "--output-dir", default=None,
        help="write each result as CSV + JSON into this directory",
    )
    parser.add_argument(
        "--charts", action="store_true",
        help="append a terminal chart under every figure",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="processes for the standard sweeps (results identical to serial)",
    )
    add_resilience_arguments(parser)
    add_trace_arguments(parser)
    args = parser.parse_args(argv)
    try:
        report = run_report(
            args.experiments,
            quick=args.quick,
            output_dir=args.output_dir,
            charts=args.charts,
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            policy=policy_from_args(args),
            trace=True if args.trace else None,
            trace_file=args.trace_file,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
