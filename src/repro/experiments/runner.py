"""Run every experiment and render the paper-vs-measured report.

Usage::

    python -m repro.experiments.runner            # everything (minutes)
    python -m repro.experiments.runner fig5 fig7  # a subset
    python -m repro.experiments.runner --quick    # reduced sweeps (~1 min)

The output is the text the benchmark harness and EXPERIMENTS.md are built
from: one figure-shaped table per experiment, with the paper's expectation
attached.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import cache, claims, fig3, fig5, fig6, fig7, fig8, fig9, table1
from .common import DEFAULT_R_SIZES_GIB, NAIVE_SIM, ORDERED_SIM

#: Reduced sweeps for --quick mode.
QUICK_R_SIZES = (1.0, 16.0, 32.0, 48.0, 111.0)
QUICK_WINDOWS = tuple(2**exp for exp in (18, 20, 22, 24, 26))
QUICK_THETAS = (0.0, 0.5, 1.0, 1.5, 1.75)
QUICK_NAIVE_SIM = NAIVE_SIM.with_sample(2**15)


def run_all(
    names,
    quick: bool = False,
    stream=None,
    output_dir=None,
    charts: bool = False,
    workers: int = 1,
) -> dict:
    """Run the named experiments (all if empty); returns results by name.

    ``output_dir`` additionally writes each result as CSV + JSON;
    ``charts`` appends a terminal chart under every figure's table.
    ``stream`` defaults to the *current* sys.stdout (resolved per call,
    so redirected/captured stdout is honoured).  ``workers > 1`` fans the
    standard sweeps' points across that many processes; the figures are
    bit-identical to a serial run.
    """
    if stream is None:
        stream = sys.stdout
    from ..perf.alloc import tune_allocator

    tune_allocator()
    with cache.session():
        return _run_all(
            names, quick, stream, output_dir, charts, workers
        )


def _run_all(names, quick, stream, output_dir, charts, workers) -> dict:
    wanted = set(names) if names else None
    results = {}

    def selected(name: str) -> bool:
        return wanted is None or name in wanted

    def emit(text: str) -> None:
        stream.write(text + "\n\n")
        stream.flush()

    def finish(result) -> None:
        if output_dir is not None:
            from ..perf.export import write_result

            write_result(result, output_dir)
        if charts:
            from ..perf.charts import chart_experiment

            try:
                emit(chart_experiment(result))
            except Exception as error:  # charts are best-effort output
                emit(f"  [chart skipped: {error}]")

    r_sizes = QUICK_R_SIZES if quick else DEFAULT_R_SIZES_GIB
    naive_sim = QUICK_NAIVE_SIM if quick else NAIVE_SIM

    if selected("table1"):
        started = time.time()
        results["table1"] = table1.run()
        emit(results["table1"])
        emit(f"  [table1 took {time.time() - started:.1f}s]")

    naive_requests = None
    if selected("fig3") or selected("fig4") or selected("fig6"):
        started = time.time()
        throughput, naive_requests = fig3.run(
            r_sizes_gib=r_sizes, sim=naive_sim, workers=workers
        )
        results["fig3"] = throughput
        results["fig4"] = naive_requests
        if selected("fig3"):
            emit(throughput.to_text())
            finish(throughput)
        if selected("fig4"):
            emit(naive_requests.to_text(y_format="{:.2f}"))
            finish(naive_requests)
        emit(f"  [fig3+fig4 took {time.time() - started:.1f}s]")

    partitioned_requests = None
    if selected("fig5") or selected("fig6"):
        started = time.time()
        throughput, partitioned_requests = fig5.run(
            r_sizes_gib=r_sizes, workers=workers
        )
        results["fig5"] = throughput
        if selected("fig5"):
            emit(throughput.to_text())
            finish(throughput)
        emit(f"  [fig5 took {time.time() - started:.1f}s]")

    if selected("fig6"):
        started = time.time()
        results["fig6"] = fig6.run(
            r_sizes_gib=r_sizes,
            naive_requests=naive_requests,
            partitioned_requests=partitioned_requests,
        )
        emit(results["fig6"].to_text(y_format="{:.2f}"))
        finish(results["fig6"])
        emit(f"  [fig6 took {time.time() - started:.1f}s]")

    if selected("fig7"):
        started = time.time()
        windows = QUICK_WINDOWS if quick else fig7.DEFAULT_WINDOW_TUPLES
        results["fig7"] = fig7.run(window_tuples=windows)
        emit(results["fig7"].to_text())
        finish(results["fig7"])
        emit(f"  [fig7 took {time.time() - started:.1f}s]")

    if selected("fig8"):
        started = time.time()
        thetas = QUICK_THETAS if quick else fig8.DEFAULT_THETAS
        results["fig8"] = fig8.run(thetas=thetas)
        emit(results["fig8"].to_text())
        finish(results["fig8"])
        emit(f"  [fig8 took {time.time() - started:.1f}s]")

    if selected("fig9"):
        started = time.time()
        results["fig9"] = fig9.run()
        emit(results["fig9"].to_text())
        finish(results["fig9"])
        emit(f"  [fig9 took {time.time() - started:.1f}s]")

    if selected("claims"):
        started = time.time()
        measured = claims.run()
        results["claims"] = measured
        for claim in measured:
            emit(claim.to_text())
        emit(f"  [claims took {time.time() - started:.1f}s]")

    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="subset to run: table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 claims",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps (~1 minute)"
    )
    parser.add_argument(
        "--output-dir", default=None,
        help="write each result as CSV + JSON into this directory",
    )
    parser.add_argument(
        "--charts", action="store_true",
        help="append a terminal chart under every figure",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="processes for the standard sweeps (results identical to serial)",
    )
    args = parser.parse_args(argv)
    run_all(
        args.experiments,
        quick=args.quick,
        output_dir=args.output_dir,
        charts=args.charts,
        workers=args.workers,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
