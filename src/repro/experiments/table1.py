"""Table 1: overview of interconnect receive bandwidth.

The table is descriptive -- it collects vendor receive bandwidths -- so the
"experiment" verifies that the library's machine presets expose exactly the
paper's numbers and renders the same rows.
"""

from __future__ import annotations

from ..hardware.spec import TABLE1_INTERCONNECTS
from ..perf.report import format_table
from ..units import GB

PAPER_EXPECTATION = (
    "PCI-e 4.0: 32 GB/s; PCI-e 5.0: 64 GB/s; Infinity Fabric 3: 72 GB/s; "
    "NVLink 2.0: 75 GB/s; NVLink C2C: 450 GB/s"
)


def rows() -> list:
    """The table's rows: (GPU, interconnect name, bandwidth string)."""
    table = []
    for gpu, interconnect in TABLE1_INTERCONNECTS:
        bandwidth = f"{interconnect.bandwidth_bytes / GB:.0f} GB/s"
        table.append((gpu, interconnect.name, bandwidth))
    return table


def run() -> str:
    """Render Table 1 as text."""
    return format_table(
        headers=("GPU", "Interconnect", "Bandwidth"),
        rows=rows(),
        title="Table 1: Overview of interconnect receive bandwidth.",
    )
