"""``repro bench2``: wall-clock benchmark of the fused probe path.

BENCH_2 extends BENCH_1 (``repro bench``) along the three axes this
layer of the codebase optimizes:

* ``bench2_kernel`` -- an in-process micro-benchmark of the fused
  :meth:`~repro.indexes.base.Index.probe_batch` windowed join against a
  replica of the historical per-window ``lookup``-and-concatenate
  implementation, per index structure (results are asserted equal
  before timing is trusted);
* ``bench2_sweeps`` -- the BENCH_1 fast sweep set (Fig. 3 + Fig. 5 over
  the standard R sizes) re-run through the resilient multi-worker pool,
  so ``total_seconds`` is directly comparable to the committed
  ``BENCH_1.json`` baseline;
* ``bench2_serve`` -- the serve-bench sweep fanned across the pool,
  wall-timed; its peak throughput is *simulated* and therefore
  deterministic per seed, which is what the CI floor gate checks.

Every phase runs under :func:`repro.obs.phase`, and the payload carries
the per-phase wall clocks plus the fused-kernel counters
(``index.batch_kernels`` / ``index.batch_lookups``) so time is
attributable per kernel phase.  The ``baseline`` block compares the
sweep wall clock against BENCH_1's ``fast.total_seconds`` and records
whether the 5x multi-core target was met -- or, on a single-core
runner, documents the measured ceiling instead.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, Optional, Sequence

import numpy as np

from .. import obs
from ..config import jit_requested
from ..data.generator import WorkloadConfig, make_build_relation, make_probe_keys
from ..indexes import ALL_INDEX_TYPES
from ..indexes import jit as jit_mod
from ..ioutil import atomic_write_json
from ..join.base import JoinResult
from ..join.window import WindowedINLJ
from ..units import KIB
from .bench import BENCH_R_SIZES_GIB, _run_sweeps
from .common import default_partitioner, resolve_workers

#: Multi-core speedup target over the BENCH_1 fast sweep wall clock.
TARGET_SPEEDUP = 5.0

#: Kernel micro-benchmark workload: R tuples, probe tuples, window KiB.
KERNEL_R_TUPLES = 2**16
KERNEL_S_TUPLES = 2**19
KERNEL_WINDOW_KIB = 64

#: Timing repeats per micro-benchmark arm (best-of to damp jitter).
KERNEL_REPEATS = 3


def _legacy_window_join(join: WindowedINLJ, probe_keys: np.ndarray) -> JoinResult:
    """The pre-fusion windowed join: allocate + concatenate per window.

    A faithful replica of the historical ``WindowedINLJ.join`` hot path
    (per-window ``lookup`` into fresh arrays, final ``np.concatenate``),
    kept here purely as the micro-benchmark's comparison arm.
    """
    position_chunks = []
    source_chunks = []
    for start, window_keys in join.windows(probe_keys):
        output = join.partitioner.partition(window_keys)
        position_chunks.append(join.index.lookup(output.keys))
        source_chunks.append(output.source_indices + start)
    positions = np.concatenate(position_chunks)
    sources = np.concatenate(source_chunks)
    matched = positions >= 0
    return JoinResult(
        probe_indices=sources[matched],
        build_positions=positions[matched],
    )


def _best_of(fn, repeats: int = KERNEL_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_kernel_bench(
    r_tuples: int = KERNEL_R_TUPLES,
    s_tuples: int = KERNEL_S_TUPLES,
    window_kib: int = KERNEL_WINDOW_KIB,
    repeats: int = KERNEL_REPEATS,
    seed: int = 42,
) -> dict:
    """Fused vs. legacy windowed join, per index; returns the block."""
    config = WorkloadConfig(r_tuples=r_tuples, s_tuples=s_tuples, seed=seed)
    relation = make_build_relation(config)
    probes = make_probe_keys(relation.column, config)
    per_index: Dict[str, dict] = {}
    for index_cls in ALL_INDEX_TYPES:
        index = index_cls(relation)
        join = WindowedINLJ(
            index,
            default_partitioner(relation.column),
            window_bytes=window_kib * KIB,
        )
        fused = join.join(probes.keys)
        legacy = _legacy_window_join(join, probes.keys)
        if not (
            np.array_equal(fused.probe_indices, legacy.probe_indices)
            and np.array_equal(fused.build_positions, legacy.build_positions)
        ):  # pragma: no cover - differential suite keeps this unreachable
            raise AssertionError(
                f"fused and legacy joins diverge for {index.name}"
            )
        legacy_seconds = _best_of(
            lambda: _legacy_window_join(join, probes.keys), repeats
        )
        fused_seconds = _best_of(lambda: join.join(probes.keys), repeats)
        per_index[index.name] = {
            "legacy_seconds": round(legacy_seconds, 6),
            "fused_seconds": round(fused_seconds, 6),
            "speedup": round(legacy_seconds / max(fused_seconds, 1e-12), 3),
        }
    return {
        "r_tuples": r_tuples,
        "s_tuples": s_tuples,
        "window_kib": window_kib,
        "repeats": repeats,
        "per_index": per_index,
    }


def _read_bench1_total(path: Optional[str]) -> Optional[float]:
    """``fast.total_seconds`` of the committed BENCH_1 file, if present."""
    if not path or not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    fast = payload.get("fast", {})
    total = fast.get("total_seconds")
    return float(total) if total is not None else None


def _baseline_block(
    bench1_total: Optional[float], sweep_total: float, cpu_count: int
) -> dict:
    block: dict = {
        "bench1_total_seconds": bench1_total,
        "sweep_total_seconds": sweep_total,
        "target_speedup": TARGET_SPEEDUP,
    }
    if bench1_total is None:
        block["speedup"] = None
        block["met"] = False
        block["note"] = "no BENCH_1 baseline file available"
        return block
    speedup = bench1_total / max(sweep_total, 1e-9)
    block["speedup"] = round(speedup, 3)
    block["met"] = speedup >= TARGET_SPEEDUP
    if not block["met"] and cpu_count <= 1:
        block["note"] = (
            f"single-core runner: the pool resolves to 1 worker, so the "
            f"measured {speedup:.2f}x is the serial ceiling (kernel fusion "
            f"+ session cache only); the 5x target needs >= 5 cores.  See "
            f"attribution.phase_wall_seconds for where the time goes."
        )
    else:
        block["note"] = (
            f"{cpu_count}-core runner, pooled sweep vs. BENCH_1 serial "
            f"fast sweep"
        )
    return block


def run_bench2(
    r_sizes_gib: Sequence[float] = BENCH_R_SIZES_GIB,
    workers: int = 0,
    baseline_path: Optional[str] = "BENCH_1.json",
    kernel_r_tuples: int = KERNEL_R_TUPLES,
    kernel_s_tuples: int = KERNEL_S_TUPLES,
    serve: bool = True,
) -> dict:
    """Run all BENCH_2 phases; returns the JSON-ready payload."""
    resolved = resolve_workers(workers)
    cpu_count = os.cpu_count() or 1
    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        with obs.phase("bench2_kernel"):
            kernel = run_kernel_bench(
                r_tuples=kernel_r_tuples, s_tuples=kernel_s_tuples
            )
        with obs.phase("bench2_sweeps"):
            sweeps = _run_sweeps(
                r_sizes_gib, fast_replay=True, use_cache=True, workers=resolved
            )
        serve_block: Optional[dict] = None
        if serve:
            with obs.phase("bench2_serve"):
                started = time.perf_counter()
                serve_payload = run_serve_payload(workers=resolved)
                serve_wall = time.perf_counter() - started
            rows = serve_payload["sweeps"]
            serve_block = {
                "wall_seconds": round(serve_wall, 3),
                "sweep_points": len(rows),
                "total_lookups": sum(row["total_lookups"] for row in rows),
                "peak_throughput_lookups_per_second": max(
                    row["throughput_lookups_per_second"] for row in rows
                ),
            }
        attribution = {
            "phase_wall_seconds": {
                name: round(seconds, 3)
                for name, seconds in obs.phase_wall_seconds().items()
            },
            "batch_kernels": {
                cls.name: obs.counter("index.batch_kernels", index=cls.name)
                for cls in ALL_INDEX_TYPES
            },
            "batch_lookups": {
                cls.name: obs.counter("index.batch_lookups", index=cls.name)
                for cls in ALL_INDEX_TYPES
            },
        }
    finally:
        obs.reset()
        obs.enable(was_enabled)
    return {
        "benchmark": "repro-bench2",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "workers": resolved,
        "jit": {
            "requested": jit_requested(),
            "numba_available": jit_mod.numba_available(),
            "backend": jit_mod.backend_name(),
        },
        "kernel": kernel,
        "sweeps": sweeps,
        "serve": serve_block,
        "baseline": _baseline_block(
            _read_bench1_total(baseline_path),
            sweeps["total_seconds"],
            cpu_count,
        ),
        "attribution": attribution,
    }


def run_serve_payload(workers: int) -> dict:
    """The serve-bench sweep at BENCH defaults (import kept local: the
    serve layer imports the experiments pool, not vice versa)."""
    from ..serve.bench import run_serve_bench

    return run_serve_bench(workers=workers)


def write_bench2(payload: dict, path: str) -> None:
    atomic_write_json(payload=payload, path=path, sort_keys=False)


def main(
    json_path: Optional[str] = None,
    workers: int = 0,
    baseline_path: Optional[str] = "BENCH_1.json",
    min_serve_throughput: Optional[float] = None,
) -> int:
    """CLI entry point: run, print a summary, gate, optionally write."""
    payload = run_bench2(workers=workers, baseline_path=baseline_path)
    for name, row in payload["kernel"]["per_index"].items():
        print(
            f"kernel {name}: fused {row['fused_seconds'] * 1e3:.1f}ms vs "
            f"legacy {row['legacy_seconds'] * 1e3:.1f}ms "
            f"({row['speedup']:.2f}x)"
        )
    sweeps = payload["sweeps"]
    baseline = payload["baseline"]
    print(
        f"sweeps: {sweeps['total_seconds']:.1f}s with "
        f"{payload['workers']} worker(s) on {payload['cpu_count']} core(s)"
    )
    if baseline["speedup"] is not None:
        print(
            f"baseline: {baseline['speedup']:.2f}x vs BENCH_1 "
            f"({baseline['bench1_total_seconds']:.1f}s); "
            f"target {baseline['target_speedup']:.0f}x "
            f"{'met' if baseline['met'] else 'not met'}"
        )
    print(f"note: {baseline['note']}")
    serve_block = payload["serve"]
    exit_code = 0
    if serve_block is not None:
        peak = serve_block["peak_throughput_lookups_per_second"]
        print(
            f"serve: {serve_block['sweep_points']} points in "
            f"{serve_block['wall_seconds']:.1f}s, peak "
            f"{peak:.0f} lookups/s"
        )
        if min_serve_throughput is not None and peak < min_serve_throughput:
            print(
                f"FAIL: peak serve throughput {peak:.0f} below the floor "
                f"{min_serve_throughput:.0f}"
            )
            exit_code = 1
    if json_path:
        write_bench2(payload, json_path)
        print(f"wrote {json_path}")
    return exit_code
