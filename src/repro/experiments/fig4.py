"""Figure 4: address translation requests per index lookup.

Thin view over :mod:`repro.experiments.fig3`: both figures come from the
same sweep (the throughput estimate's counters carry the request rate), so
fig3.run() computes them together and this module re-exports the second
result for callers that only want the TLB picture.
"""

from __future__ import annotations

from typing import Sequence

from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes import ALL_INDEX_TYPES
from .common import DEFAULT_R_SIZES_GIB, ExperimentResult, NAIVE_SIM
from . import fig3

PAPER_EXPECTATION = (
    "Near zero translation requests below 32 GiB; all INLJs spike at the "
    "32 GiB TLB range; at 111 GiB binary search requests ~105 translations "
    "per key vs ~11.3 for Harmonia"
)


def run(
    spec: SystemSpec = V100_NVLINK2,
    r_sizes_gib: Sequence[float] = DEFAULT_R_SIZES_GIB,
    sim=NAIVE_SIM,
    index_types: Sequence[type] = ALL_INDEX_TYPES,
) -> ExperimentResult:
    """Sweep R, returning the translation-requests-per-lookup series."""
    __, requests = fig3.run(
        spec=spec, r_sizes_gib=r_sizes_gib, sim=sim, index_types=index_types
    )
    return requests
