"""Wall-clock benchmark of the standard sweeps (``repro bench``).

Times the Fig. 3 (naive) and Fig. 5 (partitioned) R-size sweeps with the
fast replay engine and the session cache, and optionally the reference
configuration (``OrderedDict`` replay models, no cache) for a speedup
figure.  The results -- wall clocks, key series endpoints, and cache
statistics -- are written to a ``BENCH_*.json`` file so performance
regressions show up in review.

The benchmark harness under ``benchmarks/`` imports the sweep constants
from here so ``pytest benchmarks`` and ``repro bench`` measure the same
workload.
"""

from __future__ import annotations

import platform
import time
from typing import Optional, Sequence

from ..config import SimulationConfig
from ..ioutil import atomic_write_json
from ..perf.alloc import tune_allocator
from ..resilience.retry import active_policy
from . import cache, fig3, fig5
from .common import resolve_workers

#: R sizes (GiB) the benchmark sweeps -- a spread around the paper's
#: 32 GiB TLB-range knee plus the 111 GiB endpoint.
BENCH_R_SIZES_GIB = (1.0, 8.0, 16.0, 32.0, 48.0, 111.0)

#: Event-simulation sample sizes for benchmarking: same structure as the
#: experiment defaults, scaled down so the sweep finishes in seconds.
BENCH_NAIVE_SIM = SimulationConfig(probe_sample=2**15)
BENCH_ORDERED_SIM = SimulationConfig(probe_sample=2**13)


def _series_summary(result) -> dict:
    """First/last y value per series -- the counters worth diffing."""
    summary = {}
    for series in result.series:
        if series.y:
            summary[series.label] = {
                "x": [series.x[0], series.x[-1]],
                "y": [round(series.y[0], 4), round(series.y[-1], 4)],
            }
    return summary


def _run_sweeps(
    r_sizes_gib: Sequence[float],
    fast_replay: bool,
    use_cache: bool,
    workers: int,
) -> dict:
    """One timed pass over the Fig. 3 + Fig. 5 sweeps."""
    tune_allocator()
    naive = BENCH_NAIVE_SIM.with_fast_replay(fast_replay)
    ordered = BENCH_ORDERED_SIM.with_fast_replay(fast_replay)
    with cache.session(use_cache):
        cache.clear()
        started = time.perf_counter()
        fig3_throughput, fig4_requests = fig3.run(
            r_sizes_gib=r_sizes_gib, sim=naive, workers=workers
        )
        fig3_seconds = time.perf_counter() - started
        started = time.perf_counter()
        fig5_throughput, _ = fig5.run(
            r_sizes_gib=r_sizes_gib, sim=ordered, workers=workers
        )
        fig5_seconds = time.perf_counter() - started
        stats = cache.stats()
        cache.clear()
    return {
        "fast_replay": fast_replay,
        "cache": use_cache,
        "workers": workers,
        "fig3_seconds": round(fig3_seconds, 3),
        "fig5_seconds": round(fig5_seconds, 3),
        "total_seconds": round(fig3_seconds + fig5_seconds, 3),
        "cache_stats": stats,
        "fig3_queries_per_second": _series_summary(fig3_throughput),
        "fig4_requests_per_lookup": _series_summary(fig4_requests),
        "fig5_queries_per_second": _series_summary(fig5_throughput),
    }


def run_bench(
    r_sizes_gib: Sequence[float] = BENCH_R_SIZES_GIB,
    workers: int = 0,
    compare_reference: bool = False,
) -> dict:
    """Benchmark the standard sweeps; returns the JSON-ready payload.

    ``workers=0`` (the default) resolves to one sweep process per CPU
    core through the resilient pool; figures are bit-identical at any
    worker count.  With ``compare_reference`` the sweeps run a second
    time with the ``OrderedDict`` reference replay models and no
    session cache, and the payload gains a ``speedup`` entry.  The fast
    and reference passes produce identical figure data (the equivalence
    suite in ``tests/hardware/test_fast_models.py`` asserts exact
    counter equality), so the speedup compares like with like.
    """
    workers = resolve_workers(workers)
    policy = active_policy()
    payload = {
        "benchmark": "repro-sweeps",
        "r_sizes_gib": list(r_sizes_gib),
        "probe_samples": {
            "naive": BENCH_NAIVE_SIM.probe_sample,
            "ordered": BENCH_ORDERED_SIM.probe_sample,
        },
        "resilience": {
            "max_attempts": policy.max_attempts,
            "point_timeout": policy.point_timeout,
            "max_pool_restarts": policy.max_pool_restarts,
        },
        "platform": platform.platform(),
        "python": platform.python_version(),
        "fast": _run_sweeps(
            r_sizes_gib, fast_replay=True, use_cache=True, workers=workers
        ),
    }
    if compare_reference:
        payload["reference"] = _run_sweeps(
            r_sizes_gib, fast_replay=False, use_cache=False, workers=1
        )
        payload["speedup"] = round(
            payload["reference"]["total_seconds"]
            / max(payload["fast"]["total_seconds"], 1e-9),
            2,
        )
    return payload


def write_bench(payload: dict, path: str) -> None:
    atomic_write_json(payload=payload, path=path, sort_keys=False)


def main(
    json_path: Optional[str] = None,
    workers: int = 0,
    compare_reference: bool = False,
) -> dict:
    """CLI entry point: run, print a short summary, optionally write JSON."""
    payload = run_bench(workers=workers, compare_reference=compare_reference)
    fast = payload["fast"]
    print(
        f"fast sweep: fig3 {fast['fig3_seconds']:.1f}s + "
        f"fig5 {fast['fig5_seconds']:.1f}s = {fast['total_seconds']:.1f}s "
        f"(workers={fast['workers']}, cache hits: "
        f"{fast['cache_stats']['point_hits']} points, "
        f"{fast['cache_stats']['environment_hits']} environments)"
    )
    if compare_reference:
        reference = payload["reference"]
        print(
            f"reference sweep: {reference['total_seconds']:.1f}s "
            f"-> speedup {payload['speedup']:.2f}x"
        )
    if json_path:
        write_bench(payload, json_path)
        print(f"wrote {json_path}")
    return payload
