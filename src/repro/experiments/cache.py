"""Session-scoped environment and point-result cache for sweeps.

The benchmark harness and the experiment runner evaluate many sweep
points that share expensive setup: the same (R size, index) environment
is rebuilt by Figs. 3/4/6, the skew sweep rebuilds one 100 GiB index per
Zipf exponent, and the ablations rebuild identical environments back to
back.  This module memoizes two layers:

* **environments** -- :func:`environment` returns one shared
  :class:`~repro.join.base.QueryEnvironment` per (spec, workload, index,
  sim, index kwargs).  Environments differing only in ``zipf_theta``
  share the built relation and index (skew affects probe sampling, not
  the build side), so a Zipf sweep builds each index once.  Sharing is
  safe for the experiment call pattern: ``estimate()`` resets the cache
  hierarchy on entry and allocates no new memory.
* **points** -- :func:`point` memoizes one simulated sweep point (a
  :class:`~repro.perf.model.QueryCost`) under a caller-provided key.
  Values are deep-copied in and out, so callers may mutate what they
  get back.

Caching is **disabled by default** so unit tests and ad-hoc scripts keep
building independent objects; the runner, the benchmark harness, and
``repro bench`` call :func:`enable`.  Results are bit-identical either
way -- the cache only skips redundant recomputation of deterministic
values.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import replace
from typing import Callable, Optional, Type

from ..config import SimulationConfig
from ..data.generator import WorkloadConfig
from ..errors import CapacityError
from ..hardware.spec import SystemSpec
from ..join.base import QueryEnvironment

_enabled = False
_environments: dict = {}
_points: dict = {}
_hits = {"environments": 0, "points": 0}


def enable(on: bool = True) -> None:
    """Turn session caching on (or off); state survives until :func:`clear`."""
    global _enabled
    _enabled = on


def is_enabled() -> bool:
    return _enabled


def clear() -> None:
    """Drop all cached environments and points, and reset hit counters."""
    _environments.clear()
    _points.clear()
    _hits["environments"] = 0
    _hits["points"] = 0


def stats() -> dict:
    """Cache occupancy and hit counts (for ``repro bench`` reporting)."""
    return {
        "enabled": _enabled,
        "environments": len(_environments),
        "points": len(_points),
        "environment_hits": _hits["environments"],
        "point_hits": _hits["points"],
    }


@contextmanager
def session(on: bool = True):
    """Enable caching for a with-block, restoring the previous state."""
    previous = _enabled
    enable(on)
    try:
        yield
    finally:
        enable(previous)


def _base_key(
    spec: SystemSpec,
    workload: WorkloadConfig,
    index_cls: Optional[Type],
    sim: SimulationConfig,
    index_kwargs: Optional[dict],
):
    kwargs_key = tuple(sorted((index_kwargs or {}).items()))
    # Neither zipf_theta nor the simulation config influences the build
    # side (relation, index, placement): skew only shapes probe sampling
    # and the sim only parameterizes replay.  Key the built environment
    # with both normalized out so a Zipf sweep builds each index once and
    # the naive/partitioned sweeps (different sample sizes) share their
    # builds.  ``fast_replay`` stays in the key -- it selects the machine's
    # cache-model classes at construction time.
    return (
        spec,
        replace(workload, zipf_theta=0.0),
        index_cls,
        sim.fast_replay,
        kwargs_key,
    )


def environment(
    spec: SystemSpec,
    workload: WorkloadConfig,
    index_cls: Optional[Type] = None,
    sim: Optional[SimulationConfig] = None,
    index_kwargs: Optional[dict] = None,
) -> QueryEnvironment:
    """A possibly shared :class:`QueryEnvironment` for the given point.

    With caching disabled (the default) this simply constructs a fresh
    environment.  With caching enabled, identical requests return the
    same object, and requests differing only in ``workload.zipf_theta``
    or the simulation config return a shallow variant sharing the
    relation, index, and machine state.  Capacity failures are cached
    too: a configuration that exceeded memory once re-raises immediately
    instead of re-building its index.
    """
    if sim is None:
        sim = SimulationConfig()

    def build() -> QueryEnvironment:
        return QueryEnvironment(
            spec, workload, index_cls=index_cls, sim=sim,
            index_kwargs=index_kwargs,
        )

    if not _enabled:
        return build()
    try:
        base_key = _base_key(spec, workload, index_cls, sim, index_kwargs)
        hash(base_key)
    except TypeError:  # unhashable index kwargs: skip caching
        return build()
    cached = _environments.get(base_key)
    if isinstance(cached, CapacityError):
        raise cached
    full_key = (base_key, workload.zipf_theta, sim)
    env = _environments.get(full_key)
    if env is not None:
        _hits["environments"] += 1
        return env
    if cached is None:
        try:
            env = build()
        except CapacityError as error:
            _environments[base_key] = error
            raise
        _environments[base_key] = env
    else:
        # Same build, different skew and/or sim: share the relation,
        # index, and machine, swapping in this point's workload and
        # replay parameters.  The machine is shallow-copied so its
        # ``sim`` (interleave width, seed, sample scaling) matches;
        # hierarchy state is shared, which is safe because every
        # ``estimate()`` resets it on entry.
        env = copy.copy(cached)
        env.workload = workload
        env.sim = sim
        env.machine = copy.copy(cached.machine)
        env.machine.sim = sim
        _hits["environments"] += 1  # shared an existing build
    _environments[full_key] = env
    return env


def point(key, compute: Callable[[], object]):
    """Memoize one sweep point under ``key``; deep-copied both ways."""
    if not _enabled:
        return compute()
    try:
        hash(key)
    except TypeError:
        return compute()
    if key in _points:
        _hits["points"] += 1
        return copy.deepcopy(_points[key])
    value = compute()
    _points[key] = copy.deepcopy(value)
    return value
