"""Figure 3: query throughput of the naive INLJ vs the hash join.

Paper observations (Section 3.3.1): the INLJ never outperforms the hash
join; INLJ throughput drops suddenly once R grows beyond the 32 GiB GPU
TLB range, while the hash join declines smoothly with the growing table
scan.  At 111 GiB the hash join runs at ~0.2 Q/s.

:func:`run` also returns the per-lookup translation-request series -- the
same simulation produces Figure 4's data -- so the two figures share one
(expensive) sweep; :mod:`repro.experiments.fig4` re-exports that view.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes import ALL_INDEX_TYPES
from ..perf.report import Series
from .common import (
    DEFAULT_R_SIZES_GIB,
    ExperimentResult,
    NAIVE_SIM,
    gib_to_tuples,
    map_standard_points,
)

PAPER_EXPECTATION = (
    "No INLJ outperforms the hash join; INLJ throughput drops suddenly "
    "past 32 GiB; hash join declines smoothly to ~0.2 Q/s at 111 GiB"
)


def run(
    spec: SystemSpec = V100_NVLINK2,
    r_sizes_gib: Sequence[float] = DEFAULT_R_SIZES_GIB,
    sim=NAIVE_SIM,
    index_types: Sequence[type] = ALL_INDEX_TYPES,
    workers: int = 1,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Sweep R; returns (fig3 throughput, fig4 translation requests).

    ``workers > 1`` fans the independent (R size, index) points across
    that many processes; results are identical to a serial run (see
    :func:`repro.experiments.common.map_standard_points`).
    """
    throughput = ExperimentResult(
        name="fig3",
        title="Query throughput, naive INLJ vs hash join (Q/s)",
        x_label="R (GiB)",
        paper_expectation=PAPER_EXPECTATION,
    )
    requests = ExperimentResult(
        name="fig4",
        title="Address translation requests per index lookup",
        x_label="R (GiB)",
        paper_expectation=(
            "Near zero below 32 GiB, spiking at the 32 GiB TLB range; "
            "~105 requests/key for binary search and ~11.3 for Harmonia "
            "at 111 GiB"
        ),
    )
    index_series = {cls: Series(cls.name) for cls in index_types}
    request_series = {cls: Series(cls.name) for cls in index_types}
    hash_series = Series("hash join")
    tasks, labels = [], []
    for gib in r_sizes_gib:
        r_tuples = gib_to_tuples(gib)
        for index_cls in index_types:
            tasks.append(("inlj", spec, r_tuples, index_cls, sim))
            labels.append((gib, index_cls, f"{index_cls.name} @ {gib} GiB"))
        tasks.append(("hash", spec, r_tuples, None, sim))
        labels.append((gib, None, f"hash join @ {gib} GiB"))
    for (gib, index_cls, label), outcome in zip(
        labels, map_standard_points(tasks, workers)
    ):
        if outcome[0] == "skip":
            throughput.notes.append(f"{label}: skipped ({outcome[1]})")
            continue
        cost = outcome[1]
        if index_cls is None:
            hash_series.append(gib, cost.queries_per_second)
            continue
        index_series[index_cls].append(gib, cost.queries_per_second)
        request_series[index_cls].append(
            gib, cost.counters.translation_requests_per_lookup
        )
    throughput.series = [index_series[cls] for cls in index_types]
    throughput.series.append(hash_series)
    requests.series = [request_series[cls] for cls in index_types]
    _annotate(throughput, requests)
    return throughput, requests


def _annotate(
    throughput: ExperimentResult, requests: ExperimentResult
) -> None:
    """Derive the figures' headline observations from the data."""
    hash_series = throughput.series_by_label().get("hash join")
    inlj_lasts = [
        series.y[-1]
        for series in throughput.series
        if series.label != "hash join" and series.y
    ]
    if hash_series and hash_series.y and inlj_lasts:
        best_inlj_last = max(inlj_lasts)
        beats = best_inlj_last > hash_series.y[-1]
        throughput.notes.append(
            "largest-R check: best naive INLJ "
            f"{best_inlj_last:.2f} Q/s vs hash {hash_series.y[-1]:.2f} Q/s "
            f"({'INLJ wins (deviation!)' if beats else 'hash wins, as in the paper'})"
        )
    for series in requests.series:
        if len(series) >= 2 and series.y[-1] > 0:
            requests.notes.append(
                f"{series.label}: {series.y[0]:.2f} requests/key at "
                f"{series.x[0]:g} GiB vs {series.y[-1]:.1f} at {series.x[-1]:g} GiB"
            )
