"""Experiment harness: one module per table/figure of the paper.

Each module exposes ``run(...) -> ExperimentResult`` with paper-default
parameters that can be scaled down (fewer sizes, smaller samples) for
tests and quick benchmarks, plus a module-level ``PAPER_EXPECTATION``
string recording what the paper reports.  ``repro.experiments.runner``
executes everything and renders EXPERIMENTS.md-style output.

| Module   | Paper artifact | What it reproduces                         |
|----------|----------------|--------------------------------------------|
| table1   | Table 1        | interconnect receive bandwidths             |
| fig3     | Figure 3       | naive INLJ vs hash join throughput          |
| fig4     | Figure 4       | translation requests per lookup             |
| fig5     | Figure 5       | partitioned-key INLJ throughput             |
| fig6     | Figure 6       | translation requests eliminated (%)         |
| fig7     | Figure 7       | window-size sweep                           |
| fig8     | Figure 8       | Zipf-skewed lookup keys                     |
| fig9     | Figure 9       | PCIe 4.0 (A100) vs NVLink 2.0 (V100)        |
| claims   | Section 6      | headline claims (12x volume, 16.7x drop...) |
"""

from .common import (
    DEFAULT_R_SIZES_GIB,
    ExperimentResult,
    default_partitioner,
    gib_to_tuples,
    make_environment,
)

__all__ = [
    "DEFAULT_R_SIZES_GIB",
    "ExperimentResult",
    "default_partitioner",
    "gib_to_tuples",
    "make_environment",
]
