"""Figure 8: query throughput with Zipf-skewed lookup keys (Section 5.2.2).

Paper setup: R = 100 GiB, S = 2^26 tuples, 32 MiB windows, Zipf exponent
swept over 0-1.75.  Paper observations: windowed-INLJ throughput increases
for exponents above 1.0 (at 1.0 the paper computes a 69% L1 hit chance);
the hash join "degrades to a long probe chain" and was terminated after
10 hours.
"""

from __future__ import annotations

from typing import Sequence

from ..data.zipf import zipf_top_mass
from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes import ALL_INDEX_TYPES
from ..join.hash_join import HashJoin
from ..join.window import WindowedINLJ
from ..perf.report import Series
from ..units import MIB
from .common import (
    ExperimentResult,
    ORDERED_SIM,
    default_partitioner,
    gib_to_tuples,
    make_environment,
    run_point_or_skip,
)

PAPER_EXPECTATION = (
    "Windowed INLJ throughput rises for Zipf exponents above 1.0; the "
    "hash join degenerates into long probe chains and was terminated "
    "after 10 hours"
)

#: The paper sweeps "the exponent range 0-1.75".
DEFAULT_THETAS = (0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75)

#: The paper gave up on the skewed hash join after this long.
HASH_JOIN_TIMEOUT_SECONDS = 10 * 3600.0


def run(
    spec: SystemSpec = V100_NVLINK2,
    r_gib: float = 100.0,
    thetas: Sequence[float] = DEFAULT_THETAS,
    window_bytes: int = 32 * MIB,
    sim=ORDERED_SIM,
    index_types: Sequence[type] = ALL_INDEX_TYPES,
    include_hash_join: bool = True,
) -> ExperimentResult:
    """Sweep the Zipf exponent at fixed R and window size."""
    result = ExperimentResult(
        name="fig8",
        title=f"Windowed INLJ under skew, R = {r_gib:g} GiB, "
        f"{window_bytes // MIB} MiB windows (Q/s)",
        x_label="zipf exponent",
        paper_expectation=PAPER_EXPECTATION,
    )
    r_tuples = gib_to_tuples(r_gib)
    series_by_index = {cls: Series(cls.name) for cls in index_types}
    hash_series = Series("hash join")
    for theta in thetas:
        for index_cls in index_types:
            def point(index_cls=index_cls, theta=theta):
                env = make_environment(
                    spec, r_tuples, index_cls=index_cls, sim=sim,
                    zipf_theta=theta,
                )
                join = WindowedINLJ(
                    env.index,
                    default_partitioner(env.column),
                    window_bytes=window_bytes,
                )
                return join.estimate(env)

            cost = run_point_or_skip(
                result, f"{index_cls.name} @ theta={theta}", point
            )
            if cost is not None:
                series_by_index[index_cls].append(
                    theta, cost.queries_per_second
                )
        if include_hash_join:
            def hash_point(theta=theta):
                env = make_environment(
                    spec, r_tuples, sim=sim, zipf_theta=theta
                )
                return HashJoin(env.relation).estimate(env)

            cost = run_point_or_skip(result, f"hash @ theta={theta}", hash_point)
            if cost is not None:
                if cost.seconds > HASH_JOIN_TIMEOUT_SECONDS:
                    result.notes.append(
                        f"hash join @ theta={theta}: DNF -- modeled "
                        f"{cost.seconds / 3600:.1f} h exceeds the paper's "
                        "10 h termination"
                    )
                else:
                    hash_series.append(theta, cost.queries_per_second)
    result.series = [series_by_index[cls] for cls in index_types]
    if include_hash_join:
        result.series.append(hash_series)
    # The paper's 69%-L1-hit observation at exponent 1.0: report the hot
    # mass an L1-sized hot set captures.
    l1_keys = spec.gpu.l1_bytes // 8
    hot_mass = zipf_top_mass(r_tuples, 1.0, l1_keys)
    result.notes.append(
        f"analytic hot-set mass at theta=1.0 for an L1-sized ({l1_keys}) "
        f"key set: {hot_mass * 100:.0f}% (paper computes 69%)"
    )
    return result
