"""Non-equi sweep: band-join selectivity x window size x Zipf skew.

The paper's windowed partitioning (Section 5) is evaluated on
key-equality probes; ROADMAP item 3 asks whether it transfers to
non-equi predicates.  This sweep answers with the band join: at each
expected-matches level (band selectivity), each window size, and each
probe skew, the naive (stream-order) and windowed variants run the
same workload and report throughput plus the replay-counter
attribution -- per-lookup TLB misses, translation requests, divergence
replays, and cold faults -- so the advantage is visible in the counters
that price it, not just in the headline Q/s.

Every point is a picklable task through
:func:`repro.experiments.common.map_tasks`, so serial and pooled sweeps
are bit-identical (the CI bench-smoke job diffs a committed baseline of
this sweep's payloads).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import CapacityError, ConfigurationError
from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes import RadixSplineIndex
from ..join.nonequi import BandJoin, WindowedBandJoin
from ..perf.report import Series
from ..units import KEY_BYTES, MIB
from ..workloads.nonequi import band_epsilon_for_matches
from . import cache
from ..resilience import faults
from .common import (
    ExperimentResult,
    NAIVE_SIM,
    ORDERED_SIM,
    default_partitioner,
    gib_to_tuples,
    make_environment,
    map_tasks,
)

PAPER_EXPECTATION = (
    "Windowed partitioning transfers to non-equi probes: both band "
    "bounds of a partitioned probe sweep the same index pages, so the "
    "windowed band join keeps the equi-INLJ's per-window TLB traffic "
    "while the naive variant pays two scattered traversals per probe"
)

#: Expected band matches per probe (the selectivity axis).
DEFAULT_MATCHES = (1.0, 4.0, 16.0)

#: Window sizes in probe tuples (2-32 MiB of 8-byte keys).
DEFAULT_WINDOW_TUPLES = (2**18, 2**20, 2**22)

#: Probe-skew axis (paper Fig. 8 sweeps 0-1.75; the endpoints suffice).
DEFAULT_THETAS = (0.0, 1.0)

#: One sweep point: variant, machine, R tuples, expected matches,
#: window tuples (0 for the windowless naive variant), Zipf theta.
NonEquiTask = Tuple[str, SystemSpec, int, float, int, float]


def nonequi_task_label(task: NonEquiTask) -> str:
    """Short human/fault-matchable name for one sweep point."""
    variant, _spec, r_tuples, matches, window_tuples, theta = task
    return (
        f"nonequi:{variant}:{r_tuples}:m{matches:g}:w{window_tuples}"
        f":z{theta:g}"
    )


def run_nonequi_point(task: NonEquiTask):
    """Simulate one band-join point; ``("ok", payload) | ("skip", msg)``.

    The payload is a plain dict of floats (picklable, JSON-stable), and
    every RNG stream derives from the task alone -- the properties that
    make serial and pooled sweeps bit-identical.  Points are memoized
    through the session cache under a task-only key.
    """
    variant, spec, r_tuples, matches, window_tuples, theta = task
    faults.check("point", nonequi_task_label(task))

    def compute():
        if variant == "naive":
            env = make_environment(
                spec, r_tuples, index_cls=RadixSplineIndex,
                sim=NAIVE_SIM, zipf_theta=theta,
            )
            epsilon = band_epsilon_for_matches(env.column, matches)
            join = BandJoin(env.index, epsilon)
        elif variant == "windowed":
            env = make_environment(
                spec, r_tuples, index_cls=RadixSplineIndex,
                sim=ORDERED_SIM, zipf_theta=theta,
            )
            epsilon = band_epsilon_for_matches(env.column, matches)
            join = WindowedBandJoin(
                env.index,
                default_partitioner(env.column),
                epsilon,
                window_bytes=window_tuples * KEY_BYTES,
            )
        else:
            raise ConfigurationError(f"unknown variant: {variant!r}")
        cost = join.estimate(env)
        counters = cost.counters
        return {
            "qps": cost.queries_per_second,
            "epsilon": float(epsilon),
            "tlb_misses_per_lookup": counters.tlb_misses / counters.lookups,
            "translation_requests_per_lookup": (
                counters.translation_requests / counters.lookups
            ),
            "divergence_replays_per_lookup": (
                counters.divergence_replays / counters.lookups
            ),
            "tlb_cold_misses": counters.tlb_cold_misses,
        }

    try:
        payload = cache.point(("nonequi-point",) + tuple(task), compute)
    except CapacityError as error:
        return ("skip", str(error))
    return ("ok", payload)


def run(
    spec: SystemSpec = V100_NVLINK2,
    r_gib: float = 8.0,
    matches: Sequence[float] = DEFAULT_MATCHES,
    window_tuples: Sequence[int] = DEFAULT_WINDOW_TUPLES,
    thetas: Sequence[float] = DEFAULT_THETAS,
    workers: int = 1,
) -> ExperimentResult:
    """Sweep band selectivity x window size x skew, naive vs windowed.

    The naive variant has no window axis, so it contributes one series
    per theta; the windowed variant one series per (window, theta).
    ``workers > 1`` fans the points across processes with results
    identical to a serial run (see
    :func:`repro.experiments.common.map_tasks`).
    """
    result = ExperimentResult(
        name="nonequi",
        title=(
            f"Band join, naive vs windowed, R = {r_gib:g} GiB "
            "(Q/s vs expected matches/probe)"
        ),
        x_label="matches/probe",
        paper_expectation=PAPER_EXPECTATION,
    )
    r_tuples = gib_to_tuples(r_gib)
    tasks: list = []
    labels: list = []
    for theta in thetas:
        for m in matches:
            tasks.append(("naive", spec, r_tuples, m, 0, theta))
            labels.append((f"naive z={theta:g}", m))
        for window in window_tuples:
            for m in matches:
                tasks.append(("windowed", spec, r_tuples, m, window, theta))
                labels.append(
                    (
                        f"windowed {window * KEY_BYTES // MIB} MiB "
                        f"z={theta:g}",
                        m,
                    )
                )
    series: dict = {}
    attribution: dict = {}
    outcomes = map_tasks(
        run_nonequi_point, tasks, workers=workers, label_fn=nonequi_task_label
    )
    for (series_label, m), task, outcome in zip(labels, tasks, outcomes):
        if outcome is None or outcome[0] == "skip":
            reason = outcome[1] if outcome else "lost"
            result.notes.append(
                f"{nonequi_task_label(task)}: skipped ({reason})"
            )
            continue
        payload = outcome[1]
        series.setdefault(series_label, Series(series_label)).append(
            m, payload["qps"]
        )
        attribution.setdefault(series_label, payload)
    result.series = list(series.values())
    for label, payload in attribution.items():
        result.notes.append(
            f"{label}: {payload['tlb_misses_per_lookup']:.3g} TLB misses, "
            f"{payload['translation_requests_per_lookup']:.3g} translation "
            f"requests, {payload['divergence_replays_per_lookup']:.3g} "
            f"divergence replays per bound lookup; "
            f"{payload['tlb_cold_misses']:g} cold faults "
            f"(at {payload['epsilon']:g}-wide band)"
        )
    _annotate(result, thetas)
    return result


def _annotate(result: ExperimentResult, thetas: Sequence[float]) -> None:
    """Headline advantage: best windowed vs naive, per theta."""
    by_label = result.series_by_label()
    for theta in thetas:
        naive = by_label.get(f"naive z={theta:g}")
        windowed = [
            series
            for label, series in by_label.items()
            if label.startswith("windowed") and label.endswith(f"z={theta:g}")
        ]
        if naive is None or not naive.y or not windowed:
            continue
        best = max(
            (max(series.y) for series in windowed if series.y), default=0.0
        )
        if naive.y[0] > 0:
            result.notes.append(
                f"z={theta:g}: best windowed {best:.3f} Q/s vs naive "
                f"{max(naive.y):.3f} Q/s ({best / max(naive.y):.2f}x)"
            )
