"""Figure 5: throughput when partitioning the lookup keys (Section 4.3.1).

Paper observations: the sudden drop of Fig. 3 is remedied; throughput is
higher even below the 32 GiB mark; tree/binary indexes follow a gentle
logarithmic downward trend; at 111 GiB the INLJs reach 0.6 (B+tree), 0.7
(binary search), 1.0 (Harmonia), and 1.9 (RadixSpline) Q/s vs 0.2 Q/s for
the hash join -- up to 10x.

Both Fig. 5 and Fig. 6 derive from this sweep (the estimate's counters
carry the partitioned translation-request rate).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes import ALL_INDEX_TYPES
from ..perf.report import Series
from .common import (
    DEFAULT_R_SIZES_GIB,
    ExperimentResult,
    ORDERED_SIM,
    gib_to_tuples,
    map_standard_points,
)

PAPER_EXPECTATION = (
    "At 111 GiB: 0.6 (B+tree), 0.7 (binary search), 1.0 (Harmonia), "
    "1.9 (RadixSpline) Q/s vs 0.2 for the hash join -- up to 10x speedup"
)


def run(
    spec: SystemSpec = V100_NVLINK2,
    r_sizes_gib: Sequence[float] = DEFAULT_R_SIZES_GIB,
    sim=ORDERED_SIM,
    index_types: Sequence[type] = ALL_INDEX_TYPES,
    include_hash_join: bool = True,
    workers: int = 1,
) -> Tuple[ExperimentResult, ExperimentResult]:
    """Sweep R with partitioned lookups; returns (fig5, fig6 input).

    The second result holds the partitioned translation-request rate per
    index; :mod:`repro.experiments.fig6` combines it with Fig. 4's rates
    into the elimination percentages.  ``workers > 1`` fans the
    independent points across processes with bit-identical results (see
    :func:`repro.experiments.common.map_standard_points`).
    """
    throughput = ExperimentResult(
        name="fig5",
        title="Query throughput with partitioned lookup keys (Q/s)",
        x_label="R (GiB)",
        paper_expectation=PAPER_EXPECTATION,
    )
    requests = ExperimentResult(
        name="fig5.requests",
        title="Translation requests per lookup, partitioned",
        x_label="R (GiB)",
    )
    index_series = {cls: Series(cls.name) for cls in index_types}
    request_series = {cls: Series(cls.name) for cls in index_types}
    hash_series = Series("hash join")
    tasks, labels = [], []
    for gib in r_sizes_gib:
        r_tuples = gib_to_tuples(gib)
        for index_cls in index_types:
            tasks.append(("partitioned", spec, r_tuples, index_cls, sim))
            labels.append((gib, index_cls, f"{index_cls.name} @ {gib} GiB"))
        if include_hash_join:
            tasks.append(("hash", spec, r_tuples, None, sim))
            labels.append((gib, None, f"hash join @ {gib} GiB"))
    for (gib, index_cls, label), outcome in zip(
        labels, map_standard_points(tasks, workers)
    ):
        if outcome[0] == "skip":
            throughput.notes.append(f"{label}: skipped ({outcome[1]})")
            continue
        cost = outcome[1]
        if index_cls is None:
            hash_series.append(gib, cost.queries_per_second)
            continue
        index_series[index_cls].append(gib, cost.queries_per_second)
        request_series[index_cls].append(
            gib, cost.counters.translation_requests_per_lookup
        )
    throughput.series = [index_series[cls] for cls in index_types]
    if include_hash_join:
        throughput.series.append(hash_series)
    requests.series = [request_series[cls] for cls in index_types]
    _annotate(throughput)
    return throughput, requests


def _annotate(throughput: ExperimentResult) -> None:
    by_label = throughput.series_by_label()
    hash_series = by_label.get("hash join")
    if not hash_series or not hash_series.y:
        return
    hash_last = hash_series.y[-1]
    for series in throughput.series:
        if series.label == "hash join" or not series.y:
            continue
        speedup = series.y[-1] / hash_last if hash_last > 0 else float("inf")
        throughput.notes.append(
            f"{series.label}: {series.y[-1]:.2f} Q/s at {series.x[-1]:g} GiB "
            f"= {speedup:.1f}x over the hash join"
        )
