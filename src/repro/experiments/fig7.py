"""Figure 7: impact of the window size on query throughput (Section 5.2.1).

Paper setup: S fixed at 2^26 tuples, R fixed at 100 GiB, window size swept
from 2^18 to 2^26 tuples (2-512 MiB).  Paper observations: all index
structures stay within 2x across the sweep (no TLB-induced collapse);
the RadixSpline peaks for small windows (4-52 MiB); Harmonia also prefers
small windows; binary search and the B+tree vary only mildly.
"""

from __future__ import annotations

from typing import Sequence

from ..hardware.spec import SystemSpec, V100_NVLINK2
from ..indexes import ALL_INDEX_TYPES
from ..join.window import WindowedINLJ
from ..perf.report import Series
from ..units import KEY_BYTES, MIB
from .common import (
    ExperimentResult,
    ORDERED_SIM,
    default_partitioner,
    gib_to_tuples,
    make_environment,
    run_point_or_skip,
)

PAPER_EXPECTATION = (
    "Throughput within 2x across 2-512 MiB windows; RadixSpline peaks at "
    "4-52 MiB, Harmonia prefers small windows, binary search and B+tree "
    "show minor variation"
)

#: The paper's sweep: 2^18-2^26 tuples (2-512 MiB of 8-byte keys).
DEFAULT_WINDOW_TUPLES = tuple(2**exp for exp in range(18, 27))


def run(
    spec: SystemSpec = V100_NVLINK2,
    r_gib: float = 100.0,
    window_tuples: Sequence[int] = DEFAULT_WINDOW_TUPLES,
    sim=ORDERED_SIM,
    index_types: Sequence[type] = ALL_INDEX_TYPES,
) -> ExperimentResult:
    """Sweep the window size at fixed R."""
    result = ExperimentResult(
        name="fig7",
        title=f"Windowed INLJ throughput vs window size, R = {r_gib:g} GiB (Q/s)",
        x_label="window (MiB)",
        paper_expectation=PAPER_EXPECTATION,
    )
    r_tuples = gib_to_tuples(r_gib)
    series_by_index = {cls: Series(cls.name) for cls in index_types}
    for tuples in window_tuples:
        window_bytes = tuples * KEY_BYTES
        for index_cls in index_types:
            def point(index_cls=index_cls, window_bytes=window_bytes):
                env = make_environment(
                    spec, r_tuples, index_cls=index_cls, sim=sim
                )
                join = WindowedINLJ(
                    env.index,
                    default_partitioner(env.column),
                    window_bytes=window_bytes,
                )
                return join.estimate(env)

            cost = run_point_or_skip(
                result, f"{index_cls.name} @ {window_bytes // MIB} MiB", point
            )
            if cost is not None:
                series_by_index[index_cls].append(
                    window_bytes / MIB, cost.queries_per_second
                )
    result.series = [series_by_index[cls] for cls in index_types]
    for series in result.series:
        if series.y:
            spread = max(series.y) / min(series.y) if min(series.y) > 0 else 0
            best_at = series.x[series.y.index(max(series.y))]
            result.notes.append(
                f"{series.label}: best at {best_at:g} MiB windows, "
                f"max/min spread {spread:.2f}x"
            )
    return result
