"""Deterministic metrics primitives: counters, gauges, histograms.

The registry is the numeric half of the observability layer (the tracer
in :mod:`repro.obs.tracing` is the temporal half).  Everything here is
designed around one invariant: **snapshots are deterministic**.  Two runs
of the same experiment produce byte-identical counter sections, so a
committed snapshot can gate CI (``repro obs report --diff
--fail-on-drift``).  That rules wall-clock time out of this module
entirely -- durations live in spans and phase wall times, which the
manifest diff ignores.

Counters and gauges are flat ``name{label=value,...}`` keys mapping to
floats; histograms bucket observations by the smallest power of two that
bounds them (an exact, platform-independent rule).  The registry also
keeps a per-phase shadow of every counter increment, which is what gives
the run manifest its per-phase op-count attribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]


def metric_key(name: str, labels: Optional[Mapping[str, object]] = None) -> str:
    """Flat storage key: ``name`` or ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def bucket_label(value: float) -> str:
    """The histogram bucket holding ``value``.

    Buckets are powers of two: a value lands in the smallest ``2**k >=
    value`` (label ``"<=2^k"``).  Non-positive values share ``"<=0"`` and
    non-finite values ``"inf"``.  Integer arithmetic keeps the rule exact
    at bucket boundaries, unlike a ``log2`` of the float.
    """
    if not math.isfinite(value):
        return "inf"
    if value <= 0:
        return "<=0"
    bound = math.ceil(value)
    return f"<=2^{max(0, int(bound - 1).bit_length())}"


class Histogram:
    """Power-of-two bucketed histogram with exact summary statistics."""

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[str, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        label = bucket_label(value)
        self._buckets[label] = self._buckets.get(label, 0) + 1

    def to_dict(self) -> dict:
        """JSON-ready summary with buckets in sorted-label order."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                label: self._buckets[label] for label in sorted(self._buckets)
            },
        }

    def merge_dict(self, other: Mapping[str, object]) -> None:
        """Fold a :meth:`to_dict` summary from another registry into this."""
        self.count += int(other.get("count", 0) or 0)
        self.total += float(other.get("sum", 0.0) or 0.0)
        for bound in ("min", "max"):
            value = other.get(bound)
            if value is None:
                continue
            current = getattr(self, bound)
            if current is None:
                setattr(self, bound, float(value))
            elif bound == "min":
                self.min = min(current, float(value))
            else:
                self.max = max(current, float(value))
        buckets = other.get("buckets") or {}
        if isinstance(buckets, Mapping):
            for label, count in buckets.items():
                self._buckets[label] = self._buckets.get(label, 0) + int(count)


@dataclass(frozen=True)
class Drift:
    """One difference between two snapshots/manifests."""

    section: str  # "counter" | "histogram" | "phase:<name>"
    key: str
    baseline: object
    current: object

    def to_text(self) -> str:
        return (
            f"{self.section} {self.key}: baseline={self.baseline!r} "
            f"current={self.current!r}"
        )


def values_match(
    baseline: object, current: object, rel_tol: float = 0.0
) -> bool:
    """Numeric equality with a relative tolerance; exact otherwise.

    The tolerance absorbs libm-level float differences across platforms
    (``expm1``/``log1p`` in the analytic TLB model) without letting real
    counter drift through -- any genuine op-count change is orders of
    magnitude beyond 1e-9 relative.
    """
    if isinstance(baseline, bool) or isinstance(current, bool):
        return baseline == current
    if isinstance(baseline, (int, float)) and isinstance(current, (int, float)):
        if baseline == current:
            return True
        if rel_tol <= 0:
            return False
        scale = max(abs(float(baseline)), abs(float(current)))
        return abs(float(baseline) - float(current)) <= rel_tol * scale
    return baseline == current


def diff_numeric_maps(
    section: str,
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    rel_tol: float = 0.0,
) -> List[Drift]:
    """Key-wise diff of two flat metric maps (missing keys drift too)."""
    drifts: List[Drift] = []
    for key in sorted(set(baseline) | set(current)):
        base_value = baseline.get(key)
        cur_value = current.get(key)
        if not values_match(base_value, cur_value, rel_tol):
            drifts.append(Drift(section, key, base_value, cur_value))
    return drifts


class MetricsRegistry:
    """Counters, gauges, and histograms with per-phase attribution.

    Not thread-safe by design: the simulators are single-threaded per
    process, and pooled sweep workers each hold their own registry whose
    snapshot can be folded back with :meth:`merge_snapshot`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._phase_counters: Dict[str, Dict[str, float]] = {}

    # -- writes --------------------------------------------------------

    def add(
        self,
        name: str,
        value: Number = 1.0,
        labels: Optional[Mapping[str, object]] = None,
        phase: Optional[str] = None,
    ) -> None:
        """Increment a counter, attributing to ``phase`` when given."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + float(value)
        if phase is not None:
            bucket = self._phase_counters.setdefault(phase, {})
            bucket[key] = bucket.get(key, 0.0) + float(value)

    def set_gauge(
        self,
        name: str,
        value: Number,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record a last-value-wins measurement."""
        self._gauges[metric_key(name, labels)] = float(value)

    def observe(
        self,
        name: str,
        value: Number,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Add one observation to a histogram."""
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        histogram.observe(float(value))

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._phase_counters.clear()

    # -- reads ---------------------------------------------------------

    def counter(self, name: str, labels: Optional[Mapping[str, object]] = None) -> float:
        return self._counters.get(metric_key(name, labels), 0.0)

    def phase_counter(
        self,
        phase: str,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
    ) -> float:
        return self._phase_counters.get(phase, {}).get(
            metric_key(name, labels), 0.0
        )

    def phases(self) -> Tuple[str, ...]:
        return tuple(sorted(self._phase_counters))

    def snapshot(self) -> dict:
        """Deterministic JSON-ready dump: every section key-sorted."""
        return {
            "counters": {
                key: self._counters[key] for key in sorted(self._counters)
            },
            "gauges": {key: self._gauges[key] for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].to_dict()
                for key in sorted(self._histograms)
            },
            "phases": {
                phase: {
                    key: counters[key] for key in sorted(counters)
                }
                for phase, counters in sorted(self._phase_counters.items())
            },
        }

    # -- combination ---------------------------------------------------

    def merge_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's snapshot into this one (sums counters).

        Used to aggregate pooled sweep workers' registries into the
        parent's before the run manifest is written.
        """
        counters = snapshot.get("counters") or {}
        if isinstance(counters, Mapping):
            for key, value in counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + float(
                    value  # type: ignore[arg-type]
                )
        gauges = snapshot.get("gauges") or {}
        if isinstance(gauges, Mapping):
            for key, value in gauges.items():
                self._gauges[key] = float(value)  # type: ignore[arg-type]
        histograms = snapshot.get("histograms") or {}
        if isinstance(histograms, Mapping):
            for key, summary in histograms.items():
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = Histogram()
                histogram.merge_dict(summary)  # type: ignore[arg-type]
        phases = snapshot.get("phases") or {}
        if isinstance(phases, Mapping):
            for phase, counters in phases.items():
                bucket = self._phase_counters.setdefault(str(phase), {})
                if isinstance(counters, Mapping):
                    for key, value in counters.items():
                        bucket[key] = bucket.get(key, 0.0) + float(
                            value  # type: ignore[arg-type]
                        )

    @staticmethod
    def diff(
        baseline: Mapping[str, object],
        current: Mapping[str, object],
        rel_tol: float = 0.0,
        sections: Iterable[str] = ("counters", "histograms", "phases"),
    ) -> List[Drift]:
        """Compare two snapshots; returns every drift found.

        Only deterministic sections participate: counters, histogram
        summaries, and per-phase counters.  Gauges are excluded (they may
        carry environment-dependent values) and wall times never enter a
        snapshot in the first place.
        """
        drifts: List[Drift] = []
        wanted = set(sections)
        if "counters" in wanted:
            drifts.extend(
                diff_numeric_maps(
                    "counter",
                    baseline.get("counters") or {},  # type: ignore[arg-type]
                    current.get("counters") or {},  # type: ignore[arg-type]
                    rel_tol,
                )
            )
        if "histograms" in wanted:
            base_h: Mapping[str, object] = baseline.get("histograms") or {}  # type: ignore[assignment]
            cur_h: Mapping[str, object] = current.get("histograms") or {}  # type: ignore[assignment]
            for key in sorted(set(base_h) | set(cur_h)):
                base_summary = base_h.get(key) or {}
                cur_summary = cur_h.get(key) or {}
                if not isinstance(base_summary, Mapping):
                    base_summary = {}
                if not isinstance(cur_summary, Mapping):
                    cur_summary = {}
                flat_base = _flatten_histogram(base_summary)
                flat_cur = _flatten_histogram(cur_summary)
                drifts.extend(
                    diff_numeric_maps(
                        "histogram", _prefix(key, flat_base), _prefix(key, flat_cur), rel_tol
                    )
                )
        if "phases" in wanted:
            base_p: Mapping[str, object] = baseline.get("phases") or {}  # type: ignore[assignment]
            cur_p: Mapping[str, object] = current.get("phases") or {}  # type: ignore[assignment]
            for phase in sorted(set(base_p) | set(cur_p)):
                base_counters = base_p.get(phase) or {}
                cur_counters = cur_p.get(phase) or {}
                if not isinstance(base_counters, Mapping):
                    base_counters = {}
                if not isinstance(cur_counters, Mapping):
                    cur_counters = {}
                drifts.extend(
                    diff_numeric_maps(
                        f"phase:{phase}", base_counters, cur_counters, rel_tol
                    )
                )
        return drifts


def _flatten_histogram(summary: Mapping[str, object]) -> Dict[str, object]:
    flat: Dict[str, object] = {}
    for field in ("count", "sum", "min", "max"):
        flat[field] = summary.get(field)
    buckets = summary.get("buckets") or {}
    if isinstance(buckets, Mapping):
        for label, count in buckets.items():
            flat[f"bucket[{label}]"] = count
    return flat


def _prefix(key: str, flat: Mapping[str, object]) -> Dict[str, object]:
    return {f"{key}.{field}": value for field, value in flat.items()}
