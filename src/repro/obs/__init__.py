"""Zero-dependency observability: metrics registry, spans, manifests.

The paper's argument rests on counters -- translation requests per
lookup, TLB hit rates, bytes moved per window -- so the reproduction
carries first-class per-phase instrumentation: a deterministic
:class:`~repro.obs.metrics.MetricsRegistry`, span-based tracing
(:func:`span`), and run manifests (``metrics.json``) that the CI
bench-smoke job diffs against a committed baseline.

Tracing is **off by default** and the disabled path is branch-cheap:
every entry point checks one module-level boolean and returns
immediately (spans hand back a shared no-op context manager), so
instrumented hot paths cost one predictable branch when tracing is off.
Enable it with the ``REPRO_TRACE`` environment variable, the runner's
``--trace`` flag, or :func:`enable`.

Two things are *always* on because the runner's exit summary needs
them and they are a handful of clock reads per run: phase wall-time
measurement (:func:`phase`) and the registry/tracer objects themselves.

Typical use::

    from repro import obs

    with obs.phase("fig6"):
        with obs.span("partition.fanout", bits=11):
            ...
        obs.add("partition.tuples", float(len(keys)))

    obs.write_manifest("metrics.json", run_info={"experiments": ["fig6"]})

Pooled sweep workers hold their own registry; fold a worker's
:func:`snapshot` back into the parent with :func:`merge_snapshot`.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping, Optional, Union

from . import manifest as manifest_mod
from .metrics import Drift, Histogram, MetricsRegistry, metric_key
from .tracing import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "Drift",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "Span",
    "Tracer",
    "add",
    "add_perf_counters",
    "build_manifest",
    "configure_from_env",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "merge_snapshot",
    "metric_key",
    "observe",
    "phase",
    "registry",
    "reset",
    "snapshot",
    "span",
    "tracer",
    "write_manifest",
]

#: Set to a truthy value ("1", "true", ...) to enable tracing globally.
TRACE_ENV = "REPRO_TRACE"
#: Default run-manifest path override for the experiment runner.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"

_FALSY = ("", "0", "false", "False", "no", "off")

_registry = MetricsRegistry()
_tracer = Tracer()


def _env_enabled() -> bool:
    return os.environ.get(TRACE_ENV, "") not in _FALSY


#: The one branch every disabled-path call pays.  Module-level on purpose:
#: reading a module global is the cheapest check Python offers.
_enabled: bool = _env_enabled()


def enabled() -> bool:
    """Whether tracing/metrics collection is currently on."""
    return _enabled


def enable(on: bool = True) -> None:
    """Turn collection on (or off) process-wide."""
    global _enabled
    _enabled = on


def disable() -> None:
    enable(False)


def configure_from_env() -> bool:
    """Re-read ``REPRO_TRACE``; returns the resulting enabled state."""
    enable(_env_enabled())
    return _enabled


def registry() -> MetricsRegistry:
    return _registry


def tracer() -> Tracer:
    return _tracer


def reset() -> None:
    """Clear all collected metrics, spans, and phase timings."""
    _registry.clear()
    _tracer.clear()


# ----------------------------------------------------------------------
# Recording entry points (no-ops while disabled).
# ----------------------------------------------------------------------


def add(name: str, value: Union[int, float] = 1.0, **labels: object) -> None:
    """Increment a counter, attributed to the current phase."""
    if not _enabled:
        return
    _registry.add(
        name, value, labels or None, phase=_tracer.current_phase()
    )


def gauge(name: str, value: Union[int, float], **labels: object) -> None:
    """Record a last-value-wins measurement."""
    if not _enabled:
        return
    _registry.set_gauge(name, value, labels or None)


def observe(name: str, value: Union[int, float], **labels: object) -> None:
    """Add one observation to a histogram."""
    if not _enabled:
        return
    _registry.observe(name, value, labels or None)


def add_perf_counters(prefix: str, counters: object) -> None:
    """Bulk-add a :class:`~repro.hardware.counters.PerfCounters`.

    Every non-zero field lands as ``<prefix>.<field>``.  Typed loosely
    (``object`` with an ``as_dict``) so this package stays standalone.
    """
    if not _enabled:
        return
    phase_name = _tracer.current_phase()
    for field, value in counters.as_dict().items():  # type: ignore[attr-defined]
        if value:
            _registry.add(f"{prefix}.{field}", value, None, phase=phase_name)


def span(name: str, **attrs: object) -> Union[Span, NullSpan]:
    """A timed region; the shared no-op context manager while disabled."""
    if not _enabled:
        return NULL_SPAN
    return _tracer.span(name, dict(attrs) if attrs else None)


def phase(name: str, **attrs: object):
    """A named run phase.  Wall time is measured even while disabled
    (the runner's exit summary relies on it); attributes and counter
    attribution only materialize when tracing is on."""
    return _tracer.phase(name, dict(attrs) if attrs and _enabled else None)


# ----------------------------------------------------------------------
# Snapshots and manifests.
# ----------------------------------------------------------------------


def counter(name: str, **labels: object) -> float:
    """Current value of one counter (0.0 if never incremented)."""
    return _registry.counter(name, labels or None)


def snapshot() -> dict:
    """Deterministic dump of the registry (see ``MetricsRegistry``)."""
    return _registry.snapshot()


def merge_snapshot(other: Mapping[str, object]) -> None:
    """Fold another process's snapshot into this registry."""
    _registry.merge_snapshot(other)


def build_manifest(
    run_info: Optional[dict] = None, phase: Optional[str] = None
) -> dict:
    """The run manifest for current state (see :mod:`repro.obs.manifest`)."""
    return manifest_mod.build_manifest(
        _registry, _tracer, run_info=run_info, phase=phase
    )


def write_manifest(
    path: str, run_info: Optional[dict] = None, phase: Optional[str] = None
) -> str:
    """Write the run manifest as JSON; returns the path."""
    return manifest_mod.write_manifest(
        path, _registry, _tracer, run_info=run_info, phase=phase
    )


def phase_wall_seconds() -> Dict[str, float]:
    """Wall seconds per phase, in first-entered order (always measured)."""
    return {
        name: entry["wall_seconds"]
        for name, entry in _tracer.phase_table().items()
    }
