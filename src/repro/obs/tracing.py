"""Span-based tracing: wall-time attribution for phases and hot regions.

The temporal half of the observability layer.  Two granularities:

* **Phases** -- coarse, named stages of a run (one per experiment in the
  runner).  Phases are *always* measured, tracing on or off: there are a
  handful per run, the cost is two clock reads, and the runner's exit
  summary needs their wall times unconditionally.
* **Spans** -- fine-grained timed regions (``trace.span("partition.fanout",
  bits=11)``).  Spans record only while tracing is enabled; when it is
  off, callers receive a shared no-op context manager
  (:data:`NULL_SPAN`), which keeps the hot path branch-cheap.

Finished spans accumulate in memory (bounded; overflow is counted, not
stored) and export as JSONL -- one JSON object per line -- or as a
deterministic-by-name aggregate for the run manifest.  Span *timings*
never gate CI; only op counters do.
"""

from __future__ import annotations

import io
import json
import time
from typing import IO, Dict, List, Optional, Tuple, Union


class NullSpan:
    """Reusable no-op context manager handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        """Attribute setter that drops its input (API parity with Span)."""
        return None


NULL_SPAN = NullSpan()


class Span:
    """One live traced region; finished data lands in the tracer."""

    __slots__ = ("tracer", "name", "attrs", "phase", "depth", "start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Optional[Dict[str, object]],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.phase: Optional[str] = None
        self.depth = 0
        self.start = 0.0

    def set(self, key: str, value: object) -> None:
        """Attach or update one attribute on the live span."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.phase = tracer.current_phase()
        self.depth = len(tracer._span_stack)
        tracer._span_stack.append(self.name)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self.start
        tracer = self.tracer
        if tracer._span_stack and tracer._span_stack[-1] == self.name:
            tracer._span_stack.pop()
        tracer._finish_span(self.name, self.phase, self.depth, elapsed, self.attrs)


class _PhaseScope:
    """Context manager measuring one phase's wall time (always on)."""

    __slots__ = ("tracer", "name", "attrs", "start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Optional[Dict[str, object]],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0

    def __enter__(self) -> "_PhaseScope":
        self.tracer._phase_stack.append(self.name)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self.start
        tracer = self.tracer
        if tracer._phase_stack and tracer._phase_stack[-1] == self.name:
            tracer._phase_stack.pop()
        record = tracer._phases.setdefault(
            self.name, {"wall_seconds": 0.0, "entered": 0}
        )
        record["wall_seconds"] += elapsed
        record["entered"] += 1
        if self.attrs:
            tracer._phase_attrs.setdefault(self.name, {}).update(self.attrs)


class Tracer:
    """Collects phases (always) and spans (only while tracing is on)."""

    #: Finished spans kept in memory before overflow counting kicks in.
    DEFAULT_MAX_SPANS = 100_000

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self._span_stack: List[str] = []
        self._phase_stack: List[str] = []
        self._finished: List[dict] = []
        self._phases: Dict[str, Dict[str, float]] = {}
        self._phase_attrs: Dict[str, Dict[str, object]] = {}
        self._phase_order: List[str] = []
        self.dropped_spans = 0
        self._seq = 0

    # -- recording -----------------------------------------------------

    def span(
        self, name: str, attrs: Optional[Dict[str, object]] = None
    ) -> Span:
        return Span(self, name, attrs)

    def phase(
        self, name: str, attrs: Optional[Dict[str, object]] = None
    ) -> _PhaseScope:
        if name not in self._phases and name not in self._phase_order:
            self._phase_order.append(name)
        return _PhaseScope(self, name, attrs)

    def current_phase(self) -> Optional[str]:
        return self._phase_stack[-1] if self._phase_stack else None

    def _finish_span(
        self,
        name: str,
        phase: Optional[str],
        depth: int,
        elapsed: float,
        attrs: Optional[Dict[str, object]],
    ) -> None:
        if len(self._finished) >= self.max_spans:
            self.dropped_spans += 1
            return
        record: dict = {
            "seq": self._seq,
            "name": name,
            "phase": phase,
            "depth": depth,
            "wall_seconds": elapsed,
        }
        if attrs:
            record["attrs"] = dict(attrs)
        self._seq += 1
        self._finished.append(record)

    def clear(self) -> None:
        self._span_stack.clear()
        self._phase_stack.clear()
        self._finished.clear()
        self._phases.clear()
        self._phase_attrs.clear()
        self._phase_order.clear()
        self.dropped_spans = 0
        self._seq = 0

    # -- reads ---------------------------------------------------------

    def finished_spans(self) -> Tuple[dict, ...]:
        return tuple(self._finished)

    def phase_wall_seconds(self, name: str) -> Optional[float]:
        record = self._phases.get(name)
        return None if record is None else record["wall_seconds"]

    def phase_order(self) -> Tuple[str, ...]:
        """Phase names in first-entered order."""
        return tuple(self._phase_order)

    def phase_table(self) -> Dict[str, dict]:
        """Per-phase wall time and entry count, in first-entered order."""
        table: Dict[str, dict] = {}
        for name in self._phase_order:
            record = self._phases.get(name)
            if record is None:
                continue
            entry = {
                "wall_seconds": record["wall_seconds"],
                "entered": int(record["entered"]),
            }
            attrs = self._phase_attrs.get(name)
            if attrs:
                entry["attrs"] = dict(attrs)
            table[name] = entry
        return table

    def span_aggregate(
        self, phase: Optional[str] = None
    ) -> Dict[str, dict]:
        """Per-span-name count and total wall time, name-sorted.

        ``phase`` restricts the aggregate to spans attributed to one
        phase (used by the per-experiment manifests).
        """
        totals: Dict[str, dict] = {}
        for record in self._finished:
            if phase is not None and record.get("phase") != phase:
                continue
            entry = totals.setdefault(
                record["name"], {"count": 0, "total_seconds": 0.0}
            )
            entry["count"] += 1
            entry["total_seconds"] += record["wall_seconds"]
        return {name: totals[name] for name in sorted(totals)}

    # -- export --------------------------------------------------------

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write finished spans as JSONL; returns the span count.

        ``target`` is a path or a text file object.  One JSON object per
        line, in completion order, each carrying ``seq``, ``name``,
        ``phase``, ``depth``, ``wall_seconds``, and ``attrs`` when set.
        """
        own = isinstance(target, str)
        handle: IO[str] = (
            # Streaming sink: spans are appended one line at a time, so
            # whole-file atomic replace does not apply here.
            io.open(target, "w", encoding="utf-8")  # repro: noqa[RES001]
            if isinstance(target, str)
            else target
        )
        try:
            for record in self._finished:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        finally:
            if own:
                handle.close()
        return len(self._finished)
