"""Run manifests (``metrics.json``): build, write, load, diff.

A manifest is the durable artifact of one traced run: the registry's
deterministic snapshot (counters, histograms, per-phase counters) plus
the tracer's timing attribution (phase wall times, span aggregates).
The experiment runner writes one per run and one per experiment next to
each figure's exported output; the CI bench-smoke job diffs a fresh
manifest against a committed baseline and fails on counter drift.

The diff deliberately sees only the deterministic sections.  Wall times,
span durations, gauges, and the free-form ``run`` block are ignored --
they vary run to run and machine to machine, while op counters (lookups
simulated, cache hits, TLB misses, partition fanouts) must not.
"""

from __future__ import annotations

import json
from typing import List, Mapping, Optional

from ..ioutil import atomic_write_json
from .metrics import Drift, MetricsRegistry
from .tracing import Tracer

#: Manifest schema identifier; bump on incompatible layout changes.
SCHEMA = "repro-obs-manifest/1"

#: Default relative tolerance for numeric comparison: absorbs libm-level
#: float variation across platforms, never a real op-count change.
DEFAULT_REL_TOL = 1e-9


def build_manifest(
    registry: MetricsRegistry,
    tracer: Tracer,
    run_info: Optional[dict] = None,
    phase: Optional[str] = None,
) -> dict:
    """Assemble a manifest dict from live observability state.

    ``phase`` narrows the manifest to one phase (a per-experiment
    manifest): its counters become the top-level counters, and only its
    spans and wall time appear.
    """
    snapshot = registry.snapshot()
    if phase is None:
        counters = snapshot["counters"]
        phases_counters: Mapping[str, Mapping[str, float]] = snapshot["phases"]
        phase_names = [
            name
            for name in tracer.phase_order()
            if tracer.phase_wall_seconds(name) is not None
        ]
        histograms = snapshot["histograms"]
        gauges = snapshot["gauges"]
    else:
        counters = snapshot["phases"].get(phase, {})
        phases_counters = {phase: counters}
        phase_names = [phase] if tracer.phase_wall_seconds(phase) is not None else []
        histograms = {}
        gauges = {}
    timing_table = tracer.phase_table()
    phases = {}
    for name in phase_names:
        timing = timing_table.get(name, {})
        phases[name] = {
            "wall_seconds": timing.get("wall_seconds"),
            "entered": timing.get("entered"),
            "counters": dict(phases_counters.get(name, {})),
        }
        if "attrs" in timing:
            phases[name]["attrs"] = timing["attrs"]
    manifest = {
        "schema": SCHEMA,
        "run": dict(run_info or {}),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "phases": phases,
        "spans": tracer.span_aggregate(phase=phase),
        "dropped_spans": tracer.dropped_spans,
    }
    return manifest


def write_manifest(
    path: str,
    registry: MetricsRegistry,
    tracer: Tracer,
    run_info: Optional[dict] = None,
    phase: Optional[str] = None,
) -> str:
    """Build and write a manifest; returns the path written."""
    manifest = build_manifest(registry, tracer, run_info=run_info, phase=phase)
    # Atomic: the CI drift gate reads this file; it must never see a
    # torn manifest from a run killed mid-write.
    atomic_write_json(path, manifest)
    return path


def load_manifest(path: str) -> dict:
    """Read a manifest back; raises ``ValueError`` on a non-manifest."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "schema" not in document:
        raise ValueError(f"{path} is not a metrics manifest")
    schema = document["schema"]
    if not str(schema).startswith("repro-obs-manifest/"):
        raise ValueError(f"{path} has unknown manifest schema {schema!r}")
    return document


def _diff_snapshot(manifest: Mapping[str, object]) -> dict:
    """The deterministic sections of a manifest, as a registry snapshot.

    Per-phase counters are pulled out of the nested phase entries so the
    registry's snapshot differ can compare them uniformly.
    """
    phases: dict = {}
    raw_phases = manifest.get("phases") or {}
    if isinstance(raw_phases, Mapping):
        for name, entry in raw_phases.items():
            if isinstance(entry, Mapping):
                counters = entry.get("counters") or {}
                if isinstance(counters, Mapping):
                    phases[str(name)] = dict(counters)
    return {
        "counters": manifest.get("counters") or {},
        "histograms": manifest.get("histograms") or {},
        "phases": phases,
    }


def diff_manifests(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    rel_tol: float = DEFAULT_REL_TOL,
) -> List[Drift]:
    """Compare two manifests' deterministic sections; returns drifts.

    Timing (phase wall seconds, span durations), gauges, and run
    metadata never participate -- see the module docstring.
    """
    return MetricsRegistry.diff(
        _diff_snapshot(baseline), _diff_snapshot(current), rel_tol=rel_tol
    )
