"""``repro obs report``: render and diff ``metrics.json`` manifests.

Two modes:

* ``repro obs report MANIFEST`` -- human-readable per-phase breakdown:
  wall time per phase, its op counters, and the span aggregate.
* ``repro obs report BASELINE CURRENT --diff [--fail-on-drift]`` --
  compare the deterministic sections of two manifests.  With
  ``--fail-on-drift`` any difference exits nonzero; this is the CI
  bench-smoke gate.  ``--rel-tol`` widens numeric comparison (default
  1e-9, absorbing cross-platform libm noise in analytic counters).

Refreshing the committed CI baseline after an *intentional* perf or
model change: rerun the smoke command from ``.github/workflows/ci.yml``
and copy the fresh manifest over
``benchmarks/baselines/metrics_smoke.json`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Mapping, Optional

from .manifest import DEFAULT_REL_TOL, diff_manifests, load_manifest
from .metrics import Drift


def _format_value(value: object) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return str(value)


def _counter_lines(counters: Mapping[str, object], indent: str) -> List[str]:
    width = max((len(key) for key in counters), default=0)
    return [
        f"{indent}{key:<{width}}  {_format_value(counters[key])}"
        for key in sorted(counters)
    ]


def format_report(manifest: Mapping[str, object]) -> str:
    """Human-readable per-phase breakdown of one manifest."""
    lines: List[str] = []
    run = manifest.get("run") or {}
    if isinstance(run, Mapping) and run:
        described = ", ".join(
            f"{key}={run[key]}" for key in sorted(run, key=str)
        )
        lines.append(f"run: {described}")
    phases = manifest.get("phases") or {}
    if isinstance(phases, Mapping) and phases:
        lines.append("phases:")
        for name, entry in phases.items():
            if not isinstance(entry, Mapping):
                continue
            wall = entry.get("wall_seconds")
            wall_text = f"{wall:.3f}s" if isinstance(wall, (int, float)) else "-"
            lines.append(f"  {name}  [{wall_text}]")
            counters = entry.get("counters") or {}
            if isinstance(counters, Mapping) and counters:
                lines.extend(_counter_lines(counters, "    "))
    counters = manifest.get("counters") or {}
    if isinstance(counters, Mapping) and counters:
        lines.append("counters (run total):")
        lines.extend(_counter_lines(counters, "  "))
    spans = manifest.get("spans") or {}
    if isinstance(spans, Mapping) and spans:
        lines.append("spans:")
        width = max(len(name) for name in spans)
        for name in sorted(spans):
            entry = spans[name]
            if not isinstance(entry, Mapping):
                continue
            count = entry.get("count", 0)
            total = entry.get("total_seconds", 0.0)
            total_text = (
                f"{total:.3f}s" if isinstance(total, (int, float)) else "-"
            )
            lines.append(f"  {name:<{width}}  x{count}  {total_text}")
    dropped = manifest.get("dropped_spans")
    if dropped:
        lines.append(f"dropped spans: {dropped}")
    if not lines:
        lines.append("(empty manifest)")
    return "\n".join(lines)


def format_drifts(drifts: List[Drift]) -> str:
    if not drifts:
        return "no drift: deterministic sections match"
    lines = [f"DRIFT: {len(drifts)} difference(s)"]
    lines.extend("  " + drift.to_text() for drift in drifts)
    return "\n".join(lines)


def run_report(
    paths: List[str],
    diff: bool = False,
    fail_on_drift: bool = False,
    rel_tol: float = DEFAULT_REL_TOL,
    stream: Optional[IO[str]] = None,
) -> int:
    """Programmatic entry point behind :func:`main`; returns exit code."""
    out = stream if stream is not None else sys.stdout
    if diff or fail_on_drift:
        if len(paths) != 2:
            print(
                "error: --diff needs exactly two manifests "
                "(BASELINE CURRENT)",
                file=sys.stderr,
            )
            return 2
        baseline = load_manifest(paths[0])
        current = load_manifest(paths[1])
        drifts = diff_manifests(baseline, current, rel_tol=rel_tol)
        out.write(format_drifts(drifts) + "\n")
        if drifts and fail_on_drift:
            return 1
        return 0
    if len(paths) != 1:
        print(
            "error: report renders exactly one manifest "
            "(use --diff for two)",
            file=sys.stderr,
        )
        return 2
    out.write(format_report(load_manifest(paths[0])) + "\n")
    return 0


def add_report_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "manifests",
        nargs="+",
        metavar="MANIFEST",
        help="one manifest to render, or BASELINE CURRENT with --diff",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="compare two manifests' deterministic sections",
    )
    parser.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="with --diff: exit 1 when any counter differs (the CI gate)",
    )
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=DEFAULT_REL_TOL,
        metavar="TOL",
        help="relative tolerance for numeric comparison "
        f"(default {DEFAULT_REL_TOL:g})",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs report", description=__doc__
    )
    add_report_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_report(
            args.manifests,
            diff=args.diff,
            fail_on_drift=args.fail_on_drift,
            rel_tol=args.rel_tol,
        )
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
