"""Deterministic, seeded fault injection for the experiment stack.

Long-running sweeps die in practice from three causes: a point raises, a
worker process crashes, or a worker wedges.  This module lets tests (and
chaos-style CI jobs) provoke each of those failure modes at an exact,
reproducible place, so the retry/requeue/checkpoint machinery in
:mod:`repro.experiments.common` can be exercised deterministically.

A :class:`FaultPlan` names a *kind* of fault and a *site* at which to
fire.  Sites are labelled check-points sprinkled through the stack:

* ``point`` -- checked by :func:`repro.experiments.common.run_standard_point`
  before simulating one sweep point (serial path and worker processes);
* ``batch`` -- checked by :meth:`repro.engine.pipeline.Pipeline.run` for
  every batch pulled through the sink;
* ``experiment`` -- checked by the runner before each experiment;
* ``checkpoint`` -- consulted by the sweep checkpoint writer (the
  ``corrupt`` kind mangles the serialized record).

Kinds:

* ``raise`` -- raise :class:`~repro.errors.InjectedFault`;
* ``hang`` -- sleep for ``hang_seconds`` (a *bounded* hang, so injected
  wedges cannot deadlock a test run that exercises the timeout path);
* ``crash`` -- ``os._exit`` the process, but **only** inside a
  multiprocessing worker; in the coordinating process it is ignored,
  so an injected crash can never take down the test harness itself;
* ``corrupt`` -- mangle a payload passed through :func:`corrupt_text`
  (used for checkpoint records; :func:`check` ignores it).

Plans are installed programmatically with :func:`install` or from the
``REPRO_FAULTS`` environment variable, e.g.::

    REPRO_FAULTS="raise@point:2"            # 3rd sweep point raises once
    REPRO_FAULTS="crash@point:0,count=2"    # workers crash on their 1st point
    REPRO_FAULTS="hang@point:1,hang=2.5;raise@experiment:0,match=fig7"

Each plan counts only the site checks whose label matches it, per
process; counters restart in every pool worker (see
:func:`reset_for_worker`), so "the Nth point" means the Nth point *that
process* attempts -- deterministic under fork and spawn alike.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError, InjectedFault

#: Environment variable holding semicolon-separated fault specs.
FAULTS_ENV = "REPRO_FAULTS"

_KINDS = ("raise", "hang", "crash", "corrupt")

#: Exit status used by injected worker crashes (distinctive in waitpid).
CRASH_EXIT_CODE = 117


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault: fire ``kind`` at the ``at``-th matching
    check of ``site`` (0-based), at most ``count`` times per process.

    Attributes:
        kind: one of ``raise | hang | crash | corrupt``.
        site: the check-point name (``point``, ``batch``, ``experiment``,
            ``checkpoint``, or any site a caller invents).
        at: index of the first matching check that fires (0-based).
        count: maximum number of fires per process.
        match: only checks whose label contains this substring count
            toward ``at`` (empty string matches everything).
        hang_seconds: sleep duration for ``hang`` faults.  Bounded by
            design -- an injected hang always eventually returns.
        seed: reserved for corruption/randomized variants; keeps byte
            mangling reproducible.
    """

    kind: str
    site: str
    at: int = 0
    count: int = 1
    match: str = ""
    hang_seconds: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.at < 0:
            raise ConfigurationError(f"fault 'at' must be >= 0, got {self.at}")
        if self.count < 1:
            raise ConfigurationError(
                f"fault 'count' must be >= 1, got {self.count}"
            )
        if self.hang_seconds <= 0:
            raise ConfigurationError(
                f"fault 'hang' must be positive, got {self.hang_seconds}"
            )


def parse_plan(spec: str) -> FaultPlan:
    """Parse one ``kind@site:at[,key=value...]`` spec string."""
    spec = spec.strip()
    head, _, options = spec.partition(",")
    if "@" not in head:
        raise ConfigurationError(
            f"bad fault spec {spec!r}: expected 'kind@site[:at][,key=value...]'"
        )
    kind, _, target = head.partition("@")
    site, _, at_text = target.partition(":")
    if not site:
        raise ConfigurationError(f"bad fault spec {spec!r}: missing site")
    kwargs: Dict[str, object] = {"at": int(at_text) if at_text else 0}
    if options:
        for item in options.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep:
                raise ConfigurationError(
                    f"bad fault option {item!r} in {spec!r}"
                )
            if key == "count":
                kwargs["count"] = int(value)
            elif key == "match":
                kwargs["match"] = value
            elif key == "hang":
                kwargs["hang_seconds"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ConfigurationError(
                    f"unknown fault option {key!r} in {spec!r}"
                )
    return FaultPlan(kind=kind.strip(), site=site.strip(), **kwargs)


def parse_plans(text: str) -> Tuple[FaultPlan, ...]:
    """Parse a semicolon-separated list of fault specs."""
    return tuple(
        parse_plan(part) for part in text.split(";") if part.strip()
    )


# ----------------------------------------------------------------------
# Per-process plan registry.  ``_seen``/``_fired`` are indexed by plan
# position, so identical plans installed twice track independently.
# ----------------------------------------------------------------------

_plans: List[FaultPlan] = []
_seen: Dict[int, int] = {}
_fired: Dict[int, int] = {}
_env_loaded = False


def install(*plans: FaultPlan) -> None:
    """Install fault plans (replacing any already installed)."""
    global _env_loaded
    clear()
    _plans.extend(plans)
    _env_loaded = True  # explicit installs override the environment


def clear() -> None:
    """Remove all plans and forget all counters (env will reload lazily)."""
    global _env_loaded
    _plans.clear()
    _seen.clear()
    _fired.clear()
    _env_loaded = False


def active() -> Tuple[FaultPlan, ...]:
    """The currently installed plans (loading ``REPRO_FAULTS`` if needed)."""
    _load_env()
    return tuple(_plans)


def reset_for_worker() -> None:
    """Reset counters in a fresh pool worker.

    Used as the pool initializer so every worker counts its own site
    checks from zero, regardless of what the parent process did before
    forking.  Keeps installed plans (and reloads the environment if none
    were installed programmatically).
    """
    _seen.clear()
    _fired.clear()
    if not _env_loaded:
        _load_env()


def is_worker_process() -> bool:
    """True inside a ``multiprocessing`` child."""
    import multiprocessing

    return multiprocessing.parent_process() is not None


def _load_env() -> None:
    global _env_loaded
    if _env_loaded:
        return
    _env_loaded = True
    text = os.environ.get(FAULTS_ENV, "")
    if text:
        _plans.extend(parse_plans(text))


def _matching(site: str, label: str, kinds: Tuple[str, ...]):
    """Yield (index, plan) for plans due to fire at this check."""
    _load_env()
    for index, plan in enumerate(_plans):
        if plan.site != site or plan.kind not in kinds:
            continue
        if plan.match and plan.match not in label:
            continue
        seen = _seen.get(index, 0)
        _seen[index] = seen + 1
        if seen >= plan.at and _fired.get(index, 0) < plan.count:
            _fired[index] = _fired.get(index, 0) + 1
            yield index, plan


def check(site: str, label: str = "") -> None:
    """Fire any due ``raise``/``hang``/``crash`` fault at this site.

    The fast path (no plans installed) is a tuple check -- cheap enough
    to call per pipeline batch.
    """
    if not _plans and _env_loaded:
        return
    for _, plan in _matching(site, label, ("raise", "hang", "crash")):
        if plan.kind == "raise":
            raise InjectedFault(
                f"injected fault at {site}[{plan.at}] ({label or 'unlabelled'})"
            )
        if plan.kind == "hang":
            time.sleep(plan.hang_seconds)
        elif plan.kind == "crash":
            # Never take down the coordinating process: crashes only make
            # sense as *worker* deaths the pool must survive.
            if is_worker_process():
                os._exit(CRASH_EXIT_CODE)


def corrupt_text(site: str, label: str, text: str) -> str:
    """Pass ``text`` through any due ``corrupt`` fault at this site.

    On fire, the payload is deterministically mangled (a seed-positioned
    byte splice), modelling a torn or bit-flipped on-disk record.  With
    no due fault the text passes through unchanged.
    """
    if not _plans and _env_loaded:
        return text
    for _, plan in _matching(site, label, ("corrupt",)):
        if not text:
            return "\x00"
        position = plan.seed % len(text)
        return text[:position] + "\x00CORRUPT\x00" + text[position + 1:]
    return text
