"""Resilience layer: fault injection, retries, checkpoints, failure reports.

Long sweeps must survive what long sweeps hit: a point that raises, a
worker that dies, a worker that wedges, a run that gets killed halfway.
The submodules each own one concern and the experiment stack composes
them:

* :mod:`~repro.resilience.faults` -- deterministic, seeded fault
  injection (``REPRO_FAULTS``) so every failure path is testable;
* :mod:`~repro.resilience.retry` -- :class:`RetryPolicy`, exponential
  backoff with deterministic jitter, per-point timeouts;
* :mod:`~repro.resilience.checkpoint` -- append-only JSONL sweep
  checkpoints keyed by config hash (``--resume``);
* :mod:`~repro.resilience.chaos` -- declarative, replayable fault
  schedules against the replicated serving layer, with the
  result-invariance checker behind ``repro chaos``;
* :mod:`~repro.resilience.report` -- :class:`ExperimentFailure` /
  :class:`RunReport`, the runner's structured failure summary.

The invariant threaded through all of it: recovery never changes
figures.  Retried, requeued, degraded-to-serial, and resumed runs all
produce bit-identical output to a clean serial run.
"""

from . import chaos, checkpoint, faults, report, retry
from .chaos import ChaosController, ChaosEvent, ChaosSchedule
from .checkpoint import SweepCheckpoint
from .faults import FaultPlan
from .report import ExperimentFailure, RunReport
from .retry import RetryPolicy, with_retry

__all__ = [
    "chaos",
    "checkpoint",
    "faults",
    "report",
    "retry",
    "ChaosController",
    "ChaosEvent",
    "ChaosSchedule",
    "FaultPlan",
    "SweepCheckpoint",
    "ExperimentFailure",
    "RunReport",
    "RetryPolicy",
    "with_retry",
]
