"""Append-only JSONL checkpoints for sweep runs (``--resume``).

A killed ``runner.run_all`` used to throw away every completed sweep
point.  With checkpointing enabled, :func:`repro.experiments.common.
map_standard_points` appends each finished point to a JSONL file as soon
as it completes, and a rerun with ``--resume`` loads the file and
recomputes only the missing points.  Figures are bit-identical either
way: outcomes are pickled, and pickle round-trips floats exactly.

File layout -- one sweep per file, named by a *config fingerprint* of
the full task list::

    <checkpoint-dir>/sweep-<fingerprint16>.jsonl

Each line is one completed point::

    {"task": "<task fingerprint>", "sha": "<12-hex digest>", "data": "<b64 pickle>"}

``task`` identifies the point independent of its position, so a resumed
run with a reordered-but-overlapping task list still gets its hits.
``sha`` guards the payload: a torn or corrupted line (crash mid-write,
bit rot, injected ``corrupt@checkpoint`` fault) fails verification and
is simply recomputed -- corruption can degrade a resume, never the
figures.  Records are flushed per point, so a SIGKILL loses at most the
point in flight.

Checkpoint files are trusted local state (they contain pickles); do not
load checkpoints from untrusted sources.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from contextlib import contextmanager
from dataclasses import is_dataclass
from typing import Dict, Iterable, Optional

from .. import obs
from . import faults

#: Environment variable enabling checkpointing outside the CLI flags.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"
RESUME_ENV = "REPRO_RESUME"

_MISSING = object()


def _canonical(obj) -> str:
    """A stable textual form for fingerprinting task structures.

    Classes render as their qualified name (``repr`` of a class embeds
    nothing stable), dataclasses as their field reprs, containers
    recursively.  Floats use ``repr`` -- exact round-trippable digits.
    """
    if isinstance(obj, type):
        return f"<class {obj.__module__}.{obj.__qualname__}>"
    if is_dataclass(obj) and not isinstance(obj, type):
        fields = ", ".join(
            f"{name}={_canonical(getattr(obj, name))}"
            for name in obj.__dataclass_fields__
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, (tuple, list)):
        inner = ", ".join(_canonical(item) for item in obj)
        return f"[{inner}]"
    if isinstance(obj, dict):
        inner = ", ".join(
            f"{_canonical(key)}: {_canonical(value)}"
            for key, value in sorted(obj.items(), key=repr)
        )
        return f"{{{inner}}}"
    return repr(obj)


def fingerprint(obj) -> str:
    """Hex SHA-256 of the canonical form of ``obj``."""
    return hashlib.sha256(_canonical(obj).encode()).hexdigest()


def sweep_path(directory: str, tasks: Iterable) -> str:
    """Checkpoint file path for a task list (keyed by its config hash)."""
    return os.path.join(
        directory, f"sweep-{fingerprint(list(tasks))[:16]}.jsonl"
    )


class SweepCheckpoint:
    """One sweep's append-only completed-point store.

    With ``resume=False`` any existing file is truncated -- a fresh run.
    With ``resume=True`` existing verified records are loaded and
    :meth:`get` serves them.  Either way :meth:`record` appends and
    flushes one line per completed point.
    """

    def __init__(self, path: str, resume: bool = True):
        self.path = path
        self.resume = resume
        self._records: Dict[str, object] = {}
        self.stats = {"loaded": 0, "discarded": 0, "recorded": 0, "resumed": 0}
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if resume:
            self._load()
        elif os.path.exists(path):
            os.remove(path)

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    data = record["data"]
                    digest = hashlib.sha256(data.encode()).hexdigest()[:12]
                    if digest != record["sha"]:
                        raise ValueError("checksum mismatch")
                    outcome = pickle.loads(base64.b64decode(data))
                except Exception:  # torn/corrupt line: recompute the point
                    self.stats["discarded"] += 1
                    continue
                self._records[record["task"]] = outcome
        self.stats["loaded"] = len(self._records)
        if obs.enabled():
            if self.stats["loaded"]:
                obs.add(
                    "checkpoint.loaded", float(self.stats["loaded"])
                )
            if self.stats["discarded"]:
                obs.add(
                    "checkpoint.discarded", float(self.stats["discarded"])
                )

    def get(self, task_fingerprint: str):
        """The stored outcome for a task, or ``None`` if absent.

        Outcomes are never ``None`` themselves (they are ``("ok", ...)``
        / ``("skip", ...)`` tuples), so ``None`` is unambiguous.
        """
        outcome = self._records.get(task_fingerprint, _MISSING)
        if outcome is _MISSING:
            return None
        self.stats["resumed"] += 1
        return outcome

    def record(self, task_fingerprint: str, outcome) -> None:
        """Append one completed point; flushed immediately."""
        data = base64.b64encode(pickle.dumps(outcome)).decode()
        line = json.dumps(
            {
                "task": task_fingerprint,
                "sha": hashlib.sha256(data.encode()).hexdigest()[:12],
                "data": data,
            }
        )
        line = faults.corrupt_text("checkpoint", task_fingerprint, line)
        with obs.span("checkpoint.write", bytes=len(line) + 1):
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
        obs.add("checkpoint.records")
        self._records[task_fingerprint] = outcome
        self.stats["recorded"] += 1


# ----------------------------------------------------------------------
# Run-scoped configuration: the runner sets a checkpoint directory for
# the duration of one ``run_all`` and every standard sweep inside picks
# it up without threading parameters through each figure module.
# ----------------------------------------------------------------------

_directory: Optional[str] = None
_resume: bool = True


@contextmanager
def configured(directory: Optional[str], resume: bool = True):
    """Scope a checkpoint directory (and resume mode) to a with-block."""
    global _directory, _resume
    previous = (_directory, _resume)
    _directory, _resume = directory, resume
    try:
        yield
    finally:
        _directory, _resume = previous


def for_tasks(tasks) -> Optional["SweepCheckpoint"]:
    """The active checkpoint for a task list, or ``None`` when disabled.

    Precedence: the runner's :func:`configured` scope, then the
    ``REPRO_CHECKPOINT_DIR`` environment variable (with ``REPRO_RESUME``
    opting out of resume when set to ``0``).
    """
    if _directory is not None:
        return SweepCheckpoint(sweep_path(_directory, tasks), resume=_resume)
    env_dir = os.environ.get(CHECKPOINT_DIR_ENV)
    if env_dir:
        resume = os.environ.get(RESUME_ENV, "1") != "0"
        return SweepCheckpoint(sweep_path(env_dir, tasks), resume=resume)
    return None
