"""Structured failure capture for the experiment runner.

One failing experiment used to abort the whole ``run_all`` with a bare
traceback; chart errors were swallowed into a one-line string.  This
module gives both a durable shape: an :class:`ExperimentFailure` records
what failed, how, and how far it got, and a :class:`RunReport` carries
every experiment's result *and* every failure to the CLI, which renders
a summary and turns fatal failures into a nonzero exit code.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ExperimentFailure:
    """One captured failure inside a run.

    Attributes:
        name: experiment id (``fig5``) or artifact (``fig5 chart``).
        stage: ``experiment`` (fatal) or ``chart``/``export`` (best-effort
            output, non-fatal).
        error_type: exception class name.
        message: ``str(exception)``.
        traceback_text: full formatted traceback.
        elapsed_seconds: time spent before the failure.
        points_completed: sweep points finished before the failure, when
            the experiment's sweep ran far enough to know.
        fatal: whether this failure should fail the run's exit code.
    """

    name: str
    stage: str
    error_type: str
    message: str
    traceback_text: str
    elapsed_seconds: float
    points_completed: Optional[int] = None
    fatal: bool = True

    @classmethod
    def from_exception(
        cls,
        name: str,
        stage: str,
        error: BaseException,
        started: float,
        points_completed: Optional[int] = None,
        fatal: bool = True,
        elapsed_seconds: Optional[float] = None,
    ) -> "ExperimentFailure":
        """``elapsed_seconds`` overrides the wall clock when the caller has
        a better source (the runner passes the experiment's phase timing
        from :mod:`repro.obs`)."""
        return cls(
            name=name,
            stage=stage,
            error_type=type(error).__name__,
            message=str(error),
            traceback_text="".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ),
            elapsed_seconds=(
                elapsed_seconds
                if elapsed_seconds is not None
                else time.time() - started
            ),
            points_completed=points_completed,
            fatal=fatal,
        )

    def headline(self) -> str:
        points = (
            f", {self.points_completed} points completed"
            if self.points_completed is not None
            else ""
        )
        return (
            f"{self.name} [{self.stage}] failed after "
            f"{self.elapsed_seconds:.1f}s{points}: "
            f"{self.error_type}: {self.message}"
        )

    def to_text(self) -> str:
        lines = [self.headline()]
        lines.extend(
            "    " + line
            for line in self.traceback_text.rstrip().splitlines()
        )
        return "\n".join(lines)


@dataclass
class RunReport:
    """Everything one ``run_all`` produced: results, timings, failures.

    ``timings`` maps each experiment guard name to its wall time in
    seconds, sourced from the observability layer's always-on phase
    measurement (:func:`repro.obs.phase_wall_seconds`), in execution
    order.
    """

    results: Dict[str, object] = field(default_factory=dict)
    failures: List[ExperimentFailure] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    def ok(self) -> bool:
        return not any(failure.fatal for failure in self.failures)

    def exit_code(self) -> int:
        return 0 if self.ok() else 1

    def summary_text(self) -> str:
        """The end-of-run failure summary (empty string when clean)."""
        if not self.failures:
            return ""
        fatal = sum(1 for failure in self.failures if failure.fatal)
        lines = [
            "FAILURE SUMMARY: "
            f"{len(self.failures)} failure(s), {fatal} fatal"
        ]
        for failure in self.failures:
            lines.append("")
            lines.append(failure.to_text())
        return "\n".join(lines)

    def run_summary_text(self) -> str:
        """Per-experiment wall-time exit summary.

        Separate from :meth:`summary_text` on purpose: the failure
        summary stays empty (and absent from output) on clean runs --
        tests and the CI resilience smoke depend on that -- while this
        timing table renders whenever anything ran.
        """
        if not self.timings:
            return ""
        failed = {
            failure.name
            for failure in self.failures
            if failure.stage == "experiment"
        }
        width = max(len(name) for name in self.timings)
        lines = ["RUN SUMMARY:"]
        for name, seconds in self.timings.items():
            status = "FAILED" if name in failed else "ok"
            lines.append(f"  {name:<{width}}  {seconds:7.1f}s  {status}")
        total = sum(self.timings.values())
        fatal = sum(1 for failure in self.failures if failure.fatal)
        lines.append(
            f"  total {total:.1f}s, {len(self.results)} result(s), "
            f"{fatal} fatal failure(s)"
        )
        return "\n".join(lines)
